"""A crash-safe key-value store on persistent memory.

The scenario the paper's introduction motivates: an application keeps
*one* data format, in NVRAM, and survives power failures without a
separate durable-storage layer.  This example builds the MDB-style
copy-on-write B+-tree store on the Atlas FASE runtime with the adaptive
software cache, kills the machine in the middle of a transaction, and
recovers a consistent database from the NVRAM image alone.

Usage::

    python examples/crash_safe_kv_store.py
"""

from repro.atlas import AtlasRuntime, recover
from repro.mdb.kvstore import MdbStore
from repro.mdb.ops import AtlasOps


def main() -> None:
    # A runtime whose persistence technique is the adaptive software
    # cache; every write transaction is one failure-atomic section.
    rt = AtlasRuntime(technique="SC")
    db = MdbStore(AtlasOps(rt), page_size=256)

    print("populating: 300 pairs in 10-put transactions ...")
    for base in range(0, 300, 10):
        with db.write_txn() as txn:
            for k in range(base, base + 10):
                txn.put(k, f"value-{k}")
    committed = dict(db.read_txn().scan())
    print(f"committed pairs : {len(committed)}")
    print(f"tree depth      : {db.tree.depth(db.txns.latest()[1])}")
    print(f"flushes so far  : {rt.stats.flushes} "
          f"({rt.stats.flush_ratio:.3f} per store)\n")

    # A transaction that never commits: the power fails mid-flight.
    print("starting a transaction and pulling the plug mid-way ...")
    open_fase = rt.fase()
    open_fase.__enter__()
    txn = db.txns.begin_write()
    for k in range(1000, 1020):
        txn.put(k, "never-committed")
    state = rt.crash()
    print(f"crash: {len(state.lost_lines)} dirty lines lost from the "
          f"hardware cache\n")

    # Recovery: only the NVRAM image and the undo log exist now.
    report = recover(state, rt.layout())
    print(f"recovery: {len(report.committed_fases)} FASEs committed, "
          f"{len(report.rolled_back_fases)} rolled back, "
          f"{report.undone_stores} stores undone")

    # Verify: walk the recovered B+-tree by hand (no live runtime).
    meta = max(
        (report.read(p.addr + 16) for p in db.txns.meta),
        key=lambda payload: payload[1],
    )
    root = meta[0]

    def walk(addr):
        kind, nkeys = report.read(addr)
        entries = [report.read(addr + 16 + i * 16) for i in range(nkeys)]
        if kind == "leaf":
            yield from entries
        else:
            for _sep, child in entries:
                yield from walk(child)

    recovered = dict(walk(root))
    assert recovered == committed, "recovered state differs from committed!"
    assert not any(k >= 1000 for k in recovered), "uncommitted data leaked!"
    print(f"verified: recovered database holds exactly the "
          f"{len(recovered)} committed pairs - no torn transaction.")


if __name__ == "__main__":
    main()
