"""The reuse-based locality theory as a standalone analysis tool.

Demonstrates §III-B end to end on a hand-built trace:

1. all-window ``reuse(k)`` in linear time;
2. the duality ``reuse(k) + fp(k) = k`` against an independent
   footprint implementation (Eq. 5);
3. the conversion to a miss-ratio curve (Eq. 3) checked against an
   exact LRU cache simulation;
4. the FASE-semantics correction — why a write cache drained at FASE
   boundaries sees a different MRC than the raw trace suggests.

Usage::

    python examples/locality_theory.py
"""

import numpy as np

from repro.locality.footprint import footprint_curve
from repro.locality.knee import select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.locality.reference import lru_mrc
from repro.locality.reuse import reuse_curve_from_trace
from repro.locality.trace import WriteTrace


def main() -> None:
    # The paper's own examples first.
    abb = WriteTrace.from_string("abb")
    r = reuse_curve_from_trace(abb, honor_fases=False)
    print(f'reuse(2) of "abb"      : {r[2]}   (paper: 1/2)')

    abab = WriteTrace.from_string("ab" * 40)
    r = reuse_curve_from_trace(abab, honor_fases=False)
    print(f'reuse(2), reuse(3) of "abab..." : {r[2]}, {r[3]}   (paper: 0, 1)')

    # A richer trace: a loop over 12 lines with occasional far writes.
    rng = np.random.default_rng(1)
    lines = []
    for _ in range(120):
        lines.extend(range(12))
        if rng.random() < 0.3:
            lines.append(int(rng.integers(100, 400)))
    trace = WriteTrace(lines)
    print(f"\ntrace: n={trace.n}, m={trace.m}")

    # Duality (Eq. 5): two very different linear-time computations must
    # sum to k exactly.
    reuse = reuse_curve_from_trace(trace, honor_fases=False)
    fp = footprint_curve(trace)
    err = np.max(np.abs(reuse + fp - np.arange(trace.n + 1)))
    print(f"duality max |reuse(k)+fp(k)-k| : {err:.2e}")

    # MRC (Eq. 3) vs exact LRU simulation.
    mrc = mrc_from_trace(trace, honor_fases=False)
    sizes = [2, 6, 11, 12, 13, 20]
    actual = lru_mrc(trace, sizes, honor_fases=False)
    print(f"\n{'size':>5s} {'theory':>8s} {'actual':>8s}")
    for s, a in zip(sizes, actual):
        print(f"{s:5d} {mrc.miss_ratio(s):8.4f} {a:8.4f}")
    print(f"selected cache size: {select_cache_size(mrc)} (the 12-line loop)")

    # FASE semantics: split the same access pattern into tiny FASEs and
    # the combinable reuse disappears (the paper's ab|ab|ab example).
    fids = [i // 13 for i in range(trace.n)]     # a FASE every 13 writes
    fase_trace = WriteTrace(trace.lines, fids)
    fase_mrc = mrc_from_trace(fase_trace)        # renaming applied
    print(
        f"\nmiss ratio at size 13, ignoring FASEs : "
        f"{mrc.miss_ratio(13):.3f}"
    )
    print(
        f"miss ratio at size 13, FASE-corrected : "
        f"{fase_mrc.miss_ratio(13):.3f}"
        "\n(every FASE boundary drains the write cache, so almost no"
        "\nreuse survives - the correction of §III-B)"
    )


if __name__ == "__main__":
    main()
