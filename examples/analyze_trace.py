"""Using the locality toolkit on an external write trace.

A program outside the simulator (a Pin tool, an instrumented run, a
production log) can dump its persistent writes as text — one
``address [fase_id]`` per line — and get the paper's full pipeline:
linear-time MRC, knee selection, and the exact stack-distance
cross-check.  The same analysis is available from the shell::

    python -m repro.locality mytrace.txt --text --mrc

This example fabricates such a trace (a blocked matrix-style kernel
with 18-line tiles inside small FASEs), writes it to a temp file, and
analyses it.
"""

import os
import tempfile

from repro.locality.traceio import analyze, format_analysis, load_text_trace


def fabricate_trace(path: str) -> None:
    """A blocked kernel: 18-line tiles swept 6 times, 4 FASEs."""
    base = 0x2000_0000
    with open(path, "w") as fh:
        fh.write("# synthetic blocked-kernel write trace\n")
        for fase in range(4):
            for tile in range(3):
                tile_base = base + (fase * 3 + tile) * 18 * 64
                for _sweep in range(6):
                    for line in range(18):
                        for word in range(4):      # 4 writes per line
                            addr = tile_base + line * 64 + word * 8
                            fh.write(f"{addr:#x} {fase}\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "kernel.txt")
        fabricate_trace(path)
        print(f"trace written to {path}\n")

        trace = load_text_trace(path)
        summary = analyze(trace)
        print(format_analysis(summary))

        print(
            "\nReading the result: the knee should sit at ~18 (the tile),"
            "\nthe theory and exact-LRU miss ratios at the selected size"
            "\nshould agree, and a cache of the default size 8 should be"
            "\nfar worse - which is exactly why the paper adapts the size."
        )
        assert abs(summary["selected_size"] - 18) <= 2
        assert summary["miss_ratio_at_selected"] < summary["miss_ratio_at_default"] / 3


if __name__ == "__main__":
    main()
