"""Quickstart: write caching for NVRAM persistence in five minutes.

Runs one workload under the paper's six persistence techniques on the
simulated NVRAM machine and prints the two quantities everything else
derives from: the data flush ratio and the model execution time.

Usage::

    python examples/quickstart.py
"""

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.policies import TECHNIQUES, make_factory
from repro.locality.knee import find_knees, select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.splash2 import make_splash2


def main() -> None:
    # A scaled-down stand-in for SPLASH2 water-spatial: repeated sweeps
    # over 23-line tiles, the benchmark of the paper's Fig. 2.
    workload = make_splash2("water-spatial", store_budget=60_000)

    # Step 1 - profile: run once without flushing (BEST) and record the
    # persistent-write trace.
    machine = Machine(MachineConfig())
    profile = machine.run(
        workload, make_factory("BEST"), num_threads=1, seed=0, record_traces=True
    )
    trace = profile.traces[0]
    print(f"trace: {trace.n} persistent writes, {trace.m} distinct lines\n")

    # Step 2 - the paper's locality theory: a miss-ratio curve for every
    # cache size at once, in linear time, then knee selection.
    mrc = mrc_from_trace(trace)
    size = select_cache_size(mrc)
    print(f"candidate knees : {[k.size for k in find_knees(mrc)]}")
    print(f"selected size   : {size} (the paper picks 23 for this program)\n")

    # Step 3 - compare the six techniques of the evaluation.
    print(f"{'technique':12s} {'flush ratio':>12s} {'time (Mcycles)':>15s}")
    baseline = None
    for name in TECHNIQUES:
        kwargs = {}
        if name == "SC-offline":
            kwargs["sc_fixed_size"] = size
        elif name == "SC":
            # The online sampler's burst should be a fraction of the
            # run (the paper's 64M-write burst against its full-scale
            # programs); size it to ~15% of this trace.
            kwargs["adaptive_config"] = AdaptiveConfig(
                burst_length=max(2048, trace.n // 7)
            )
        machine = Machine(MachineConfig())
        result = machine.run(
            workload, make_factory(name, **kwargs), num_threads=1, seed=0
        )
        if name == "ER":
            baseline = result.time
        speedup = f"({baseline / result.time:4.1f}x over ER)" if baseline else ""
        print(
            f"{name:12s} {result.flush_ratio:12.5f} "
            f"{result.time / 1e6:15.2f} {speedup}"
        )
    print(
        "\nThe software cache (SC) should sit near the lazy bound (LA) in"
        "\nflushes while approaching BEST in time - the paper's headline."
    )


if __name__ == "__main__":
    main()
