"""Quickstart: write caching for NVRAM persistence in five minutes.

Runs one workload under the paper's six persistence techniques through
the typed :mod:`repro.api` facade and prints the two quantities
everything else derives from: the data flush ratio and the model
execution time.  A final step crash-tests the same configuration with
the fault-injection campaign and its recovery oracle.

Usage::

    python examples/quickstart.py
"""

from repro import api
from repro.cache.policies import TECHNIQUES
from repro.locality.knee import find_knees, select_cache_size
from repro.locality.mrc import mrc_from_trace


def main() -> None:
    # One spec describes the whole configuration: workload, technique,
    # machine knobs.  Everything below reuses it.
    spec = api.RunSpec(workload="water-spatial", technique="SC", scale=0.25)
    harness = api.harness_for(spec)

    # Step 1 - profile: run once without flushing (BEST) and record the
    # persistent-write trace.
    profile = harness.profile(spec.workload)
    trace = profile.traces[0]
    print(f"trace: {trace.n} persistent writes, {trace.m} distinct lines\n")

    # Step 2 - the paper's locality theory: a miss-ratio curve for every
    # cache size at once, in linear time, then knee selection.
    mrc = mrc_from_trace(trace)
    size = select_cache_size(mrc)
    print(f"candidate knees : {[k.size for k in find_knees(mrc)]}")
    print(f"selected size   : {size} (the paper picks 23 for this program)\n")

    # Step 3 - compare the six techniques of the evaluation.  api.run
    # resolves each spec through the shared harness, so SC's sampler and
    # SC-offline's fixed size are configured exactly as the paper's
    # experiments do.
    print(f"{'technique':12s} {'flush ratio':>12s} {'time (Mcycles)':>15s}")
    baseline = None
    for name in TECHNIQUES:
        result = api.run(
            api.RunSpec(workload=spec.workload, technique=name, scale=spec.scale),
            harness=harness,
        )
        if name == "ER":
            baseline = result.time
        speedup = f"({baseline / result.time:4.1f}x over ER)" if baseline else ""
        print(
            f"{name:12s} {result.flush_ratio:12.5f} "
            f"{result.time / 1e6:15.2f} {speedup}"
        )
    print(
        "\nThe software cache (SC) should sit near the lazy bound (LA) in"
        "\nflushes while approaching BEST in time - the paper's headline."
    )

    # Step 4 - crash the configuration at every injectable point (up to
    # the sampling cap) and let the recovery oracle verify FASE
    # atomicity held.
    matrix = api.campaign(
        api.RunSpec(workload="linked-list", technique="SC", scale=0.05),
        api.FaultSpec(max_sites=64),
    )
    print()
    print(matrix.to_markdown())


if __name__ == "__main__":
    main()
