"""Watching the adaptive cache tune itself — and why one size never fits.

Two workloads with very different write locality run under (a) the fixed
8-entry Atlas table, (b) the software cache pinned at the default size 8,
and (c) the full adaptive software cache.  The adaptive runs print the
size each thread's controller selected from its bursty-sampled MRC —
§IV-G's "no one-fits-for-all solution" in action.

Usage::

    python examples/adaptive_tuning.py
"""

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.policies import make_factory
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.generators import TilePatternConfig, TilePatternWorkload


def run(workload, technique, **kwargs):
    # These workloads are ad-hoc objects with hand-picked technique
    # knobs, so they use the low-level Machine API directly; registry
    # workloads go through repro.api.run (see examples/quickstart.py).
    machine = Machine(MachineConfig())
    return machine.run(
        workload, make_factory(technique, **kwargs), num_threads=1, seed=0
    )


def main() -> None:
    # Two programs: one cycles tight 4-line tiles, one sweeps 30-line
    # tiles - their best cache sizes differ by nearly an order.
    workloads = {
        "tight-loops (4-line tiles)": TilePatternWorkload(
            "tight",
            TilePatternConfig(
                tile_lines=4, burst=4, passes=10, tiles_per_fase=8, num_fases=20
            ),
        ),
        "wide-sweeps (30-line tiles)": TilePatternWorkload(
            "wide",
            TilePatternConfig(
                tile_lines=30, burst=4, passes=10, tiles_per_fase=2, num_fases=20
            ),
        ),
    }

    adaptive = AdaptiveConfig(burst_length=8_192)
    for label, workload in workloads.items():
        print(f"== {label} ==")
        at = run(workload, "AT")
        fixed = run(workload, "SC-offline", sc_fixed_size=8)
        sc = run(workload, "SC", adaptive_config=adaptive)
        chosen = sc.selected_sizes[0]
        print(f"  Atlas 8-entry table : flush ratio {at.flush_ratio:.4f}")
        print(f"  SC pinned at 8      : flush ratio {fixed.flush_ratio:.4f}")
        print(
            f"  SC adaptive         : flush ratio {sc.flush_ratio:.4f}, "
            f"selected size {chosen}, "
            f"adaptation cost {sc.threads[0].adaptation_cycles} cycles"
        )
        improvement = at.flush_ratio / sc.flush_ratio if sc.flush_ratio else float("inf")
        print(f"  -> {improvement:.1f}x fewer flushes than the Atlas table\n")

    print(
        "The tight program is served by a small cache; the wide one needs"
        "\n~30 entries - the knee the controller finds from one sampled"
        "\nburst, without profiling runs."
    )


if __name__ == "__main__":
    main()
