"""The persistent "standard library": durable containers in NVRAM.

The introduction's promise — "only one format of data will suffice" —
as application code: ordinary-looking containers whose every mutation is
a failure-atomic section, managed by the adaptive software cache.  We
build a tiny task tracker out of them, pull the plug mid-operation, and
recover everything committed.

Usage::

    python examples/durable_containers.py
"""

from repro.atlas import AtlasRuntime, recover
from repro.pstructs import PersistentDict, PersistentQueue, PersistentVector


def main() -> None:
    rt = AtlasRuntime(technique="SC")

    log = PersistentVector(rt)        # append-only audit log
    users = PersistentDict(rt)        # user -> completed-task count
    inbox = PersistentQueue(rt)       # pending tasks, FIFO

    print("running the task tracker ...")
    for i in range(40):
        inbox.enqueue(f"task-{i}")
        log.append(("submitted", i))
    for i in range(25):
        task = inbox.dequeue()
        user = f"user-{i % 3}"
        users.put(user, (users.get(user) or 0) + 1)
        log.append(("done", task))

    print(f"  pending : {len(inbox)}")
    print(f"  users   : {dict(users.items())}")
    print(f"  log     : {len(log)} entries")

    # Power failure in the middle of one more operation.
    rt.fases.begin()
    rt.log.on_fase_begin()
    rt.store(rt.alloc(8), value="half-finished mutation")
    state = rt.crash()
    print(f"\ncrash! ({len(state.lost_lines)} dirty lines lost)")

    report = recover(state, rt.layout())
    print(f"recovered: {len(report.committed_fases)} FASEs committed, "
          f"{len(report.rolled_back_fases)} rolled back")

    pending = PersistentQueue.read_back(report.read, inbox.header)
    counts = PersistentDict.read_back(report.read, users.header)
    entries = PersistentVector.read_back(report.read, log.header)

    assert len(pending) == 15
    assert sum(counts.values()) == 25
    assert len(entries) == 65
    assert pending[0] == "task-25"
    print("verified: queue order, per-user counts and the audit log all "
          "match the committed state exactly.")
    print(f"\nflush stats: {rt.stats.flushes} flushes for "
          f"{rt.stats.persistent_stores} stores "
          f"(ratio {rt.stats.flush_ratio:.3f})")


if __name__ == "__main__":
    main()
