#!/usr/bin/env python
"""Run the pinned benchmark suite (wrapper for repro.experiments.bench).

Usable without installing the package::

    python tools/bench.py [--quick] [--out PATH]
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
