#!/usr/bin/env python
"""Diff two BENCH_*.json files (wrapper for repro.experiments.bench_compare).

Usable without installing the package::

    python tools/bench_compare.py BENCH_2026-08-06.json BENCH_new.json
    python tools/bench_compare.py base.json new.json --max-regress 3

Exit codes: 0 ok, 1 regression beyond threshold, 2 incomparable files.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.bench_compare import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
