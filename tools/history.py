#!/usr/bin/env python
"""Query the run ledger (wrapper for ``repro.experiments history``).

Usable without installing the package::

    python tools/history.py --query trend --kind bench --metric batched_eps_geomean
    python tools/history.py --query regress --metric time --threshold 15
    python tools/history.py --import BENCH_2026-08-08.json

Exit codes: 0 clean, 1 the query flagged something (regression,
changepoint, drift, flaky campaign), 2 nothing to query.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["history"] + sys.argv[1:]))
