"""MDB on the Atlas runtime: durable transactions + crash recovery.

This is the paper's full stack assembled: the MVCC B+-tree store runs on
the FASE runtime, each write transaction is one failure-atomic section
managed by the software cache, and a crash mid-transaction must leave a
recoverable database containing exactly the committed pairs.
"""

import pytest

from repro.atlas import AtlasRuntime, recover
from repro.mdb.kvstore import MdbStore
from repro.mdb.ops import AtlasOps


@pytest.fixture(params=["LA", "AT", "SC"])
def durable_db(request):
    rt = AtlasRuntime(technique=request.param)
    db = MdbStore(AtlasOps(rt), page_size=256)
    return rt, db


def committed_state(db):
    """Everything a recovered process should find."""
    return dict(db.read_txn().scan())


def test_committed_pairs_survive_crash(durable_db):
    rt, db = durable_db
    with db.write_txn() as txn:
        for i in range(30):
            txn.put(i, i * 11)
    expected = committed_state(db)
    assert len(expected) == 30
    # Crash with no transaction in flight.
    state = rt.crash()
    report = recover(state, rt.layout())
    assert not report.rolled_back_fases
    # Every durable page read recovers the committed mapping: rebuild a
    # reader over the recovered image.
    _assert_recovered_equals(rt, db, report, expected)


def test_crash_mid_transaction_rolls_back(durable_db):
    rt, db = durable_db
    with db.write_txn() as txn:
        for i in range(20):
            txn.put(i, i)
    expected = committed_state(db)
    # Start a transaction and crash before it commits.  The context
    # manager must stay referenced: dropping it would let GC close the
    # generator, running the FASE-commit epilogue early.
    open_fase = db.ops.fase()
    open_fase.__enter__()
    txn = db.txns.begin_write()
    for i in range(100, 120):
        txn.put(i, "uncommitted")
    state = rt.crash()
    del open_fase
    report = recover(state, rt.layout())
    assert report.rolled_back_fases
    _assert_recovered_equals(rt, db, report, expected)


def _assert_recovered_equals(rt, db, report, expected):
    """Walk the B+-tree in the *recovered NVRAM image* and compare."""
    meta_payloads = []
    for page in db.txns.meta:
        payload = report.read(page.addr + 16)   # meta slot 0
        if payload is not None:
            meta_payloads.append(payload)
    assert meta_payloads, "no durable meta page found"
    root, _txn_id = max(meta_payloads, key=lambda p: p[1])

    def read_page(addr):
        header = report.read(addr)
        assert header is not None, f"page {addr:#x} not durable"
        kind, nkeys = header
        entries = [report.read(addr + 16 + i * 16) for i in range(nkeys)]
        return kind, entries

    def walk(addr):
        kind, entries = read_page(addr)
        if kind == "leaf":
            yield from entries
        else:
            for _sep, child in entries:
                yield from walk(child)

    assert dict(walk(root)) == expected
