"""The online adaptation controller (burst -> MRC -> knee -> resize)."""

import pytest

from repro.cache.adaptive import AdaptiveConfig, AdaptiveController
from repro.common.errors import ConfigurationError


def feed_pattern(controller, lines, fase=0):
    """Feed writes until the controller decides; return the decision."""
    for line in lines:
        size = controller.observe(line, fase)
        if size is not None:
            return size
    return None


def test_decides_exactly_once_at_burst_end():
    c = AdaptiveController(config=AdaptiveConfig(burst_length=40))
    pattern = (list(range(5)) * 100)
    size = feed_pattern(c, pattern)
    assert size is not None
    assert c.analyses == 1
    # After the (infinite) hibernation no further decisions appear.
    assert feed_pattern(c, pattern) is None
    assert c.analyses == 1


def test_selects_loop_size_knee():
    c = AdaptiveController(config=AdaptiveConfig(burst_length=120))
    size = feed_pattern(c, list(range(10)) * 50)
    assert size in (10, 11)
    assert c.last_size == size
    assert c.last_mrc is not None


def test_sampling_flag_lifecycle():
    c = AdaptiveController(config=AdaptiveConfig(burst_length=4))
    assert c.sampling
    feed_pattern(c, [1, 2, 1, 2])
    assert not c.sampling


def test_analysis_cost_scales_with_burst():
    small = AdaptiveController(config=AdaptiveConfig(burst_length=100))
    large = AdaptiveController(config=AdaptiveConfig(burst_length=1000))
    assert large.analysis_cost() == 10 * small.analysis_cost()


def test_fase_ids_respected():
    """Writes split across many tiny FASEs cannot be combined, so the
    controller should fall back to the knee-less maximum size."""
    cfg = AdaptiveConfig(burst_length=60)
    c = AdaptiveController(config=cfg)
    decision = None
    for i in range(60):
        decision = c.observe(i % 3, fase_id=i) or decision  # one write per FASE
    assert decision == cfg.selection.max_size


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AdaptiveConfig(sample_cost=-1)
    with pytest.raises(ConfigurationError):
        AdaptiveConfig(analysis_cost_per_write=-2)
