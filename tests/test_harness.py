"""The experiment harness: caching, profiling, technique plumbing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.harness import Harness
from repro.workloads.registry import WORKLOAD_NAMES, get_workload


def test_registry_covers_table3():
    assert len(WORKLOAD_NAMES) == 12
    for name in WORKLOAD_NAMES:
        assert get_workload(name, scale=0.02).name == name


def test_registry_rejects_unknown():
    with pytest.raises(ConfigurationError):
        get_workload("nope")
    with pytest.raises(ConfigurationError):
        get_workload("barnes", scale=0)


def test_run_caching(tiny_harness):
    a = tiny_harness.run("queue", "LA")
    b = tiny_harness.run("queue", "LA")
    assert a is b
    c = tiny_harness.run("queue", "LA", threads=2)
    assert c is not a


def test_unknown_technique_rejected(tiny_harness):
    with pytest.raises(ConfigurationError):
        tiny_harness.run("queue", "nope")


def test_profile_records_traces(tiny_harness):
    prof = tiny_harness.profile("persistent-array")
    assert prof.traces is not None
    assert prof.traces[0].n == prof.persistent_stores


def test_offline_size_persistent_array(tiny_harness):
    # The 26-line working set must be selected at any scale.
    assert tiny_harness.offline_size("persistent-array") == 26


def test_burst_length_proportional(tiny_harness):
    n = tiny_harness.profile("persistent-array").persistent_stores
    burst = tiny_harness.burst_length("persistent-array")
    assert 512 <= burst <= 65536
    assert burst <= max(512, n)
    # Per-thread sampling: the burst shrinks with the thread count.
    assert tiny_harness.burst_length("persistent-array", threads=8) <= burst


def test_sc_offline_uses_profiled_size(tiny_harness):
    res = tiny_harness.run("persistent-array", "SC-offline")
    # 1 flag eviction + 26-line drain at any scale.
    assert res.flushes == 27


def test_workload_names_listing():
    assert Harness.all_workloads() == WORKLOAD_NAMES
    assert len(Harness.splash2_workloads()) == 7


def test_scale_changes_problem_size():
    small = get_workload("queue", scale=0.01)
    large = get_workload("queue", scale=0.1)
    assert large.operations > small.operations
