"""The shared-memory column transport and the fork-once worker pool.

The load-bearing contract: any column an :class:`EventBatch` or
:class:`WriteTrace` can hold survives the share/attach round trip
losslessly (the hypothesis property over the full dtype ranges), and
segments are freed exactly once no matter which side cleans up.
"""

import numpy as np
import pytest
from array import array
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.events import EventBatch
from repro.experiments.transport import (
    WorkerPool,
    attach_batches,
    attach_columns,
    attach_traces,
    share_batches,
    share_columns,
    share_traces,
    unlink_segment,
)
from repro.locality.trace import WriteTrace

# ---------------------------------------------------------------------------
# columnar shared memory
# ---------------------------------------------------------------------------

_INT8 = st.integers(min_value=-(2 ** 7), max_value=2 ** 7 - 1)
_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@given(
    kinds=st.lists(_INT8, max_size=64),
    args=st.lists(_INT64, max_size=64),
    sizes=st.lists(_INT64, max_size=64),
)
@settings(max_examples=50, deadline=None)
def test_share_columns_round_trip_is_lossless(kinds, args, sizes):
    """Every EventBatch column dtype round-trips bit-for-bit, including
    extreme int64 values, empty columns and mixed lengths."""
    columns = [array("b", kinds), array("q", args), array("q", sizes)]
    manifest = share_columns(columns)
    try:
        out = attach_columns(manifest)
    finally:
        unlink_segment(manifest)
    assert [c.typecode for c in out] == ["b", "q", "q"]
    assert [list(c) for c in out] == [kinds, args, sizes]


@given(values=st.lists(_INT64, max_size=64))
@settings(max_examples=25, deadline=None)
def test_share_columns_round_trips_numpy_int64(values):
    col = np.array(values, dtype=np.int64)
    manifest = share_columns([col])
    try:
        (out,) = attach_columns(manifest)
    finally:
        unlink_segment(manifest)
    assert out.dtype == np.int64
    assert out.tolist() == values


def test_share_columns_rejects_unshareable_types():
    with pytest.raises(ConfigurationError):
        share_columns([[1, 2, 3]])
    with pytest.raises(ConfigurationError):
        share_columns([np.zeros((2, 2), dtype=np.int64)])


def test_unlink_segment_is_idempotent():
    manifest = share_columns([array("q", [1, 2, 3])])
    unlink_segment(manifest)
    unlink_segment(manifest)          # second unlink: no error
    unlink_segment(None)              # and None is a no-op


def test_attached_columns_outlive_the_segment():
    manifest = share_columns([array("q", [7, 8, 9])])
    (col,) = attach_columns(manifest)
    unlink_segment(manifest)
    assert list(col) == [7, 8, 9]     # copied out, not a view


def test_share_batches_round_trip():
    b1 = EventBatch()
    b1.append_fase_begin()
    b1.append_store(0x1000, 8)
    b1.append_load(0x2000, 16)
    b1.append_work(123)
    b1.append_fase_end()
    b2 = EventBatch()
    b2.append_store(0x3000, 64)
    per_thread = [[b1], [b2], []]
    manifest = share_batches(per_thread)
    try:
        out = attach_batches(manifest)
    finally:
        unlink_segment(manifest)
    assert len(out) == 3
    for orig_list, new_list in zip(per_thread, out):
        assert len(orig_list) == len(new_list)
        for orig, new in zip(orig_list, new_list):
            assert list(orig.kinds) == list(new.kinds)
            assert list(orig.args) == list(new.args)
            assert list(orig.sizes) == list(new.sizes)


def test_rebuilt_batches_execute_identically():
    """A batch rebuilt from shared memory drives the machine exactly as
    the original did (the transport's end-to-end guarantee)."""
    from repro.cache.policies import make_factory
    from repro.experiments.harness import HarnessConfig
    from repro.nvram.machine import Machine
    from repro.workloads.base import PrebuiltBatchWorkload
    from repro.workloads.registry import get_workload

    from repro.common.events import batches_from_events

    workload = get_workload("queue", scale=0.02)
    batches = [
        list(batches_from_events(s)) for s in workload.streams(2, 7)
    ]
    config = HarnessConfig(scale=0.02, seed=7).machine_config()

    direct = Machine(config).run(
        PrebuiltBatchWorkload("queue", batches),
        make_factory("ER"),
        num_threads=2,
        seed=7,
    )
    manifest = share_batches(batches)
    try:
        rebuilt = attach_batches(manifest)
    finally:
        unlink_segment(manifest)
    via_shm = Machine(config).run(
        PrebuiltBatchWorkload("queue", rebuilt),
        make_factory("ER"),
        num_threads=2,
        seed=7,
    )
    assert via_shm.to_dict() == direct.to_dict()


def test_share_traces_round_trip():
    traces = [
        WriteTrace(
            np.array([1, 5, 5, 9], dtype=np.int64),
            np.array([0, 0, 1, -1], dtype=np.int64),
        ),
        WriteTrace(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        ),
    ]
    manifest = share_traces(traces)
    try:
        out = attach_traces(manifest)
    finally:
        unlink_segment(manifest)
    assert len(out) == 2
    for orig, new in zip(traces, out):
        assert np.array_equal(orig.lines, new.lines)
        assert np.array_equal(orig.fase_ids, new.fase_ids)


# ---------------------------------------------------------------------------
# worker pool
# ---------------------------------------------------------------------------


def test_worker_pool_rejects_bad_jobs():
    with pytest.raises(ConfigurationError):
        WorkerPool(0, (None, None))


def test_worker_pool_propagates_task_errors():
    with WorkerPool(1, (None, None)) as pool:
        pool.submit("no-such-kind", None)
        with pytest.raises(RuntimeError, match="no-such-kind"):
            pool.next_result()


def test_worker_pool_collect_without_submissions_fails_fast():
    with WorkerPool(1, (None, None)) as pool:
        with pytest.raises(RuntimeError, match="no outstanding"):
            pool.next_result()
