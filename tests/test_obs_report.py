"""Rendered trace reports: shape, self-containment, byte determinism."""

from repro.obs import analyze, diff_profiles
from repro.obs.report import (
    render_diff_html,
    render_diff_text,
    render_html,
    render_markdown,
    write_text,
)
from repro.obs.runner import traced_run
from repro.obs.trace import EV_FASE_BEGIN, TraceRecorder


def _profile(tiny_harness):
    _, recorder, metrics = traced_run(
        tiny_harness, "queue", "SC", threads=2, metrics_interval=5000
    )
    return analyze(recorder), metrics


def test_markdown_report_has_all_sections(tiny_harness):
    profile, _ = _profile(tiny_harness)
    md = render_markdown(profile, title="Queue SC")
    assert md.startswith("# Queue SC\n")
    for section in (
        "## Flush provenance",
        "## FASE latency",
        "## Adaptive controller",
        "## Diagnoses",
    ):
        assert section in md
    assert "write amplification" in md


def test_html_report_is_self_contained(tiny_harness):
    profile, metrics = _profile(tiny_harness)
    doc = render_html(profile, metrics_doc=metrics.to_dict())
    assert doc.startswith("<!DOCTYPE html>")
    assert doc.endswith("</html>\n")
    # Zero external assets: no scripts, stylesheets or remote fetches.
    # (The SVG xmlns is a namespace identifier, not a fetched URL.)
    assert "<script" not in doc
    urls = doc.count("http://") + doc.count("https://")
    assert urls == doc.count('xmlns="http://www.w3.org/2000/svg"')
    assert 'rel="stylesheet"' not in doc and "<link" not in doc
    # Charts are inline SVG, including the metrics series.
    assert "<svg" in doc
    assert "Flush provenance by cause" in doc
    assert "Flush-queue depth" in doc


def test_html_clean_run_gets_the_green_badge(tiny_harness):
    profile, _ = _profile(tiny_harness)
    assert not [d for d in profile.diagnoses if d.severity == "error"]
    doc = render_html(profile)
    assert "badge" in doc


def test_html_report_is_byte_deterministic(tiny_harness):
    docs = []
    for _ in range(2):
        _, recorder, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
        docs.append(render_html(analyze(recorder)))
    assert docs[0] == docs[1]


def test_reports_render_for_an_empty_trace():
    profile = analyze(TraceRecorder())
    assert "No diagnoses" in render_markdown(profile)
    assert "clean" in render_html(profile)


def test_reports_render_for_an_error_profile():
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 0, 1)       # never closed -> error
    profile = analyze(rec)
    doc = render_html(profile)
    assert "unbalanced_fase" in doc
    assert ">error<" in doc


def test_diff_renderers(tiny_harness):
    _, r1, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    _, r2, _ = traced_run(tiny_harness, "queue", "LA", threads=2)
    diff = diff_profiles(analyze(r1), analyze(r2))
    text = render_diff_text(diff, "sc", "la")
    assert "verdict: different" in text
    assert "DIFFERENT" in text
    doc = render_diff_html(diff, "sc", "la")
    assert doc.startswith("<!DOCTYPE html>")
    assert "Trace diff: sc vs la" in doc


def test_write_text_round_trips(tmp_path):
    profile = analyze(TraceRecorder())
    path = tmp_path / "report.html"
    doc = render_html(profile)
    write_text(str(path), doc)
    assert path.read_text(encoding="utf-8") == doc
