"""RNG derivation, the timing model, and run statistics."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed, make_rng
from repro.nvram.stats import RunResult, ThreadStats
from repro.nvram.timing import DEFAULT_TIMING, TimingModel


# -- rng ---------------------------------------------------------------------


def test_derive_seed_deterministic():
    assert derive_seed(42, "thread", 0) == derive_seed(42, "thread", 0)


def test_derive_seed_decorrelates():
    seeds = {derive_seed(42, "thread", i) for i in range(64)}
    assert len(seeds) == 64
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_label_boundaries():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_make_rng_reproducible():
    a = make_rng(7).integers(0, 1000, size=5)
    b = make_rng(7).integers(0, 1000, size=5)
    assert list(a) == list(b)


# -- timing ------------------------------------------------------------------


def test_default_timing_sane():
    t = DEFAULT_TIMING
    assert t.writeback_service > t.l1_miss > t.l1_hit
    assert t.flush_queue_depth >= 1


def test_timing_validation():
    with pytest.raises(ConfigurationError):
        TimingModel(cpi=0)
    with pytest.raises(ConfigurationError):
        TimingModel(l1_miss=-1)
    with pytest.raises(ConfigurationError):
        TimingModel(flush_queue_depth=0)


# -- stats -------------------------------------------------------------------


def make_result(**thread_kwargs):
    t = ThreadStats(thread_id=0, **thread_kwargs)
    return RunResult("w", "T", 1, [t], l1_accesses=10, l1_misses=3)


def test_flush_ratio():
    r = make_result(persistent_stores=100, flushes=25)
    assert r.flush_ratio == 0.25
    assert r.threads[0].flush_ratio == 0.25


def test_flush_ratio_no_stores_is_zero():
    assert make_result().flush_ratio == 0.0
    assert ThreadStats().flush_ratio == 0.0


def test_time_is_slowest_thread():
    a = ThreadStats(thread_id=0, cycles=10)
    b = ThreadStats(thread_id=1, cycles=99)
    r = RunResult("w", "T", 2, [a, b], l1_accesses=0, l1_misses=0)
    assert r.time == 99


def test_l1_miss_ratio():
    assert make_result().l1_miss_ratio == pytest.approx(0.3)
    empty = RunResult("w", "T", 1, [ThreadStats()], l1_accesses=0, l1_misses=0)
    assert empty.l1_miss_ratio == 0.0


def test_speedup_over():
    fast = make_result()
    fast.threads[0].cycles = 50
    slow = make_result()
    slow.threads[0].cycles = 200
    assert fast.speedup_over(slow) == pytest.approx(4.0)


def test_aggregates_sum_threads():
    a = ThreadStats(thread_id=0, persistent_stores=5, flushes=2, instructions=10)
    b = ThreadStats(thread_id=1, persistent_stores=7, flushes=1, instructions=20)
    r = RunResult("w", "T", 2, [a, b], l1_accesses=0, l1_misses=0)
    assert r.persistent_stores == 12
    assert r.flushes == 3
    assert r.instructions == 30


def test_selected_sizes_mapping():
    a = ThreadStats(thread_id=0, selected_sizes=[12])
    r = RunResult("w", "SC", 1, [a], l1_accesses=0, l1_misses=0)
    assert r.selected_sizes == {0: [12]}
