"""Sharded execution: split invariants, merge rule, exactness contract.

Two levels of guarantee (see ``repro/nvram/sharded.py``):

1. For every technique, concurrent sharded execution is bit-identical
   to the sequential shard-by-shard reference (same split, same per-
   shard machines, merge in shard order).
2. For techniques whose flush decisions are per-store or per-(FASE,
   line) properties — ER, LA, BEST — the *merged* counters equal the
   truly-unsharded machine's bit for bit whenever no store spans a
   shard boundary.
"""

import numpy as np
import pytest

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.common.events import EventBatch, EventKind
from repro.experiments.harness import HarnessConfig, make_workload
from repro.experiments.parallel import run_sharded_parallel
from repro.locality.shards import shard_of_lines
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.sharded import (
    merge_shard_results,
    run_sharded,
    shard_machine_config,
    split_batches,
    split_workload,
)

CONFIG = HarnessConfig(scale=0.02, seed=7)
MC = CONFIG.machine_config()

#: Counters that must decompose exactly across shards for ER/LA/BEST.
EXACT_FIELDS = (
    "instructions",
    "persistent_stores",
    "persistent_loads",
    "flushes",
    "eviction_flushes",
    "fase_end_flushes",
    "eager_flushes",
    "log_flushes",
    "final_flushes",
    "fase_count",
)


# ---------------------------------------------------------------------------
# splitting
# ---------------------------------------------------------------------------


def _demo_batch():
    batch = EventBatch()
    batch.append_fase_begin()
    for line in range(40):
        batch.append_store(0x10000 + line * 64, 8)
        batch.append_load(0x10000 + line * 64, 8)
    batch.append_work(1000)
    batch.append_fase_end()
    return batch


def test_split_conserves_events_and_replicates_fases():
    per_shard, stats = split_batches([_demo_batch()], 3)
    assert stats["stores"] == 40 and stats["loads"] == 40
    assert stats["fases"] == 1
    assert stats["cross_shard_spans"] == 0
    kinds = [
        [k for b in shard for k in b.kinds.tolist()] for shard in per_shard
    ]
    # Stores and loads partition exactly...
    assert sum(k.count(EventKind.STORE) for k in kinds) == 40
    assert sum(k.count(EventKind.LOAD) for k in kinds) == 40
    # ...FASE markers replicate to every shard...
    for k in kinds:
        assert k.count(EventKind.FASE_BEGIN) == 1
        assert k.count(EventKind.FASE_END) == 1
    # ...and WORK splits into parts summing to the original amount.
    work_total = sum(
        a
        for shard in per_shard
        for b in shard
        for k, a in zip(b.kinds.tolist(), b.args.tolist())
        if k == EventKind.WORK
    )
    assert work_total == 1000


def test_split_routes_by_spatial_hash():
    per_shard, _ = split_batches([_demo_batch()], 3)
    for shard_id, shard in enumerate(per_shard):
        for batch in shard:
            for kind, arg in zip(batch.kinds.tolist(), batch.args.tolist()):
                if kind in (EventKind.STORE, EventKind.LOAD):
                    line = np.array([arg >> 6], dtype=np.int64)
                    assert int(shard_of_lines(line, 3)[0]) == shard_id


def test_split_counts_cross_shard_spans():
    batch = EventBatch()
    # A store spanning 64 lines must cross some 8-way shard boundary.
    batch.append_store(0x10000, 64 * 64)
    _, stats = split_batches([batch], 8)
    assert stats["cross_shard_spans"] == 1


def test_split_validates_arguments():
    with pytest.raises(ConfigurationError):
        split_batches([], 0)
    with pytest.raises(ConfigurationError):
        split_batches([], 2, barrier_every=0)


def test_shard_machine_config_partitions_capacity():
    config = MachineConfig(l1_capacity_lines=512, l1_ways=8)
    assert shard_machine_config(config, 1).l1_capacity_lines == 512
    assert shard_machine_config(config, 4).l1_capacity_lines == 128
    # Rounded down to whole sets, floor one set.
    assert shard_machine_config(config, 3).l1_capacity_lines == 168
    assert shard_machine_config(config, 512).l1_capacity_lines == 8
    with pytest.raises(ConfigurationError):
        shard_machine_config(config, 0)


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------


def test_merge_rejects_mismatched_shards():
    wl = make_workload(CONFIG, "water-spatial")
    sharded = run_sharded(
        MC, wl, make_factory("ER"), num_threads=2, seed=7, num_shards=2
    )
    with pytest.raises(ConfigurationError):
        merge_shard_results([])
    lopsided = [sharded.shards[0]]
    lopsided.append(
        Machine(MC).run(wl, make_factory("ER"), num_threads=1, seed=7)
    )
    with pytest.raises(ConfigurationError, match="thread count"):
        merge_shard_results(lopsided)


# ---------------------------------------------------------------------------
# equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["water-spatial", "barnes"])
@pytest.mark.parametrize("technique", ["ER", "LA", "BEST"])
def test_merged_counters_equal_unsharded_for_decomposable_techniques(
    name, technique
):
    wl = make_workload(CONFIG, name)
    unsharded = Machine(MC).run(
        wl, make_factory(technique), num_threads=2, seed=7
    )
    sharded = run_sharded(
        MC, wl, make_factory(technique), num_threads=2, seed=7, num_shards=3
    )
    assert sharded.split_stats["cross_shard_spans"] == 0
    merged = sharded.merged
    for mt, ut in zip(merged.threads, unsharded.threads):
        for field in EXACT_FIELDS:
            assert getattr(mt, field) == getattr(ut, field), (
                f"{name}/{technique}: thread {ut.thread_id} "
                f"{field} diverged"
            )


@pytest.mark.parametrize("technique", ["SC-offline", "AT"])
def test_parallel_sharded_run_is_bit_identical_to_sequential(technique):
    """Level-1 guarantee: concurrency never changes a sharded result,
    even for capacity-driven techniques whose sharded run is a model
    variant rather than an unsharded equivalent."""
    wl = make_workload(CONFIG, "water-spatial")
    kwargs = {"sc_fixed_size": 16} if technique == "SC-offline" else {}
    sequential = run_sharded(
        MC,
        wl,
        make_factory(technique, **kwargs),
        num_threads=2,
        seed=7,
        num_shards=3,
    )
    parallel = run_sharded_parallel(
        MC,
        wl,
        technique,
        jobs=2,
        num_threads=2,
        seed=7,
        num_shards=3,
        factory_kwargs=kwargs,
    )
    assert parallel.num_shards == sequential.num_shards == 3
    assert parallel.split_stats == sequential.split_stats
    for ps, ss in zip(parallel.shards, sequential.shards):
        assert ps.to_dict() == ss.to_dict()
    assert parallel.merged.to_dict() == sequential.merged.to_dict()


def test_sharded_run_reports_shard_structure():
    wl = make_workload(CONFIG, "water-spatial")
    sharded = run_sharded(
        MC, wl, make_factory("ER"), num_threads=2, seed=7, num_shards=4
    )
    assert len(sharded.shards) == 4
    assert sharded.merged.num_threads == 2
    # Work happened in more than one shard (the hash spreads the lines).
    active = [s for s in sharded.shards if s.persistent_stores > 0]
    assert len(active) > 1
    # Merged wall-clock is the slowest shard's clock, per thread.
    for t in range(2):
        assert sharded.merged.threads[t].cycles == max(
            s.threads[t].cycles for s in sharded.shards
        )
