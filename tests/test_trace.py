"""WriteTrace construction and derived interval structure."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.locality.trace import WriteTrace


def test_from_string_basics():
    t = WriteTrace.from_string("abb")
    assert t.n == 3
    assert t.m == 2
    assert t.num_fases == 1


def test_from_string_fases():
    t = WriteTrace.from_string("ab|ab|ab")
    assert t.n == 6
    assert t.m == 2
    assert t.num_fases == 3


def test_from_addresses_maps_to_lines():
    t = WriteTrace.from_addresses([0, 8, 64, 100, 128])
    assert list(t.lines) == [0, 0, 1, 1, 2]


def test_mismatched_fase_ids_raise():
    with pytest.raises(ConfigurationError):
        WriteTrace([1, 2, 3], [0, 0])


def test_reuse_intervals_abb():
    starts, ends = WriteTrace.from_string("abb").reuse_intervals()
    assert list(starts) == [2]
    assert list(ends) == [3]


def test_reuse_intervals_count_is_n_minus_m():
    t = WriteTrace.from_string("abcabcaa")
    starts, ends = t.reuse_intervals()
    assert len(starts) == t.n - t.m
    assert np.all(ends > starts)


def test_reuse_intervals_are_consecutive_accesses():
    t = WriteTrace.from_string("aba")
    starts, ends = t.reuse_intervals()
    # a at times 1 and 3 -> one interval [1, 3]; b has no reuse.
    assert list(starts) == [1]
    assert list(ends) == [3]


def test_first_last_times():
    t = WriteTrace.from_string("abca")
    first, last = t.first_last_times()
    ids = t.dense_ids()
    # Check per-occurrence consistency.
    for i, d in enumerate(ids):
        assert first[d] <= i + 1 <= last[d]
    assert sorted(first) == [1, 2, 3]
    assert sorted(last) == [2, 3, 4]


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40))
def test_interval_structure_consistency(lines):
    t = WriteTrace(lines)
    starts, ends = t.reuse_intervals()
    assert len(starts) == t.n - t.m
    # Every interval is a pair of consecutive accesses to the same line.
    arr = list(lines)
    for s, e in zip(starts, ends):
        assert arr[s - 1] == arr[e - 1]
        assert arr[s - 1] not in arr[s : e - 1]


def test_head_and_concat():
    a = WriteTrace.from_string("ab|cd")
    b = WriteTrace.from_string("ef")
    assert a.head(2).n == 2
    joined = a.concat(b)
    assert joined.n == 6
    # FASE ids stay disjoint across the concatenation.
    assert joined.num_fases == 3


def test_empty_trace():
    t = WriteTrace([])
    assert t.n == 0
    assert t.m == 0
    starts, ends = t.reuse_intervals()
    assert len(starts) == 0
