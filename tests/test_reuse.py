"""All-window timescale reuse: Eq. 1/2, the paper's worked examples,
and property-based equivalence with brute-force window enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.locality.reference import (
    enclosing_windows_brute,
    reuse_brute,
    reuse_curve_brute,
)
from repro.locality.reuse import reuse_counts, reuse_curve, reuse_curve_from_trace
from repro.locality.trace import WriteTrace

traces = st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=50)


def test_paper_example_abb():
    """§III-B: the trace "abb" has reuse(2) = 1/2."""
    r = reuse_curve_from_trace(WriteTrace.from_string("abb"), honor_fases=False)
    assert r[1] == 0.0
    assert r[2] == pytest.approx(0.5)
    assert r[3] == pytest.approx(1.0)


def test_paper_example_abab_table():
    """§III-B's table: reuse(1)=0, reuse(2)=0, and reuse(3) -> 1."""
    t = WriteTrace.from_string("ab" * 50)
    r = reuse_curve_from_trace(t, honor_fases=False)
    assert r[1] == 0.0
    assert r[2] == 0.0
    assert r[3] == pytest.approx(1.0)
    assert r[4] == pytest.approx(2.0)


def test_reuse_zero_when_no_repeats():
    r = reuse_curve_from_trace(WriteTrace.from_string("abcdef"), honor_fases=False)
    assert np.all(r == 0.0)


def test_reuse_of_constant_trace():
    # "aaaa": every window of length k has k-1 reuses.
    n = 12
    r = reuse_curve_from_trace(WriteTrace([5] * n), honor_fases=False)
    for k in range(1, n + 1):
        assert r[k] == pytest.approx(k - 1)


@settings(max_examples=60, deadline=None)
@given(traces)
def test_linear_time_matches_brute_force(lines):
    t = WriteTrace(lines)
    fast = reuse_curve_from_trace(t, honor_fases=False)
    slow = reuse_curve_brute(t)
    np.testing.assert_allclose(fast, slow, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=1, max_value=29),
    st.integers(min_value=1, max_value=30),
)
def test_single_interval_window_count(n, s, d):
    """The piecewise-linear count equals explicit window enumeration."""
    e = s + d
    if e > n:
        e = n
    if s >= e:
        s = e - 1
    if s < 1:
        return
    total = reuse_counts(np.asarray([s]), np.asarray([e]), n)
    for k in range(1, n + 1):
        assert total[k] == enclosing_windows_brute(s, e, n, k)


def test_reuse_counts_validation():
    with pytest.raises(ConfigurationError):
        reuse_counts(np.asarray([1]), np.asarray([1]), 5)   # e <= s
    with pytest.raises(ConfigurationError):
        reuse_counts(np.asarray([0]), np.asarray([2]), 5)   # s < 1
    with pytest.raises(ConfigurationError):
        reuse_counts(np.asarray([1]), np.asarray([9]), 5)   # e > n
    with pytest.raises(ConfigurationError):
        reuse_counts(np.asarray([1, 2]), np.asarray([3]), 5)


def test_reuse_curve_monotone_in_k():
    """More context can only expose more reuses: reuse(k) is
    non-decreasing (each window of k+1 contains a window of k)."""
    t = WriteTrace(np.random.default_rng(3).integers(0, 5, size=60))
    r = reuse_curve_from_trace(t, honor_fases=False)
    assert np.all(np.diff(r) >= -1e-12)


def test_reuse_increments_bounded_by_one():
    """reuse(k+1) - reuse(k) is a hit *ratio*: it cannot exceed 1."""
    t = WriteTrace(np.random.default_rng(4).integers(0, 4, size=80))
    r = reuse_curve_from_trace(t, honor_fases=False)
    assert np.all(np.diff(r) <= 1 + 1e-12)


def test_full_window_reuse_equals_n_minus_m():
    t = WriteTrace(np.random.default_rng(5).integers(0, 6, size=40))
    r = reuse_curve_from_trace(t, honor_fases=False)
    assert r[t.n] == pytest.approx(t.n - t.m)


def test_fase_semantics_kills_cross_fase_reuse():
    """§III-B: under "ab|ab|ab…" every write is a miss at any size."""
    t = WriteTrace.from_string("ab|ab|ab|ab")
    r = reuse_curve_from_trace(t, honor_fases=True)
    assert np.all(r == 0.0)
    r_ignore = reuse_curve_from_trace(t, honor_fases=False)
    assert r_ignore[t.n] > 0


def test_single_k_brute_spot_check():
    t = WriteTrace.from_string("abcabcbb")
    r = reuse_curve_from_trace(t, honor_fases=False)
    for k in (1, 2, 3, 5, 8):
        assert r[k] == pytest.approx(reuse_brute(t, k))


def test_reuse_curve_empty_and_single():
    assert list(reuse_curve(np.asarray([]), np.asarray([]), 0)) == [0.0]
    r = reuse_curve(np.asarray([]), np.asarray([]), 1)
    assert r[1] == 0.0
