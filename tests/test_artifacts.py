"""Tables and figures regenerate with the paper's qualitative shapes.

These run the real artifact generators on a tiny-scale harness: the
point is structure and orderings, not magnitudes (magnitudes are covered
by the calibration tests and the full-scale benchmark harness).
"""

import pytest

from repro.experiments.figures import (
    PAPER_SELECTED_SIZES,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.tables import (
    AVERAGE_EXCLUDED,
    PAPER_TABLE3,
    table1,
    table2,
    table3,
    table4,
)

THREADS = (1, 2, 4)   # reduced sweep for the test suite


@pytest.fixture(scope="module")
def h(small_harness):
    return small_harness


def test_table1_shape(h):
    art = table1(h)
    rows = {r["program"]: r["slowdown"] for r in art.rows}
    assert set(rows) == set(h.splash2_workloads()) | {"average"}
    # Eager flushing is catastrophic everywhere.
    assert all(s > 3 for s in rows.values())
    assert rows["average"] > 10
    assert "slowdown" in art.text


def test_table2_shape(h):
    art = table2(h, threads=2)
    speedups = {r["method"]: r["speedup"] for r in art.rows}
    assert speedups["ER"] == 1.0
    assert speedups["AT"] > 1.2
    # At tiny scale the online burst is a large run fraction; the
    # offline software cache must still clearly beat the Atlas table.
    assert speedups["SC-offline"] > speedups["AT"]
    assert speedups["SC"] > speedups["AT"] * 0.9
    assert speedups["BEST"] >= speedups["SC-offline"] >= speedups["SC"] * 0.95


def test_table3_shape(h):
    art = table3(h)
    rows = {r["benchmark"]: r for r in art.rows}
    assert set(rows) == set(PAPER_TABLE3) | {"average"}
    for name, row in rows.items():
        if name == "average":
            continue
        assert row["er"] == 1.0
        # The floor and the orderings.
        assert row["la"] <= row["sc"] * 1.05
        assert row["sc"] <= row["at"] * 1.05
    # Where the paper says SC = LA exactly.
    for name in ("linked-list", "queue", "volrend"):
        assert rows[name]["sc"] == pytest.approx(rows[name]["la"], rel=0.02)
    # The headline: SC beats AT by an order of magnitude on average.
    assert rows["average"]["at_over_sc"] > 3


def test_table3_average_excludes_artificial(h):
    art = table3(h)
    avg = art.rows[-1]
    assert avg["benchmark"] == "average"
    assert "persistent-array" in AVERAGE_EXCLUDED


def test_table4_shape(h):
    art = table4(h, threads=THREADS)
    assert len(art.rows) == len(THREADS)
    for row in art.rows:
        # SC runs more instructions than AT; BEST the fewest.
        assert row["inst_sc"] > row["inst_at"] > row["inst_be"]
        # SC's flush ratio sits far below AT's; BEST never flushes.
        assert row["flush_ratio_sc"] < row["flush_ratio_at"] / 3
        assert row["flush_ratio_be"] == 0.0
    # L1 contention rises with the thread count for BEST.
    assert art.rows[-1]["l1_mr_be"] >= art.rows[0]["l1_mr_be"]


def test_figure2_shape(h):
    art = figure2(h)
    selected = art.rows[0]["selected_size"]
    assert abs(selected - PAPER_SELECTED_SIZES["water-spatial"]) <= 2
    mr = art.series["miss_ratio"]["y"]
    # Sharp knee: the ratio collapses by >10x across the knee.
    assert mr[selected + 1] < mr[max(0, selected - 3)] / 10


def test_figure4_shape(h):
    art = figure4(h)
    rows = {r["benchmark"]: r for r in art.rows}
    avg = rows["average"]
    assert avg["BEST"] >= avg["SC-offline"] >= avg["SC"] * 0.95
    assert avg["SC"] > avg["AT"]
    assert avg["AT"] > 1.0


def test_figure5_shape(h):
    art = figure5(h, threads=THREADS)
    assert len(art.rows) == 7 * len(THREADS)
    # "In 85% of tests, SC is better than AT" (90% for SC-offline);
    # tiny-scale runs lose some of the online margin, so the offline
    # series carries the strong form of the assertion here.
    better_offline = [r for r in art.rows if r["sco_over_at"] > 1.0]
    assert len(better_offline) >= 0.7 * len(art.rows)
    better_online = [r for r in art.rows if r["sc_over_at"] > 1.0]
    assert len(better_online) >= 0.5 * len(art.rows)


def test_figure6_shape(h):
    art = figure6(h, threads=THREADS)
    for row in art.rows:
        assert row["slowdown"] >= 0.95     # BEST is a lower bound
        assert row["slowdown"] < 20


def test_figure7_shape(h):
    art = figure7(h)
    for row in art.rows:
        # Sampled and full-trace selection agree (Fig. 7's claim).
        assert abs(row["selected_full"] - row["selected_sampled"]) <= 3
    for series in art.series.values():
        assert len(series["actual"]) == len(series["x"])


def test_figure8_shape(h):
    art = figure8(h, thread_counts=(1, 2))
    avg = art.rows[-1]
    assert avg["benchmark"] == "average"
    assert 0 <= avg["overhead_pct"] < 40


def test_artifact_text_nonempty(h):
    for art in (table1(h), figure2(h)):
        assert art.text
        assert str(art).startswith(art.title)
