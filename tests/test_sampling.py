"""Bursty sampling for online MRC analysis (§III-C)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.locality.mrc import mrc_from_trace
from repro.locality.sampling import BurstSampler, sampled_mrc
from repro.locality.trace import WriteTrace


def feed(sampler, lines, fase=0):
    completed = False
    for line in lines:
        completed = sampler.record(line, fase) or completed
    return completed


def test_burst_fills_and_signals():
    s = BurstSampler(burst_length=4)
    assert not feed(s, [1, 2, 3])
    assert s.recording
    assert s.record(4, 0) is True
    assert s.burst_complete
    assert not s.recording


def test_records_beyond_burst_are_dropped():
    s = BurstSampler(burst_length=3)
    feed(s, [1, 2, 3, 4, 5])
    assert s.recorded == 3
    assert list(s.trace().lines) == [1, 2, 3]


def test_analyze_enters_infinite_hibernation_by_default():
    """The paper analyses the MRC just once (infinite hibernation)."""
    s = BurstSampler(burst_length=3)
    feed(s, [1, 2, 1])
    mrc = s.analyze()
    assert mrc.n == 3
    assert s.done
    assert s.record(9, 0) is False
    assert s.recorded == 0


def test_finite_hibernation_reopens():
    s = BurstSampler(burst_length=2, hibernation=3)
    feed(s, [1, 2])
    s.analyze()
    assert not s.done
    # Three writes skipped, then recording resumes.
    assert not s.record(3, 0)
    assert not s.record(4, 0)
    assert not s.record(5, 0)
    assert not s.record(6, 0)
    assert s.recorded == 1
    assert s.record(7, 0) is True


def test_sampler_keeps_fase_ids():
    s = BurstSampler(burst_length=4)
    s.record(1, 0)
    s.record(1, 0)
    s.record(1, 1)
    s.record(1, 1)
    mrc = s.analyze()
    # Cross-FASE reuse must not be counted: only 1 reuse per FASE.
    assert mrc.miss_ratio(1) < 1.0
    t = WriteTrace([1, 1, 1, 1], [0, 0, 1, 1])
    expected = mrc_from_trace(t)
    np.testing.assert_allclose(mrc.table(4), expected.table(4))


def test_sampled_mrc_short_trace_uses_everything():
    t = WriteTrace.from_string("aabb" * 3)
    full = mrc_from_trace(t)
    samp = sampled_mrc(t, burst_length=10_000)
    np.testing.assert_allclose(samp.table(8), full.table(8))


def test_sampled_mrc_prefix_only():
    lines = [0, 0] * 50 + list(range(100, 200))
    t = WriteTrace(lines)
    samp = sampled_mrc(t, burst_length=100)
    # The sampled prefix is all "00" bursts: near-perfect combining.
    assert samp.miss_ratio(2) < 0.05


def test_validation():
    with pytest.raises(ConfigurationError):
        BurstSampler(burst_length=1)
    with pytest.raises(ConfigurationError):
        BurstSampler(burst_length=8, hibernation=-1)


def test_sampled_preserves_knee_position():
    """Fig. 7's claim: sampling keeps the inflection points."""
    lines = (list(range(15)) * 20) * 4
    t = WriteTrace(lines)
    from repro.locality.knee import select_cache_size

    full = select_cache_size(mrc_from_trace(t, honor_fases=False))
    samp = select_cache_size(sampled_mrc(t, burst_length=len(lines) // 4))
    assert abs(full - samp) <= 1
