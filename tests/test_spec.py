"""The TechniqueSpec grammar: parse/format round-trip and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import TECHNIQUES, SoftwareCacheTechnique
from repro.cache.spec import (
    STAGES,
    TechniqueSpec,
    list_techniques,
    technique_factory,
)
from repro.common.errors import ConfigurationError

#: Bases every stage composes with (clean/victim are SC-only).
SC_BASES = ("SC", "SC-offline")


def stage_strategy(bases):
    """Strategy over (name, param) pairs valid for one of ``bases``."""
    names = [
        n for n, info in STAGES.items()
        if info.bases is None or set(bases) & set(info.bases)
    ]
    return st.sampled_from(names).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=0, max_value=64)
        )
    )


def spec_strategy():
    """Strategy over valid TechniqueSpec values."""

    def build(base):
        allowed = [
            n for n, info in STAGES.items()
            if info.bases is None or base in info.bases
        ]
        return st.lists(
            st.sampled_from(allowed), unique=True, max_size=len(allowed)
        ).flatmap(
            lambda names: st.tuples(
                *[
                    st.tuples(st.just(n), st.integers(0, 64))
                    for n in names
                ]
            )
        ).map(lambda stages: TechniqueSpec(base, stages))

    return st.sampled_from(TECHNIQUES).flatmap(build)


@settings(max_examples=200, deadline=None)
@given(spec_strategy())
def test_parse_format_round_trip(spec):
    """parse(format(x)) == x for every valid spec."""
    assert TechniqueSpec.parse(spec.format()) == spec
    assert TechniqueSpec.parse(str(spec)) == spec


@settings(max_examples=200, deadline=None)
@given(spec_strategy())
def test_dict_round_trip(spec):
    """from_dict(to_dict(x)) == x, and to_dict is JSON-deterministic."""
    import json

    d = spec.to_dict()
    assert TechniqueSpec.from_dict(d) == spec
    # Survives a JSON round-trip (worker transport / cache keys).
    assert TechniqueSpec.from_dict(json.loads(json.dumps(d))) == spec


@settings(max_examples=100, deadline=None)
@given(spec_strategy())
def test_canonical_form_is_stable(spec):
    """Formatting twice through a parse changes nothing."""
    once = str(TechniqueSpec.parse(str(spec)))
    assert str(TechniqueSpec.parse(once)) == once


def test_default_parameters_become_explicit():
    assert str(TechniqueSpec.parse("SC+clean")) == "SC+clean:4"
    assert str(TechniqueSpec.parse("SC+nhit+victim")) == "SC+nhit:2+victim:16"


def test_passthrough_and_stage_param():
    spec = TechniqueSpec.parse("SC+nhit:3")
    assert TechniqueSpec.parse(spec) is spec
    assert spec.stage_param("nhit") == 3
    assert spec.stage_param("victim") is None


def test_unknown_base_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown technique 'XX'"):
        TechniqueSpec.parse("XX")


def test_unknown_stage_is_named():
    with pytest.raises(ConfigurationError, match="unknown policy stage 'warm'"):
        TechniqueSpec.parse("SC+warm")


def test_duplicate_stage_is_rejected():
    with pytest.raises(ConfigurationError, match="duplicate policy stage 'nhit'"):
        TechniqueSpec.parse("SC+nhit:2+nhit:3")


def test_non_integer_parameter_is_named():
    with pytest.raises(ConfigurationError, match="integer parameter"):
        TechniqueSpec.parse("SC+victim:big")


def test_negative_parameter_is_rejected():
    with pytest.raises(ConfigurationError, match="must be >= 0"):
        TechniqueSpec(base="SC", stages=(("victim", -1),))


def test_base_incompatible_stage_is_rejected():
    with pytest.raises(ConfigurationError, match="requires a base technique"):
        TechniqueSpec.parse("ER+clean")
    with pytest.raises(ConfigurationError, match="requires a base technique"):
        TechniqueSpec.parse("AT+victim:8")


def test_from_dict_rejects_bad_keyset():
    with pytest.raises(ConfigurationError, match="expected keys base/stages"):
        TechniqueSpec.from_dict({"base": "SC"})


def test_effective_stages_drop_noops():
    spec = TechniqueSpec.parse("SC+nhit:1+cutoff:0+clean:0+victim:0")
    assert spec.effective_stages() == ()
    spec = TechniqueSpec.parse("SC+nhit:2+victim:0")
    assert spec.effective_stages() == (("nhit", 2),)


def test_degenerate_spec_builds_bare_base_technique():
    """SC+victim:0 must build the *same* class as plain SC."""
    t = technique_factory("SC+victim:0+clean:0")(0)
    assert type(t) is SoftwareCacheTechnique
    assert type(t) is type(technique_factory("SC")(0))


def test_list_techniques_catalogue():
    cat = list_techniques()
    assert cat["bases"] == list(TECHNIQUES)
    assert set(cat["stages"]) == set(STAGES)
    for name, entry in cat["stages"].items():
        assert entry["default"] == STAGES[name].default
        assert entry["noop_below"] == STAGES[name].noop_below
        assert set(entry) == {"default", "noop_below", "bases", "param", "doc"}
    assert "grammar" in cat
