"""The copy-on-write B+-tree, property-tested against a dict model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdb.btree import BPlusTree, CowContext
from repro.mdb.ops import RecordingOps
from repro.mdb.pages import PageAllocator


def make_tree(page_size=128):
    ops = RecordingOps(record_loads=False)
    alloc = PageAllocator(ops, page_size)   # small pages -> deep trees
    return BPlusTree(ops, alloc), ops


def insert_all(tree, root, items):
    cow = CowContext()
    for k, v in items:
        root = tree.insert(root, k, v, cow)
    return root, cow


def test_empty_tree():
    tree, _ = make_tree()
    root = tree.create_empty()
    assert tree.get(root, 1) is None
    assert list(tree.scan(root)) == []
    assert tree.check(root) == 0


def test_insert_and_get():
    tree, _ = make_tree()
    root = tree.create_empty()
    root, _ = insert_all(tree, root, [(5, "five"), (1, "one"), (9, "nine")])
    assert tree.get(root, 5) == "five"
    assert tree.get(root, 1) == "one"
    assert tree.get(root, 9) == "nine"
    assert tree.get(root, 7) is None


def test_overwrite():
    tree, _ = make_tree()
    root = tree.create_empty()
    root, _ = insert_all(tree, root, [(5, "a"), (5, "b")])
    assert tree.get(root, 5) == "b"
    assert tree.check(root) == 1


def test_split_grows_depth():
    tree, _ = make_tree(page_size=96)   # capacity 5 entries
    root = tree.create_empty()
    root, _ = insert_all(tree, root, [(i, i) for i in range(40)])
    assert tree.depth(root) >= 2
    assert tree.check(root) == 40
    assert [k for k, _ in tree.scan(root)] == list(range(40))


def test_cow_preserves_old_root():
    """Snapshot safety: the pre-transaction root still sees old data."""
    tree, _ = make_tree()
    old_root = tree.create_empty()
    old_root, _ = insert_all(tree, old_root, [(i, i) for i in range(30)])
    new_root, _ = insert_all(tree, old_root, [(100, "new"), (3, "patched")])
    assert tree.get(old_root, 100) is None
    assert tree.get(old_root, 3) == 3
    assert tree.get(new_root, 100) == "new"
    assert tree.get(new_root, 3) == "patched"


def test_cow_reuses_copies_within_txn():
    tree, _ = make_tree()
    root = tree.create_empty()
    root, cow1 = insert_all(tree, root, [(i, i) for i in range(10)])
    # A second transaction hitting the same leaf copies each page once.
    cow2 = CowContext()
    r2 = tree.insert(root, 100, 1, cow2)
    copied_first = cow2.pages_copied
    r2 = tree.insert(r2, 101, 1, cow2)
    assert cow2.pages_copied == copied_first   # reused, not re-copied


def test_delete():
    tree, _ = make_tree(page_size=96)
    root = tree.create_empty()
    root, _ = insert_all(tree, root, [(i, i) for i in range(25)])
    cow = CowContext()
    root, found = tree.delete(root, 13, cow)
    assert found
    assert tree.get(root, 13) is None
    assert tree.check(root) == 24
    root, found = tree.delete(root, 13, cow)
    assert not found


def test_delete_everything_collapses_root():
    tree, _ = make_tree(page_size=96)
    root = tree.create_empty()
    root, _ = insert_all(tree, root, [(i, i) for i in range(20)])
    cow = CowContext()
    for i in range(20):
        root, found = tree.delete(root, i, cow)
        assert found
        tree.check(root)
    assert list(tree.scan(root)) == []
    assert tree.depth(root) == 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "del"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=120,
    )
)
def test_matches_dict_model(ops_list):
    tree, _ = make_tree(page_size=96)
    root = tree.create_empty()
    model = {}
    cow = CowContext()
    for op, key in ops_list:
        if op == "put":
            root = tree.insert(root, key, key * 7, cow)
            model[key] = key * 7
        else:
            root, found = tree.delete(root, key, cow)
            assert found == (key in model)
            model.pop(key, None)
    assert tree.check(root) == len(model)
    assert dict(tree.scan(root)) == model
    for key in range(61):
        assert tree.get(root, key) == model.get(key)
