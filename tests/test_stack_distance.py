"""Classical stack distance: exactness against simulation, and the
timescale-vs-access-locality comparison of §III-A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.locality.mrc import mrc_from_trace
from repro.locality.reference import lru_mrc
from repro.locality.stack_distance import (
    COLD,
    average_stack_distance,
    distance_histogram,
    exact_mrc,
    stack_distances,
)
from repro.locality.trace import WriteTrace

traces = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=80)


def test_hand_example():
    # a b a a c b  (0-based distances: cold cold 1 0 cold 2)
    t = WriteTrace.from_string("abaacb")
    d = stack_distances(t, honor_fases=False)
    assert d[0] == COLD and d[1] == COLD and d[4] == COLD
    assert d[2] == 1      # b intervened
    assert d[3] == 0      # immediate re-reference
    assert d[5] == 2      # a and c intervened


def test_distance_zero_hits_at_size_one():
    t = WriteTrace([7, 7, 7, 7])
    mrc = exact_mrc(t, honor_fases=False)
    assert mrc.miss_ratio(1) == pytest.approx(0.25)   # only the cold miss


@settings(max_examples=40, deadline=None)
@given(traces)
def test_exact_mrc_equals_lru_simulation(lines):
    """Stack distance is not an approximation: the derived MRC must
    equal exhaustive per-size LRU simulation, exactly."""
    t = WriteTrace(lines)
    mrc = exact_mrc(t, honor_fases=False)
    sizes = [1, 2, 3, 5, t.m, t.m + 2]
    sim = lru_mrc(t, sizes, honor_fases=False)
    for s, expected in zip(sizes, sim):
        assert mrc.miss_ratio(s) == pytest.approx(expected, abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(traces, st.integers(min_value=2, max_value=5))
def test_fase_renaming_respected(lines, nfases):
    n = len(lines)
    fids = [(i * nfases) // n for i in range(n)]
    t = WriteTrace(lines, fids)
    mrc = exact_mrc(t, honor_fases=True)
    sim = lru_mrc(t, [2, 4, 8], honor_fases=True)
    for s, expected in zip([2, 4, 8], sim):
        assert mrc.miss_ratio(s) == pytest.approx(expected, abs=1e-12)


def test_timescale_curve_tracks_exact_on_steady_pattern():
    """§III-A's comparison: on patterns satisfying the reuse-window
    hypothesis, the linear-time timescale MRC approximates the exact
    access-locality curve closely."""
    lines = (list(range(9)) * 80)
    t = WriteTrace(lines)
    timescale = mrc_from_trace(t, honor_fases=False)
    exact = exact_mrc(t, honor_fases=False)
    for c in (2, 8, 9, 10, 15):
        assert timescale.miss_ratio(c) == pytest.approx(
            exact.miss_ratio(c), abs=0.05
        )


def test_histogram_and_average():
    t = WriteTrace.from_string("abab")
    d = stack_distances(t, honor_fases=False)
    hist = distance_histogram(d)
    assert hist[1] == 2                   # two distance-1 reuses
    assert average_stack_distance(t, honor_fases=False) == pytest.approx(1.0)
    assert average_stack_distance(WriteTrace([1, 2, 3])) == float("inf")


def test_empty_trace_rejected():
    with pytest.raises(ConfigurationError):
        exact_mrc(WriteTrace([]))


def test_cold_misses_never_hit():
    t = WriteTrace(list(range(50)))       # all distinct
    mrc = exact_mrc(t, honor_fases=False)
    assert mrc.miss_ratio(100) == 1.0
