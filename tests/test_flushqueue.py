"""The asynchronous flush engine: overlap, back-pressure, drain stalls."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nvram.flushqueue import FlushQueue


def test_validation():
    with pytest.raises(ConfigurationError):
        FlushQueue(depth=0)
    with pytest.raises(ConfigurationError):
        FlushQueue(service=-1)


def test_async_issue_is_free_with_room():
    q = FlushQueue(depth=4, service=100)
    now, stall = q.issue(1000)
    assert now == 1000 and stall == 0


def test_queue_full_backpressure():
    q = FlushQueue(depth=2, service=100)
    q.issue(0)      # completes at 100
    q.issue(0)      # completes at 200
    now, stall = q.issue(0)   # must wait for the first completion
    assert stall == 100
    assert now == 100


def test_channel_serialises_writebacks():
    q = FlushQueue(depth=8, service=100)
    q.issue(0)
    q.issue(0)
    q.issue(0)
    # Three write-backs queue on one channel: last completes at 300.
    now, stall = q.drain(0)
    assert now == 300 and stall == 300


def test_drain_when_idle_is_free():
    q = FlushQueue(depth=4, service=100)
    now, stall = q.drain(500)
    assert now == 500 and stall == 0


def test_drain_after_completion_is_free():
    q = FlushQueue(depth=4, service=100)
    q.issue(0)
    now, stall = q.drain(1000)   # long past completion at 100
    assert now == 1000 and stall == 0


def test_overlap_with_computation():
    """Flushes spaced wider than the service time never stall."""
    q = FlushQueue(depth=2, service=100)
    t = 0
    for _ in range(50):
        t += 150           # computation between flushes
        t, stall = q.issue(t)
        assert stall == 0


def test_saturation_throttles_to_service_rate():
    """Back-to-back flushes (the eager technique) run at one per
    service period once the queue fills."""
    q = FlushQueue(depth=4, service=100)
    t = 0
    for _ in range(100):
        t, _ = q.issue(t)
    # 100 flushes at ~100 cycles each, minus the initial buffered slack.
    assert t >= 100 * 96


def test_completions_are_reaped():
    q = FlushQueue(depth=2, service=10)
    q.issue(0)
    q.issue(0)
    q.issue(100)          # both prior completions have passed
    assert q.outstanding == 1


def test_issue_counter():
    q = FlushQueue()
    q.issue(0)
    q.issue(0)
    assert q.issued == 2
