"""The Atlas runtime and crash recovery — the correctness side of the paper.

These tests crash the machine at arbitrary points and assert the FASE
guarantee: every committed FASE's effects are fully present after
recovery, every uncommitted FASE's effects are fully rolled back.  The
real techniques (ER/LA/AT/SC) must all pass; BEST — which never flushes
— must demonstrably fail, which is exactly why the paper calls it "not
a valid solution".
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import AtlasRuntime, recover
from repro.common.errors import SimulationError
from repro.nvram.machine import Machine, MachineConfig

TECHNIQUES = ["ER", "LA", "AT", "SC"]


def make_runtime(technique, **kw):
    if technique == "SC-offline":
        kw.setdefault("sc_fixed_size", 8)
    return AtlasRuntime(technique=technique, **kw)


def run_committed_fases(rt, n_fases=6, stores_per_fase=4):
    """Run committed FASEs; return {addr: value} of expected durable data."""
    expected = {}
    for i in range(n_fases):
        with rt.fase():
            for j in range(stores_per_fase):
                addr = rt.alloc(8)
                rt.store(addr, value=(i, j))
                expected[addr] = (i, j)
    return expected


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_committed_fases_survive_crash(technique):
    rt = make_runtime(technique)
    expected = run_committed_fases(rt)
    # Open a FASE that never commits.
    rt.fases.begin()
    rt.log.on_fase_begin()
    doomed = [rt.alloc(8) for _ in range(4)]
    for a in doomed:
        rt.store(a, value="doomed")
    state = rt.crash()
    report = recover(state, rt.layout())
    for addr, value in expected.items():
        assert report.read(addr) == value, f"{technique}: lost committed data"
    for addr in doomed:
        assert report.read(addr) is None, f"{technique}: leaked uncommitted data"
    assert len(report.rolled_back_fases) == 1


def test_best_loses_committed_data():
    rt = make_runtime("BEST")
    expected = run_committed_fases(rt)
    state = rt.crash()
    report = recover(state, rt.layout())
    lost = [a for a, v in expected.items() if report.read(a) != v]
    assert lost, "BEST flushed nothing yet lost nothing - machine is broken"


@pytest.mark.parametrize("technique", ["LA", "SC"])
def test_overwrite_rolls_back_to_committed_value(technique):
    rt = make_runtime(technique)
    region = rt.find_or_create_region("data")
    slot = rt.alloc(8, region)
    with rt.fase():
        rt.store(slot, value="v1")
    rt.fases.begin()
    rt.log.on_fase_begin()
    rt.store(slot, value="v2")           # uncommitted overwrite
    state = rt.crash()
    report = recover(state, rt.layout())
    assert report.read(slot) == "v1"


def test_clean_shutdown_makes_everything_durable():
    rt = make_runtime("SC")
    expected = run_committed_fases(rt)
    rt.finish()
    for addr, value in expected.items():
        assert rt.machine.memory.read(addr) == value


def test_root_pointer_roundtrip():
    rt = make_runtime("LA")
    region = rt.find_or_create_region("data")
    node = rt.alloc(64, region)
    with rt.fase():
        rt.store(node, value="payload")
        rt.set_root(region, node)
    assert rt.get_root(region) == node
    state = rt.crash()
    report = recover(state, rt.layout())
    assert report.read(region.root_addr) == node
    assert report.read(node) == "payload"


def test_runtime_requires_value_tracking():
    with pytest.raises(SimulationError):
        AtlasRuntime(machine=Machine(MachineConfig(track_values=False)))


def test_multi_thread_runtimes_share_machine():
    from repro.atlas.region import RegionManager

    machine = Machine(MachineConfig(track_values=True))
    regions = RegionManager()
    rt0 = AtlasRuntime.for_machine(machine, regions, "SC", 0)
    rt1 = AtlasRuntime.for_machine(machine, regions, "SC", 1)
    a0 = rt0.alloc(8)
    a1 = rt1.alloc(8)
    assert a0 != a1
    with rt0.fase():
        rt0.store(a0, value="t0")
    with rt1.fase():
        rt1.store(a1, value="t1")
    state = rt0.crash()
    # Both threads' logs take part in recovery.
    layout = rt0.layout()
    assert len(layout.log_regions) == 2
    report = recover(state, layout)
    assert report.read(a0) == "t0"
    assert report.read(a1) == "t1"


@settings(max_examples=12, deadline=None)
@given(
    technique=st.sampled_from(TECHNIQUES),
    n_committed=st.integers(min_value=0, max_value=5),
    n_uncommitted=st.integers(min_value=0, max_value=5),
    overwrite=st.booleans(),
)
def test_crash_recovery_property(technique, n_committed, n_uncommitted, overwrite):
    """The all-or-nothing guarantee holds across techniques and shapes."""
    rt = make_runtime(technique)
    expected = run_committed_fases(rt, n_fases=n_committed, stores_per_fase=3)
    doomed = []
    if n_uncommitted:
        rt.fases.begin()
        rt.log.on_fase_begin()
        for _ in range(n_uncommitted):
            a = rt.alloc(8)
            rt.store(a, value="bad")
            doomed.append(a)
        if overwrite and expected:
            victim = next(iter(expected))
            rt.store(victim, value="clobbered")
    state = rt.crash()
    report = recover(state, rt.layout())
    for addr, value in expected.items():
        assert report.read(addr) == value
    for addr in doomed:
        assert report.read(addr) is None


@pytest.mark.parametrize("technique", ["SC", "AT"])
def test_exhaustive_crash_point_sweep(technique):
    """Crash after every possible store count of one program shape:
    recovery must hold at *every* cut point, not just convenient ones."""
    def build():
        rt = make_runtime(technique)
        committed = {}
        schedule = []
        for fase in range(5):
            slots = [rt.alloc(8) for _ in range(3)]
            schedule.append((slots, fase))
        return rt, committed, schedule

    # First pass: count data stores by running to completion.
    rt, committed, schedule = build()
    for slots, fase in schedule:
        with rt.fase():
            for j, addr in enumerate(slots):
                rt.store(addr, value=(fase, j))
    total = rt.stats.persistent_stores

    for cut in range(1, total + 1):
        rt, committed, schedule = build()
        stores_done = 0
        state = None
        for slots, fase in schedule:
            rt.fases.begin()
            rt.log.on_fase_begin()
            fase_id = rt.fases.current_id
            wrote = {}
            for j, addr in enumerate(slots):
                rt.store(addr, value=(fase, j))
                wrote[addr] = (fase, j)
                stores_done += 1
                if stores_done == cut:
                    state = rt.crash()
                    break
            if state is not None:
                break
            rt.fases.end()
            rt.log.commit(fase_id)
            committed.update(wrote)
        if state is None:
            state = rt.crash()
        report = recover(state, rt.layout())
        for addr, value in committed.items():
            assert report.read(addr) == value, (technique, cut)
        # Nothing from the torn FASE leaks.
        torn = set()
        for slots, _f in schedule:
            torn.update(slots)
        torn -= set(committed)
        for addr in torn:
            assert report.read(addr) is None, (technique, cut)
