"""The resizable write-combining software cache (§II-B)."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.write_cache import WriteCombiningCache
from repro.common.errors import ConfigurationError


def test_hit_combines_write():
    c = WriteCombiningCache(2)
    assert c.access(1) is None    # miss, inserted
    assert c.access(1) is None    # hit: combined
    assert c.hits == 1 and c.misses == 1


def test_eviction_at_capacity():
    """Fig. 1's scenario: full cache, new line evicts the LRU line."""
    c = WriteCombiningCache(2)
    c.access(0x100)
    c.access(0x400)
    evicted = c.access(0x600)
    assert evicted == 0x100
    assert 0x400 in c and 0x600 in c and 0x100 not in c


def test_lru_order_respects_recency():
    c = WriteCombiningCache(2)
    c.access(1)
    c.access(2)
    c.access(1)               # 1 becomes MRU
    assert c.access(3) == 2   # 2 was LRU


def test_drain_empties_and_returns_all():
    c = WriteCombiningCache(4)
    for line in (1, 2, 3):
        c.access(line)
    assert c.drain() == [1, 2, 3]
    assert len(c) == 0
    assert c.drains == 1


def test_drain_of_empty_cache_is_not_counted():
    """Back-to-back FASEs with no stores must not inflate ``drains``."""
    c = WriteCombiningCache(4)
    assert c.drain() == []
    assert c.drains == 0
    c.access(1)
    assert c.drain() == [1]
    assert c.drain() == []    # already empty again
    assert c.drains == 1


def test_resize_shrink_evicts_lru_first():
    c = WriteCombiningCache(4)
    for line in (1, 2, 3, 4):
        c.access(line)
    evicted = c.resize(2)
    assert evicted == [1, 2]
    assert c.capacity == 2
    assert len(c) == 2


def test_resize_grow_keeps_contents():
    c = WriteCombiningCache(2)
    c.access(1)
    c.access(2)
    assert c.resize(5) == []
    assert c.access(3) is None
    assert len(c) == 3


def test_validation():
    with pytest.raises(ConfigurationError):
        WriteCombiningCache(0)
    c = WriteCombiningCache(2)
    with pytest.raises(ConfigurationError):
        c.resize(0)


def test_hit_ratio():
    c = WriteCombiningCache(8)
    for _ in range(3):
        c.access(1)
    assert c.hit_ratio == pytest.approx(2 / 3)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120),
    st.integers(min_value=1, max_value=6),
)
def test_matches_ordereddict_model(lines, capacity):
    """The cache behaves exactly like a size-bounded OrderedDict LRU."""
    c = WriteCombiningCache(capacity)
    model: OrderedDict[int, None] = OrderedDict()
    for line in lines:
        expected_evict = None
        if line in model:
            model.move_to_end(line)
        else:
            model[line] = None
            if len(model) > capacity:
                expected_evict, _ = model.popitem(last=False)
        assert c.access(line) == expected_evict
        assert len(c) == len(model)
    assert c.drain() == list(model)


def test_never_exceeds_capacity():
    c = WriteCombiningCache(3)
    for line in range(100):
        c.access(line)
        assert len(c) <= 3


def test_snapshot_counters_and_invariants():
    c = WriteCombiningCache(2)
    for line in (1, 2, 1, 3):          # 1 hit, 3 misses, 1 capacity evict
        c.access(line)
    c.resize(1)                        # 1 resize evict
    snap = c.snapshot()
    assert snap == {
        "capacity": 1,
        "used": 1,
        "accesses": 4,
        "hits": 1,
        "misses": 3,
        "evictions": 2,
        "resize_evictions": 1,
        "resizes": 1,
        "drains": 0,
        "cleans": 0,
    }
    assert c.accesses == c.hits + c.misses


def test_snapshot_detects_corrupted_counters():
    from repro.common.errors import SimulationError

    c = WriteCombiningCache(2)
    c.access(1)
    c.hits = -1                        # simulate counter corruption
    with pytest.raises(SimulationError):
        c.snapshot()
    c = WriteCombiningCache(2)
    c.access(1)
    c.evictions = 5                    # capacity evictions without misses
    with pytest.raises(SimulationError):
        c.snapshot()
    c = WriteCombiningCache(2)
    c.access(1)
    c.resize_evictions = 1             # resize evictions without any resize
    with pytest.raises(SimulationError):
        c.snapshot()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
def test_snapshot_invariants_hold_under_random_traffic(lines, cap1, cap2):
    c = WriteCombiningCache(cap1)
    mid = len(lines) // 2
    for line in lines[:mid]:
        c.access(line)
    c.resize(cap2)
    for line in lines[mid:]:
        c.access(line)
    c.drain()
    snap = c.snapshot()               # raises if any identity breaks
    assert snap["accesses"] == len(lines)
