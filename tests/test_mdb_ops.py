"""The MDB persistence backends (recording and Atlas-backed)."""

import pytest

from repro.atlas import AtlasRuntime
from repro.common.errors import ConfigurationError
from repro.common.events import EventKind
from repro.mdb.ops import AtlasOps, RecordingOps
from repro.nvram.memory import NVRAM_BASE


def test_recording_ops_shadow_roundtrip():
    ops = RecordingOps()
    a = ops.alloc(64)
    assert a >= NVRAM_BASE and a % 64 == 0
    ops.store(a, "v")
    assert ops.load(a) == "v"
    assert ops.load(a + 8) is None


def test_recording_ops_allocations_disjoint():
    ops = RecordingOps()
    a = ops.alloc(100)
    b = ops.alloc(10)
    assert b >= a + 100


def test_recording_ops_event_kinds():
    ops = RecordingOps(load_sample=1)
    with ops.fase():
        a = ops.alloc(8)
        ops.store(a, 1)
        ops.load(a)
        ops.work(5)
    kinds = [e.kind for e in ops.events]
    assert kinds == [
        EventKind.FASE_BEGIN,
        EventKind.STORE,
        EventKind.LOAD,
        EventKind.WORK,
        EventKind.FASE_END,
    ]


def test_recording_ops_load_sampling():
    ops = RecordingOps(load_sample=4)
    a = ops.alloc(8)
    for _ in range(8):
        ops.load(a)
    loads = [e for e in ops.events if e.kind == EventKind.LOAD]
    assert len(loads) == 2      # one in four recorded


def test_recording_ops_loads_can_be_disabled():
    ops = RecordingOps(record_loads=False)
    a = ops.alloc(8)
    ops.store(a, 3)
    assert ops.load(a) == 3
    assert all(e.kind != EventKind.LOAD for e in ops.events)


def test_recording_ops_take_events_resets():
    ops = RecordingOps()
    ops.work(1)
    events = ops.take_events()
    assert len(events) == 1
    assert ops.events == []


def test_recording_ops_validation():
    with pytest.raises(ConfigurationError):
        RecordingOps(load_sample=0)
    with pytest.raises(ConfigurationError):
        RecordingOps().alloc(0)


def test_atlas_ops_is_durable():
    rt = AtlasRuntime(technique="LA")
    ops = AtlasOps(rt)
    a = ops.alloc(8)
    with ops.fase():
        ops.store(a, "durable")
        ops.work(3)
    assert ops.load(a) == "durable"
    rt.finish()
    assert rt.machine.memory.read(a) == "durable"
