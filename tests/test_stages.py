"""Composable policy stages: unit behaviour and end-to-end equivalence."""

import pytest

from repro.cache.policies import SoftwareCacheTechnique
from repro.cache.spec import TechniqueSpec, technique_factory
from repro.cache.stages import StagedTechnique
from repro.experiments.harness import Harness, HarnessConfig


class FakePort:
    """Records the flush calls a technique makes (no flush queue)."""

    def __init__(self):
        self.async_calls = []     # (line, category)
        self.sync_calls = []      # (lines tuple, category)
        self.outstanding = 0
        self.current_fase_id = 0
        self.thread_id = 0

    def flush_async(self, line, category="eviction", invalidate=True):
        self.async_calls.append((line, category))

    def flush_sync(self, lines, category="fase_end", invalidate=True):
        self.sync_calls.append((tuple(lines), category))

    def add_overhead(self, cycles, instructions=0):
        pass

    def add_adaptation_cost(self, cycles):
        pass

    def record_selected_size(self, size):
        pass

    def record_event(self, kind, a=0, b=0):
        pass


def staged(spec, sc_fixed_size=4):
    t = technique_factory(spec, sc_fixed_size=sc_fixed_size)(0)
    port = FakePort()
    t.bind(port)
    return t, port


# -- unit behaviour ------------------------------------------------------


def test_nhit_bypasses_cold_lines_and_admits_hot_ones():
    t, port = staged("SC+nhit:2")
    t.on_store(7)                     # first touch: bypass
    assert port.async_calls == [(7, "bypass")]
    t.on_store(7)                     # second touch: admitted
    assert port.async_calls == [(7, "bypass")]
    assert 7 in t.inner.cache


def test_cutoff_bypasses_streaming_runs():
    t, port = staged("SC+cutoff:3", sc_fixed_size=16)
    for line in (10, 11, 12, 13):
        t.on_store(line)
    # The run reaches length 3 at line 12: 12 and 13 bypass.
    assert port.async_calls == [(12, "bypass"), (13, "bypass")]
    t.on_store(50)                    # run broken: admitted again
    assert 50 in t.inner.cache


def test_cutoff_run_breaks_on_non_consecutive_line():
    t, port = staged("SC+cutoff:2", sc_fixed_size=16)
    t.on_store(1)
    t.on_store(3)                     # not consecutive: run restarts
    t.on_store(4)                     # run of 2 -> bypass
    assert port.async_calls == [(4, "bypass")]


def test_victim_catches_evictions_and_rescues_restores():
    t, port = staged("SC-offline+victim:4", sc_fixed_size=2)
    for line in (1, 2, 3):            # 3 evicts 1 -> victim, no flush
        t.on_store(line)
    assert port.async_calls == []
    assert 1 in t._victim
    t.on_store(1)                     # rescue: back into SC, still no flush
    assert 1 not in t._victim
    assert 1 in t.inner.cache
    assert port.async_calls == []


def test_victim_overflow_flushes_oldest():
    t, port = staged("SC-offline+victim:1", sc_fixed_size=1)
    for line in (1, 2, 3):            # evictions: 1 parks, then 2 pushes 1 out
        t.on_store(line)
    assert port.async_calls == [(1, "victim")]


def test_victim_drains_at_fase_end_and_finish():
    t, port = staged("SC-offline+victim:4", sc_fixed_size=1)
    t.on_store(1)
    t.on_store(2)                     # 1 parked in victim
    t.on_fase_end()
    assert port.sync_calls[-1] == ((1,), "fase_end")
    t.on_store(3)
    t.on_store(4)                     # 3 parked
    t.finish()
    assert port.sync_calls[-1] == ((3,), "final")


def test_clean_flushes_lru_tail_when_idle():
    t, port = staged("SC+clean:2", sc_fixed_size=8)
    for line in (1, 2, 3):
        t.on_store(line)
    t.on_quantum()
    assert port.async_calls == [(1, "clean"), (2, "clean")]
    assert len(t.inner.cache) == 1


def test_clean_respects_busy_flush_queue():
    t, port = staged("SC+clean:2", sc_fixed_size=8)
    t.on_store(1)
    port.outstanding = 3
    t.on_quantum()
    assert port.async_calls == []


def test_cost_per_store_adds_stage_bookkeeping():
    bare = technique_factory("SC")(0)
    t, _ = staged("SC+nhit:2+cutoff:8+victim:4")
    assert t.cost_per_store == bare.cost_per_store + 3 + 2 + 3


# -- stacking-order invariance ------------------------------------------


def test_filter_stacking_order_is_invariant():
    """nhit∘cutoff ≡ cutoff∘nhit: filters all observe every store."""
    trace = [1, 2, 3, 4, 5, 9, 9, 9, 20, 21, 22, 23, 9, 2, 3]
    a, port_a = staged("SC+nhit:2+cutoff:3", sc_fixed_size=8)
    b, port_b = staged("SC+cutoff:3+nhit:2", sc_fixed_size=8)
    for t, port in ((a, port_a), (b, port_b)):
        for line in trace:
            t.on_store(line)
        t.finish()
    assert port_a.async_calls == port_b.async_calls
    assert port_a.sync_calls == port_b.sync_calls


# -- end-to-end equivalence (degenerate specs ≡ plain SC) ---------------


@pytest.fixture(scope="module")
def harness():
    return Harness(HarnessConfig(scale=0.05, seed=0))


@pytest.mark.parametrize(
    "degenerate",
    ["SC+victim:0", "SC+clean:0", "SC+nhit:1+cutoff:0+clean:0+victim:0"],
)
def test_degenerate_specs_bit_identical_to_sc(harness, degenerate):
    base = harness.run("queue", "SC")
    staged_result = harness.run("queue", degenerate)
    base_doc = base.to_dict()
    staged_doc = staged_result.to_dict()
    # The technique label keeps the canonical spec string; every counter
    # must match bit for bit.
    staged_doc["technique"] = base_doc["technique"]
    assert staged_doc == base_doc


def test_composed_run_attributes_stage_flushes(harness):
    r = harness.run("hash", "SC+nhit:2+clean:4+victim:16")
    assert sum(t.bypass_flushes for t in r.threads) > 0
    assert sum(t.clean_flushes for t in r.threads) > 0
    # Flush accounting identity: categories sum to the total.
    for t in r.threads:
        assert t.flushes == (
            t.eviction_flushes + t.fase_end_flushes + t.eager_flushes
            + t.log_flushes + t.final_flushes + t.clean_flushes
            + t.bypass_flushes + t.victim_flushes
        )


def test_staged_runs_from_every_base_entry_point(harness):
    """The same composed spec works via harness, api and factory."""
    from repro import api

    spec = "SC+victim:8"
    r1 = harness.run("queue", spec)
    r2 = api.run(
        api.RunSpec(workload="queue", technique=spec, scale=0.05, seed=0)
    )
    assert r1.to_dict() == r2.to_dict()
    t = technique_factory(TechniqueSpec.parse(spec))(0)
    assert isinstance(t, StagedTechnique)
    assert isinstance(t.inner, SoftwareCacheTechnique)
