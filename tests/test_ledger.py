"""The run ledger: append-only provenance, crash safety, determinism.

The durability model under test mirrors NVCache's append-only log at
JSONL scale: one record per line via a single ``O_APPEND`` write, a
torn-tolerant reader, tail healing on the next append, and an advisory
sidecar index that rebuilds itself when stale.
"""

import json
import os

import pytest

from repro import api
from repro.obs.ledger import (
    ENV_FIELDS,
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    canonical_json,
    counters_from_result,
    default_ledger_path,
    git_sha,
    grid_cells_payload,
    record_run,
    related_artifacts,
    resolve_ledger,
    spec_fingerprint,
)


def _ledger(tmp_path):
    return RunLedger(str(tmp_path / "ledger"))


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def test_spec_fingerprint_is_order_independent():
    assert spec_fingerprint({"a": 1, "b": 2}) == spec_fingerprint({"b": 2, "a": 1})
    assert spec_fingerprint({"a": 1}) != spec_fingerprint({"a": 2})


def test_record_round_trip_and_stable_dict():
    record = RunRecord(kind="run", spec={"workload": "queue"}, counters={"time": 9})
    data = record.to_dict()
    back = RunRecord.from_dict(data)
    assert back == record
    # Unknown keys from future writers are ignored, not fatal.
    assert RunRecord.from_dict({**data, "novel_field": 1}) == record
    stable = record.stable_dict()
    for key in ENV_FIELDS:
        assert key not in stable
    assert stable["spec_sha"] == spec_fingerprint({"workload": "queue"})


def test_append_fills_environment_fields(tmp_path):
    ledger = _ledger(tmp_path)
    record = ledger.append(RunRecord(kind="run", spec={"x": 1}))
    assert record.ts > 0 and record.run_id and record.host["python"]
    (back,) = ledger.scan()
    assert back.to_dict() == record.to_dict()
    assert ledger.skipped_lines == 0


def test_append_scan_order_and_filters(tmp_path):
    ledger = _ledger(tmp_path)
    for i in range(3):
        ledger.append(RunRecord(kind="run", spec={"i": i % 2}, counters={"n": i}))
    ledger.append(RunRecord(kind="bench", spec={"suite": "bench"}))
    assert [r.counters.get("n") for r in ledger.records(kind="run")] == [0, 1, 2]
    sha = spec_fingerprint({"i": 0})
    assert [r.counters["n"] for r in ledger.records(spec_sha=sha)] == [0, 2]
    assert set(ledger.timelines(kind="run")) == {sha, spec_fingerprint({"i": 1})}
    assert len(ledger) == 4


# ---------------------------------------------------------------------------
# Crash safety: torn tails
# ---------------------------------------------------------------------------


def test_reader_skips_truncated_final_line(tmp_path):
    ledger = _ledger(tmp_path)
    for i in range(3):
        ledger.append(RunRecord(kind="run", spec={"i": i}))
    with open(ledger.path, "rb") as fh:
        raw = fh.read()
    # Crash mid-append: the final line loses its tail (and newline).
    with open(ledger.path, "wb") as fh:
        fh.write(raw[:-20])
    records = ledger.scan()
    assert [r.spec["i"] for r in records] == [0, 1]
    assert ledger.skipped_lines == 1


def test_next_append_heals_a_torn_tail(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.append(RunRecord(kind="run", spec={"i": 0}))
    with open(ledger.path, "ab") as fh:
        fh.write(b'{"kind": "run", "torn')  # writer died mid-line
    ledger.append(RunRecord(kind="run", spec={"i": 1}))
    records = ledger.scan()
    assert [r.spec["i"] for r in records] == [0, 1]
    assert ledger.skipped_lines == 1
    # The log itself stays line-parseable: exactly one bad line.
    with open(ledger.path, "rb") as fh:
        lines = [l for l in fh.read().split(b"\n") if l.strip()]
    assert len(lines) == 3


def test_reader_skips_foreign_schema_lines(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.append(RunRecord(kind="run", spec={"i": 0}))
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "run", "schema": LEDGER_SCHEMA + 1}) + "\n")
        fh.write("[1, 2, 3]\n")
    assert len(ledger.scan()) == 1
    assert ledger.skipped_lines == 2


def test_scan_of_missing_log_is_empty(tmp_path):
    ledger = _ledger(tmp_path)
    assert ledger.scan() == []
    assert ledger.skipped_lines == 0


# ---------------------------------------------------------------------------
# Sidecar index
# ---------------------------------------------------------------------------


def test_index_tracks_appends_and_rebuilds_when_stale(tmp_path):
    ledger = _ledger(tmp_path)
    for i in range(2):
        ledger.append(RunRecord(kind="run", spec={"i": i}))
    index = ledger.index()
    assert index["records"] == 2
    assert index["bytes"] == os.path.getsize(ledger.path)
    assert sum(e["count"] for e in index["specs"].values()) == 2
    # A writer that bypasses the index (crashed before updating it)
    # leaves it stale; the next read detects the size mismatch and
    # rebuilds.
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write(
            canonical_json(RunRecord(kind="run", spec={"i": 9}).to_dict()) + "\n"
        )
    rebuilt = ledger.index()
    assert rebuilt["records"] == 3
    assert rebuilt["bytes"] == os.path.getsize(ledger.path)


def test_corrupt_index_is_rebuilt(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.append(RunRecord(kind="run", spec={}))
    with open(ledger.index_path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    assert ledger.index()["records"] == 1


# ---------------------------------------------------------------------------
# Resolution + recording entry point
# ---------------------------------------------------------------------------


def test_env_var_controls_default_path(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert default_ledger_path() == ".ledger"
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path))
    assert default_ledger_path() == str(tmp_path)
    assert resolve_ledger().root == str(tmp_path)
    for off in ("off", "none", "0", "disabled", "OFF", " off "):
        monkeypatch.setenv("REPRO_LEDGER", off)
        assert default_ledger_path() is None
        assert resolve_ledger() is None


def test_record_run_is_best_effort(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LEDGER", "off")
    assert record_run("run", {}, {}) is None
    # An unwritable root degrades to None instead of raising.
    blocked = tmp_path / "file"
    blocked.write_text("not a directory")
    assert record_run("run", {}, {}, ledger=str(blocked / "sub")) is None
    # And an explicit ledger records normally.
    record = record_run("run", {"x": 1}, {"time": 2}, ledger=str(tmp_path / "led"))
    assert record is not None and record.counters == {"time": 2}


def test_git_sha_resolves_this_repo():
    sha = git_sha(os.path.dirname(os.path.abspath(__file__)))
    assert sha is None or (len(sha) == 40 and int(sha, 16) >= 0)
    assert git_sha("/") is None


# ---------------------------------------------------------------------------
# Determinism contract: identical spec -> identical stable record
# ---------------------------------------------------------------------------


def test_rerun_of_identical_spec_appends_identical_stable_record(
    monkeypatch, tmp_path
):
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "led"))
    spec = api.RunSpec(workload="queue", technique="ER", scale=0.02, seed=7)
    api.run(spec)
    api.run(api.RunSpec(workload="queue", technique="ER", scale=0.02, seed=7))
    ledger = RunLedger(str(tmp_path / "led"))
    first, second = ledger.records(kind="run")
    assert first.stable_dict() == second.stable_dict()
    assert first.run_id != second.run_id
    assert first.spec_sha == second.spec_sha
    assert first.counters["time"] > 0


def test_counters_from_result_distills_a_run(tiny_harness):
    result = tiny_harness.run("queue", "ER", 1)
    counters = canonical_json(counters_from_result(result))
    assert json.loads(counters)["time"] == int(result.time)
    assert json.loads(counters)["crashed"] is False


def test_grid_cells_payload_aggregates(tiny_harness):
    results = {
        cell: tiny_harness.run(*cell)
        for cell in [("queue", "ER", 1), ("queue", "SC", 1)]
    }
    rows, totals = grid_cells_payload(results)
    assert [r["technique"] for r in rows] == ["ER", "SC"]
    assert totals["cells"] == 2
    assert totals["time"] == sum(int(r.time) for r in results.values())


def test_related_artifacts_joins_on_shared_paths(tmp_path):
    ledger = _ledger(tmp_path)
    traced = ledger.append(
        RunRecord(kind="traced_run", spec={"w": "queue"},
                  artifacts={"trace": "t.jsonl"})
    )
    profile = ledger.append(
        RunRecord(kind="profile", spec={"artifact": "profile"},
                  artifacts={"trace": "t.jsonl", "profile_json": "p.json"})
    )
    other = ledger.append(
        RunRecord(kind="profile", spec={}, artifacts={"trace": "other.jsonl"})
    )
    linked = related_artifacts(ledger.scan(), traced)
    assert [l["run_id"] for l in linked] == [profile.run_id]
    assert linked[0]["shared"] == ["t.jsonl"]
    assert related_artifacts(ledger.scan(), other) == []


# ---------------------------------------------------------------------------
# Concurrency: two processes hammering one log
# ---------------------------------------------------------------------------


def _hammer_ledger(root, writer, rounds):
    ledger = RunLedger(root)
    for i in range(rounds):
        ledger.append(
            RunRecord(
                kind="hammer",
                spec={"writer": writer},
                counters={"i": i, "blob": "x" * 512},
            )
        )


def test_concurrent_appenders_never_tear_a_line(tmp_path):
    """Two processes appending concurrently must interleave only at line
    granularity: every complete line parses at every instant (single
    O_APPEND write per record), and the final scan sees every record."""
    import multiprocessing as mp

    root = str(tmp_path / "led")
    rounds = 150
    ctx = mp.get_context()
    writers = [
        ctx.Process(target=_hammer_ledger, args=(root, w, rounds))
        for w in (0, 1)
    ]
    for w in writers:
        w.start()
    path = os.path.join(root, "runs.jsonl")
    observed = set()
    try:
        while any(w.is_alive() for w in writers):
            try:
                with open(path, "rb") as fh:
                    raw = fh.read()
            except OSError:
                continue
            chunks = raw.split(b"\n")
            if chunks and not raw.endswith(b"\n"):
                chunks = chunks[:-1]  # a write may be mid-flight
            for chunk in chunks:
                if not chunk.strip():
                    continue
                data = json.loads(chunk)  # raises if torn/interleaved
                observed.add(data["spec"]["writer"])
    finally:
        for w in writers:
            w.join()
    assert all(w.exitcode == 0 for w in writers)
    assert observed == {0, 1}  # the reader actually raced both writers
    ledger = RunLedger(root)
    records = ledger.records(kind="hammer")
    assert len(records) == 2 * rounds
    assert ledger.skipped_lines == 0
    # Per-writer sequences arrived intact and in order.
    for writer in (0, 1):
        seq = [r.counters["i"] for r in records if r.spec["writer"] == writer]
        assert seq == list(range(rounds))
    # The racy index converges once re-read after the dust settles.
    assert ledger.index()["records"] == 2 * rounds


def test_record_run_never_raises_on_readonly_root(tmp_path):
    if hasattr(os, "geteuid") and os.geteuid() == 0:
        pytest.skip("read-only directories do not bind the superuser")
    root = tmp_path / "ro"
    root.mkdir()
    os.chmod(root, 0o500)
    try:
        assert record_run("run", {}, {}, ledger=str(root / "led")) is None
    finally:
        os.chmod(root, 0o700)
