"""Calibrated SPLASH2 stand-ins: published ratios must be reproduced."""

import pytest

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.locality.knee import select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.splash2 import SPLASH2_PROFILES, make_splash2

BUDGET = 60_000   # scaled-down store budget for the test suite


def run(workload, technique, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, make_factory(technique, **kw), num_threads=1, seed=1)


@pytest.fixture(scope="module")
def results():
    """One LA/AT/profile pass per benchmark, shared by the tests."""
    out = {}
    for name, profile in SPLASH2_PROFILES.items():
        w = make_splash2(name, store_budget=BUDGET)
        machine = Machine(MachineConfig())
        best = machine.run(w, make_factory("BEST"), num_threads=1, seed=1, record_traces=True)
        knee = select_cache_size(mrc_from_trace(best.traces[0]))
        out[name] = {
            "profile": profile,
            "la": run(w, "LA"),
            "at": run(w, "AT"),
            "sc": run(w, "SC-offline", sc_fixed_size=knee),
            "knee": knee,
        }
    return out


def test_unknown_benchmark_rejected():
    with pytest.raises(ConfigurationError):
        make_splash2("nope")
    with pytest.raises(ConfigurationError):
        make_splash2("barnes", store_budget=10)


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_store_budget_respected(results, name):
    stores = results[name]["la"].persistent_stores
    assert BUDGET * 0.7 <= stores <= BUDGET * 1.4


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_at_ratio_matches_paper(results, name):
    r = results[name]
    assert r["at"].flush_ratio == pytest.approx(
        r["profile"].paper_at, rel=0.05
    )


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_la_ratio_matches_paper(results, name):
    r = results[name]
    assert r["la"].flush_ratio == pytest.approx(
        r["profile"].paper_la, rel=0.25
    )


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_sc_ratio_matches_paper(results, name):
    r = results[name]
    assert r["sc"].flush_ratio == pytest.approx(
        r["profile"].paper_sc, rel=0.30
    )


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_selected_size_near_paper(results, name):
    """§IV-G: barnes 15, fmm 10, ocean 2, raytrace 8, volrend 3,
    water-nsquared 28, water-spatial 23 — ours within +-2."""
    r = results[name]
    assert abs(r["knee"] - r["profile"].knee) <= 2


@pytest.mark.parametrize("name", sorted(SPLASH2_PROFILES))
def test_technique_ordering(results, name):
    r = results[name]
    la, at, sc = (
        r["la"].flush_ratio,
        r["at"].flush_ratio,
        r["sc"].flush_ratio,
    )
    assert la <= sc * 1.02          # LA is the floor
    assert sc <= at * 1.02          # SC never loses to AT on flushes


def test_volrend_sc_reaches_lazy_bound(results):
    """Table III: volrend's SC removes every removable flush."""
    r = results["volrend"]
    assert r["sc"].flush_ratio == pytest.approx(r["la"].flush_ratio, rel=0.02)


def test_no_one_size_fits_all(results):
    """§IV-G's point: selected sizes differ across programs."""
    sizes = {r["knee"] for r in results.values()}
    assert len(sizes) >= 5


def test_derived_parameters_sane():
    for profile in SPLASH2_PROFILES.values():
        assert profile.burst >= 1
        assert profile.passes >= 1
        assert profile.work_per_store >= 2
        cfg = profile.tile_config(BUDGET)
        assert cfg.tile_lines == profile.knee
