"""Unit behaviour of the six persistence techniques (§IV-A)."""

import pytest

from repro.cache.adaptive import AdaptiveConfig, AdaptiveController
from repro.cache.policies import (
    TECHNIQUES,
    AtlasTechnique,
    BestTechnique,
    EagerTechnique,
    LazyTechnique,
    SoftwareCacheTechnique,
    make_factory,
)
from repro.common.errors import ConfigurationError


class FakePort:
    """Records the flush calls a technique makes."""

    def __init__(self):
        self.async_calls = []     # (line, category)
        self.sync_calls = []      # (lines tuple, category)
        self.adaptation = 0
        self.sizes = []
        self.events = []          # (kind, a, b) structured trace events
        self.current_fase_id = 0
        self.thread_id = 0

    def flush_async(self, line, category="eviction", invalidate=True):
        self.async_calls.append((line, category))

    def flush_sync(self, lines, category="fase_end", invalidate=True):
        self.sync_calls.append((tuple(lines), category))

    def add_overhead(self, cycles, instructions=0):
        pass

    def add_adaptation_cost(self, cycles):
        self.adaptation += cycles

    def record_selected_size(self, size):
        self.sizes.append(size)

    def record_event(self, kind, a=0, b=0):
        self.events.append((kind, a, b))


def bind(technique):
    port = FakePort()
    technique.bind(port)
    return port


def test_eager_flushes_every_store():
    t = EagerTechnique()
    port = bind(t)
    for line in (1, 1, 2):
        t.on_store(line)
    assert port.async_calls == [(1, "eager"), (1, "eager"), (2, "eager")]
    t.on_fase_end()
    t.finish()
    assert port.sync_calls == []


def test_lazy_flushes_once_per_line_at_fase_end():
    t = LazyTechnique()
    port = bind(t)
    for line in (1, 2, 1, 3, 2):
        t.on_store(line)
    assert port.async_calls == []
    t.on_fase_end()
    assert port.sync_calls == [((1, 2, 3), "fase_end")]
    t.on_fase_end()                       # nothing pending: no drain
    assert len(port.sync_calls) == 1


def test_lazy_finish_flushes_leftovers():
    t = LazyTechnique()
    port = bind(t)
    t.on_store(9)
    t.finish()
    assert port.sync_calls == [((9,), "final")]


def test_atlas_conflict_and_drain():
    t = AtlasTechnique(table_size=4)
    port = bind(t)
    t.on_store(1)
    t.on_store(5)       # 5 % 4 == 1: conflict
    assert port.async_calls == [(1, "eviction")]
    t.on_fase_end()
    assert port.sync_calls == [((5,), "fase_end")]


def test_software_cache_eviction_and_drain():
    t = SoftwareCacheTechnique(initial_size=2)
    port = bind(t)
    t.on_store(1)
    t.on_store(2)
    t.on_store(1)       # combined
    t.on_store(3)       # evicts LRU (2)
    assert port.async_calls == [(2, "eviction")]
    t.on_fase_end()
    assert port.sync_calls == [((1, 3), "fase_end")]


def test_software_cache_adapts_and_resizes():
    cfg = AdaptiveConfig(burst_length=60)
    t = SoftwareCacheTechnique(initial_size=4, controller=AdaptiveController(config=cfg))
    port = bind(t)
    for _ in range(12):
        for line in range(6):
            t.on_store(line)
    assert port.sizes, "controller never decided"
    assert port.sizes[0] >= 6
    assert t.cache.capacity == port.sizes[0]
    assert port.adaptation > 0


def test_software_cache_shrink_resize_flushes_evicted():
    t = SoftwareCacheTechnique(initial_size=4)
    port = bind(t)
    for line in (1, 2, 3, 4):
        t.on_store(line)
    evicted = t.cache.resize(2)
    assert evicted == [1, 2]


def test_best_never_flushes():
    t = BestTechnique()
    port = bind(t)
    for line in range(10):
        t.on_store(line)
    t.on_fase_end()
    t.finish()
    assert port.async_calls == [] and port.sync_calls == []


def test_factory_known_names():
    for name in TECHNIQUES:
        kwargs = {"sc_fixed_size": 8} if name == "SC-offline" else {}
        technique = make_factory(name, **kwargs)(0)
        assert technique.name in (name, "SC")


def test_factory_per_thread_instances_are_independent():
    factory = make_factory("SC")
    a, b = factory(0), factory(1)
    assert a is not b
    assert a.cache is not b.cache
    assert a.controller is not b.controller


def test_factory_rejects_unknown_and_missing_args():
    with pytest.raises(ConfigurationError):
        make_factory("nope")
    with pytest.raises(ConfigurationError):
        make_factory("SC-offline")


def test_cost_ordering_matches_table4():
    """Instruction overhead ordering: BEST < ER < LA < AT < SC."""
    costs = [
        BestTechnique.cost_per_store,
        EagerTechnique.cost_per_store,
        LazyTechnique.cost_per_store,
        AtlasTechnique.cost_per_store,
        SoftwareCacheTechnique.cost_per_store,
    ]
    assert costs == sorted(costs)
    assert len(set(costs)) == len(costs)
