"""The live telemetry pipeline: streaming recorder, profile, alerts.

The two load-bearing contracts are proven against the offline layer:
the incremental JSONL spill must be byte-identical to a post-hoc
``TraceRecorder.write_jsonl`` of the same run, and
``StreamingProfile.finalize()`` must equal ``analyze()`` of the full
trace — for any window size (the hypothesis property at the bottom).
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.experiments.harness import HarnessConfig
from repro.nvram.machine import Machine
from repro.obs.analyze import analyze
from repro.obs.live import (
    AlertEngine,
    AlertRule,
    StreamingProfile,
    StreamingRecorder,
    default_rules,
    parse_rule,
    progress_arity,
    resolve_grid_progress,
    snapshot_from_result,
)
from repro.obs.trace import (
    EV_EVICT_FLUSH,
    EV_SIZE_SELECTED,
    EV_STALL,
    EVENT_KINDS,
    TraceRecorder,
)
from repro.workloads.registry import get_workload


def _traced_pair(window_cycles=5_000):
    """One real run recorded three ways at once via subscriber fan-out:
    a streaming recorder spilling to a buffer, a full TraceRecorder
    mirror, and a StreamingProfile."""
    buf = io.StringIO()
    mirror = TraceRecorder()
    prof = StreamingProfile(window_cycles)
    rec = StreamingRecorder(
        fileobj=buf,
        window_cycles=window_cycles,
        subscribers=(mirror, prof),
    )
    config = HarnessConfig(scale=0.02, seed=7).machine_config()
    Machine(config, recorder=rec).run(
        get_workload("queue", scale=0.02),
        make_factory("SC"),
        num_threads=2,
        seed=7,
    )
    rec.close()
    return rec, buf, mirror, prof


# ---------------------------------------------------------------------------
# StreamingRecorder
# ---------------------------------------------------------------------------


def test_spill_is_byte_identical_to_offline_export():
    rec, buf, mirror, _ = _traced_pair()
    assert len(mirror) == len(rec) > 0
    assert rec.windows_flushed > 0          # flushed incrementally, not once
    assert buf.getvalue() == mirror.to_jsonl()


def test_ring_is_bounded_and_counts_are_not():
    rec = StreamingRecorder(ring_capacity=4, window_cycles=10)
    for i in range(10):
        rec.record(EV_EVICT_FLUSH, 0, i, i, 1, 0)
    assert len(rec) == 10
    assert rec.dropped == 6
    assert [e.a for e in rec.tail()] == [6, 7, 8, 9]
    assert [e.a for e in rec.tail(2)] == [8, 9]
    assert rec.counts() == {EV_EVICT_FLUSH: 10}


def test_flush_happens_on_window_boundary_not_only_on_close():
    # spill_thread=False: the synchronous path makes the spill instant
    # observable (the async writer hands off at the same boundary but
    # lands the bytes a moment later).
    buf = io.StringIO()
    rec = StreamingRecorder(fileobj=buf, window_cycles=100, spill_thread=False)
    rec.record(EV_EVICT_FLUSH, 0, 10, 1, 1, 0)
    assert buf.getvalue().count("\n") == 1  # header only: window still open
    rec.record(EV_STALL, 0, 150, 5, 0)      # watermark crosses cycle 100
    assert rec.windows_flushed == 1
    assert buf.getvalue().count("\n") == 3  # header + both events spilled
    rec.close()


def test_quantum_tick_flushes_event_free_window():
    buf = io.StringIO()
    rec = StreamingRecorder(fileobj=buf, window_cycles=100, spill_thread=False)
    rec.record(EV_EVICT_FLUSH, 0, 10, 1, 1, 0)
    rec.on_quantum(0, 250)
    assert rec.windows_flushed == 2          # cycles 100 and 200 both passed
    assert buf.getvalue().count("\n") == 2
    rec.close()


def test_async_spill_is_byte_identical_under_backpressure():
    """With a one-chunk queue every boundary handoff blocks until the
    writer drains — the backpressure path — and the file must still come
    out byte-identical to the offline export."""
    buf = io.StringIO()
    mirror = TraceRecorder()
    rec = StreamingRecorder(
        fileobj=buf,
        window_cycles=2_000,
        subscribers=(mirror,),
        spill_queue_chunks=1,
    )
    config = HarnessConfig(scale=0.02, seed=7).machine_config()
    Machine(config, recorder=rec).run(
        get_workload("queue", scale=0.02),
        make_factory("SC"),
        num_threads=2,
        seed=7,
    )
    rec.close()
    assert rec.windows_flushed > 1
    assert buf.getvalue() == mirror.to_jsonl()


def test_flush_lands_all_events_mid_run():
    """flush() keeps its synchronous meaning with the writer thread: on
    return the file holds every event recorded so far, even mid-window."""
    buf = io.StringIO()
    rec = StreamingRecorder(fileobj=buf, window_cycles=1_000_000)
    for i in range(5):
        rec.record(EV_EVICT_FLUSH, 0, 10 + i, i, 1, 0)
    rec.flush()
    assert buf.getvalue().count("\n") == 6   # header + all five events
    rec.close()


class _FailingFile(io.StringIO):
    """Accepts the schema header, then fails every write."""

    def __init__(self):
        super().__init__()
        self._writes = 0

    def write(self, s):
        self._writes += 1
        if self._writes > 1:
            raise OSError("disk full")
        return super().write(s)


def test_spill_writer_error_surfaces_at_flush_then_close():
    rec = StreamingRecorder(fileobj=_FailingFile(), window_cycles=100)
    rec.record(EV_EVICT_FLUSH, 0, 10, 1, 1, 0)
    with pytest.raises(RuntimeError, match="spill writer failed"):
        rec.flush()
    # close() re-raises but still tears down: thread joined, recorder
    # closed, and a second close is a no-op.
    with pytest.raises(RuntimeError, match="spill writer failed"):
        rec.close()
    assert rec.closed
    rec.close()


def test_spill_writer_error_surfaces_at_close_without_flush():
    rec = StreamingRecorder(fileobj=_FailingFile(), window_cycles=100)
    rec.record(EV_EVICT_FLUSH, 0, 10, 1, 1, 0)
    # No boundary crossed: the failing write only happens during the
    # close-time flush, so close() is where the error must surface.
    with pytest.raises(RuntimeError, match="spill writer failed"):
        rec.close()
    assert rec.closed


def test_subscriber_fanout_and_tick_forwarding():
    seen = []
    prof = StreamingProfile(100)
    rec = StreamingRecorder(window_cycles=100)
    rec.subscribe(lambda *event: seen.append(event))
    rec.subscribe(prof)
    rec.record(EV_SIZE_SELECTED, 1, 20, 8)
    rec.on_quantum(1, 350)
    assert seen == [(EV_SIZE_SELECTED, 1, 20, 8, 0, 0)]
    assert prof.windows_closed == 3          # ticks forwarded to subscribers
    assert prof.fold.adapt.selections == 1


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        StreamingRecorder(window_cycles=0)
    with pytest.raises(ConfigurationError):
        StreamingRecorder(ring_capacity=0)
    with pytest.raises(ConfigurationError):
        StreamingRecorder("x.jsonl", fileobj=io.StringIO())


def test_owned_file_is_closed_and_complete(tmp_path):
    path = tmp_path / "spill.jsonl"
    with StreamingRecorder(str(path), window_cycles=1000) as rec:
        rec.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    mirror = TraceRecorder()
    mirror.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    assert path.read_text() == mirror.to_jsonl()
    assert rec.closed


# ---------------------------------------------------------------------------
# StreamingProfile
# ---------------------------------------------------------------------------


def test_window_snapshots_carry_deltas_and_cumulatives():
    snaps = []
    prof = StreamingProfile(100, on_window=snaps.append)
    prof.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    prof.record(EV_EVICT_FLUSH, 0, 20, 5, 1, 0)
    prof.record(EV_SIZE_SELECTED, 0, 120, 8)     # closes window 0
    prof.record(EV_EVICT_FLUSH, 1, 230, 9, 1, 1)  # closes window 1
    assert [s.index for s in snaps] == [0, 1]
    w0, w1 = snaps
    assert (w0.start_cycle, w0.end_cycle) == (0, 100)
    # The boundary-crossing event is attributed to the window open at
    # the moment it was recorded — i.e. the one it closes.
    assert (w0.events, w0.evict_flushes, w0.selections) == (3, 2, 1)
    assert (w1.events, w1.evict_flushes, w1.selections) == (1, 1, 0)
    assert w1.total_events == 4
    assert w0.to_dict()["index"] == 0
    assert list(prof.snapshots) == snaps


def test_quantum_ticks_close_event_free_windows():
    prof = StreamingProfile(5_000)
    prof.record(EV_EVICT_FLUSH, 0, 10, 1, 1, 0)
    prof.on_quantum(0, 25_000)
    assert prof.windows_closed == 5
    # The event-free windows are genuinely empty deltas.
    assert [s.events for s in prof.snapshots] == [1, 0, 0, 0, 0]


def test_streaming_profile_equals_offline_analysis_on_a_real_run():
    _, _, mirror, prof = _traced_pair()
    assert prof.windows_closed > 1           # the property is non-vacuous
    assert prof.finalize().to_dict() == analyze(mirror).to_dict()


def test_mid_stream_counters_are_readable():
    prof = StreamingProfile(100)
    prof.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    prof.record(EV_EVICT_FLUSH, 0, 150, 5, 1, 0)
    assert prof.fold.prov.evict_flushes >= 1  # first window already folded
    prof.finalize()
    assert prof.fold.prov.evict_flushes == 2


# A compact strategy over well-formed events covering every fold branch.
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(sorted(EVENT_KINDS)),
        st.integers(0, 3),                     # thread id
        st.integers(0, 400),                   # timestamp
        st.integers(-1, 20),                   # a
        st.integers(0, 3),                     # b
        st.integers(-1, 5),                    # c
    ),
    max_size=60,
)


@pytest.mark.parametrize("window_cycles", [1, 7, 64])
@settings(max_examples=50, deadline=None)
@given(events=_EVENTS)
def test_finalize_equals_analyze_for_any_window(window_cycles, events):
    rec = TraceRecorder()
    prof = StreamingProfile(window_cycles)
    for kind, tid, ts, a, b, c in events:
        rec.record(kind, tid, ts, a, b, c)
        prof.record(kind, tid, ts, a, b, c)
    assert prof.finalize().to_dict() == analyze(rec).to_dict()


# ---------------------------------------------------------------------------
# Alert rules
# ---------------------------------------------------------------------------


def test_parse_rule_grammar():
    r = parse_rule("spike: rate(evict_flushes) > 3 @error")
    assert (r.kind, r.metric, r.op, r.value, r.severity) == (
        "rate", "evict_flushes", ">", 3.0, "error",
    )
    r = parse_rule("slo: sustained(stall_share, 4) >= 0.5")
    assert (r.kind, r.window, r.severity) == ("sustained", 4, "warning")
    r = parse_rule("floor: events < -2 @info")
    assert (r.kind, r.value, r.severity) == ("threshold", -2.0, "info")
    assert "rate(evict_flushes) > 3" in parse_rule(
        "spike: rate(evict_flushes) > 3"
    ).condition()


@pytest.mark.parametrize(
    "text",
    ["no-colon > 3", "x: metric >> 3", "x: metric > 3 @loud", "x: f(m) > 1"],
)
def test_parse_rule_rejects_bad_grammar(text):
    with pytest.raises(ConfigurationError):
        parse_rule(text)


def test_rule_validation():
    with pytest.raises(ConfigurationError):
        AlertRule(name="x", metric="m", kind="median")
    with pytest.raises(ConfigurationError):
        AlertRule(name="x", metric="m", severity="fatal")
    with pytest.raises(ConfigurationError):
        AlertRule(name="x", metric="m", kind="sustained", window=0)


# ---------------------------------------------------------------------------
# AlertEngine
# ---------------------------------------------------------------------------


def _windows(engine, values, metric="evict_flushes"):
    fired = []
    for i, v in enumerate(values):
        fired.extend(engine.observe_window({"index": i, metric: v}))
    return fired


def test_threshold_alert_is_edge_triggered():
    engine = AlertEngine([parse_rule("hot: evict_flushes > 10")])
    fired = _windows(engine, [5, 20, 30, 5, 40])
    # Two rising edges (20 and 40); the sustained 30 does not re-fire.
    assert [a.window_index for a in fired] == [1, 4]
    assert [a.value for a in fired] == [20.0, 40.0]
    assert fired[0].message == "evict_flushes > 10 — observed 20 at window 1"


def test_rate_rule_needs_a_usable_previous_window():
    engine = AlertEngine([parse_rule("spike: rate(evict_flushes) > 3")])
    fired = _windows(engine, [0, 100, 100, 500])
    # Window 1 has prev=0 (skipped); 100->500 is the only 3x jump.
    assert [a.window_index for a in fired] == [3]
    assert fired[0].value == 5.0


def test_sustained_rule_requires_consecutive_breaches():
    engine = AlertEngine(
        [parse_rule("slo: sustained(stall_share, 3) > 0.5 @error")]
    )
    fired = _windows(engine, [0.9, 0.9, 0.2, 0.9, 0.9, 0.9], metric="stall_share")
    assert [a.window_index for a in fired] == [5]  # streak reset at window 2
    assert fired[0].severity == "error"


def test_rules_over_absent_metrics_are_skipped():
    engine = AlertEngine([parse_rule("hot: no_such_metric > 0")])
    assert _windows(engine, [1, 2, 3]) == []


def test_duplicate_rule_names_are_rejected():
    with pytest.raises(ConfigurationError):
        AlertEngine([parse_rule("x: a > 1"), parse_rule("x: b > 2")])


def test_alert_log_is_deterministic_jsonl(tmp_path):
    log = tmp_path / "alerts.jsonl"
    engine = AlertEngine(
        [parse_rule("hot: evict_flushes > 10 @error")], log_path=str(log)
    )
    _windows(engine, [5, 20, 5, 30])
    engine.close()
    assert log.read_text() == engine.to_jsonl()
    docs = [json.loads(line) for line in log.read_text().splitlines()]
    assert [d["kind"] for d in docs] == ["alert", "alert"]
    assert engine.max_severity() == "error"
    rewritten = tmp_path / "again.jsonl"
    engine.write_jsonl(str(rewritten))
    assert rewritten.read_text() == log.read_text()


def test_diagnosis_forwarding_and_severity_ranking():
    from repro.obs.analyze import Diagnosis

    engine = AlertEngine([parse_rule("hot: evict_flushes > 10 @info")])
    _windows(engine, [20])
    fired = engine.observe_diagnoses(
        [
            Diagnosis(
                code="knee_oscillation", severity="error",
                thread_id=1, message="oscillating",
            ),
            Diagnosis(
                code="clean_shutdown", severity="info",
                thread_id=0, message="not forwarded",
            ),
        ]
    )
    assert [a.rule for a in fired] == ["diagnosis:knee_oscillation"]
    assert engine.max_severity() == "error"
    assert [a.severity for a in engine.by_severity()] == ["error", "info"]


def test_default_rules_stay_silent_on_a_seed_run():
    _, _, _, prof = _traced_pair(window_cycles=50_000)
    engine = AlertEngine(default_rules())
    for snap in prof.snapshots:
        engine.observe_window(snap)
    final = prof.finalize()
    engine.observe_diagnoses(final.diagnoses)
    assert [a for a in engine.alerts if a.severity == "error"] == []


# ---------------------------------------------------------------------------
# rich progress plumbing
# ---------------------------------------------------------------------------


def test_progress_arity():
    assert progress_arity(lambda d, t: None) == 2
    assert progress_arity(lambda d, t, c: None) == 3
    assert progress_arity(lambda d, t, c, s: None) == 4
    assert progress_arity(lambda *a: None) == 99
    assert progress_arity(len) in (-1, 1)    # builtins may be opaque


def test_resolve_grid_progress_dispatches_by_arity():
    legacy, rich = [], []
    three = resolve_grid_progress(lambda d, t, c: legacy.append((d, t, c)))
    four = resolve_grid_progress(lambda d, t, c, s: rich.append(s))

    class _Result:
        threads = ()
        time = 0

    three(1, 2, ("w", "SC", 1), _Result())
    four(1, 2, ("w", "SC", 1), _Result())
    assert legacy == [(1, 2, ("w", "SC", 1))]
    assert rich[0]["cell"] == "w/SC/t1"
    assert resolve_grid_progress(None) is None


def test_snapshot_from_result_on_a_real_cell(tiny_harness):
    cell = ("queue", "SC", 2)
    result = tiny_harness.run(*cell)
    snap = snapshot_from_result(cell, result)
    assert snap["cell"] == "queue/SC/t2"
    assert snap["workload"] == "queue"
    assert snap["threads"] == 2
    assert snap["cycles"] > 0
    assert 0.0 <= snap["stall_share"] < 1.0
    assert snap["selections"] == sum(
        len(t.selected_sizes) for t in result.threads
    )


def test_run_grid_feeds_rich_progress(tiny_harness):
    cells = [("queue", "SC", 1), ("queue", "BEST", 1)]
    rich = []
    tiny_harness.run_grid(
        cells, progress=lambda d, t, c, s: rich.append((d, t, c, s["cell"]))
    )
    assert rich == [
        (1, 2, ("queue", "SC", 1), "queue/SC/t1"),
        (2, 2, ("queue", "BEST", 1), "queue/BEST/t1"),
    ]
    legacy = []
    tiny_harness.run_grid(cells, progress=lambda d, t, c: legacy.append(c))
    assert legacy == cells


def test_parallel_grid_feeds_rich_progress():
    from repro.experiments.harness import Harness, HarnessConfig

    harness = Harness(HarnessConfig(scale=0.02, seed=7))
    cells = [("queue", "SC", 1), ("queue", "BEST", 1)]
    rich = []
    harness.run_grid(
        cells, jobs=2, progress=lambda d, t, c, s: rich.append(s["cell"])
    )
    assert sorted(rich) == ["queue/BEST/t1", "queue/SC/t1"]


def test_campaign_feeds_rich_progress():
    from repro.faults.campaign import FaultCampaignSpec, run_campaign

    infos = []
    run_campaign(
        "linked-list",
        technique="SC",
        scale=0.02,
        spec=FaultCampaignSpec(max_sites=4),
        progress=lambda d, t, info: infos.append(info),
    )
    assert len(infos) >= 4                  # sites x crash models
    assert {"site", "model", "site_class", "violated"} <= set(infos[0])
    legacy = []
    run_campaign(
        "linked-list",
        technique="SC",
        scale=0.02,
        spec=FaultCampaignSpec(max_sites=4),
        progress=lambda d, t: legacy.append(d),
    )
    assert legacy == list(range(1, len(infos) + 1))
