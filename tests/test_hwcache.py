"""The set-associative write-back hardware cache with clflush/clwb."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.nvram.hwcache import HardwareCache


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        HardwareCache(0, 1)
    with pytest.raises(ConfigurationError):
        HardwareCache(10, 4)   # not a multiple of ways


def test_hit_after_fill():
    c = HardwareCache(64, 8)
    hit, evicted = c.access(5, is_write=False)
    assert not hit and evicted is None
    hit, _ = c.access(5, is_write=True)
    assert hit
    assert c.is_dirty(5)


def test_write_allocate_and_dirty_tracking():
    c = HardwareCache(64, 8)
    c.access(3, is_write=True)
    assert c.contains(3) and c.is_dirty(3)
    c.access(4, is_write=False)
    assert not c.is_dirty(4)


def test_lru_eviction_within_set():
    c = HardwareCache(2, 2)     # one set, two ways
    c.access(0, True)
    c.access(1, False)
    c.access(0, False)          # 0 becomes MRU
    hit, evicted = c.access(2, False)
    assert not hit
    assert evicted == (1, False)
    hit, evicted = c.access(3, True)
    assert evicted == (0, True)     # dirty eviction = write-back
    assert c.evict_writebacks == 1


def test_clflush_dirty_writes_back_and_invalidates():
    c = HardwareCache(64, 8)
    c.access(7, True)
    assert c.clflush(7) is True
    assert not c.contains(7)
    assert c.flush_writebacks == 1
    # The next access misses: the indirect flush cost of §II-A.
    hit, _ = c.access(7, False)
    assert not hit


def test_clflush_clean_or_absent():
    c = HardwareCache(64, 8)
    assert c.clflush(9) is False
    c.access(9, False)
    assert c.clflush(9) is False
    assert c.clean_flushes == 2


def test_clwb_keeps_line_valid():
    c = HardwareCache(64, 8)
    c.access(7, True)
    assert c.clwb(7) is True
    assert c.contains(7)
    assert not c.is_dirty(7)
    hit, _ = c.access(7, False)
    assert hit                          # no invalidation penalty
    assert c.clwb(7) is False           # now clean


def test_sets_are_independent():
    c = HardwareCache(16, 2)            # 8 sets
    c.access(0, True)
    c.access(8, True)                   # same set as 0
    c.access(1, True)                   # different set
    hit, evicted = c.access(16, True)   # set 0 full: evicts LRU (0)
    assert evicted == (0, True)
    assert c.contains(1)


def test_dirty_lines_enumeration():
    c = HardwareCache(64, 8)
    c.access(1, True)
    c.access(2, False)
    c.access(3, True)
    assert sorted(c.dirty_lines()) == [1, 3]


def test_value_tracking():
    c = HardwareCache(64, 8, track_values=True)
    c.access(1, True)
    c.store_value(1, 100, "v1")
    c.store_value(1, 108, "v2")
    values = c.take_values(1)
    assert values == {100: "v1", 108: "v2"}
    assert c.take_values(1) == {}


def test_counters_and_miss_ratio():
    c = HardwareCache(64, 8)
    c.access(1, False)      # load miss
    c.access(1, False)      # load hit
    c.access(2, True)       # store miss
    assert c.loads == 2 and c.stores == 1
    assert c.load_misses == 1 and c.store_misses == 1
    assert c.miss_ratio == pytest.approx(2 / 3)
    assert HardwareCache(8, 8).miss_ratio == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=200))
def test_capacity_invariant(ops):
    c = HardwareCache(16, 4)
    for line, is_write in ops:
        c.access(line, is_write)
        total = sum(len(s) for s in c.sets)
        assert total <= 16
        assert all(len(s) <= 4 for s in c.sets)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
def test_inclusion_no_phantom_lines(lines):
    """Whatever is cached was accessed and not since flushed."""
    c = HardwareCache(8, 2)
    seen = set()
    for line in lines:
        c.access(line, True)
        seen.add(line)
    for s in c.sets:
        for line in s:
            assert line in seen
