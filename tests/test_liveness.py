"""All-window average liveness (the ISMM'14 connection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.locality.liveness import average_liveness, liveness_counts
from repro.locality.reference import liveness_brute


def test_single_object_whole_trace():
    # One object live the whole time: every window sees it.
    lv = average_liveness(np.asarray([1]), np.asarray([10]), 10)
    np.testing.assert_allclose(lv[1:], np.ones(10))


def test_point_lifetime():
    # An object allocated and freed at time 3 of a 5-long trace.
    lv = average_liveness(np.asarray([3]), np.asarray([3]), 5)
    for k in range(1, 6):
        assert lv[k] == pytest.approx(liveness_brute([3], [3], 5, k))


def test_disjoint_lifetimes_sum():
    starts = np.asarray([1, 6])
    ends = np.asarray([5, 10])
    lv = average_liveness(starts, ends, 10)
    # Any window intersects at least one of the two covering lifetimes.
    assert np.all(lv[1:] >= 1.0 - 1e-9)
    # The full window sees both.
    assert lv[10] == pytest.approx(2.0)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_matches_brute_force(data):
    n = data.draw(st.integers(min_value=1, max_value=25))
    count = data.draw(st.integers(min_value=0, max_value=8))
    starts, ends = [], []
    for _ in range(count):
        s = data.draw(st.integers(min_value=1, max_value=n))
        e = data.draw(st.integers(min_value=s, max_value=n))
        starts.append(s)
        ends.append(e)
    lv = average_liveness(np.asarray(starts, dtype=int), np.asarray(ends, dtype=int), n)
    for k in range(1, n + 1):
        assert lv[k] == pytest.approx(liveness_brute(starts, ends, n, k))


def test_validation():
    with pytest.raises(ConfigurationError):
        liveness_counts(np.asarray([0]), np.asarray([2]), 5)
    with pytest.raises(ConfigurationError):
        liveness_counts(np.asarray([3]), np.asarray([2]), 5)
    with pytest.raises(ConfigurationError):
        liveness_counts(np.asarray([1, 2]), np.asarray([3]), 5)


def test_liveness_monotone_in_k():
    rng = np.random.default_rng(0)
    starts = rng.integers(1, 20, size=10)
    ends = np.minimum(starts + rng.integers(0, 10, size=10), 20)
    lv = average_liveness(starts, ends, 20)
    assert np.all(np.diff(lv[1:]) >= -1e-9)
