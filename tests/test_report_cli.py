"""The EXPERIMENTS.md generator and the command-line entry point."""


import json

import pytest

from repro.experiments.report import GENERATORS, generate
from repro.experiments.__main__ import main


def test_generators_cover_every_artifact():
    assert set(GENERATORS) == {
        "table1", "table2", "table3", "table4", "adaptation", "policyzoo",
        "figure2", "figure4", "figure5", "figure6", "figure7", "figure8",
    }


def test_generate_subset(tiny_harness, tmp_path):
    path = tmp_path / "EXP.md"
    body = generate(tiny_harness, artifacts=["figure2"], write_path=str(path))
    assert "Figure 2" in body
    assert "scale = 0.02" in body
    assert path.read_text() == body


def test_cli_single_artifact(capsys):
    rc = main(["figure2", "--scale", "0.02", "--seed", "7"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "selected size" in out


def test_cli_rejects_unknown_artifact(capsys):
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_all_writes_report(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main(["all", "--scale", "0.02", "--seed", "7", "--write", "OUT.md"])
    assert rc == 0
    text = (tmp_path / "OUT.md").read_text()
    for title in ("Table I", "Table III", "Figure 7"):
        assert title in text


def _traced_cell(tmp_path, name, technique="SC"):
    """One traced CLI run; returns the jsonl trace path."""
    path = tmp_path / f"{name}.jsonl"
    rc = main(
        [
            "run", "--workload", "queue", "--technique", technique,
            "--threads", "2", "--scale", "0.02", "--seed", "7",
            "--trace", str(path),
        ]
    )
    assert rc == 0
    return path


def test_cli_profile_artifact(tmp_path, capsys):
    trace = _traced_cell(tmp_path, "a")
    json_out = tmp_path / "profile.json"
    html_out = tmp_path / "profile.html"
    rc = main(
        ["profile", "--trace", str(trace),
         "--json", str(json_out), "--html", str(html_out)]
    )
    assert rc == 0                      # seed run: no error diagnoses
    out = capsys.readouterr().out
    assert "Flush provenance" in out
    doc = json.loads(json_out.read_text())
    assert doc["schema"] == 3
    assert html_out.read_text().startswith("<!DOCTYPE html>")


def test_cli_profile_is_byte_deterministic(tmp_path, capsys):
    trace = _traced_cell(tmp_path, "a")
    outs = []
    for name in ("p1", "p2"):
        json_out = tmp_path / f"{name}.json"
        html_out = tmp_path / f"{name}.html"
        assert main(
            ["profile", "--trace", str(trace),
             "--json", str(json_out), "--html", str(html_out)]
        ) == 0
        outs.append((json_out.read_bytes(), html_out.read_bytes()))
    assert outs[0] == outs[1]


def test_cli_profile_requires_exactly_one_trace(tmp_path, capsys):
    assert main(["profile"]) == 2
    trace = _traced_cell(tmp_path, "a")
    assert main(["profile", "--trace", str(trace), "--trace", str(trace)]) == 2


def test_cli_tracediff_artifact(tmp_path, capsys):
    a = _traced_cell(tmp_path, "a")
    b = _traced_cell(tmp_path, "b")          # identical configuration
    c = _traced_cell(tmp_path, "c", technique="LA")
    assert main(["tracediff", "--trace", str(a), "--trace", str(b)]) == 0
    rc = main(
        ["tracediff", "--trace", str(a), "--trace", str(c),
         "--json", str(tmp_path / "d.json")]
    )
    assert rc == 1
    assert json.loads((tmp_path / "d.json").read_text())["verdict"] == "different"
    assert main(["tracediff", "--trace", str(a)]) == 2


def test_cli_crashmatrix_observability(tmp_path, capsys):
    trace = tmp_path / "cm.jsonl"
    metrics = tmp_path / "cm.metrics.json"
    rc = main(
        [
            "crashmatrix", "--workloads", "linked-list", "--scale", "0.02",
            "--max-sites", "4", "--trace", str(trace), "--metrics", str(metrics),
        ]
    )
    assert rc == 0
    # The golden run plus every crash replay recorded into one trace.
    text = trace.read_text()
    assert '"kind":"trace_meta"' in text.splitlines()[0].replace(" ", "")
    doc = json.loads(metrics.read_text())
    assert doc["counters"]                  # final totals were dumped
    assert any(name.startswith("flush_queue_depth/") for name in doc["series"])
