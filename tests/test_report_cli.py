"""The EXPERIMENTS.md generator and the command-line entry point."""


import pytest

from repro.experiments.report import GENERATORS, generate
from repro.experiments.__main__ import main


def test_generators_cover_every_artifact():
    assert set(GENERATORS) == {
        "table1", "table2", "table3", "table4", "adaptation",
        "figure2", "figure4", "figure5", "figure6", "figure7", "figure8",
    }


def test_generate_subset(tiny_harness, tmp_path):
    path = tmp_path / "EXP.md"
    body = generate(tiny_harness, artifacts=["figure2"], write_path=str(path))
    assert "Figure 2" in body
    assert "scale = 0.02" in body
    assert path.read_text() == body


def test_cli_single_artifact(capsys):
    rc = main(["figure2", "--scale", "0.02", "--seed", "7"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "selected size" in out


def test_cli_rejects_unknown_artifact(capsys):
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_all_writes_report(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main(["all", "--scale", "0.02", "--seed", "7", "--write", "OUT.md"])
    assert rc == 0
    text = (tmp_path / "OUT.md").read_text()
    for title in ("Table I", "Table III", "Figure 7"):
        assert title in text
