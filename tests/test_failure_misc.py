"""Small remaining surfaces: crash plans, recovery errors, misc reprs."""

import pytest

from repro.atlas.log import KIND_COMMIT, KIND_UNDO, LogRecord
from repro.atlas.recovery import RecoveryReport, recover
from repro.common.errors import ConfigurationError
from repro.nvram.failure import CrashedState, CrashPlan


def test_crash_plan_validation():
    CrashPlan(after_stores=0)
    with pytest.raises(ConfigurationError):
        CrashPlan(after_stores=-1)


def test_crashed_state_read():
    state = CrashedState(nvram={100: "x"}, lost_lines=[5], at_store=7)
    assert state.read(100) == "x"
    assert state.read(200, "dflt") == "dflt"


class FakeRegion:
    def __init__(self, base, size):
        self.base = base
        self.size = size


class FakeLayout:
    def __init__(self, regions):
        self.log_regions = regions


def slotted(records, base):
    """Lay records out as the undo log would (first line reserved)."""
    nvram = {}
    addr = base + 64
    for rec in records:
        nvram[addr] = rec.as_payload()
        addr += 32
    return nvram


def test_recover_detects_contradictory_log():
    base = 0x1000_0000
    # A FASE both committed and carrying an undone record *after* its
    # commit cannot happen under the write ordering; recovery flags it.
    records = [
        LogRecord(KIND_UNDO, 1, 100, "old"),
        LogRecord(KIND_COMMIT, 1),
    ]
    nvram = slotted(records, base)
    state = CrashedState(nvram=nvram, lost_lines=[], at_store=0)
    # Committed FASE: nothing rolled back, no error.
    report = recover(state, FakeLayout([FakeRegion(base, 1 << 16)]))
    assert report.committed_fases == {1}
    assert report.undone_stores == 0


def test_recover_rolls_back_newest_first():
    base = 0x1000_0000
    records = [
        LogRecord(KIND_UNDO, 2, 100, "first-old"),
        LogRecord(KIND_UNDO, 2, 100, "should-not-be-used"),  # same addr later
    ]
    nvram = slotted(records, base)
    nvram[100] = "leaked"
    state = CrashedState(nvram=nvram, lost_lines=[], at_store=0)
    report = recover(state, FakeLayout([FakeRegion(base, 1 << 16)]))
    # Newest-first undo ends at the OLDEST durable value.
    assert report.read(100) == "first-old"
    assert report.rolled_back_fases == {2}
    assert report.undone_stores == 2


def test_recover_none_old_value_removes_location():
    base = 0x1000_0000
    nvram = slotted([LogRecord(KIND_UNDO, 3, 500, None)], base)
    nvram[500] = "leaked"
    state = CrashedState(nvram=nvram, lost_lines=[], at_store=0)
    report = recover(state, FakeLayout([FakeRegion(base, 1 << 16)]))
    assert report.read(500) is None


def test_recovery_report_defaults():
    report = RecoveryReport()
    assert report.read(1, "d") == "d"
    assert report.log_records == 0
