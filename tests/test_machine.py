"""The simulated machine: event execution, sessions, crash, scheduling."""

import pytest

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import FaseBegin, FaseEnd, Load, Store, Work
from repro.nvram.failure import CrashPlan
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import Workload


class ListWorkload(Workload):
    """Replays fixed per-thread event lists."""

    name = "list"

    def __init__(self, *streams):
        self._streams = [list(s) for s in streams]

    def streams(self, num_threads, seed):
        return [iter(s) for s in self._streams]


def run(machine, *streams, technique="LA", threads=None, **kwargs):
    w = ListWorkload(*streams)
    return machine.run(
        w, make_factory(technique), num_threads=threads or len(streams), seed=0, **kwargs
    )


PA = NVRAM_BASE  # persistent base address


def test_persistent_store_counted_and_flushed(machine):
    res = run(machine, [FaseBegin(), Store(PA, 8), FaseEnd()])
    assert res.persistent_stores == 1
    assert res.flushes == 1            # LA drains the single line
    assert res.flush_ratio == 1.0


def test_volatile_store_not_persistent(machine):
    res = run(machine, [Store(64, 8)])
    assert res.persistent_stores == 0
    assert res.flushes == 0


def test_store_spanning_two_lines(machine):
    res = run(machine, [FaseBegin(), Store(PA + 60, 8), FaseEnd()])
    assert res.persistent_stores == 1
    assert res.flushes == 2            # two lines drained


def test_work_advances_clock_and_instructions(machine):
    res = run(machine, [Work(500)])
    assert res.instructions == 500
    assert res.time >= 500


def test_load_touches_cache(machine):
    res = run(machine, [Load(PA, 8), Load(PA, 8)])
    assert res.threads[0].persistent_loads == 2
    assert res.l1_accesses == 2
    assert res.l1_misses == 1


def test_unmatched_fase_end_raises(machine):
    with pytest.raises(SimulationError):
        run(machine, [FaseEnd()])


def test_stream_ending_inside_fase_raises(machine):
    with pytest.raises(SimulationError):
        run(machine, [FaseBegin(), Store(PA, 8)])


def test_nested_fases_drain_only_at_outermost(machine):
    events = [
        FaseBegin(),
        Store(PA, 8),
        FaseBegin(),
        Store(PA + 64, 8),
        FaseEnd(),                     # inner end: no drain
        Store(PA + 128, 8),
        FaseEnd(),                     # outer end: drain all three lines
    ]
    res = run(machine, events)
    assert res.fase_count == 1
    assert res.flushes == 3
    assert res.threads[0].fase_end_flushes == 3


def test_two_threads_interleave_and_aggregate(machine):
    a = [FaseBegin(), Store(PA, 8), FaseEnd(), Work(10)]
    b = [FaseBegin(), Store(PA + 4096, 8), FaseEnd(), Work(10_000)]
    res = run(machine, a, b)
    assert res.num_threads == 2
    assert res.persistent_stores == 2
    assert res.fase_count == 2
    # Wall time is the slower thread's clock.
    assert res.time == max(t.cycles for t in res.threads)
    assert res.time >= 10_000


def test_wrong_stream_count_rejected(machine):
    w = ListWorkload([Work(1)])
    with pytest.raises(SimulationError):
        machine.run(w, make_factory("LA"), num_threads=2, seed=0)


def test_thread_count_validation(machine):
    w = ListWorkload([Work(1)])
    with pytest.raises(ConfigurationError):
        machine.run(w, make_factory("LA"), num_threads=0, seed=0)


def test_trace_recording(machine):
    events = [
        FaseBegin(), Store(PA, 8), Store(PA + 64, 8), FaseEnd(),
        Store(PA + 128, 8),
    ]
    res = run(machine, events, technique="BEST", record_traces=True)
    trace = res.traces[0]
    assert trace.n == 3
    assert list(trace.fase_ids)[:2] == [0, 0]
    assert list(trace.fase_ids)[2] == -1   # outside any FASE


def test_crash_plan_stops_execution():
    machine = Machine(MachineConfig(track_values=True))
    events = [FaseBegin()] + [Store(PA + i * 64, 8, value=i) for i in range(10)]
    events += [FaseEnd()]
    res = run(machine, events, technique="ER", crash_plan=CrashPlan(after_stores=4))
    assert res.crashed
    assert machine.crashed_state is not None
    assert machine.crashed_state.at_store == 4
    assert res.persistent_stores == 4


def test_crash_preserves_only_written_back_values():
    machine = Machine(MachineConfig(track_values=True))
    # BEST never flushes: nothing reaches NVRAM before the crash.
    events = [Store(PA + i * 64, 8, value=i) for i in range(5)]
    run(machine, events, technique="BEST", crash_plan=CrashPlan(after_stores=5))
    state = machine.crashed_state
    assert state.nvram == {}
    assert len(state.lost_lines) == 5


def test_eager_survives_crash():
    machine = Machine(MachineConfig(track_values=True))
    events = [Store(PA + i * 64, 8, value=i) for i in range(5)]
    run(machine, events, technique="ER", crash_plan=CrashPlan(after_stores=5))
    state = machine.crashed_state
    assert state.read(PA + 0) == 0
    assert state.read(PA + 4 * 64) == 4


# ---------------------------------------------------------------------------
# Sessions (the imperative driver)
# ---------------------------------------------------------------------------


def test_session_basic_flow(value_machine):
    tech = make_factory("LA")(0)
    s = value_machine.session(tech)
    s.fase_begin()
    s.store(PA, 8, value="x")
    s.fase_end()
    assert s.stats.persistent_stores == 1
    assert s.stats.flushes == 1
    s.finish()
    assert value_machine.memory.read(PA) == "x"


def test_session_load_reads_through_cache(value_machine):
    tech = make_factory("BEST")(0)
    s = value_machine.session(tech)
    s.store(PA, 8, value=41)
    # Dirty in cache, not in NVRAM - but loads must see it.
    assert s.load(PA) == 41
    assert value_machine.memory.read(PA) is None


def test_session_store_unmanaged_bypasses_technique(value_machine):
    tech = make_factory("LA")(0)
    s = value_machine.session(tech)
    s.fase_begin()
    s.store_unmanaged(PA, 8, value="meta")
    s.fase_end()
    # Not routed to LA: nothing to drain, no flush counted.
    assert s.stats.flushes == 0
    assert s.stats.persistent_stores == 0
    assert value_machine.read_current(PA) == "meta"


def test_session_finish_inside_fase_raises(value_machine):
    s = value_machine.session(make_factory("LA")(0))
    s.fase_begin()
    with pytest.raises(SimulationError):
        s.finish()


def test_session_trace_recording(value_machine):
    s = value_machine.session(make_factory("BEST")(0), record_trace=True)
    s.fase_begin()
    s.store(PA, 8)
    s.fase_end()
    s.finish()
    assert s.trace().n == 1


def test_read_current_prefers_pending_value(value_machine):
    s = value_machine.session(make_factory("ER")(0))
    s.store(PA, 8, value="first")    # ER flushes: durable immediately
    assert value_machine.read_current(PA) == "first"
