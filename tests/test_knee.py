"""Knee detection and cache-size selection (§III-C)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.locality.knee import (
    DEFAULT_POLICY,
    Knee,
    SelectionPolicy,
    find_knees,
    select_cache_size,
)
from repro.locality.mrc import MissRatioCurve, mrc_from_trace
from repro.locality.trace import WriteTrace


def step_mrc(steps):
    """Build an MRC from (size, miss_ratio) steps."""
    sizes = np.asarray([float(s) for s, _ in steps])
    ratios = np.asarray([float(r) for _, r in steps])
    return MissRatioCurve(sizes, ratios)


def test_single_sharp_knee_selected():
    mrc = step_mrc([(0, 1.0), (9, 1.0), (10, 0.05), (50, 0.05)])
    assert select_cache_size(mrc) == 10


def test_largest_of_top_knees_wins():
    # Two real knees at 5 and 20: the paper picks the larger.
    mrc = step_mrc([(0, 1.0), (5, 0.5), (20, 0.1)])
    assert select_cache_size(mrc) == 20


def test_knee_beyond_max_size_is_not_seen():
    mrc = step_mrc([(0, 1.0), (80, 0.1)])
    policy = SelectionPolicy(max_size=50)
    # No drop within 1..50: knee-less -> the maximum size.
    assert select_cache_size(mrc, policy) == 50


def test_all_miss_mrc_yields_max_size():
    # No drop anywhere (no combinable reuse at all): knee-less -> max.
    mrc = step_mrc([(0, 1.0)])
    assert select_cache_size(mrc) == DEFAULT_POLICY.max_size


def test_flat_after_size_one_selects_one():
    # Size 1 already achieves everything (the queue/linked-list rows:
    # "SC can choose the smallest cache size among all sizes that have
    # the lowest possible").
    mrc = step_mrc([(0, 1.0), (1, 0.4)])
    assert select_cache_size(mrc) == 1


def test_noise_below_fraction_threshold_ignored():
    # A large knee at 4 plus a tiny late wiggle at 40: the wiggle must
    # not win the largest-size tie-break.
    mrc = step_mrc([(0, 1.0), (4, 0.2), (39, 0.2), (40, 0.1999)])
    assert select_cache_size(mrc) == 4


def test_significant_late_knee_wins():
    mrc = step_mrc([(0, 1.0), (4, 0.5), (40, 0.1)])
    assert select_cache_size(mrc) == 40


def test_find_knees_ordering_and_contents():
    mrc = step_mrc([(0, 1.0), (3, 0.6), (10, 0.2)])
    knees = find_knees(mrc)
    assert [k.drop for k in knees] == sorted((k.drop for k in knees), reverse=True)
    assert {k.size for k in knees} == {3, 10}
    for k in knees:
        assert isinstance(k, Knee)
        assert 0 <= k.miss_ratio <= 1


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        SelectionPolicy(default_size=0)
    with pytest.raises(ConfigurationError):
        SelectionPolicy(default_size=10, max_size=5)
    with pytest.raises(ConfigurationError):
        SelectionPolicy(top_candidates=0)
    with pytest.raises(ConfigurationError):
        SelectionPolicy(min_drop=-0.1)
    with pytest.raises(ConfigurationError):
        SelectionPolicy(min_drop_fraction=1.5)


def test_paper_default_policy_values():
    """§III-C: default size 8, maximum size 50."""
    assert DEFAULT_POLICY.default_size == 8
    assert DEFAULT_POLICY.max_size == 50


def test_selection_on_real_cyclic_trace():
    # A loop over 12 lines: the only post-burst knee is at 12.
    lines = list(range(12)) * 40
    mrc = mrc_from_trace(WriteTrace(lines), honor_fases=False)
    assert select_cache_size(mrc) in (12, 13)


def test_selection_respects_max_size_bound():
    lines = list(range(70)) * 20
    mrc = mrc_from_trace(WriteTrace(lines), honor_fases=False)
    assert select_cache_size(mrc) <= DEFAULT_POLICY.max_size
