"""SHARDS sampled MRC vs the exact stack-distance curve."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.locality.shards import shards_filter, shards_mrc
from repro.locality.stack_distance import exact_mrc
from repro.locality.trace import WriteTrace


def loop_trace(lines_count=40, reps=60, seed=0):
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(reps):
        lines.extend(range(lines_count))
        lines.extend(rng.integers(1000, 1400, size=6).tolist())
    return WriteTrace(lines)


def test_rate_one_is_exact():
    t = loop_trace()
    full = exact_mrc(t, honor_fases=False)
    sampled = shards_mrc(t, rate=1.0, honor_fases=False)
    for c in (1, 10, 40, 41, 60):
        assert sampled.miss_ratio(c) == pytest.approx(full.miss_ratio(c), abs=1e-9)


def test_spatial_hashing_keeps_whole_lines():
    t = loop_trace()
    sample = shards_filter(t, 0.3)
    kept = set(sample.lines.tolist())
    # Every kept line keeps *all* its accesses.
    for line in kept:
        assert np.sum(sample.lines == line) == np.sum(t.lines == line)


def test_sampled_curve_approximates_exact():
    t = loop_trace(lines_count=60, reps=80)
    full = exact_mrc(t, honor_fases=False)
    approx = shards_mrc(t, rate=0.25, honor_fases=False)
    # Away from the knee the curves agree pointwise...
    for c in (5, 30, 150):
        assert approx.miss_ratio(c) == pytest.approx(
            full.miss_ratio(c), abs=0.12
        )
    # ... and the knee (the 0.5-crossing) lands within sampling noise
    # of the true position (a 60-line loop: crossing near 61-67).
    def crossing(mrc):
        for c in range(1, 200):
            if mrc.miss_ratio(c) < 0.5:
                return c
        return 200

    assert crossing(approx) == pytest.approx(crossing(full), rel=0.35)


def test_sampled_knee_position_preserved():
    """What matters for the paper's use: the knee survives sampling."""
    from repro.locality.knee import SelectionPolicy, select_cache_size

    t = loop_trace(lines_count=24, reps=100)
    policy = SelectionPolicy(max_size=50)
    full_sel = select_cache_size(exact_mrc(t, honor_fases=False), policy)
    samp_sel = select_cache_size(shards_mrc(t, 0.5, honor_fases=False), policy)
    assert abs(full_sel - samp_sel) <= 4


def test_validation():
    t = loop_trace()
    with pytest.raises(ConfigurationError):
        shards_filter(t, 0.0)
    with pytest.raises(ConfigurationError):
        shards_filter(t, 1.5)
    with pytest.raises(ConfigurationError):
        shards_mrc(WriteTrace([1, 2, 3]), rate=1e-7)


def test_sampling_shrinks_work():
    t = loop_trace()
    sample = shards_filter(t, 0.2)
    assert 0 < sample.n < t.n * 0.6
