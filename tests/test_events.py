"""The event model and stream validation."""

import pytest

from repro.common.errors import SimulationError
from repro.common.events import (
    EventKind,
    FaseBegin,
    FaseEnd,
    Load,
    Store,
    Work,
    validate_stream,
)


def test_kind_tags_distinct():
    kinds = {
        Store(0).kind,
        Load(0).kind,
        Work(1).kind,
        FaseBegin().kind,
        FaseEnd().kind,
    }
    assert kinds == {
        EventKind.STORE,
        EventKind.LOAD,
        EventKind.WORK,
        EventKind.FASE_BEGIN,
        EventKind.FASE_END,
    }


def test_store_defaults():
    s = Store(0x100)
    assert s.size == 8 and s.value is None


def test_reprs_are_informative():
    assert "0x100" in repr(Store(0x100))
    assert "0x200" in repr(Load(0x200))
    assert "Work(5)" == repr(Work(5))


def test_validate_stream_passthrough():
    events = [FaseBegin(), Store(1), FaseEnd(), Work(2)]
    assert list(validate_stream(iter(events))) == events


def test_validate_stream_unmatched_end():
    with pytest.raises(SimulationError):
        list(validate_stream(iter([FaseEnd()])))


def test_validate_stream_unclosed_fase():
    with pytest.raises(SimulationError):
        list(validate_stream(iter([FaseBegin(), Store(1)])))


def test_validate_stream_nesting_ok():
    events = [FaseBegin(), FaseBegin(), FaseEnd(), FaseEnd()]
    assert len(list(validate_stream(iter(events)))) == 4
