"""Reuse -> miss-ratio-curve conversion (Eq. 3 / Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.locality.mrc import MissRatioCurve, mrc_from_reuse, mrc_from_trace
from repro.locality.reference import lru_mrc
from repro.locality.trace import WriteTrace

traces = st.lists(st.integers(min_value=0, max_value=6), min_size=4, max_size=60)


def test_paper_abab_conversion():
    """§III-B's table: cache of size 2 has hit ratio 1 on "abab…"."""
    mrc = mrc_from_trace(WriteTrace.from_string("ab" * 40), honor_fases=False)
    assert mrc.miss_ratio(1) == pytest.approx(1.0)
    assert mrc.miss_ratio(2) == pytest.approx(0.0, abs=1e-9)
    assert mrc.hit_ratio(2) == pytest.approx(1.0)


def test_fase_semantics_all_miss():
    mrc = mrc_from_trace(WriteTrace.from_string("ab|ab|ab|ab"))
    for c in (1, 2, 8, 32):
        assert mrc.miss_ratio(c) == pytest.approx(1.0)


def test_monotone_by_default():
    """The inclusion property: larger LRU caches never miss more."""
    t = WriteTrace(np.random.default_rng(0).integers(0, 12, size=300))
    mrc = mrc_from_trace(t, honor_fases=False)
    table = mrc.table(40)
    assert np.all(np.diff(table) <= 1e-12)


def test_raw_mode_skips_monotone_clamp():
    t = WriteTrace(np.random.default_rng(1).integers(0, 6, size=80))
    from repro.locality.reuse import reuse_curve_from_trace

    reuse = reuse_curve_from_trace(t, honor_fases=False)
    raw = mrc_from_reuse(reuse, monotone=False)
    clamped = mrc_from_reuse(reuse, monotone=True)
    assert np.all(
        clamped.miss_ratios_at(np.arange(1, 40.0))
        <= raw.miss_ratios_at(np.arange(1, 40.0)) + 1e-12
    )


def test_miss_ratio_below_first_sample_is_one():
    mrc = MissRatioCurve(np.asarray([2.0, 5.0]), np.asarray([0.4, 0.1]))
    assert mrc.miss_ratio(0.0) == 1.0
    assert mrc.miss_ratio(1.9) == 1.0
    assert mrc.miss_ratio(2.0) == pytest.approx(0.4)
    assert mrc.miss_ratio(7.0) == pytest.approx(0.1)


def test_negative_size_rejected():
    mrc = MissRatioCurve(np.asarray([0.0]), np.asarray([1.0]))
    with pytest.raises(ConfigurationError):
        mrc.miss_ratio(-1)


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        MissRatioCurve(np.asarray([1.0, 0.5]), np.asarray([0.5, 0.2]))
    with pytest.raises(ConfigurationError):
        MissRatioCurve(np.asarray([]), np.asarray([]))
    with pytest.raises(ConfigurationError):
        MissRatioCurve(np.asarray([1.0]), np.asarray([0.5, 0.2]))
    with pytest.raises(ConfigurationError):
        mrc_from_reuse(np.asarray([0.0]))


@settings(max_examples=40, deadline=None)
@given(traces)
def test_miss_ratios_in_unit_interval(lines):
    mrc = mrc_from_trace(WriteTrace(lines), honor_fases=False)
    table = mrc.table(30)
    assert np.all(table >= 0.0)
    assert np.all(table <= 1.0)


@settings(max_examples=25, deadline=None)
@given(traces)
def test_theory_tracks_actual_lru_for_big_caches(lines):
    """At cache size >= m the exact simulation sees only the m
    compulsory misses; the theory predicts the steady-state (windowed)
    miss ratio, which excludes them — so the two must agree within the
    compulsory fraction m/n."""
    t = WriteTrace(lines)
    mrc = mrc_from_trace(t, honor_fases=False)
    actual = lru_mrc(t, [t.m + 1], honor_fases=False)
    assert mrc.miss_ratio(t.m + 1) == pytest.approx(
        actual[0], abs=t.m / t.n + 0.1
    )


def test_theory_close_to_actual_on_cyclic_pattern():
    """Steady cyclic patterns satisfy the reuse-window hypothesis, so
    the predicted MRC should match exact LRU simulation closely."""
    lines = list(range(10)) * 50
    t = WriteTrace(lines)
    mrc = mrc_from_trace(t, honor_fases=False)
    sizes = [1, 5, 9, 10, 12]
    actual = lru_mrc(t, sizes, honor_fases=False)
    predicted = [mrc.miss_ratio(s) for s in sizes]
    np.testing.assert_allclose(predicted, actual, atol=0.06)


def test_table_requires_positive_size():
    mrc = MissRatioCurve(np.asarray([0.0]), np.asarray([1.0]))
    with pytest.raises(ConfigurationError):
        mrc.table(0)
