"""Metric helpers and text rendering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.metrics import (
    arithmetic_mean,
    ascii_series,
    format_table,
    geometric_mean,
    speedup,
)
from repro.nvram.stats import RunResult, ThreadStats


def result_with_time(cycles):
    return RunResult("w", "T", 1, [ThreadStats(cycles=cycles)], 0, 0)


def test_speedup():
    assert speedup(result_with_time(100), result_with_time(25)) == 4.0
    with pytest.raises(ConfigurationError):
        speedup(result_with_time(100), result_with_time(0))


def test_means():
    assert arithmetic_mean([1, 2, 3]) == 2.0
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    with pytest.raises(ConfigurationError):
        arithmetic_mean([])
    with pytest.raises(ConfigurationError):
        geometric_mean([1, 0])


def test_geometric_mean_rejects_empty_and_negative():
    with pytest.raises(ConfigurationError):
        geometric_mean([])
    with pytest.raises(ConfigurationError):
        geometric_mean([-1.0, 2.0])
    # Generators are consumed exactly once, not re-iterated.
    assert geometric_mean(x for x in (2.0, 8.0)) == pytest.approx(4.0)


def test_format_table_alignment():
    text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    # All rows align to the same width grid.
    assert lines[2].index("1") == lines[3].index("2")


def test_format_table_widths_follow_the_longest_cell():
    text = format_table(["h", "wide-header"], [["cell-longer-than-header", 1]])
    lines = text.splitlines()
    # The separator matches the widest cell of each column exactly.
    widths = [len(seg) for seg in lines[1].split("  ")]
    assert widths == [len("cell-longer-than-header"), len("wide-header")]
    # No trailing whitespace anywhere (byte-stable artifacts).
    assert all(line == line.rstrip() for line in lines)


def test_ascii_series():
    text = ascii_series({"s": [0.5, 0.25]}, [1, 2], title="t")
    assert text.startswith("t")
    assert "0.5" in text and "0.25" in text
