"""The typed facade, and the deprecation shims easing migration to it.

The one property that matters: a ``RunSpec``-driven run is bit-identical
to the legacy hand-wired path — the facade changes spelling, never
results.
"""

import dataclasses

import pytest

from repro import api
from repro.cache.adaptive import AdaptiveConfig, AdaptiveController
from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.common.events import FaseBegin, FaseEnd, Store
from repro.experiments.harness import Harness, HarnessConfig
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

PA = NVRAM_BASE


class OneFase(Workload):
    name = "one-fase"

    def streams(self, num_threads, seed):
        return [iter([FaseBegin(), Store(PA, 8, 1), FaseEnd()])]


# ---------------------------------------------------------------------------
# RunSpec: validation and equivalence with the legacy path
# ---------------------------------------------------------------------------


def test_runspec_is_frozen_and_hashable():
    spec = api.RunSpec(workload="linked-list")
    assert hash(spec) == hash(api.RunSpec(workload="linked-list"))
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.threads = 2


def test_runspec_validation():
    with pytest.raises(ConfigurationError):
        api.RunSpec(workload="linked-list", threads=0)
    with pytest.raises(ConfigurationError):
        api.RunSpec(workload="linked-list", scale=0)
    with pytest.raises(ConfigurationError):
        api.run(api.RunSpec(workload="no-such-workload"))


def test_run_is_bit_identical_to_hand_wired_machine():
    """api.run vs the raw Machine + make_factory spelling, LA technique
    (no profile-derived kwargs, so the legacy path is fully explicit)."""
    spec = api.RunSpec(workload="linked-list", technique="LA", scale=0.02, seed=3)
    via_api = api.run(spec)

    workload = get_workload("linked-list", scale=0.02)
    machine = Machine(spec.machine_config())
    legacy = machine.run(
        workload, make_factory("LA"), num_threads=1, seed=3
    )
    assert dataclasses.asdict(via_api) == dataclasses.asdict(legacy)


def test_run_is_bit_identical_to_harness_path():
    """api.run vs the harness spelling for SC (profile-derived sizing)."""
    spec = api.RunSpec(workload="linked-list", technique="SC", threads=2, scale=0.02)
    via_api = api.run(spec)
    legacy = Harness(HarnessConfig(scale=0.02)).run("linked-list", "SC", 2)
    assert dataclasses.asdict(via_api) == dataclasses.asdict(legacy)


def test_shared_harness_rejects_mismatched_spec():
    spec = api.RunSpec(workload="linked-list", scale=0.02)
    harness = api.harness_for(spec)
    other = api.RunSpec(workload="linked-list", scale=0.05)
    with pytest.raises(ConfigurationError):
        api.run(other, harness=harness)
    # The matching spec reuses the harness's memoized cells.
    assert api.run(spec, harness=harness) is api.run(spec, harness=harness)


def test_traced_run_matches_plain_run():
    spec = api.RunSpec(workload="linked-list", technique="SC", scale=0.02)
    plain = api.run(spec)
    traced, recorder, metrics = api.traced_run(spec)
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)
    assert recorder.counts()  # the trace actually recorded events
    assert metrics is None    # no sampling interval requested


def test_campaign_facade_smoke():
    spec = api.RunSpec(workload="linked-list", technique="SC", scale=0.02)
    matrix = api.campaign(spec, api.FaultSpec(max_sites=12))
    assert matrix.injected > 0
    assert matrix.ok
    broken = api.campaign(
        spec, api.FaultSpec(max_sites=24), commit_before_drain=True
    )
    assert not broken.ok


def test_top_level_lazy_exports():
    import repro

    assert repro.RunSpec is api.RunSpec
    assert repro.run is api.run
    assert repro.campaign is api.campaign
    assert repro.FaultSpec is api.FaultSpec
    with pytest.raises(AttributeError):
        repro.no_such_name


# ---------------------------------------------------------------------------
# Deprecation shims: positional spellings warn but keep working
# ---------------------------------------------------------------------------


def test_machine_init_positional_recorder_warns():
    from repro.obs.trace import TraceRecorder

    recorder = TraceRecorder()
    with pytest.warns(DeprecationWarning):
        machine = Machine(MachineConfig(), recorder)
    assert machine.recorder is recorder
    with pytest.raises(TypeError):
        Machine(MachineConfig(), recorder, None, "extra")


def test_machine_run_positional_threads_warns():
    with pytest.warns(DeprecationWarning):
        result = Machine(MachineConfig()).run(OneFase(), make_factory("LA"), 1, 0)
    keyword = Machine(MachineConfig()).run(
        OneFase(), make_factory("LA"), num_threads=1, seed=0
    )
    assert dataclasses.asdict(result) == dataclasses.asdict(keyword)
    with pytest.raises(TypeError):
        Machine(MachineConfig()).run(
            OneFase(), make_factory("LA"), 1, 0, False, None, None, "extra"
        )


def test_adaptive_controller_positional_config_warns():
    cfg = AdaptiveConfig(burst_length=32)
    with pytest.warns(DeprecationWarning):
        controller = AdaptiveController(cfg)
    assert controller.config is cfg
    with pytest.raises(TypeError):
        AdaptiveController(cfg, cfg)
    # The keyword spelling is silent.
    assert AdaptiveController(config=cfg).config is cfg
