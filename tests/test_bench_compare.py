"""The BENCH trajectory diff tool and its regression gate."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.bench_compare import (
    EXIT_INCOMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare,
    format_report,
    load_bench,
    main,
    schema_version,
)


def bench_doc(cases, schema=1, quick=False, **extra):
    """A minimal BENCH document; ``cases`` = [(workload, technique,
    batched_eps, per_event_eps), ...]."""
    doc = {
        "schema_version": schema,
        "quick": quick,
        "simulator": [
            {
                "workload": w,
                "technique": t,
                "batched_eps": b,
                "per_event_eps": p,
            }
            for (w, t, b, p) in cases
        ],
    }
    doc.update(extra)
    return doc


BASE = bench_doc(
    [("water-spatial", "SC", 1000.0, 400.0), ("mdb", "BEST", 2000.0, 900.0)]
)


def test_equal_documents_pass():
    verdict = compare(BASE, BASE, max_regress=3.0)
    assert verdict["ok"]
    assert verdict["batched_geomean"] == pytest.approx(1.0)
    assert verdict["regress_pct"] == pytest.approx(0.0)
    assert "PASS" in format_report(verdict)


def test_regression_beyond_threshold_fails():
    slower = bench_doc(
        [("water-spatial", "SC", 900.0, 400.0), ("mdb", "BEST", 1800.0, 900.0)]
    )
    verdict = compare(BASE, slower, max_regress=3.0)
    assert not verdict["ok"]
    assert verdict["regress_pct"] == pytest.approx(10.0)
    assert "FAIL" in format_report(verdict)
    # The same diff passes under a generous threshold.
    assert compare(BASE, slower, max_regress=15.0)["ok"]


def test_schema_mismatch_is_refused():
    newer = bench_doc([("water-spatial", "SC", 1000.0, 400.0)], schema=2)
    with pytest.raises(ConfigurationError):
        compare(BASE, newer)


def test_missing_schema_version_defaults_to_1():
    legacy = {k: v for k, v in BASE.items() if k != "schema_version"}
    assert schema_version(legacy) == 1
    assert compare(legacy, BASE)["ok"]


def test_no_common_cases_is_refused():
    other = bench_doc([("barnes", "ER", 10.0, 5.0)])
    with pytest.raises(ConfigurationError):
        compare(BASE, other)


def test_notes_flag_quick_mismatch_and_case_drift():
    new = bench_doc(
        [("water-spatial", "SC", 1000.0, 400.0), ("barnes", "ER", 10.0, 5.0)],
        quick=True,
    )
    verdict = compare(BASE, new)
    notes = " ".join(verdict["notes"])
    assert "quick flags differ" in notes
    assert "only in base" in notes
    assert "only in new" in notes


def test_reuse_counts_ride_along():
    base = dict(BASE, reuse_counts={"intervals_per_sec": 100.0})
    new = dict(BASE, reuse_counts={"intervals_per_sec": 150.0})
    verdict = compare(base, new)
    assert verdict["reuse_ratio"] == pytest.approx(1.5)
    assert "reuse_counts" in format_report(verdict)


def test_analyzer_throughput_is_gated():
    base = dict(BASE, analyzer={"events": 100_000, "events_per_sec": 1000.0})
    fast = dict(BASE, analyzer={"events": 100_000, "events_per_sec": 1100.0})
    slow = dict(BASE, analyzer={"events": 100_000, "events_per_sec": 800.0})
    ok = compare(base, fast, max_regress=3.0)
    assert ok["ok"] and ok["analyzer_ratio"] == pytest.approx(1.1)
    bad = compare(base, slow, max_regress=3.0)
    assert not bad["ok"]                     # simulator fine, analyzer not
    assert bad["regress_pct"] == pytest.approx(0.0)
    assert bad["analyzer_regress_pct"] == pytest.approx(20.0)
    assert "analyzer" in format_report(bad)
    # A generous threshold lets the same diff through.
    assert compare(base, slow, max_regress=25.0)["ok"]


def test_missing_analyzer_section_is_noted_not_gated():
    new = dict(BASE, analyzer={"events": 100_000, "events_per_sec": 1.0})
    for base in (BASE, new):                 # missing on either side
        other = new if base is BASE else BASE
        verdict = compare(base, other)
        assert verdict["ok"]
        assert verdict["analyzer_ratio"] is None
        assert any("analyzer" in n for n in verdict["notes"])


def test_bench_analyzer_section_shape():
    from repro.experiments.bench import _synthetic_trace, bench_analyzer
    from repro.obs.analyze import analyze

    section = bench_analyzer(2_000, reps=1)
    assert section["events"] >= 2_000
    assert section["events_per_sec"] > 0
    # The synthetic trace is pinned: same events every time, and it
    # exercises the analyzer's controller path (selections present).
    t1, t2 = _synthetic_trace(2_000), _synthetic_trace(2_000)
    assert list(t1.events()) == list(t2.events())
    profile = analyze(t1)
    assert profile.adaptation.selections > 0
    assert profile.provenance.evict_flushes > 0


def test_fleet_overhead_ceiling_is_gated():
    def fleet(overhead, advisory=False):
        return dict(
            BASE,
            fleet_overhead={
                "fleet_overhead": overhead,
                "advisory": advisory,
                "jobs": 4,
                "cpus_available": 1 if advisory else 8,
            },
        )

    ok = compare(BASE, fleet(1.05))
    assert ok["ok"] and ok["fleet_gate"] == "pass"
    assert "fleet_overhead" in format_report(ok)
    bad = compare(BASE, fleet(1.25))
    assert not bad["ok"] and bad["fleet_gate"] == "fail"
    # A host that serializes the workers gets a note, not a failure.
    noted = compare(BASE, fleet(1.25, advisory=True))
    assert noted["ok"] and noted["fleet_gate"] == "advisory"
    assert any("advisory" in n for n in noted["notes"])
    # Sections live in the new document only; a missing one is a note.
    missing = compare(BASE, BASE)
    assert missing["ok"] and missing["fleet_overhead"] is None
    assert any("fleet_overhead" in n for n in missing["notes"])


def test_ledger_overhead_ceiling_is_gated():
    cheap = dict(BASE, ledger={"ledger_overhead": 1.02, "appends_per_sec": 1e4})
    ok = compare(BASE, cheap)
    assert ok["ok"] and ok["ledger_gate"] == "pass"
    assert "ledger_overhead" in format_report(ok)
    costly = dict(BASE, ledger={"ledger_overhead": 1.2})
    bad = compare(BASE, costly)
    assert not bad["ok"] and bad["ledger_gate"] == "fail"
    # The gate is absolute (against the 1.05x ceiling), not relative.
    from repro.experiments.bench_compare import LEDGER_OVERHEAD_CEILING

    assert LEDGER_OVERHEAD_CEILING == 1.05
    # A document predating the ledger section is a note, not a failure.
    missing = compare(BASE, BASE)
    assert missing["ok"] and missing["ledger_overhead"] is None
    assert any("ledger" in n for n in missing["notes"])


def _seed_bench_ledger(tmp_path, docs):
    from repro.obs.ledger import RunLedger, RunRecord

    root = str(tmp_path / "led")
    ledger = RunLedger(root)
    for doc in docs:
        ledger.append(RunRecord(kind="bench", spec={"suite": "bench"},
                                extra={"bench": doc}))
    return root


def test_fitted_base_ewma_over_the_bench_timeline(tmp_path):
    from repro.experiments.bench_compare import fitted_base
    from repro.obs.history import ewma

    history = [
        bench_doc([("water-spatial", "SC", eps, eps / 2),
                   ("mdb", "BEST", 2 * eps, eps)],
                  analyzer={"events_per_sec": 10 * eps})
        for eps in (1000.0, 1100.0, 1050.0)
    ]
    root = _seed_bench_ledger(tmp_path, history)
    new = bench_doc([("water-spatial", "SC", 1040.0, 520.0)])
    base = fitted_base(root, new)
    assert base["fitted_from"] == 3
    fitted = ewma([1000.0, 1100.0, 1050.0])[-1]
    by_case = {(r["workload"], r["technique"]): r for r in base["simulator"]}
    assert by_case[("water-spatial", "SC")]["batched_eps"] == round(fitted, 3)
    assert base["analyzer"]["events_per_sec"] == round(10 * fitted, 3)
    # The fitted baseline is compare()-able like any BENCH file.
    assert compare(base, new, max_regress=5.0)["ok"]


def test_fitted_base_excludes_the_candidate_itself(tmp_path):
    from repro.experiments.bench_compare import fitted_base

    prior = bench_doc([("water-spatial", "SC", 1000.0, 500.0)])
    candidate = bench_doc([("water-spatial", "SC", 400.0, 200.0)])
    # bench.py records the candidate before the comparison runs; the
    # fit must not let it drag its own baseline down.
    root = _seed_bench_ledger(tmp_path, [prior, candidate])
    base = fitted_base(root, candidate)
    assert base["fitted_from"] == 1
    assert base["simulator"][0]["batched_eps"] == 1000.0
    assert not compare(base, candidate, max_regress=10.0)["ok"]


def test_fitted_base_requires_matching_history(tmp_path):
    from repro.experiments.bench_compare import fitted_base

    with pytest.raises(ConfigurationError):
        fitted_base(str(tmp_path / "empty"), BASE)
    other_schema = bench_doc([("water-spatial", "SC", 1.0, 1.0)], schema=9)
    root = _seed_bench_ledger(tmp_path, [other_schema])
    with pytest.raises(ConfigurationError):
        fitted_base(root, BASE)


def test_cli_ledger_mode(tmp_path, capsys):
    history = [
        bench_doc([("water-spatial", "SC", eps, eps / 2)])
        for eps in (1000.0, 1020.0)
    ]
    root = _seed_bench_ledger(tmp_path, history)
    new = tmp_path / "new.json"
    new.write_text(json.dumps(bench_doc([("water-spatial", "SC", 1010.0, 505.0)])))
    assert main(["--ledger", root, str(new), "--max-regress", "5"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "fitted (EWMA) from 2 ledger bench record(s)" in out

    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(bench_doc([("water-spatial", "SC", 500.0, 250.0)])))
    assert main(["--ledger", root, str(slow), "--max-regress", "5"]) == (
        EXIT_REGRESSION
    )
    # base file and --ledger are mutually exclusive, and one is required.
    assert main([str(new), str(new), "--ledger", root]) == EXIT_INCOMPARABLE
    assert main([str(new)]) == EXIT_INCOMPARABLE
    # An empty ledger is incomparable, not a crash.
    assert main(["--ledger", str(tmp_path / "none"), str(new)]) == (
        EXIT_INCOMPARABLE
    )


def test_bench_cli_never_silently_overwrites(tmp_path, monkeypatch, capsys):
    """tools/bench.py must refuse to clobber a committed baseline: the
    default path auto-suffixes ``-2``, ``-3``...; an explicit --out that
    exists is an error unless --force."""
    from repro.experiments import bench as bench_mod

    doc = dict(BASE, date="2026-01-01")
    monkeypatch.setattr(bench_mod, "run_suite", lambda **kw: dict(doc))
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "led"))
    monkeypatch.chdir(tmp_path)

    assert bench_mod.main([]) == 0
    assert (tmp_path / "BENCH_2026-01-01.json").exists()
    assert bench_mod.main([]) == 0
    assert (tmp_path / "BENCH_2026-01-01-2.json").exists()
    assert "exists" in capsys.readouterr().err

    out = tmp_path / "point.json"
    assert bench_mod.main(["--out", str(out)]) == 0
    assert bench_mod.main(["--out", str(out)]) == 2
    assert "--force" in capsys.readouterr().err
    assert bench_mod.main(["--out", str(out), "--force"]) == 0

    # Every successful invocation recorded a bench ledger record.
    from repro.obs.ledger import RunLedger

    records = RunLedger(str(tmp_path / "led")).records(kind="bench")
    assert len(records) == 4
    assert records[0].extra["bench"]["date"] == "2026-01-01"


def test_load_bench_rejects_non_bench_documents(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ConfigurationError):
        load_bench(str(path))


def test_cli_end_to_end(tmp_path, capsys):
    base = tmp_path / "base.json"
    new = tmp_path / "new.json"
    base.write_text(json.dumps(BASE))
    new.write_text(json.dumps(BASE))
    assert main([str(base), str(new)]) == EXIT_OK
    assert "PASS" in capsys.readouterr().out

    slower = bench_doc(
        [("water-spatial", "SC", 500.0, 400.0), ("mdb", "BEST", 1000.0, 900.0)]
    )
    new.write_text(json.dumps(slower))
    assert main([str(base), str(new), "--max-regress", "3"]) == EXIT_REGRESSION

    new.write_text(json.dumps(bench_doc([("mdb", "BEST", 1.0, 1.0)], schema=9)))
    assert main([str(base), str(new)]) == EXIT_INCOMPARABLE
    assert main([str(base), str(tmp_path / "missing.json")]) == EXIT_INCOMPARABLE
