"""The BENCH trajectory diff tool and its regression gate."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.bench_compare import (
    EXIT_INCOMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare,
    format_report,
    load_bench,
    main,
    schema_version,
)


def bench_doc(cases, schema=1, quick=False, **extra):
    """A minimal BENCH document; ``cases`` = [(workload, technique,
    batched_eps, per_event_eps), ...]."""
    doc = {
        "schema_version": schema,
        "quick": quick,
        "simulator": [
            {
                "workload": w,
                "technique": t,
                "batched_eps": b,
                "per_event_eps": p,
            }
            for (w, t, b, p) in cases
        ],
    }
    doc.update(extra)
    return doc


BASE = bench_doc(
    [("water-spatial", "SC", 1000.0, 400.0), ("mdb", "BEST", 2000.0, 900.0)]
)


def test_equal_documents_pass():
    verdict = compare(BASE, BASE, max_regress=3.0)
    assert verdict["ok"]
    assert verdict["batched_geomean"] == pytest.approx(1.0)
    assert verdict["regress_pct"] == pytest.approx(0.0)
    assert "PASS" in format_report(verdict)


def test_regression_beyond_threshold_fails():
    slower = bench_doc(
        [("water-spatial", "SC", 900.0, 400.0), ("mdb", "BEST", 1800.0, 900.0)]
    )
    verdict = compare(BASE, slower, max_regress=3.0)
    assert not verdict["ok"]
    assert verdict["regress_pct"] == pytest.approx(10.0)
    assert "FAIL" in format_report(verdict)
    # The same diff passes under a generous threshold.
    assert compare(BASE, slower, max_regress=15.0)["ok"]


def test_schema_mismatch_is_refused():
    newer = bench_doc([("water-spatial", "SC", 1000.0, 400.0)], schema=2)
    with pytest.raises(ConfigurationError):
        compare(BASE, newer)


def test_missing_schema_version_defaults_to_1():
    legacy = {k: v for k, v in BASE.items() if k != "schema_version"}
    assert schema_version(legacy) == 1
    assert compare(legacy, BASE)["ok"]


def test_no_common_cases_is_refused():
    other = bench_doc([("barnes", "ER", 10.0, 5.0)])
    with pytest.raises(ConfigurationError):
        compare(BASE, other)


def test_notes_flag_quick_mismatch_and_case_drift():
    new = bench_doc(
        [("water-spatial", "SC", 1000.0, 400.0), ("barnes", "ER", 10.0, 5.0)],
        quick=True,
    )
    verdict = compare(BASE, new)
    notes = " ".join(verdict["notes"])
    assert "quick flags differ" in notes
    assert "only in base" in notes
    assert "only in new" in notes


def test_reuse_counts_ride_along():
    base = dict(BASE, reuse_counts={"intervals_per_sec": 100.0})
    new = dict(BASE, reuse_counts={"intervals_per_sec": 150.0})
    verdict = compare(base, new)
    assert verdict["reuse_ratio"] == pytest.approx(1.5)
    assert "reuse_counts" in format_report(verdict)


def test_load_bench_rejects_non_bench_documents(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ConfigurationError):
        load_bench(str(path))


def test_cli_end_to_end(tmp_path, capsys):
    base = tmp_path / "base.json"
    new = tmp_path / "new.json"
    base.write_text(json.dumps(BASE))
    new.write_text(json.dumps(BASE))
    assert main([str(base), str(new)]) == EXIT_OK
    assert "PASS" in capsys.readouterr().out

    slower = bench_doc(
        [("water-spatial", "SC", 500.0, 400.0), ("mdb", "BEST", 1000.0, 900.0)]
    )
    new.write_text(json.dumps(slower))
    assert main([str(base), str(new), "--max-regress", "3"]) == EXIT_REGRESSION

    new.write_text(json.dumps(bench_doc([("mdb", "BEST", 1.0, 1.0)], schema=9)))
    assert main([str(base), str(new)]) == EXIT_INCOMPARABLE
    assert main([str(base), str(tmp_path / "missing.json")]) == EXIT_INCOMPARABLE
