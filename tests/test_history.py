"""Longitudinal ledger queries: trend, regress, compare, flaky, CLI."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.obs.history import (
    bench_counters,
    bench_spec,
    compare,
    detect_changepoint,
    ewma,
    flaky,
    import_bench_doc,
    metric_direction,
    metric_value,
    regress,
    spec_label,
    trend,
)
from repro.obs.ledger import RunLedger, RunRecord


def _seed(ledger, times, *, kind="run", spec=None, counters_key="time", **extra):
    """Append one record per value, all sharing one spec timeline."""
    spec = spec if spec is not None else {"workload": "queue", "technique": "ER"}
    out = []
    for i, t in enumerate(times):
        out.append(
            ledger.append(
                RunRecord(
                    kind=kind,
                    spec=spec,
                    counters={counters_key: t},
                    ts=float(i + 1),
                    **extra,
                )
            )
        )
    return out


# ---------------------------------------------------------------------------
# Fits
# ---------------------------------------------------------------------------


def test_ewma_seeds_on_first_point_and_tracks():
    assert ewma([10.0]) == [10.0]
    out = ewma([10.0, 20.0], alpha=0.5)
    assert out == [10.0, 15.0]
    with pytest.raises(ValueError):
        ewma([1.0], alpha=0.0)
    assert ewma([]) == []


def test_metric_direction_heuristics():
    for metric in ("time", "wall_s", "stall_cycles", "flush_ratio",
                   "ledger_overhead", "l1_miss_ratio", "counters.time"):
        assert metric_direction(metric) == "up", metric
    for metric in ("batched_eps_geomean", "analyzer_eps", "speedup"):
        assert metric_direction(metric) == "down", metric


def test_metric_value_resolves_paths():
    record = RunRecord(kind="run", spec={}, counters={"time": 7},
                       extra={"trace_events": 3})
    assert metric_value(record, "time") == 7.0
    assert metric_value(record, "counters.time") == 7.0
    assert metric_value(record, "extra.trace_events") == 3.0
    assert metric_value(record, "wall_s") == 0.0
    assert metric_value(record, "counters.nope") is None
    assert metric_value(record, "kind") is None  # strings are not metrics


def test_changepoint_finds_a_step_not_noise():
    step = [100.0, 101.0, 99.0, 100.0, 130.0, 131.0, 129.0, 130.0]
    cp = detect_changepoint(step)
    assert cp is not None and cp["index"] == 4
    assert cp["shift_pct"] == pytest.approx(30.0, abs=1.0)
    assert detect_changepoint([100.0, 101.0, 99.0]) is None  # too short
    assert detect_changepoint([100.0, 101.0, 99.0, 100.0, 101.0]) is None


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def test_trend_groups_by_spec_and_fits(tmp_path):
    ledger = RunLedger(str(tmp_path))
    _seed(ledger, [100.0, 102.0, 98.0])
    _seed(ledger, [50.0, 51.0], spec={"workload": "hash", "technique": "SC"})
    lines = trend(ledger, "time")
    assert len(lines) == 2
    by_label = {line.label: line for line in lines}
    assert "run/queue/ER" in by_label and "run/hash/SC" in by_label
    line = by_label["run/queue/ER"]
    assert line.values == [100.0, 102.0, 98.0]
    assert line.ewma == ewma(line.values)
    assert line.changepoint is None
    # Filters narrow to one timeline.
    assert len(trend(ledger, "time", spec_filter="hash")) == 1
    assert trend(ledger, "time", limit=1)[0].values in ([98.0], [51.0])


def test_regress_flags_a_20pct_slowdown(tmp_path):
    ledger = RunLedger(str(tmp_path))
    records = _seed(ledger, [100.0, 101.0, 99.0, 100.0, 120.0])
    doc = regress(ledger, "time")
    assert doc["ok"] is False and doc["direction"] == "up"
    (finding,) = doc["findings"]
    assert finding["latest"] == 120.0
    assert finding["run_id"] == records[-1].run_id
    # Fitted from the points *before* the latest: ~100, so ~+20%.
    assert finding["deviation_pct"] == pytest.approx(20.0, abs=2.0)
    # A within-noise latest point does not flag.
    calm = RunLedger(str(tmp_path / "calm"))
    _seed(calm, [100.0, 101.0, 99.0, 100.0, 102.0])
    assert regress(calm, "time")["ok"] is True


def test_regress_direction_for_throughput_metrics(tmp_path):
    ledger = RunLedger(str(tmp_path))
    _seed(ledger, [1000.0, 1010.0, 790.0], counters_key="eps")
    doc = regress(ledger, "eps")
    assert doc["direction"] == "down" and doc["ok"] is False
    # The same drop viewed as "up regresses" passes.
    assert regress(ledger, "eps", direction="up")["ok"] is True
    with pytest.raises(ValueError):
        regress(ledger, "eps", direction="sideways")


def test_regress_skips_short_timelines(tmp_path):
    ledger = RunLedger(str(tmp_path))
    _seed(ledger, [100.0])
    doc = regress(ledger, "time")
    assert doc["ok"] is True and doc["timelines_checked"] == 0
    assert doc["skipped"][0]["points"] == 1


def test_regress_links_artifact_records(tmp_path):
    ledger = RunLedger(str(tmp_path))
    _seed(ledger, [100.0, 100.0])
    ledger.append(
        RunRecord(kind="run", spec={"workload": "queue", "technique": "ER"},
                  counters={"time": 130.0}, ts=3.0,
                  artifacts={"trace": str(tmp_path / "t.jsonl")})
    )
    ledger.append(
        RunRecord(kind="profile", spec={"artifact": "profile"},
                  artifacts={"trace": str(tmp_path / "t.jsonl")})
    )
    (finding,) = regress(ledger, "time")["findings"]
    assert [l["kind"] for l in finding["linked"]] == ["profile"]


def test_compare_reports_last_two_deltas(tmp_path):
    ledger = RunLedger(str(tmp_path))
    _seed(ledger, [100.0, 100.0])
    _seed(ledger, [50.0, 60.0], spec={"workload": "hash"})
    doc = compare(ledger)
    assert doc["ok"] is False
    rows = {row["label"]: row for row in doc["rows"]}
    assert rows["run/queue/ER"]["identical"] is True
    drifted = rows["run/hash"]
    assert drifted["deltas"]["time"] == {"prev": 50.0, "last": 60.0, "ratio": 1.2}


def test_flaky_spots_disagreeing_outcomes(tmp_path):
    ledger = RunLedger(str(tmp_path))
    spec = {"workload": "queue", "fault_models": ["clean"]}
    for violated in (0, 0, 1):
        ledger.append(
            RunRecord(kind="campaign", spec=spec,
                      counters={"injected": 8, "violated": violated})
        )
    doc = flaky(ledger)
    assert doc["ok"] is False
    (row,) = doc["rows"]
    assert row["records"] == 3 and len(row["outcomes"]) == 2
    # A stable timeline is clean.
    stable = RunLedger(str(tmp_path / "stable"))
    _seed(stable, [1.0, 1.0], kind="campaign", counters_key="violated")
    assert flaky(stable)["ok"] is True


def test_spec_label_falls_back_to_fingerprint(tmp_path):
    anon = RunRecord(kind="grid", spec={"config": {"scale": 1.0}})
    assert spec_label(anon) == f"grid/{anon.spec_sha[:12]}"
    quick = RunRecord(kind="bench", spec={"suite": "bench", "quick": True})
    assert spec_label(quick) == "bench/quick"


# ---------------------------------------------------------------------------
# BENCH import
# ---------------------------------------------------------------------------


BENCH_DOC = {
    "schema_version": 3,
    "suite_version": 5,
    "date": "2026-08-01",
    "quick": False,
    "reps": 3,
    "harness": {"jobs": 2},
    "simulator": [
        {"workload": "queue", "technique": "ER",
         "batched_eps": 1000.0, "per_event_eps": 500.0},
        {"workload": "queue", "technique": "SC",
         "batched_eps": 4000.0, "per_event_eps": 250.0},
    ],
    "simulator_speedup_geomean": 1.5,
    "analyzer": {"events_per_sec": 9000.0},
    "streaming_recorder": {"streaming_eps": 800.0, "streaming_overhead": 1.2},
    "ledger": {"ledger_overhead": 1.01},
}


def test_bench_counters_distill_the_document():
    counters = bench_counters(BENCH_DOC)
    assert counters["batched_eps_geomean"] == pytest.approx(2000.0)
    assert counters["analyzer_eps"] == 9000.0
    assert counters["ledger_overhead"] == 1.01
    assert counters["simulator_speedup_geomean"] == 1.5
    assert "policy_zoo_eps_geomean" not in counters
    assert bench_spec(BENCH_DOC)["quick"] is False
    assert bench_spec(BENCH_DOC)["jobs"] == 2


def test_import_bench_doc_appends_a_dated_record(tmp_path):
    ledger = RunLedger(str(tmp_path))
    path = tmp_path / "BENCH_2026-08-01.json"
    path.write_text(json.dumps(BENCH_DOC))
    record = import_bench_doc(ledger, str(path))
    assert record.kind == "bench"
    assert record.extra["bench"]["date"] == "2026-08-01"
    assert record.ts == pytest.approx(1785542400.0)  # 2026-08-01 UTC
    (back,) = ledger.records(kind="bench")
    assert back.counters == record.counters


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _cli_ledger(tmp_path, times):
    root = str(tmp_path / "led")
    _seed(RunLedger(root), times)
    return root


def test_cli_regress_exits_nonzero_on_regression(tmp_path, capsys):
    root = _cli_ledger(tmp_path, [100.0, 101.0, 99.0, 100.0, 120.0])
    rc = main(["history", "--ledger", root, "--query", "regress"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FLAGGED" in out and "run/queue/ER" in out


def test_cli_regress_exits_zero_when_clean(tmp_path, capsys):
    root = _cli_ledger(tmp_path, [100.0, 101.0, 99.0])
    assert main(["history", "--ledger", root, "--query", "regress"]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_trend_writes_every_format(tmp_path, capsys):
    root = _cli_ledger(tmp_path, [100.0, 101.0])
    json_p, md_p, html_p = (str(tmp_path / n) for n in ("h.json", "h.md", "h.html"))
    rc = main(["history", "--ledger", root, "--query", "trend",
               "--json", json_p, "--md", md_p, "--html", html_p])
    assert rc == 0
    doc = json.loads(open(json_p).read())
    assert doc["query"] == "trend" and doc["lines"][0]["values"] == [100.0, 101.0]
    md = open(md_p).read()
    assert md.startswith("# Run history: trend") and "run/queue/ER" in md
    html = open(html_p).read()
    assert html.startswith("<!DOCTYPE html>") and "svg" in html


def test_cli_json_to_stdout_moves_tables_to_stderr(tmp_path, capsys):
    root = _cli_ledger(tmp_path, [100.0, 101.0])
    rc = main(["history", "--ledger", root, "--query", "trend", "--json", "-"])
    assert rc == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out)["query"] == "trend"
    assert "timeline" in captured.err


def test_cli_disabled_ledger_is_exit_2(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_LEDGER", "off")
    assert main(["history", "--query", "trend"]) == 2
    assert "disabled" in capsys.readouterr().err


def test_cli_import_seeds_the_bench_timeline(tmp_path, capsys):
    root = str(tmp_path / "led")
    docs = []
    for i, date in enumerate(["2026-08-01", "2026-08-02"]):
        doc = dict(BENCH_DOC, date=date)
        doc["analyzer"] = {"events_per_sec": 9000.0 + i}
        path = tmp_path / f"BENCH_{date}.json"
        path.write_text(json.dumps(doc))
        docs.append(str(path))
    rc = main(["history", "--ledger", root, "--query", "trend",
               "--kind", "bench", "--metric", "analyzer_eps",
               "--import", docs[0], "--import", docs[1]])
    assert rc == 0
    assert "9001" in capsys.readouterr().out
    assert len(RunLedger(root).records(kind="bench")) == 2
    # A bad import path is exit 2.
    assert main(["history", "--ledger", root, "--import",
                 str(tmp_path / "missing.json")]) == 2


def test_cli_flaky_query(tmp_path, capsys):
    root = str(tmp_path / "led")
    ledger = RunLedger(root)
    for violated in (0, 1):
        ledger.append(
            RunRecord(kind="campaign", spec={"workload": "queue"},
                      counters={"violated": violated})
        )
    assert main(["history", "--ledger", root, "--query", "flaky"]) == 1
    assert "outcomes" in capsys.readouterr().out.lower()
