"""The batched execution path must be bit-identical to the per-event path.

The machine's ``_run_batches`` loop is an optimisation, never a semantic
fork: for any workload exposing ``batch_streams``, a run with
``use_batches=True`` must produce exactly the statistics of the same run
with ``use_batches=False`` — every per-thread counter, every flush
category, the shared hardware-cache counters, and the recorded traces.
"""

import dataclasses

import numpy as np
import pytest

from repro.cache.policies import make_factory
from repro.common.events import batches_from_events, events_from_batches
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.base import BatchCachingWorkload
from repro.workloads.registry import get_workload

WORKLOADS = ("water-spatial", "barnes")
TECHNIQUES = ("BEST", "SC")
THREADS = (1, 4)


def _full_stats(result):
    """Everything a run produces, as one comparable structure."""
    return {
        "threads": [dataclasses.asdict(t) for t in result.threads],
        "l1_accesses": result.l1_accesses,
        "l1_misses": result.l1_misses,
        "crashed": result.crashed,
    }


def _run(workload, technique, threads, use_batches):
    machine = Machine(MachineConfig())
    result = machine.run(
        workload,
        make_factory(technique),
        num_threads=threads,
        seed=7,
        record_traces=True,
        use_batches=use_batches,
    )
    return machine, result


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("threads", THREADS)
def test_batched_run_is_bit_identical(name, technique, threads):
    workload = get_workload(name, scale=0.05)
    m_ev, r_ev = _run(workload, technique, threads, use_batches=False)
    m_b, r_b = _run(workload, technique, threads, use_batches=True)

    assert _full_stats(r_b) == _full_stats(r_ev)
    # The shared hardware cache's full counter set, not just the two
    # aggregates RunResult carries.
    for attr in ("loads", "stores", "load_misses", "store_misses",
                 "evict_writebacks"):
        assert getattr(m_b.hwcache, attr) == getattr(m_ev.hwcache, attr), attr
    # Recorded traces: same lines, same FASE ids, per thread.
    assert len(r_b.traces) == len(r_ev.traces)
    for got, want in zip(r_b.traces, r_ev.traces):
        assert np.array_equal(got.lines, want.lines)
        assert np.array_equal(got.fase_ids, want.fase_ids)


@pytest.mark.parametrize("name", WORKLOADS)
def test_native_batches_encode_the_stream(name):
    """``batch_streams`` must emit exactly the events of ``streams``."""
    workload = get_workload(name, scale=0.05)
    for threads in THREADS:
        streams = workload.streams(threads, seed=7)
        batch_streams = workload.batch_streams(threads, seed=7)
        for stream, batches in zip(streams, batch_streams):
            want = [repr(ev) for ev in stream]
            got = [repr(ev) for ev in events_from_batches(batches)]
            assert got == want


def test_batch_caching_workload_replays_identically():
    """Materialized batches must replay the same sequence every call."""
    inner = get_workload("water-spatial", scale=0.05)
    caching = BatchCachingWorkload(inner)
    first = [
        [repr(ev) for ev in events_from_batches(s)]
        for s in caching.batch_streams(2, seed=7)
    ]
    again = [
        [repr(ev) for ev in events_from_batches(s)]
        for s in caching.batch_streams(2, seed=7)
    ]
    assert first == again
    # And they match the uncached emission.
    native = [
        [repr(ev) for ev in events_from_batches(s)]
        for s in inner.batch_streams(2, seed=7)
    ]
    assert first == native


def test_generic_chunking_adapter_round_trips():
    """batches_from_events/events_from_batches are exact inverses."""
    workload = get_workload("barnes", scale=0.05)
    want = [repr(ev) for ev in workload.streams(1, seed=7)[0]]
    batches = batches_from_events(workload.streams(1, seed=7)[0], chunk=100)
    got = [repr(ev) for ev in events_from_batches(batches)]
    assert got == want


def test_auto_batching_matches_explicit():
    """use_batches=None (the default) must pick the batched path and
    still produce per-event-identical results."""
    workload = get_workload("water-spatial", scale=0.05)
    _, r_auto = _run(workload, "BEST", 1, use_batches=None)
    _, r_ev = _run(workload, "BEST", 1, use_batches=False)
    assert _full_stats(r_auto) == _full_stats(r_ev)
