"""The tile/burst/wide-loop trace generator."""

import pytest

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.common.events import EventKind, validate_stream
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.generators import (
    ALIAS_STRIDE_LINES,
    TilePatternConfig,
    TilePatternWorkload,
    WideMode,
)


def cfg(**kw):
    defaults = dict(
        tile_lines=6, burst=4.0, passes=5.0, tiles_per_fase=3, num_fases=4
    )
    defaults.update(kw)
    return TilePatternConfig(**defaults)


def run(workload, technique, threads=1, seed=2, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, make_factory(technique, **kw), num_threads=threads, seed=seed)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        cfg(tile_lines=0)
    with pytest.raises(ConfigurationError):
        cfg(burst=0.5)
    with pytest.raises(ConfigurationError):
        cfg(wide_mode="bogus")
    with pytest.raises(ConfigurationError):
        cfg(wide_mode=WideMode.UNITS, wide_passes=0.5)
    with pytest.raises(ConfigurationError):
        cfg(scatter_frac=1.0)


def test_store_volume_matches_estimate():
    c = cfg()
    w = TilePatternWorkload("t", c)
    res = run(w, "BEST")
    assert res.persistent_stores == pytest.approx(c.approx_total_stores, rel=0.05)


def test_fase_bracketing_is_valid():
    w = TilePatternWorkload("t", cfg())
    events = list(validate_stream(w.streams(1, 0)[0]))
    kinds = [e.kind for e in events]
    assert kinds.count(EventKind.FASE_BEGIN) == 4
    assert kinds.count(EventKind.FASE_END) == 4


def test_la_ratio_equals_inverse_burst_passes():
    """The core calibration identity: LA = 1/(burst * passes)."""
    c = cfg(burst=4.0, passes=5.0)
    res = run(TilePatternWorkload("t", c), "LA")
    assert res.flush_ratio == pytest.approx(1 / 20, rel=0.05)


def test_at_ratio_equals_inverse_burst():
    """Aliased tiles defeat the Atlas table: AT = 1/burst."""
    c = cfg(burst=4.0)
    res = run(TilePatternWorkload("t", c), "AT")
    assert res.flush_ratio == pytest.approx(1 / 4, rel=0.05)


def test_sc_at_tile_size_reaches_lazy_bound():
    c = cfg(tile_lines=6, burst=4.0, passes=5.0)
    w = TilePatternWorkload("t", c)
    la = run(w, "LA").flush_ratio
    sc = run(w, "SC-offline", sc_fixed_size=7).flush_ratio
    assert sc == pytest.approx(la, rel=0.1)


def test_small_sc_only_combines_bursts():
    c = cfg(tile_lines=12, burst=4.0)
    w = TilePatternWorkload("t", c)
    sc = run(w, "SC-offline", sc_fixed_size=2).flush_ratio
    assert sc == pytest.approx(1 / 4, rel=0.1)   # = the AT level


def test_wide_units_raise_sc_but_not_la():
    base = cfg(num_fases=6)
    wide = cfg(
        num_fases=6,
        wide_mode=WideMode.UNITS,
        wide_lines=64,
        wide_passes=3.0,
        wide_units_per_fase=1.0,
    )
    wb, ww = TilePatternWorkload("b", base), TilePatternWorkload("w", wide)
    la_b = run(wb, "LA").flush_ratio
    la_w = run(ww, "LA").flush_ratio
    sc_b = run(wb, "SC-offline", sc_fixed_size=7).flush_ratio
    sc_w = run(ww, "SC-offline", sc_fixed_size=7).flush_ratio
    assert sc_w > sc_b * 2          # wide sweeps all miss in the cache
    assert sc_w > la_w * 1.5        # ... but the lazy bound combines them


def test_alias_layout_stride():
    w = TilePatternWorkload("t", cfg(alias_tiles=True))
    assert w.tile_line(0, 1) - w.tile_line(0, 0) == ALIAS_STRIDE_LINES
    w2 = TilePatternWorkload("t", cfg(alias_tiles=False))
    assert w2.tile_line(0, 1) - w2.tile_line(0, 0) == 1


def test_strong_scaling_total_stores_constant():
    c = cfg(passes=8.0, num_fases=6)
    w = TilePatternWorkload("t", c)
    r1 = run(w, "BEST", threads=1)
    r4 = run(w, "BEST", threads=4)
    assert r4.persistent_stores == pytest.approx(r1.persistent_stores, rel=0.02)
    # FASEs multiply with threads (each thread brackets its block).
    assert r4.fase_count > r1.fase_count


def test_fase_round_robin_when_units_scarce():
    # 1 tile x 1 pass = 1 unit per FASE < 3 threads: deal whole FASEs.
    c = cfg(tiles_per_fase=1, passes=1.0, num_fases=9)
    w = TilePatternWorkload("t", c)
    res = run(w, "BEST", threads=3)
    assert res.fase_count == 9
    assert all(t.fase_count == 3 for t in res.threads)


def test_determinism():
    w = TilePatternWorkload("t", cfg())
    a = run(w, "LA", seed=5)
    b = run(w, "LA", seed=5)
    assert a.flushes == b.flushes
    assert a.time == b.time


def test_scatter_knob():
    c = cfg(scatter_frac=0.2, scatter_pool_lines=128)
    res = run(TilePatternWorkload("t", c), "LA")
    base = run(TilePatternWorkload("t", cfg()), "LA")
    assert res.persistent_stores > base.persistent_stores * 1.1


def test_wide_fases_mode_emits_dedicated_fases():
    base = cfg(num_fases=8)
    wide = cfg(
        num_fases=8,
        wide_mode=WideMode.FASES,
        wide_lines=64,
        wide_passes=2.0,
        wide_fase_every=1.0,
    )
    rb = run(TilePatternWorkload("b", base), "BEST")
    rw = run(TilePatternWorkload("w", wide), "BEST")
    # One extra (wide) FASE per narrow FASE.
    assert rw.fase_count == pytest.approx(2 * rb.fase_count, abs=2)
    assert rw.persistent_stores > rb.persistent_stores


def test_wide_fases_round_robin_across_threads():
    c = cfg(
        num_fases=12,
        wide_mode=WideMode.FASES,
        wide_lines=64,
        wide_passes=2.0,
        wide_fase_every=1.0,
    )
    res = run(TilePatternWorkload("w", c), "BEST", threads=3)
    # Wide FASEs are dealt across threads: everyone gets some.
    assert all(t.fase_count > 0 for t in res.threads)


def test_wide_fases_gap_visible_to_sc_not_la():
    c = cfg(
        tile_lines=6,
        num_fases=10,
        wide_mode=WideMode.FASES,
        wide_lines=64,
        wide_passes=3.0,
        wide_fase_every=1.0,
    )
    w = TilePatternWorkload("w", c)
    la = run(w, "LA").flush_ratio
    sc = run(w, "SC-offline", sc_fixed_size=7).flush_ratio
    assert sc > la * 1.5
