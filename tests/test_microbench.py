"""linked-list, queue and hash micro-benchmarks (Table III rows 1-4)."""

import pytest

from repro.cache.policies import make_factory
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.linkedlist import LinkedListWorkload, perfect_shuffle_order
from repro.workloads.msqueue import QueueWorkload


def run(workload, technique, threads=1, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, make_factory(technique, **kw), num_threads=threads, seed=3)


# ---------------------------------------------------------------------------
# linked-list
# ---------------------------------------------------------------------------


def test_perfect_shuffle_is_a_permutation():
    order = perfect_shuffle_order(1000)
    assert sorted(order) == list(range(1000))


def test_perfect_shuffle_scatters_neighbours():
    order = perfect_shuffle_order(256)
    # Consecutive inserts land far apart in key space (bit reversal).
    gaps = [abs(a - b) for a, b in zip(order, order[1:])]
    assert sum(gaps) / len(gaps) > 64


def test_linked_list_store_count():
    w = LinkedListWorkload(elements=500)
    res = run(w, "BEST")
    assert res.persistent_stores == w.total_stores == 5 * 500 - 1
    assert res.fase_count == 500


def test_linked_list_all_techniques_equal():
    """Table III: LA = AT = SC = 0.6 — one insert per FASE leaves no
    combinable reuse beyond the node's own line."""
    w = LinkedListWorkload(elements=400)
    ratios = {
        t: run(w, t, **({"sc_fixed_size": 8} if t == "SC-offline" else {})).flush_ratio
        for t in ("LA", "AT", "SC-offline")
    }
    assert ratios["LA"] == pytest.approx(0.6, abs=0.01)
    assert ratios["AT"] == pytest.approx(ratios["LA"], rel=0.02)
    assert ratios["SC-offline"] == pytest.approx(ratios["LA"], rel=0.02)


def test_linked_list_threads_shard_cleanly():
    w = LinkedListWorkload(elements=300)
    res = run(w, "LA", threads=3)
    assert res.num_threads == 3
    assert res.persistent_stores == 5 * 300 - 3   # one count-less insert each
    assert all(t.persistent_stores > 0 for t in res.threads)


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------


def test_queue_fase_per_operation():
    w = QueueWorkload(operations=200)
    res = run(w, "BEST")
    # setup FASE + enqueue FASE + dequeue FASE per pair.
    assert res.fase_count == 1 + 2 * 200
    assert res.persistent_stores == 3 + 5 * 200


def test_queue_all_techniques_equal():
    """Table III: LA = AT = SC (0.625 in the paper; node packing gives
    ~0.65 here)."""
    w = QueueWorkload(operations=2000)
    la = run(w, "LA").flush_ratio
    at = run(w, "AT").flush_ratio
    sc = run(w, "SC-offline", sc_fixed_size=4).flush_ratio
    assert la == pytest.approx(0.65, abs=0.03)
    assert at == pytest.approx(la, rel=0.02)
    assert sc == pytest.approx(la, rel=0.02)


def test_queue_multithreaded_splits_work():
    w = QueueWorkload(operations=300)
    res = run(w, "LA", threads=4)
    assert res.persistent_stores == sum(t.persistent_stores for t in res.threads)
    assert all(t.persistent_stores > 0 for t in res.threads)


# ---------------------------------------------------------------------------
# hash
# ---------------------------------------------------------------------------


def test_hash_fase_count():
    w = HashTableWorkload(elements=400)
    res = run(w, "BEST")
    # inserts + updates + deletes (+ rehash FASEs).
    assert res.fase_count >= w.total_fases
    assert res.fase_count <= w.total_fases + 16


def test_hash_ordering_la_sc_at():
    """Table III: LA < SC <= AT for the hash table."""
    w = HashTableWorkload(elements=1500)
    la = run(w, "LA").flush_ratio
    at = run(w, "AT").flush_ratio
    sc = run(w, "SC-offline", sc_fixed_size=4).flush_ratio
    assert la < sc <= at * 1.01
    assert at > la * 1.05   # bucket-array conflicts hurt the table


def test_hash_single_threaded_only():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        HashTableWorkload(100).streams(2, 0)


def test_hash_rehash_emits_big_fases():
    w = HashTableWorkload(elements=600)   # crosses several load factors
    res = run(w, "LA")
    biggest_drain = max(t.fase_end_flushes for t in res.threads)
    assert biggest_drain > 0
