"""Machine-level invariants over random event streams (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import make_factory
from repro.common.events import FaseBegin, FaseEnd, Load, Store, Work
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import Workload


class ListWorkload(Workload):
    name = "rand"

    def __init__(self, *streams):
        self._streams = [list(s) for s in streams]

    def streams(self, num_threads, seed):
        return [iter(s) for s in self._streams]


@st.composite
def event_streams(draw):
    """A well-bracketed random event stream over a small line pool."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["store", "load", "work", "fase"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=120,
        )
    )
    events = []
    depth = 0
    for op, arg in ops:
        if op == "store":
            events.append(Store(NVRAM_BASE + arg * 64, 8))
        elif op == "load":
            events.append(Load(NVRAM_BASE + arg * 64, 8))
        elif op == "work":
            events.append(Work(arg + 1))
        elif op == "fase":
            if depth and arg % 2:
                events.append(FaseEnd())
                depth -= 1
            else:
                events.append(FaseBegin())
                depth += 1
    events.extend(FaseEnd() for _ in range(depth))
    return events


TECHNIQUES = ["ER", "LA", "AT", "SC-offline", "BEST"]


def run(events, technique):
    machine = Machine(MachineConfig())
    kwargs = {"sc_fixed_size": 4} if technique == "SC-offline" else {}
    result = machine.run(
        ListWorkload(events), make_factory(technique, **kwargs), num_threads=1, seed=0
    )
    return machine, result


@settings(max_examples=30, deadline=None)
@given(event_streams(), st.sampled_from(TECHNIQUES))
def test_flush_category_conservation(events, technique):
    _m, res = run(events, technique)
    t = res.threads[0]
    assert t.flushes == (
        t.eviction_flushes
        + t.fase_end_flushes
        + t.eager_flushes
        + t.log_flushes
        + t.final_flushes
    )


@settings(max_examples=30, deadline=None)
@given(event_streams(), st.sampled_from(TECHNIQUES))
def test_determinism(events, technique):
    _m1, a = run(events, technique)
    _m2, b = run(events, technique)
    assert a.flushes == b.flushes
    assert a.time == b.time
    assert a.l1_misses == b.l1_misses


@settings(max_examples=30, deadline=None)
@given(event_streams())
def test_technique_flush_bounds(events):
    """ER flushes per store; BEST never; LA/AT/SC in between; LA is the
    floor among the correct techniques."""
    results = {t: run(events, t)[1] for t in TECHNIQUES}
    stores = results["ER"].persistent_stores
    assert results["ER"].flushes == stores
    assert results["BEST"].flushes == 0
    for t in ("LA", "AT", "SC-offline"):
        assert results[t].flushes <= stores
    assert results["LA"].flushes <= results["AT"].flushes
    assert results["LA"].flushes <= results["SC-offline"].flushes


@settings(max_examples=25, deadline=None)
@given(event_streams())
def test_la_flushes_equal_distinct_lines_per_drain(events):
    """LA's flush count is exactly the number of distinct (line, drain
    epoch) pairs — the analytical lower bound of Table III."""
    _m, res = run(events, "LA")
    # Reconstruct the bound from the event stream.
    distinct = 0
    pending = set()
    depth = 0
    for ev in events:
        if ev.kind == 0 and ev.addr >= NVRAM_BASE:      # store
            pending.add(ev.addr >> 6)
        elif ev.kind == 3:
            depth += 1
        elif ev.kind == 4:
            depth -= 1
            if depth == 0:
                distinct += len(pending)
                pending.clear()
    distinct += len(pending)        # final drain
    assert res.flushes == distinct


@settings(max_examples=25, deadline=None)
@given(event_streams())
def test_hw_accesses_match_issued_operations(events):
    machine, res = run(events, "BEST")
    issued = sum(1 for ev in events if ev.kind in (0, 1))
    assert machine.hwcache.accesses == issued


@settings(max_examples=20, deadline=None)
@given(event_streams(), st.sampled_from(["LA", "AT", "SC-offline"]))
def test_nothing_left_dirty_after_finish(events, technique):
    """After the final drain only BEST may leave dirty persistent lines."""
    machine, _res = run(events, technique)
    assert machine.hwcache.dirty_lines() == []
