"""Fault-injection campaigns end to end: driver, enumerator, oracle, matrix.

The load-bearing properties:

- *soundness of the implementation* — exhaustive campaigns over the real
  workloads find zero violations under every fault model;
- *soundness of the oracle* — deliberately breaking the Atlas write
  ordering (commit record before data drain) IS detected;
- *determinism* — site enumeration, sampled selection and parallel
  fan-out all reproduce bit-identically for a fixed seed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import FaseBegin, FaseEnd, Load, Store, Work
from repro.faults import (
    AtlasReplayDriver,
    CrashMatrix,
    CrashPointEnumerator,
    FaultCampaignSpec,
    check_crash,
    expected_image_at,
    run_campaign,
)
from repro.nvram.failure import FAULT_MODELS, SITE_CLASSES
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import Workload
from repro.workloads.linkedlist import LinkedListWorkload

PA = NVRAM_BASE


class ListWorkload(Workload):
    """Replays fixed per-thread event lists (same shape as test_machine's)."""

    name = "list"

    def __init__(self, *streams):
        self._streams = [list(s) for s in streams]

    def supports_threads(self, num_threads):
        return num_threads == len(self._streams)

    def streams(self, num_threads, seed):
        return [iter(s) for s in self._streams]


def exhaustive_campaign(workload, **kwargs):
    kwargs.setdefault("spec", FaultCampaignSpec(max_sites=100_000))
    return run_campaign(workload, **kwargs)


# ---------------------------------------------------------------------------
# Exhaustive positive campaigns: atomicity survives every crash point
# ---------------------------------------------------------------------------


def test_linkedlist_two_threads_exhaustive_zero_violations():
    matrix = exhaustive_campaign(
        LinkedListWorkload(elements=16), technique="SC", threads=2
    )
    assert matrix.exhaustive
    assert matrix.ok, matrix.violations[:3]
    assert matrix.injected == matrix.total_sites > 0
    # Every site class fires in this workload (eviction flushes only
    # under cache pressure, so they are optional here).
    classes = {cls for (cls, _model) in matrix.cells}
    assert {"store", "log_append", "commit", "drain"} <= classes


def test_hashtable_exhaustive_zero_violations():
    matrix = exhaustive_campaign("hash", technique="SC", threads=2, scale=0.02)
    # The hash benchmark is single-threaded by construction; the
    # campaign falls back rather than erroring.
    assert matrix.threads == 1
    assert matrix.exhaustive
    assert matrix.ok, matrix.violations[:3]


@pytest.mark.parametrize("model", sorted(FAULT_MODELS))
def test_fault_models_zero_violations(model):
    # A 2-line direct-mapped L1 forces dirty hardware evictions, so the
    # reordered_flush model actually has in-flight write-backs to drop.
    matrix = run_campaign(
        LinkedListWorkload(elements=12),
        technique="SC",
        threads=1,
        spec=FaultCampaignSpec(fault_models=(model,), max_sites=100_000),
        l1_capacity_lines=2,
        l1_ways=1,
    )
    assert matrix.exhaustive
    assert matrix.ok, matrix.violations[:3]


def test_reordered_flush_model_is_not_vacuous():
    """With a tiny L1 some crashes must actually drop in-flight lines."""
    driver = AtlasReplayDriver(
        LinkedListWorkload(elements=12),
        technique="SC",
        l1_capacity_lines=2,
        l1_ways=1,
    )
    golden = driver.golden()
    dropped = 0
    for site in range(0, len(golden.sites), 7):
        state, _layout = driver.crash_at(
            site, fault_model="reordered_flush", fault_seed=site
        )
        dropped += state.dropped_writebacks
    assert dropped > 0


def test_torn_line_model_tears_lines():
    driver = AtlasReplayDriver(LinkedListWorkload(elements=16), technique="SC")
    golden = driver.golden()
    torn = 0
    for site in range(0, len(golden.sites), 5):
        state, _layout = driver.crash_at(
            site, fault_model="torn_line", fault_seed=site
        )
        torn += len(state.torn_lines)
    assert torn > 0


# ---------------------------------------------------------------------------
# Negative control: a broken write ordering must be detected
# ---------------------------------------------------------------------------


def test_commit_before_drain_is_detected():
    matrix = exhaustive_campaign(
        LinkedListWorkload(elements=16),
        technique="SC",
        threads=1,
        commit_before_drain=True,
    )
    assert not matrix.ok
    kinds = {v["kind"] for v in matrix.violations}
    assert "missing_committed" in kinds
    # The violations appear exactly where the ordering bites: after a
    # commit record became durable with data still volatile.
    assert any(v["site_class"] == "commit" for v in matrix.violations)


def test_correct_ordering_has_no_commit_window():
    """The same workload with proper ordering is clean (paired control)."""
    matrix = exhaustive_campaign(
        LinkedListWorkload(elements=16), technique="SC", threads=1
    )
    assert matrix.ok


# ---------------------------------------------------------------------------
# Property: every crash point of a random program recovers to golden
# ---------------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """A random single-thread program of FASEs over a few lines."""
    events = []
    n_fases = draw(st.integers(1, 4))
    for _ in range(n_fases):
        events.append(FaseBegin())
        for _ in range(draw(st.integers(1, 5))):
            line = draw(st.integers(0, 5))
            events.append(Store(PA + 64 * line, 8, draw(st.integers(0, 99))))
            if draw(st.booleans()):
                events.append(Work(draw(st.integers(1, 50))))
            if draw(st.booleans()):
                events.append(Load(PA + 64 * draw(st.integers(0, 5)), 8))
        events.append(FaseEnd())
    return events


@settings(max_examples=15, deadline=None)
@given(small_programs(), st.sampled_from(sorted(FAULT_MODELS)))
def test_every_crash_point_recovers_to_golden(events, model):
    driver = AtlasReplayDriver(
        ListWorkload(events), technique="SC", l1_capacity_lines=2, l1_ways=1
    )
    golden = driver.golden()
    for site in range(len(golden.sites)):
        state, layout = driver.crash_at(site, fault_model=model, fault_seed=site)
        violations = check_crash(golden, site, state, layout)
        assert not violations, (site, model, [v.to_dict() for v in violations])


def test_expected_image_overlays_in_commit_order():
    events = [
        FaseBegin(), Store(PA, 8, "a"), FaseEnd(),
        FaseBegin(), Store(PA, 8, "b"), FaseEnd(),
    ]
    driver = AtlasReplayDriver(ListWorkload(events), technique="SC")
    golden = driver.golden()
    first, second = golden.commit_order
    at_first = expected_image_at(golden, golden.fases[first].commit_site)
    at_second = expected_image_at(golden, golden.fases[second].commit_site)
    addr = next(iter(golden.fases[first].writes))
    assert at_first[addr] == "a"
    assert at_second[addr] == "b"


# ---------------------------------------------------------------------------
# Enumerator: exhaustive vs sampled, determinism, class coverage
# ---------------------------------------------------------------------------


def _synthetic_sites(n, seed=0):
    rng = random.Random(seed)
    return [
        (i, rng.choice(SITE_CLASSES), rng.randrange(2), i * 10)
        for i in range(n)
    ]


def test_enumerator_exhaustive_below_threshold():
    sites = _synthetic_sites(50)
    e = CrashPointEnumerator(sites, max_sites=64)
    assert e.exhaustive
    assert e.select() == sites


def test_enumerator_sampled_selection_is_pinned():
    """The strided-sampled pick for a fixed seed is a regression surface:
    changing it silently changes which crashes every sampled campaign
    injects, so the exact selection is pinned here."""
    sites = _synthetic_sites(400, seed=3)
    e = CrashPointEnumerator(sites, max_sites=24, sample_seed=11)
    assert not e.exhaustive
    picked = [s[0] for s in e.select()]
    assert len(picked) <= 24
    assert picked == sorted(picked)
    assert picked == [s[0] for s in e.select()]  # stable across calls
    pinned = [
        s[0]
        for s in CrashPointEnumerator(
            sites, max_sites=24, sample_seed=11
        ).select()
    ]
    assert picked == pinned
    # Different seed, different interior picks (boundaries still kept).
    other = [
        s[0]
        for s in CrashPointEnumerator(
            sites, max_sites=24, sample_seed=12
        ).select()
    ]
    assert other != picked


def test_enumerator_keeps_class_boundaries():
    sites = _synthetic_sites(400, seed=3)
    picked = CrashPointEnumerator(sites, max_sites=24, sample_seed=0).select()
    by_class = {}
    for s in sites:
        by_class.setdefault(s[1], []).append(s[0])
    picked_idx = {s[0] for s in picked}
    for cls, members in by_class.items():
        assert members[0] in picked_idx, f"{cls} first site dropped"
        assert members[-1] in picked_idx, f"{cls} last site dropped"


def test_enumerator_class_filter_and_validation():
    sites = _synthetic_sites(50)
    only = CrashPointEnumerator(sites, site_classes=("commit",)).select()
    assert only and all(s[1] == "commit" for s in only)
    with pytest.raises(ConfigurationError):
        CrashPointEnumerator(sites, site_classes=("bogus",))
    with pytest.raises(ConfigurationError):
        CrashPointEnumerator(sites, max_sites=0)


# ---------------------------------------------------------------------------
# Campaign plumbing: parallel equivalence, caching, serialization
# ---------------------------------------------------------------------------


def test_parallel_campaign_matches_sequential():
    workload = LinkedListWorkload(elements=12)
    seq = run_campaign(
        workload, technique="SC", spec=FaultCampaignSpec(max_sites=40)
    )
    par = run_campaign(
        workload, technique="SC", spec=FaultCampaignSpec(max_sites=40, jobs=2)
    )
    assert par.to_dict() == seq.to_dict()


def test_campaign_result_caches(tmp_path):
    kwargs = dict(
        technique="SC",
        scale=0.02,
        spec=FaultCampaignSpec(max_sites=16),
        cache_dir=str(tmp_path),
    )
    first = run_campaign("linked-list", **kwargs)
    calls = []
    second = run_campaign(
        "linked-list", progress=lambda d, t: calls.append(d), **kwargs
    )
    assert second.to_dict() == first.to_dict()
    assert not calls  # served from the cache: no crashes re-injected


def test_matrix_roundtrip_and_markdown():
    matrix = exhaustive_campaign(
        LinkedListWorkload(elements=12), technique="SC", threads=1
    )
    again = CrashMatrix.from_dict(matrix.to_dict())
    assert again.to_dict() == matrix.to_dict()
    md = matrix.to_markdown()
    assert "zero violations" in md
    assert "| commit |" in md.replace("| commit ", "| commit ")
    with pytest.raises(ConfigurationError):
        CrashMatrix.from_dict({"schema": -1})


def test_crash_at_unreachable_site_errors():
    driver = AtlasReplayDriver(ListWorkload([FaseBegin(), Store(PA, 8, 1), FaseEnd()]))
    golden = driver.golden()
    with pytest.raises(SimulationError):
        driver.crash_at(len(golden.sites) + 10)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultCampaignSpec(fault_models=("bogus",))
    with pytest.raises(ConfigurationError):
        FaultCampaignSpec(jobs=0)


# ---------------------------------------------------------------------------
# Composed policy specs under crash injection
# ---------------------------------------------------------------------------


def test_composed_spec_campaign_zero_violations():
    """Background cleaning stays crash-safe: clean flushes are
    injectable sites, and recovery still restores every FASE."""
    matrix = exhaustive_campaign(
        LinkedListWorkload(elements=12),
        technique="SC-offline+clean:2+victim:4",
        threads=1,
        technique_options={"sc_fixed_size": 2},
    )
    assert matrix.technique == "SC-offline+clean:2+victim:4"
    assert matrix.exhaustive
    assert matrix.ok, matrix.violations[:3]
    assert matrix.injected == matrix.total_sites > 0
