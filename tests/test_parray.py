"""persistent-array: the analytically exact Table III row.

The paper gives closed-form numbers for this benchmark (§IV-B): total
stores 1 000 001, Atlas flush ratio ≈ 1/16 through spatial combining,
software cache at size 26 collapsing the ratio to ~3e-5.  These tests
assert the *exact* machine-measured values at full and reduced scale.
"""

import pytest

from repro.cache.policies import make_factory
from repro.locality.knee import select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.parray import PersistentArray


def run(workload, technique, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, make_factory(technique, **kw), num_threads=1, seed=0)


@pytest.fixture(scope="module")
def parray():
    # 1/10th of the paper's outer iterations: all ratios are identical
    # because the working set repeats every pass.
    return PersistentArray(outer=250)


def test_store_count_formula(parray):
    assert parray.total_stores == 250 * 400 + 1
    assert PersistentArray().total_stores == 1_000_001


def test_working_set_lines():
    assert PersistentArray(aligned=True).working_set_lines == 25
    assert PersistentArray(aligned=False).working_set_lines == 26


def test_machine_counts_match_formula(parray):
    res = run(parray, "BEST")
    assert res.persistent_stores == parray.total_stores
    assert res.fase_count == 1


def test_eager_ratio_is_exactly_one(parray):
    assert run(parray, "ER").flush_ratio == 1.0


def test_atlas_ratio_spatial_combining():
    """Aligned: the table removes exactly 15/16 of flushes -> 1/16."""
    aligned = PersistentArray(outer=250, aligned=True)
    res = run(aligned, "AT")
    # 25 line-visits per pass; the first 8 fill empty slots (no flush);
    # the 8 occupants drain at the FASE end; the flag store conflicts.
    assert res.flushes == 25 * 250 - 8 + 8 + 1
    assert res.flush_ratio == pytest.approx(0.0625, rel=0.01)


def test_atlas_ratio_unaligned(parray):
    res = run(parray, "AT")
    assert res.flushes == 26 * 250 - 8 + 8 + 1
    assert res.flush_ratio == pytest.approx(26 / 400, rel=0.01)


def test_lazy_is_working_set_plus_flag(parray):
    res = run(parray, "LA")
    # 26 array lines + the completion-flag line, flushed once.
    assert res.flushes == 27


def test_sc_offline_matches_lazy_bound(parray):
    res = run(parray, "SC-offline", sc_fixed_size=26)
    # One eviction (the flag displaces an array line) + 26 at the drain.
    assert res.flushes == 27
    assert res.flush_ratio == pytest.approx(27 / parray.total_stores)


def test_offline_selection_picks_26(parray):
    machine = Machine(MachineConfig())
    res = machine.run(parray, make_factory("BEST"), num_threads=1, seed=0, record_traces=True)
    assert select_cache_size(mrc_from_trace(res.traces[0])) == 26


def test_sequential_benchmark_rejects_threads(parray):
    with pytest.raises(ValueError):
        parray.streams(2, 0)


def test_technique_time_ordering(parray):
    """BEST < SC-offline < AT < ER in model time (LA's single FASE makes
    its one drain cheap, so it is excluded from this ordering)."""
    times = {
        t: run(parray, t, **({"sc_fixed_size": 26} if t == "SC-offline" else {})).time
        for t in ("ER", "AT", "SC-offline", "BEST")
    }
    assert times["BEST"] < times["SC-offline"] < times["AT"] < times["ER"]
