"""Trace persistence, text import, and the analysis CLI."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.locality.__main__ import main
from repro.locality.trace import WriteTrace
from repro.locality.traceio import (
    analyze,
    format_analysis,
    load_text_trace,
    load_trace,
    save_trace,
)


def test_npz_roundtrip(tmp_path):
    t = WriteTrace([1, 2, 1, 3], [0, 0, 1, 1])
    path = str(tmp_path / "t.npz")
    save_trace(t, path)
    back = load_trace(path)
    assert np.array_equal(back.lines, t.lines)
    assert np.array_equal(back.fase_ids, t.fase_ids)


def test_load_trace_missing_or_wrong(tmp_path):
    with pytest.raises(ConfigurationError):
        load_trace(str(tmp_path / "nope.npz"))
    bad = tmp_path / "bad.npz"
    np.savez(bad, other=np.arange(3))
    with pytest.raises(ConfigurationError):
        load_trace(str(bad))


def test_text_import(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text(
        "# a comment\n"
        "0x100 0\n"
        "0x108 0\n"       # same cache line as 0x100
        "0x140 1\n"
        "\n"
        "320 1\n"         # decimal, same line as 0x140
    )
    t = load_text_trace(str(path))
    assert t.n == 4
    assert t.lines[0] == t.lines[1]
    assert t.lines[2] == t.lines[3]
    assert t.num_fases == 2


def test_text_import_line_ids(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("5\n5\n6\n")
    t = load_text_trace(str(path), addresses_are_lines=True)
    assert list(t.lines) == [5, 5, 6]


def test_text_import_errors(tmp_path):
    empty = tmp_path / "e.txt"
    empty.write_text("# nothing\n")
    with pytest.raises(ConfigurationError):
        load_text_trace(str(empty))
    bad = tmp_path / "b.txt"
    bad.write_text("1 2 3\n")
    with pytest.raises(ConfigurationError):
        load_text_trace(str(bad))
    notnum = tmp_path / "n.txt"
    notnum.write_text("xyz\n")
    with pytest.raises(ConfigurationError):
        load_text_trace(str(notnum))


def test_analyze_summary():
    t = WriteTrace(list(range(10)) * 30)
    summary = analyze(t, honor_fases=False)
    assert summary["n"] == 300
    assert summary["distinct_lines"] == 10
    assert summary["selected_size"] in (10, 11)
    assert summary["miss_ratio_at_selected"] < 0.1
    # Theory and exact stack-distance curve agree on this steady loop.
    assert summary["exact_miss_ratio_at_selected"] == pytest.approx(
        summary["miss_ratio_at_selected"], abs=0.05
    )
    text = format_analysis(summary)
    assert "selected cache size" in text


def test_analyze_empty_rejected():
    with pytest.raises(ConfigurationError):
        analyze(WriteTrace([]))


def test_cli_npz(tmp_path, capsys):
    t = WriteTrace(list(range(6)) * 20)
    path = str(tmp_path / "t.npz")
    save_trace(t, path)
    assert main([path, "--mrc"]) == 0
    out = capsys.readouterr().out
    assert "selected cache size" in out
    assert "miss ratio" in out


def test_cli_text_no_fases(tmp_path, capsys):
    path = tmp_path / "t.txt"
    path.write_text("".join(f"{line}\n" for line in [1, 2, 1, 2] * 10))
    assert main([str(path), "--text", "--lines", "--no-fases"]) == 0
    out = capsys.readouterr().out
    assert "accesses            : 40" in out
