"""Process-parallel grids and the on-disk result cache.

Determinism contract: a grid executed with ``jobs=N`` must equal the
sequential sweep bit for bit, because each cell is a pure function of
``(HarnessConfig, name, technique, threads, ProfileSummary)``.
"""

import json
import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.harness import (
    Harness,
    HarnessConfig,
    ProfileSummary,
    execute_cell,
    sc_factory_kwargs,
)
from repro.experiments.parallel import grid_for, run_grid_parallel

CONFIG = HarnessConfig(scale=0.02, seed=7)

CELLS = [
    (name, technique, 1)
    for name in ("water-spatial", "barnes")
    for technique in ("ER", "SC", "SC-offline", "BEST")
]


def _dicts(results):
    return {cell: results[cell].to_dict() for cell in results}


def test_parallel_grid_equals_sequential():
    sequential = Harness(CONFIG).run_grid(CELLS, jobs=1)
    parallel = Harness(CONFIG).run_grid(CELLS, jobs=4)
    assert _dicts(parallel) == _dicts(sequential)


def test_full_artifact_grid_parallel_equals_sequential():
    """Every cell of every artifact — all workloads, techniques and
    thread counts — survives the worker/transport round trip bit for
    bit.  Small scale keeps this affordable (~220 cells)."""
    tiny = HarnessConfig(scale=0.005, seed=7)
    cells = grid_for(Harness(tiny), "all")
    sequential = Harness(tiny).run_grid(cells, jobs=1)
    parallel = Harness(tiny).run_grid(cells, jobs=4)
    assert _dicts(parallel) == _dicts(sequential)


def test_parallel_grid_adopts_profiles_from_workers():
    """Profile runs done inside workers for SC summaries ride home over
    shared memory, so figure2/figure7-style trace analysis needs no new
    simulation in the parent."""
    harness = Harness(CONFIG)
    cells = [("water-spatial", "SC", 1), ("water-spatial", "SC-offline", 1)]
    run_grid_parallel(harness, cells, jobs=2)
    adopted = harness._profiles.get(("water-spatial", 1))
    assert adopted is not None
    assert adopted.traces is not None and len(adopted.traces) == 1
    # profile() is now a pure cache hit (identical object, no rerun).
    assert harness.profile("water-spatial") is adopted
    # The adopted traces are usable: identical to a freshly profiled run.
    fresh = Harness(CONFIG).profile("water-spatial")
    assert [t.lines.tolist() for t in adopted.traces] == [
        t.lines.tolist() for t in fresh.traces
    ]


def test_parallel_results_land_in_harness_cache():
    harness = Harness(CONFIG)
    run_grid_parallel(harness, CELLS, jobs=2)
    # Re-requesting through the normal API must be pure cache hits:
    # identical objects, no recomputation.
    for cell in CELLS:
        assert harness.run(*cell) is harness._runs[cell]


def test_execute_cell_is_pure_and_matches_harness():
    harness = Harness(CONFIG)
    want = harness.run("water-spatial", "SC-offline", 1)
    summary = harness.profile_summary("water-spatial")
    direct = execute_cell(CONFIG, "water-spatial", "SC-offline", 1, summary)
    assert direct.to_dict() == want.to_dict()


def test_sc_factory_kwargs_requires_summary():
    harness = Harness(CONFIG)
    workload = harness.workload("water-spatial")
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        sc_factory_kwargs(CONFIG, workload, "SC", 1, None)
    assert sc_factory_kwargs(CONFIG, workload, "ER", 1, None) == {}
    kwargs = sc_factory_kwargs(
        CONFIG, workload, "SC-offline", 1,
        ProfileSummary(persistent_stores=1000, offline_size=23),
    )
    assert kwargs == {"sc_fixed_size": 23}


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------


def test_disk_cache_round_trip(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = Harness(CONFIG, cache_dir=cache_dir).run("barnes", "SC", 1)
    # A fresh harness over the same directory serves the run from disk.
    reloaded = Harness(CONFIG, cache_dir=cache_dir)
    assert reloaded.run("barnes", "SC", 1).to_dict() == first.to_dict()
    assert ("barnes", "SC", 1) in reloaded._runs
    assert any(f.endswith(".json") for f in os.listdir(cache_dir))


def test_disk_cache_profile_summary_round_trip(tmp_path):
    cache_dir = str(tmp_path / "cache")
    summary = Harness(CONFIG, cache_dir=cache_dir).profile_summary("barnes")
    reloaded = Harness(CONFIG, cache_dir=cache_dir)
    assert reloaded.profile_summary("barnes") == summary
    # Served from disk: no profile run happened in the new harness.
    assert reloaded._profiles == {}


def test_disk_cache_key_covers_the_whole_config(tmp_path):
    base = ResultCache.key(CONFIG, "run", name="barnes", technique="SC", threads=1)
    assert base == ResultCache.key(
        CONFIG, "run", name="barnes", technique="SC", threads=1
    )
    for other in (
        HarnessConfig(scale=0.02, seed=8),
        HarnessConfig(scale=0.03, seed=7),
        HarnessConfig(scale=0.02, seed=7, l1_ways=4),
    ):
        assert ResultCache.key(
            other, "run", name="barnes", technique="SC", threads=1
        ) != base
    assert ResultCache.key(
        CONFIG, "profile_summary", name="barnes", technique="SC", threads=1
    ) != base


def _hammer_cache(cache_dir, key, payload, rounds):
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        cache.put(key, payload)


def test_concurrent_writers_never_tear_an_entry(tmp_path):
    """Two processes hammering the same key must leave the entry valid
    at every instant: the temp-file + rename protocol means a reader can
    only ever observe one writer's complete payload."""
    import multiprocessing as mp

    cache_dir = str(tmp_path)
    key = "f" * 64
    path = os.path.join(cache_dir, f"{key}.json")
    payloads = [{"writer": w, "blob": "x" * 4096} for w in (0, 1)]
    ctx = mp.get_context()
    writers = [
        ctx.Process(target=_hammer_cache, args=(cache_dir, key, p, 200))
        for p in payloads
    ]
    for w in writers:
        w.start()
    observed = set()
    try:
        while any(w.is_alive() for w in writers):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    raw = fh.read()
            except FileNotFoundError:
                continue
            if raw:
                data = json.loads(raw)     # raises if torn
                assert data in payloads
                observed.add(data["writer"])
    finally:
        for w in writers:
            w.join()
    assert all(w.exitcode == 0 for w in writers)
    assert observed  # the reader actually raced the writers
    # No temp droppings left behind.
    assert [f for f in os.listdir(cache_dir) if f.startswith(".tmp-")] == []


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "0" * 64
    cache.put(key, {"x": 1})
    assert cache.get(key) == {"x": 1}
    with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None


def test_run_result_serialization_drops_traces():
    harness = Harness(CONFIG)
    result = harness.profile("water-spatial")
    data = result.to_dict()
    assert data["has_traces"] is True
    assert json.loads(json.dumps(data)) == data
    from repro.nvram.stats import RunResult

    back = RunResult.from_dict(data)
    assert back.traces is None
    assert back.to_dict() == {**data, "has_traces": False}
    assert back.flush_ratio == result.flush_ratio
    assert back.time == result.time


# ---------------------------------------------------------------------------
# Artifact grids
# ---------------------------------------------------------------------------


def test_grid_for_matches_artifact_loops():
    harness = Harness(CONFIG)
    table1 = grid_for(harness, "table1")
    assert ("barnes", "ER", 1) in table1 and ("barnes", "BEST", 1) in table1
    assert len(table1) == 14
    table2 = grid_for(harness, "table2")
    assert table2 == [
        ("mdb", t, 8) for t in ("ER", "AT", "SC", "SC-offline", "BEST")
    ]
    assert len(grid_for(harness, "table3")) == 12 * 5
    assert grid_for(harness, "figure2") == []
    everything = grid_for(harness, "all")
    assert set(grid_for(harness, "figure5")) <= set(everything)
    assert len(everything) == len(set(everything))
    with pytest.raises(KeyError):
        grid_for(harness, "figure9")
