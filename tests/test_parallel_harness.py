"""Process-parallel grids and the on-disk result cache.

Determinism contract: a grid executed with ``jobs=N`` must equal the
sequential sweep bit for bit, because each cell is a pure function of
``(HarnessConfig, name, technique, threads, ProfileSummary)``.
"""

import json
import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.harness import (
    Harness,
    HarnessConfig,
    ProfileSummary,
    execute_cell,
    sc_factory_kwargs,
)
from repro.experiments.parallel import grid_for, run_grid_parallel

CONFIG = HarnessConfig(scale=0.02, seed=7)

CELLS = [
    (name, technique, 1)
    for name in ("water-spatial", "barnes")
    for technique in ("ER", "SC", "SC-offline", "BEST")
]


def _dicts(results):
    return {cell: results[cell].to_dict() for cell in results}


def test_parallel_grid_equals_sequential():
    sequential = Harness(CONFIG).run_grid(CELLS, jobs=1)
    parallel = Harness(CONFIG).run_grid(CELLS, jobs=4)
    assert _dicts(parallel) == _dicts(sequential)


def test_parallel_results_land_in_harness_cache():
    harness = Harness(CONFIG)
    run_grid_parallel(harness, CELLS, jobs=2)
    # Re-requesting through the normal API must be pure cache hits:
    # identical objects, no recomputation.
    for cell in CELLS:
        assert harness.run(*cell) is harness._runs[cell]


def test_execute_cell_is_pure_and_matches_harness():
    harness = Harness(CONFIG)
    want = harness.run("water-spatial", "SC-offline", 1)
    summary = harness.profile_summary("water-spatial")
    direct = execute_cell(CONFIG, "water-spatial", "SC-offline", 1, summary)
    assert direct.to_dict() == want.to_dict()


def test_sc_factory_kwargs_requires_summary():
    harness = Harness(CONFIG)
    workload = harness.workload("water-spatial")
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        sc_factory_kwargs(CONFIG, workload, "SC", 1, None)
    assert sc_factory_kwargs(CONFIG, workload, "ER", 1, None) == {}
    kwargs = sc_factory_kwargs(
        CONFIG, workload, "SC-offline", 1,
        ProfileSummary(persistent_stores=1000, offline_size=23),
    )
    assert kwargs == {"sc_fixed_size": 23}


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------


def test_disk_cache_round_trip(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = Harness(CONFIG, cache_dir=cache_dir).run("barnes", "SC", 1)
    # A fresh harness over the same directory serves the run from disk.
    reloaded = Harness(CONFIG, cache_dir=cache_dir)
    assert reloaded.run("barnes", "SC", 1).to_dict() == first.to_dict()
    assert ("barnes", "SC", 1) in reloaded._runs
    assert any(f.endswith(".json") for f in os.listdir(cache_dir))


def test_disk_cache_profile_summary_round_trip(tmp_path):
    cache_dir = str(tmp_path / "cache")
    summary = Harness(CONFIG, cache_dir=cache_dir).profile_summary("barnes")
    reloaded = Harness(CONFIG, cache_dir=cache_dir)
    assert reloaded.profile_summary("barnes") == summary
    # Served from disk: no profile run happened in the new harness.
    assert reloaded._profiles == {}


def test_disk_cache_key_covers_the_whole_config(tmp_path):
    base = ResultCache.key(CONFIG, "run", name="barnes", technique="SC", threads=1)
    assert base == ResultCache.key(
        CONFIG, "run", name="barnes", technique="SC", threads=1
    )
    for other in (
        HarnessConfig(scale=0.02, seed=8),
        HarnessConfig(scale=0.03, seed=7),
        HarnessConfig(scale=0.02, seed=7, l1_ways=4),
    ):
        assert ResultCache.key(
            other, "run", name="barnes", technique="SC", threads=1
        ) != base
    assert ResultCache.key(
        CONFIG, "profile_summary", name="barnes", technique="SC", threads=1
    ) != base


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "0" * 64
    cache.put(key, {"x": 1})
    assert cache.get(key) == {"x": 1}
    with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None


def test_run_result_serialization_drops_traces():
    harness = Harness(CONFIG)
    result = harness.profile("water-spatial")
    data = result.to_dict()
    assert data["has_traces"] is True
    assert json.loads(json.dumps(data)) == data
    from repro.nvram.stats import RunResult

    back = RunResult.from_dict(data)
    assert back.traces is None
    assert back.to_dict() == {**data, "has_traces": False}
    assert back.flush_ratio == result.flush_ratio
    assert back.time == result.time


# ---------------------------------------------------------------------------
# Artifact grids
# ---------------------------------------------------------------------------


def test_grid_for_matches_artifact_loops():
    harness = Harness(CONFIG)
    table1 = grid_for(harness, "table1")
    assert ("barnes", "ER", 1) in table1 and ("barnes", "BEST", 1) in table1
    assert len(table1) == 14
    table2 = grid_for(harness, "table2")
    assert table2 == [
        ("mdb", t, 8) for t in ("ER", "AT", "SC", "SC-offline", "BEST")
    ]
    assert len(grid_for(harness, "table3")) == 12 * 5
    assert grid_for(harness, "figure2") == []
    everything = grid_for(harness, "all")
    assert set(grid_for(harness, "figure5")) <= set(everything)
    assert len(everything) == len(set(everything))
    with pytest.raises(KeyError):
        grid_for(harness, "figure9")
