"""The ``monitor`` artifact end to end: grid mode, follow mode, gating.

Everything runs headless (``--once``), the way the CI smoke invokes it;
the live dashboard path is exercised through the same renderer with a
plain stream.
"""

import io
import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.monitor import TraceTailer, build_rules
from repro.obs.live import StreamingProfile
from repro.obs.trace import TraceRecorder, EV_EVICT_FLUSH


def _trace_file(tmp_path, name="t"):
    """One traced CLI run; returns the jsonl trace path."""
    path = tmp_path / f"{name}.jsonl"
    rc = main(
        [
            "run", "--workload", "queue", "--technique", "SC",
            "--threads", "2", "--scale", "0.02", "--seed", "7",
            "--trace", str(path),
        ]
    )
    assert rc == 0
    return path


# ---------------------------------------------------------------------------
# TraceTailer
# ---------------------------------------------------------------------------


def test_tailer_holds_back_partial_lines(tmp_path):
    rec = TraceRecorder()
    rec.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    rec.record(EV_EVICT_FLUSH, 1, 20, 9, 1, 0)
    text = rec.to_jsonl()
    cut = text.rindex("\n", 0, len(text) - 1) + 10   # mid final line
    path = tmp_path / "partial.jsonl"
    path.write_text(text[:cut])

    prof = StreamingProfile(1_000)
    tailer = TraceTailer(str(path), prof)
    assert tailer.poll() == 1                        # only the complete event
    with open(path, "a", encoding="utf-8") as fh:    # the writer catches up
        fh.write(text[cut:])
    assert tailer.poll() == 1
    tailer.close()
    assert tailer.events == 2
    assert tailer.schema == rec.schema
    assert prof.finalize().provenance.evict_flushes == 2


def test_tailer_survives_rotation_and_truncation(tmp_path):
    """Regression: a rotated or truncated file must not wedge the tail.

    The tailer used to keep reading a stale handle at a stale offset
    after the writer replaced (new inode) or truncated the file — every
    subsequent poll returned 0 forever.  It now stats the *path* and
    reopens from the top, dropping any held-back partial line (those
    bytes belonged to the old file).
    """
    rec = TraceRecorder()
    rec.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    rec.record(EV_EVICT_FLUSH, 1, 20, 9, 1, 0)
    path = tmp_path / "rotating.jsonl"
    path.write_text(rec.to_jsonl())

    prof = StreamingProfile(1_000)
    tailer = TraceTailer(str(path), prof)
    assert tailer.poll() == 2
    # Leave a partial line pending, then rotate: the buffer must reset.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"kind":"evict_fl')
    assert tailer.poll() == 0

    path.unlink()                       # mid-rotation: path briefly absent
    assert tailer.poll() == 0           # no raise, just quiet

    rec2 = TraceRecorder()
    rec2.record(EV_EVICT_FLUSH, 0, 30, 7, 1, 0)
    rec2.record(EV_EVICT_FLUSH, 0, 40, 8, 1, 0)
    rec2.record(EV_EVICT_FLUSH, 0, 50, 9, 1, 0)
    path.write_text(rec2.to_jsonl())    # new inode
    assert tailer.poll() == 3           # reread from offset 0, buffer dropped

    rec3 = TraceRecorder()
    rec3.record(EV_EVICT_FLUSH, 0, 60, 4, 1, 0)
    path.write_text(rec3.to_jsonl())    # same path, now *shorter*: truncation
    assert tailer.poll() == 1
    tailer.close()
    assert tailer.events == 6


def test_tailer_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind":"martian","tid":0,"ts":1}\n')
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        TraceTailer(str(path), StreamingProfile(100)).poll()
    path.write_text("not json\n")
    with pytest.raises(ConfigurationError):
        TraceTailer(str(path), StreamingProfile(100)).poll()


# ---------------------------------------------------------------------------
# rule assembly
# ---------------------------------------------------------------------------


def test_build_rules_overrides_defaults_by_name():
    rules = {r.name: r for r in build_rules(["resize_storm: selections > 99"])}
    assert rules["resize_storm"].value == 99.0      # replaced, not duplicated
    assert "stall_share_slo" in rules               # other defaults intact
    extra = {r.name for r in build_rules(["mine: events > 1 @info"])}
    assert "mine" in extra


def test_build_rules_base_swaps_the_stock_set():
    from repro.obs.fleet import fleet_rules

    rules = {
        r.name: r
        for r in build_rules(
            ["dead_worker: dead_workers > 5"], base=fleet_rules()
        )
    }
    assert rules["dead_worker"].value == 5.0        # override still by name
    assert "straggler_ratio" in rules               # fleet defaults intact
    assert "stall_share_slo" not in rules           # single-run set swapped out


# ---------------------------------------------------------------------------
# CLI: follow mode
# ---------------------------------------------------------------------------


def test_cli_monitor_follow_once(tmp_path, capsys):
    trace = _trace_file(tmp_path)
    json_out = tmp_path / "summary.json"
    log = tmp_path / "alerts.jsonl"
    rc = main(
        [
            "monitor", "--follow", str(trace), "--once",
            "--window", "50000", "--json", str(json_out),
            "--alert-log", str(log),
        ]
    )
    assert rc == 0                                   # seed run: no error alerts
    doc = json.loads(json_out.read_text())
    assert doc["mode"] == "follow"
    assert doc["events"] > 0
    assert doc["windows_closed"] > 1
    assert doc["profile"]["schema"] == 3
    assert log.exists()                              # created even when silent


def test_cli_monitor_follow_matches_offline_profile(tmp_path, capsys):
    from repro.obs.analyze import analyze
    from repro.obs.trace import read_jsonl

    trace = _trace_file(tmp_path)
    json_out = tmp_path / "summary.json"
    rc = main(["monitor", "--follow", str(trace), "--once", "--json", str(json_out)])
    assert rc == 0
    streamed = json.loads(json_out.read_text())["profile"]
    offline = analyze(read_jsonl(str(trace))).to_dict()
    assert streamed == offline


def test_cli_monitor_fail_on_gates_exit_code(tmp_path, capsys):
    trace = _trace_file(tmp_path)
    # A rule every window trivially breaches, promoted to error.
    args = [
        "monitor", "--follow", str(trace), "--once",
        "--rule", "everything: events >= 0 @error",
    ]
    assert main(args) == 1
    assert main(args + ["--fail-on", "never"]) == 0
    capsys.readouterr()


def test_cli_monitor_rejects_bad_rule(tmp_path, capsys):
    trace = _trace_file(tmp_path)
    rc = main(["monitor", "--follow", str(trace), "--rule", "not a rule"])
    assert rc == 2
    assert "unparseable" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI: grid mode
# ---------------------------------------------------------------------------


def test_cli_monitor_grid_once_json(tmp_path, capsys):
    json_out = tmp_path / "summary.json"
    log = tmp_path / "alerts.jsonl"
    rc = main(
        [
            "monitor", "--grid", "table1", "--scale", "0.02", "--seed", "7",
            "--jobs", "2", "--once", "--json", str(json_out),
            "--alert-log", str(log),
        ]
    )
    assert rc == 0
    doc = json.loads(json_out.read_text())
    assert doc["mode"] == "grid"
    assert doc["cells_done"] == doc["cells_total"] > 0
    assert len(doc["snapshots"]) == doc["cells_done"]
    assert {"cell", "stall_share", "selections"} <= set(doc["snapshots"][0])
    # Zero error alerts on the seed grid — the CI smoke contract.
    assert not [a for a in doc["alerts"] if a["severity"] == "error"]


def test_monitor_grid_renders_dashboard(capsys):
    from repro.experiments.harness import Harness, HarnessConfig
    from repro.experiments.monitor import monitor_grid
    from repro.obs.live import AlertEngine

    stream = io.StringIO()
    with AlertEngine() as engine:
        summary = monitor_grid(
            Harness(HarnessConfig(scale=0.02, seed=7)),
            "table1",
            engine=engine,
            refresh=0.0,
            once=False,                  # exercise the live renderer
            stream=stream,
        )
    out = stream.getvalue()
    assert "repro live monitor" in out
    assert "alerts:" in out
    assert summary["cells_done"] == summary["cells_total"]


# ---------------------------------------------------------------------------
# CLI: fleet mode
# ---------------------------------------------------------------------------


def test_cli_monitor_fleet_grid_once_then_follow(tmp_path, capsys):
    json_out = tmp_path / "fleet.json"
    span = tmp_path / "spans.json"
    flog = tmp_path / "fleet.jsonl"
    log = tmp_path / "alerts.jsonl"
    rc = main(
        [
            "monitor", "--fleet", "--grid", "adaptation",
            "--scale", "0.02", "--seed", "7", "--jobs", "2", "--once",
            "--json", str(json_out), "--span-export", str(span),
            "--fleet-log", str(flog), "--alert-log", str(log),
        ]
    )
    assert rc == 0                          # no dead workers on the seed grid
    doc = json.loads(json_out.read_text())
    assert doc["mode"] == "fleet-grid"
    snap = doc["fleet"]
    assert snap["tasks_done"] == snap["tasks_total"] > 0
    assert snap["dead_workers"] == 0 and snap["errors"] == 0
    assert len(doc["workers"]) == 2
    assert all(w["status"] == "done" for w in doc["workers"])
    # The span export is valid Perfetto trace_event JSON for this pool.
    spans = json.loads(span.read_text())
    assert spans["otherData"]["jobs"] == 2
    assert spans["otherData"]["tasks"] == snap["tasks_total"]
    assert any(e["ph"] == "X" for e in spans["traceEvents"])

    # The spill replays to the same fleet state in another process.
    out2 = tmp_path / "follow.json"
    rc2 = main(
        [
            "monitor", "--fleet", "--follow", str(flog), "--once",
            "--json", str(out2),
        ]
    )
    assert rc2 == 0
    followed = json.loads(out2.read_text())
    assert followed["mode"] == "fleet-follow"
    assert followed["events"] > 0
    assert followed["fleet"]["tasks_done"] == snap["tasks_done"]
    assert followed["workers"] == doc["workers"]


def test_cli_monitor_fleet_campaign_once(tmp_path, capsys):
    json_out = tmp_path / "campaign.json"
    rc = main(
        [
            "monitor", "--fleet", "--campaign",
            "--workloads", "linked-list", "--techniques", "SC",
            "--scale", "0.01", "--max-sites", "20",
            "--jobs", "2", "--once", "--json", str(json_out),
        ]
    )
    assert rc == 0
    doc = json.loads(json_out.read_text())
    assert doc["mode"] == "fleet-campaign"
    assert doc["workload"] == "linked-list" and doc["technique"] == "SC"
    assert doc["matrix_ok"] is True
    assert doc["injected"] > 0
    # Per-crash progress events folded into the site-class table.
    assert sum(c["done"] for c in doc["site_classes"].values()) == doc["injected"]


def test_cli_monitor_fleet_rejects_single_job(tmp_path, capsys):
    rc = main(
        ["monitor", "--fleet", "--grid", "table1", "--jobs", "1", "--once"]
    )
    assert rc == 2
    assert "--jobs >= 2" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# profile --top-k rides along
# ---------------------------------------------------------------------------


def test_cli_profile_top_k(tmp_path, capsys):
    trace = _trace_file(tmp_path)
    json_out = tmp_path / "p.json"
    rc = main(
        ["profile", "--trace", str(trace), "--top-k", "2",
         "--json", str(json_out)]
    )
    assert rc == 0
    doc = json.loads(json_out.read_text())
    assert len(doc["provenance"]["top_lines"]) <= 2
    assert main(["profile", "--trace", str(trace), "--top-k", "0"]) == 2
    capsys.readouterr()


def test_cli_profile_json_dash_writes_stdout(tmp_path, capsys):
    trace = _trace_file(tmp_path)
    capsys.readouterr()                     # drain the run artifact's output
    rc = main(["profile", "--trace", str(trace), "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 3
