"""The repro.obs trace recorder and metrics registry in isolation."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    ARG_NAMES,
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_SIZE_SELECTED,
    EVENT_KINDS,
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    parse_jsonl,
)


def test_record_and_read_back():
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 10, 1)
    rec.record(EV_EVICT_FLUSH, 1, 20, 42, 1)
    rec.record(EV_FASE_END, 0, 30, 1)
    assert len(rec) == 3
    events = list(rec.events())
    assert events[0] == TraceEvent(EV_FASE_BEGIN, 0, 10, 1, 0)
    assert events[1] == TraceEvent(EV_EVICT_FLUSH, 1, 20, 42, 1, 0)
    assert rec.events_of(EV_FASE_END) == [TraceEvent(EV_FASE_END, 0, 30, 1, 0)]
    assert rec.counts() == {EV_EVICT_FLUSH: 1, EV_FASE_BEGIN: 1, EV_FASE_END: 1}
    rec.clear()
    assert len(rec) == 0
    assert rec.counts() == {}
    # An empty trace is still a valid schema-2 document: header only.
    assert json.loads(rec.to_jsonl()) == {
        "kind": "trace_meta",
        "schema": TRACE_SCHEMA_VERSION,
    }


def test_every_kind_has_arg_names():
    assert set(ARG_NAMES) == set(EVENT_KINDS)


def test_jsonl_uses_decoded_arg_names_and_sorted_keys():
    rec = TraceRecorder()
    rec.record(EV_DRAIN, 2, 100, 7, 3, 5)
    header, line = rec.to_jsonl().splitlines()
    assert json.loads(header) == {"kind": "trace_meta", "schema": 3}
    doc = json.loads(line)
    assert doc == {
        "kind": "drain",
        "tid": 2,
        "ts": 100,
        "stall_cycles": 7,
        "outstanding": 3,
        "fase_id": 5,
    }
    # Dumped with sort_keys, so the textual key order is sorted.
    assert list(doc) == sorted(doc)


def test_jsonl_round_trips_every_kind():
    rec = TraceRecorder()
    for i, kind in enumerate(EVENT_KINDS):
        rec.record(kind, i % 3, 10 * i, i, i + 1, i + 2)
    back = parse_jsonl(rec.to_jsonl())
    assert back.schema == TRACE_SCHEMA_VERSION
    # Args whose name is None are not serialized, so they return as 0.
    expected = []
    for e in rec.events():
        names = ARG_NAMES[e.kind]
        expected.append(
            TraceEvent(
                e.kind,
                e.thread_id,
                e.time,
                e.a if names[0] else 0,
                e.b if names[1] else 0,
                e.c if names[2] else 0,
            )
        )
    assert list(back.events()) == expected


def test_fast_encoder_matches_json_reference_for_every_kind():
    """The template-based ``encode_event_line`` must emit exactly what
    the json.dumps reference emits — for every known kind, including
    negative and huge int64 arguments — and fall back to the reference
    for unknown kinds."""
    from repro.obs.trace import encode_event_line, encode_event_line_json

    arg_sets = [
        (0, 0, 0, 0, 0),
        (3, 123_456, 7, -1, 42),
        (255, 2 ** 62, -(2 ** 62), 2 ** 63 - 1, -(2 ** 63)),
    ]
    for kind in EVENT_KINDS:
        for tid, ts, a, b, c in arg_sets:
            assert encode_event_line(kind, tid, ts, a, b, c) == (
                encode_event_line_json(kind, tid, ts, a, b, c)
            ), kind
    assert encode_event_line("no-such-kind", 1, 2, 3, 4, 5) == (
        encode_event_line_json("no-such-kind", 1, 2, 3, 4, 5)
    )


def test_parse_jsonl_reads_schema1_with_defaults():
    # A PR-2 document: no trace_meta header, no resize_evict/fase_id.
    text = (
        '{"dirty":1,"kind":"evict_flush","line":42,"tid":0,"ts":10}\n'
        '{"kind":"drain","outstanding":3,"stall_cycles":7,"tid":0,"ts":20}\n'
    )
    rec = parse_jsonl(text)
    assert rec.schema == 1
    flush, drain = rec.events()
    assert flush.c == 0      # resize_evict defaults to "not resize-forced"
    assert drain.c == -1     # fase_id defaults to "unattributed"


def test_parse_jsonl_rejects_garbage():
    with pytest.raises(ConfigurationError):
        parse_jsonl('{"kind":"no_such_event","tid":0,"ts":0}\n')
    with pytest.raises(ConfigurationError):
        parse_jsonl("not json\n")
    with pytest.raises(ConfigurationError):
        parse_jsonl('{"kind":"trace_meta","schema":99}\n')


def test_chrome_export_structure():
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 10, 1)
    rec.record(EV_SIZE_SELECTED, 0, 15, 8)
    rec.record(EV_FASE_BEGIN, 1, 12, 2)
    rec.record(EV_FASE_END, 1, 30, 2)
    rec.record(EV_FASE_END, 0, 40, 1)
    doc = rec.to_chrome()
    events = doc["traceEvents"]
    # One thread_name metadata record per track, first.
    meta = [e for e in events if e["ph"] == "M"]
    assert [m["tid"] for m in meta] == [0, 1]
    # Every fase_begin/fase_end becomes a balanced B/E span per thread.
    for tid in (0, 1):
        phases = [e["ph"] for e in events if e["ph"] in "BE" and e["tid"] == tid]
        assert phases == ["B", "E"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == EV_SIZE_SELECTED
    assert instants[0]["args"] == {"size": 8}
    # The document is plain-JSON serializable.
    json.dumps(doc)


def test_write_exports(tmp_path):
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 1, 1)
    jsonl = tmp_path / "t.jsonl"
    chrome = tmp_path / "t.json"
    rec.write_jsonl(str(jsonl))
    rec.write_chrome(str(chrome))
    assert jsonl.read_text() == rec.to_jsonl()
    assert json.loads(chrome.read_text()) == rec.to_chrome()


def test_iter_jsonl_streams_lines_lazily():
    import types

    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 1, 1)
    rec.record(EV_EVICT_FLUSH, 1, 2, 9, 1, 0)
    it = rec.iter_jsonl()
    assert isinstance(it, types.GeneratorType)
    lines = list(it)
    # header + one line per event, each newline-terminated, and joining
    # them reproduces the document byte for byte.
    assert len(lines) == 3
    assert all(line.endswith("\n") for line in lines)
    assert "".join(lines) == rec.to_jsonl()


def test_write_jsonl_streams_byte_identically(tmp_path):
    rec = TraceRecorder()
    for i in range(50):
        rec.record(EV_EVICT_FLUSH, i % 3, 10 * i, i, 1, 0)
        rec.record(EV_DRAIN, i % 3, 10 * i + 5, 3, 3, i)
    path = tmp_path / "t.jsonl"
    rec.write_jsonl(str(path))
    assert path.read_text() == rec.to_jsonl()
    assert parse_jsonl(path.read_text()).counts() == rec.counts()


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    assert TraceRecorder.enabled is True
    assert isinstance(NULL_RECORDER, NullRecorder)
    assert len(NULL_RECORDER) == 0
    NULL_RECORDER.record(EV_FASE_BEGIN, 0, 0, 1)
    assert len(NULL_RECORDER) == 0


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


def test_metrics_counters_and_gauges():
    m = MetricsRegistry(interval=100)
    m.inc("flushes")
    m.inc("flushes", 4)
    m.set_gauge("cycles/t0", 123.0)
    assert m.counters["flushes"] == 5
    assert m.gauges["cycles/t0"] == 123.0


def test_metrics_due_schedule_is_per_key():
    m = MetricsRegistry(interval=100)
    assert m.due("t0", 0) is True
    assert m.due("t0", 50) is False
    assert m.due("t0", 100) is True
    assert m.due("t0", 350) is True    # schedule advances from observed time
    assert m.due("t1", 40) is True     # keys are independent


def test_metrics_due_anchors_at_explicit_start():
    """A series born mid-run anchors its schedule at ``start`` instead of
    phantom-sampling at cycle 0."""
    m = MetricsRegistry(interval=100)
    assert m.due("sel", 40, start=500) is False   # not yet born
    assert m.due("sel", 499, start=500) is False
    assert m.due("sel", 500, start=500) is True
    assert m.due("sel", 550, start=500) is False  # interval now applies
    assert m.due("sel", 600, start=500) is True
    # start only matters for the key's first observation.
    assert m.due("sel", 700, start=0) is True


def test_metrics_series_and_errors():
    m = MetricsRegistry(interval=10)
    m.sample("depth/t0", 0, 1.0)
    m.sample("depth/t0", 10, 2.5)
    ts, vs = m.series("depth/t0")
    assert ts == [0, 10]
    assert vs == [1.0, 2.5]
    assert m.series_names() == ["depth/t0"]
    with pytest.raises(ConfigurationError):
        m.series("nope")
    with pytest.raises(ConfigurationError):
        MetricsRegistry(interval=0)


def test_metrics_json_round_trips(tmp_path):
    m = MetricsRegistry(interval=10)
    m.inc("c")
    m.set_gauge("g", 2.0)
    m.sample("s", 0, 1.0)
    path = tmp_path / "m.json"
    m.write_json(str(path))
    assert json.loads(path.read_text()) == m.to_dict()
    assert m.to_dict()["interval"] == 10


def test_max_points_decimates_series_in_place():
    m = MetricsRegistry(interval=10, max_points=4)
    for i in range(5):
        m.sample("depth", i * 10, float(i))
    # Exceeding the cap keeps every other point (the decimated series
    # still spans the run; interval granularity halves).
    ts, vs = m.series("depth")
    assert ts == [0, 20, 40]
    assert vs == [0.0, 2.0, 4.0]
    assert m.to_dict()["max_points"] == 4
    with pytest.raises(ConfigurationError):
        MetricsRegistry(interval=10, max_points=1)


def test_max_points_default_is_unbounded():
    m = MetricsRegistry(interval=10)
    for i in range(100):
        m.sample("depth", i * 10, float(i))
    assert len(m.series("depth")[0]) == 100
    assert m.to_dict()["max_points"] is None
