"""The fleet telemetry bus: emitters, aggregator fold, pool recovery.

Unit tests drive the aggregator with synthetic event dicts (the fold is
transport-agnostic); integration tests run real fork-once pools — a
monkeypatched nap pool for the controlled dead-worker scenario, a real
harness grid for the kill-mid-grid satellite, and a small crash campaign
for the per-site-class progress feed.
"""

import json
import os
import signal
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.harness import Harness, HarnessConfig
from repro.experiments.transport import WorkerPool
from repro.obs.fleet import (
    FE_RESOURCE_SAMPLE,
    FE_TASK_CLAIMED,
    FLEET_META_KIND,
    FLEET_SCHEMA_VERSION,
    FleetAggregator,
    FleetEmitter,
    FleetTelemetry,
    ResourceSampler,
    fleet_rules,
    read_rss_kb,
)
from repro.obs.metrics import MetricsRegistry, nearest_rank


class _ListQueue:
    def __init__(self):
        self.items = []

    def put(self, doc):
        self.items.append(doc)


class _BrokenQueue:
    def put(self, doc):
        raise OSError("parent is gone")


# ---------------------------------------------------------------------------
# nearest-rank percentile + registry helpers (satellite 1)
# ---------------------------------------------------------------------------


def test_nearest_rank_matches_analyzer_idiom():
    values = [10, 20, 30, 40, 50]
    assert nearest_rank(values, 0.5) == 30
    assert nearest_rank(values, 0.95) == 50
    assert nearest_rank(values, 0.0) == 10
    assert nearest_rank(values, 1.0) == 50
    assert nearest_rank([7], 0.99) == 7
    assert nearest_rank([], 0.5) == 0
    # Even-length median is the lower-of-two (nearest rank, not midpoint).
    assert nearest_rank([1, 2, 3, 4], 0.5) == 2
    with pytest.raises(ConfigurationError):
        nearest_rank(values, 1.5)


def test_nearest_rank_is_the_analyzers_percentile():
    from repro.obs.analyze import _percentile

    assert _percentile is nearest_rank


def test_registry_series_percentile_and_histogram():
    reg = MetricsRegistry(interval=1)
    for i, v in enumerate([5, 1, 9, 3, 7]):
        reg.sample("lat", i, v)
    assert reg.series_percentile("lat", 0.5) == 5
    assert reg.series_percentile("lat", 1.0) == 9
    hist = reg.series_histogram("lat", bins=4)
    assert len(hist) == 4
    assert sum(count for _lo, _hi, count in hist) == 5
    assert hist[0][0] == 1.0 and hist[-1][1] == 9.0
    # Boundary values land in the last bucket, none are dropped.
    assert hist[-1][2] >= 1
    with pytest.raises(ConfigurationError):
        reg.series_percentile("nope", 0.5)
    with pytest.raises(ConfigurationError):
        reg.series_histogram("lat", bins=0)


def test_registry_histogram_constant_series_collapses():
    reg = MetricsRegistry(interval=1)
    for i in range(3):
        reg.sample("flat", i, 42)
    assert reg.series_histogram("flat", bins=8) == [(42.0, 42.0, 3)]


def test_registry_empty_series_raises_typed_error():
    """Percentile/histogram of an empty series is a caller bug (typed
    error), never an IndexError and never a fake 0 — 0 is a legal
    sample value, so it cannot double as a no-data sentinel."""
    reg = MetricsRegistry(interval=1)
    reg.ensure_series("pending")
    assert reg.series("pending") == ([], [])
    assert "pending" in reg.series_names()
    with pytest.raises(ConfigurationError):
        reg.series_percentile("pending", 0.5)
    with pytest.raises(ConfigurationError):
        reg.series_histogram("pending")


def test_registry_single_sample_series_is_well_defined():
    reg = MetricsRegistry(interval=1)
    reg.sample("one", 0, 7.0)
    for q in (0.0, 0.5, 0.95, 1.0):
        assert reg.series_percentile("one", q) == 7.0
    assert reg.series_histogram("one", bins=10) == [(7.0, 7.0, 1)]


def test_ensure_series_is_idempotent_and_shared():
    reg = MetricsRegistry(interval=1)
    first = reg.ensure_series("s")
    reg.sample("s", 0, 1.0)
    assert reg.ensure_series("s") is first
    assert first == ([0], [1.0])
    # Pre-declared empty series appear in the export snapshot.
    reg.ensure_series("empty")
    assert reg.to_dict()["series"]["empty"] == {"t": [], "v": []}


# ---------------------------------------------------------------------------
# emitter + sampler
# ---------------------------------------------------------------------------


def test_emitter_event_shapes():
    q = _ListQueue()
    em = FleetEmitter(q, worker=3)
    em.worker_started()
    em.task_claimed(7, "cells", "queue/t1×2")
    assert em.current_task == 7
    em.task_progress({"site": 1, "violated": False})
    em.task_finished(7, "cells", True, 0.25, 0.2)
    assert em.current_task is None
    em.worker_stopped(done=1)
    kinds = [d["ev"] for d in q.items]
    assert kinds == [
        "worker_start", "task_claimed", "task_progress",
        "task_finished", "worker_stop",
    ]
    assert all(d["w"] == 3 and "t" in d for d in q.items)
    assert q.items[2]["task"] == 7  # progress is tagged with the claim


def test_emitter_swallows_queue_errors():
    em = FleetEmitter(_BrokenQueue(), worker=0)
    em.worker_started()  # must not raise
    em.task_error(1, "x" * 5000)


def test_emitter_truncates_tracebacks():
    q = _ListQueue()
    FleetEmitter(q, 0).task_error(1, "x" * 5000)
    assert len(q.items[0]["traceback"]) == 2000


def test_sampler_emits_and_stops():
    q = _ListQueue()
    sampler = ResourceSampler(FleetEmitter(q, 0), interval=0.01)
    sampler.start()
    deadline = time.time() + 2.0
    while not q.items and time.time() < deadline:
        time.sleep(0.01)
    sampler.stop()
    sampler.join(timeout=2.0)
    assert q.items and q.items[0]["ev"] == FE_RESOURCE_SAMPLE
    assert q.items[0]["rss_kb"] > 0
    with pytest.raises(ConfigurationError):
        ResourceSampler(FleetEmitter(q, 0), interval=0)


def test_read_rss_kb_positive():
    assert read_rss_kb() > 0


# ---------------------------------------------------------------------------
# aggregator fold
# ---------------------------------------------------------------------------


def _ev(ev, w=0, t=1.0, **kw):
    doc = {"ev": ev, "w": w, "t": t}
    doc.update(kw)
    return doc


def test_aggregator_folds_a_worker_lifecycle():
    agg = FleetAggregator(tasks_total=2)
    agg.observe(_ev("worker_start", pid=1234, t=1.0))
    agg.observe(_ev("task_claimed", task=0, kind="cells", label="q/t1×2", t=1.1))
    state = agg.workers[0]
    assert state.pid == 1234 and state.alive
    assert state.current["label"] == "q/t1×2"
    assert agg.in_flight(0) == [0]
    agg.observe(_ev("task_finished", task=0, kind="cells", ok=True,
                    wall_s=0.5, cpu_s=0.4, t=1.6))
    assert state.done == 1 and state.current is None and not state.claims
    assert state.busy_wall_s == pytest.approx(0.5)
    agg.observe(_ev("resource_sample", rss_kb=2048, cpu_pct=75.0, t=1.7))
    assert state.rss_kb == 2048 and state.rss_peak_kb == 2048
    assert "rss_kb/w0" in agg.metrics.series_names()
    agg.observe(_ev("worker_stop", done=1, t=2.0))
    assert state.stopped and not state.alive
    snap = agg.snapshot(now=2.0)
    assert snap["tasks_done"] == 1 and snap["tasks_total"] == 2
    assert snap["workers"] == 1 and snap["workers_alive"] == 0
    assert snap["max_worker_rss_mb"] == pytest.approx(2.0)


def test_aggregator_dead_event_clears_claims():
    agg = FleetAggregator()
    agg.observe(_ev("worker_start", pid=1, t=1.0))
    agg.observe(_ev("task_claimed", task=5, kind="cells", label="x", t=1.1))
    agg.observe(_ev("worker_dead", exitcode=-9, t=1.2))
    state = agg.workers[0]
    assert state.dead and state.exitcode == -9 and state.current is None
    # The claim set is what the pool resubmits from — it must survive.
    assert agg.in_flight(0) == [5]
    assert agg.snapshot()["dead_workers"] == 1
    assert state.status() == "dead(-9)"


def test_aggregator_folds_campaign_progress():
    agg = FleetAggregator()
    agg.observe(_ev("task_progress", task=0,
                    info={"site": 3, "site_class": "store", "violated": True}))
    agg.observe(_ev("task_progress", task=0, w=1,
                    info={"site": 4, "site_class": "store", "violated": False}))
    assert agg.site_classes == {"store": {"done": 2, "violated": 1}}
    assert agg.workers[0].violations == 1
    assert agg.workers[1].violations == 0


def test_aggregator_rejects_unknown_events_and_newer_schema():
    agg = FleetAggregator()
    with pytest.raises(ConfigurationError):
        agg.observe({"ev": "martian", "w": 0, "t": 1.0})
    with pytest.raises(ConfigurationError):
        agg.observe({"ev": FLEET_META_KIND, "schema": FLEET_SCHEMA_VERSION + 1})
    agg.observe({"ev": FLEET_META_KIND, "schema": FLEET_SCHEMA_VERSION})


def test_aggregator_keeps_last_five_tracebacks():
    agg = FleetAggregator()
    for i in range(8):
        agg.observe(_ev("task_error", task=i, traceback=f"boom {i}"))
    assert len(agg.tracebacks) == 5
    assert agg.tracebacks[-1][1] == "boom 7"


def test_spill_replays_to_identical_worker_state(tmp_path):
    spill = tmp_path / "fleet.jsonl"
    agg = FleetAggregator(spill_path=str(spill))
    agg.observe(_ev("worker_start", pid=42, t=1.0))
    agg.observe(_ev("task_claimed", task=0, kind="cells", label="q", t=1.1))
    agg.observe(_ev("task_finished", task=0, kind="cells", ok=True,
                    wall_s=0.3, cpu_s=0.2, t=1.4))
    agg.observe(_ev("worker_stop", done=1, t=2.0))
    agg.close()

    replayed = FleetAggregator()
    for line in spill.read_text().splitlines():
        replayed.observe(json.loads(line))
    assert replayed.workers[0].to_dict() == agg.workers[0].to_dict()
    assert replayed.events == agg.events
    # The spill leads with its schema header.
    first = json.loads(spill.read_text().splitlines()[0])
    assert first == {"ev": FLEET_META_KIND, "schema": FLEET_SCHEMA_VERSION}


def test_fleet_rules_cover_the_fleet_failure_modes():
    rules = {r.name: r for r in fleet_rules()}
    assert rules["dead_worker"].severity == "error"
    assert rules["straggler_ratio"].kind == "sustained"
    assert rules["worker_rss_ceiling"].metric == "max_worker_rss_mb"


def test_telemetry_worker_args_requires_attach():
    tele = FleetTelemetry()
    with pytest.raises(ConfigurationError):
        tele.worker_args(0)
    assert tele.pump() == 0  # no bus yet: a no-op, not an error


# ---------------------------------------------------------------------------
# pool integration: recovery from a killed worker (satellite 3)
# ---------------------------------------------------------------------------


def _nap_handlers(config, cache_dir, emitter=None):
    def nap(seconds):
        time.sleep(seconds)
        return seconds

    return {"nap": nap}


def _wait_for_claim(tele, min_age, timeout=15.0):
    """Pump until some worker has held a claim for ``min_age`` seconds."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        tele.pump()
        for state in tele.aggregator.workers.values():
            current = state.current
            if (
                current is not None
                and state.pid
                and time.time() - current["since"] >= min_age
            ):
                return state
        time.sleep(0.02)
    return None


def test_pool_recovers_from_sigkilled_worker(monkeypatch):
    import repro.experiments.parallel as parallel

    monkeypatch.setattr(parallel, "make_task_handlers", _nap_handlers)
    tele = FleetTelemetry()
    results = []
    with WorkerPool(2, (None, None), telemetry=tele) as pool:
        for _ in range(5):
            pool.submit("nap", 0.4)
        # Kill a worker that is provably inside its handler (the claim
        # is old enough that it cannot still hold the task-queue lock).
        victim = _wait_for_claim(tele, min_age=0.05)
        assert victim is not None, "no worker claimed a task in time"
        os.kill(victim.pid, signal.SIGKILL)
        while pool.outstanding:
            results.append(pool.next_result())
    # Every task completed despite the kill: the dead worker's in-flight
    # nap was resubmitted to the survivor.
    assert sorted(r[1] for r in results) == [0.4] * 5
    agg = tele.aggregator
    dead = [w for w in agg.workers.values() if w.dead]
    assert len(dead) == 1
    assert dead[0].worker == victim.worker
    assert dead[0].exitcode == -signal.SIGKILL
    assert agg.snapshot()["dead_workers"] == 1


def test_pool_without_telemetry_still_raises_on_dead_worker(monkeypatch):
    import repro.experiments.parallel as parallel

    monkeypatch.setattr(parallel, "make_task_handlers", _nap_handlers)
    with WorkerPool(2, (None, None)) as pool:
        for proc in pool._procs:
            proc.terminate()
        pool.submit("nap", 0.1)
        with pytest.raises(RuntimeError, match="died"):
            pool.next_result()


def test_all_workers_dead_with_telemetry_raises(monkeypatch):
    import repro.experiments.parallel as parallel

    monkeypatch.setattr(parallel, "make_task_handlers", _nap_handlers)
    tele = FleetTelemetry()
    with WorkerPool(2, (None, None), telemetry=tele) as pool:
        pool.submit("nap", 30.0)
        pool.submit("nap", 30.0)
        assert _wait_for_claim(tele, min_age=0.05) is not None
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGKILL)
        with pytest.raises(RuntimeError, match="all worker processes died"):
            pool.next_result()


# ---------------------------------------------------------------------------
# grid + campaign integration
# ---------------------------------------------------------------------------

_CELLS = [
    ("queue", "ER", 1),
    ("queue", "LA", 1),
    ("hash", "ER", 1),
    ("linked-list", "ER", 1),
]


def test_grid_with_telemetry_and_deterministic_spans(tmp_path):
    spans = [tmp_path / "a.json", tmp_path / "b.json"]
    for span in spans:
        tele = FleetTelemetry(span_path=str(span), sample_interval=0.05)
        harness = Harness(HarnessConfig(scale=0.02, seed=7))
        with tele:
            results = harness.run_grid(_CELLS, jobs=2, telemetry=tele)
        assert len(results) == len(_CELLS)
        snap = tele.aggregator.snapshot()
        assert snap["tasks_done"] == snap["tasks_total"] == 3  # 3 groups
        assert snap["dead_workers"] == 0 and snap["errors"] == 0
    # Byte-identical across two identical runs — the racy pool timing
    # never leaks into the export.
    assert spans[0].read_bytes() == spans[1].read_bytes()
    doc = json.loads(spans[0].read_text())
    assert doc["otherData"]["tasks"] == 3
    # Grid results unaffected by telemetry: match a sequential harness.
    plain = Harness(HarnessConfig(scale=0.02, seed=7)).run_grid(_CELLS)
    tele_res = Harness(HarnessConfig(scale=0.02, seed=7))
    with FleetTelemetry() as tele2:
        res2 = tele_res.run_grid(_CELLS, jobs=2, telemetry=tele2)
    assert {c: r.to_dict() for c, r in plain.items()} == {
        c: r.to_dict() for c, r in res2.items()
    }


def test_grid_survives_worker_killed_mid_flight():
    killed = {}

    def assassin(agg):
        if killed:
            return
        for state in agg.workers.values():
            current = state.current
            if (
                current is not None
                and state.pid
                and time.time() - current["since"] > 0.02
            ):
                os.kill(state.pid, signal.SIGKILL)
                killed["worker"] = state.worker
                return

    tele = FleetTelemetry(sample_interval=0.02, on_pump=assassin)
    harness = Harness(HarnessConfig(scale=0.05, seed=7))
    with tele:
        results = harness.run_grid(_CELLS, jobs=2, telemetry=tele)
    assert killed, "assassin never fired"
    # The grid still completed, and the death surfaced through the bus.
    assert len(results) == len(_CELLS)
    agg = tele.aggregator
    assert agg.workers[killed["worker"]].dead
    assert agg.snapshot()["dead_workers"] == 1


def test_campaign_with_telemetry_matches_sequential(tmp_path):
    from repro.faults.campaign import FaultCampaignSpec, run_campaign

    span = tmp_path / "campaign-spans.json"
    tele = FleetTelemetry(span_path=str(span))
    kwargs = dict(
        technique="SC", threads=2, scale=0.01,
    )
    with tele:
        parallel_matrix = run_campaign(
            "linked-list",
            spec=FaultCampaignSpec(max_sites=30, jobs=2),
            telemetry=tele,
            **kwargs,
        )
    sequential_matrix = run_campaign(
        "linked-list", spec=FaultCampaignSpec(max_sites=30, jobs=1), **kwargs
    )
    assert parallel_matrix.to_dict() == sequential_matrix.to_dict()
    # Per-crash progress folded by site class, and the span file exists.
    agg = tele.aggregator
    assert agg.site_classes
    assert sum(c["done"] for c in agg.site_classes.values()) == (
        parallel_matrix.injected
    )
    doc = json.loads(span.read_text())
    assert all(e["cat"] == "crash" for e in doc["traceEvents"] if e["ph"] == "X")
