"""Extension features: clwb flushing, thread-group adaptation,
periodic re-adaptation, composed phase-change workloads.

These go beyond the paper's evaluated system, covering what it discusses
but does not evaluate (§II-A's clwb trade-off, §III-C's thread-grouping
future work, finite hibernation).
"""

import pytest

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.base import ComposedWorkload
from repro.workloads.generators import TilePatternConfig, TilePatternWorkload


def tile_workload(name, tile_lines, passes=8.0, tiles=4, fases=10, burst=4.0):
    return TilePatternWorkload(
        name,
        TilePatternConfig(
            tile_lines=tile_lines,
            burst=burst,
            passes=passes,
            tiles_per_fase=tiles,
            num_fases=fases,
        ),
    )


def run(workload, technique, threads=1, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, make_factory(technique, **kw), num_threads=threads, seed=0)


# ---------------------------------------------------------------------------
# clwb (§II-A: "clwb flushes without invalidating a cache line")
# ---------------------------------------------------------------------------


def test_clwb_same_flush_count_fewer_misses():
    w = tile_workload("t", tile_lines=6)
    clflush = run(w, "SC-offline", sc_fixed_size=7)
    clwb = run(w, "SC-offline", sc_fixed_size=7, use_clwb=True)
    # Flush counts agree: the policy decides what to flush, not how.
    assert clwb.flushes == clflush.flushes
    # No invalidation -> fewer hardware misses -> less time.
    assert clwb.l1_misses <= clflush.l1_misses
    assert clwb.time <= clflush.time


def test_clwb_on_eager_like_rewrite_pattern():
    """Repeated rewrites of a flushed line: clflush pays a re-fill each
    time, clwb does not — the §II-A indirect cost, isolated."""
    w = tile_workload("t", tile_lines=2, passes=40.0, tiles=1, fases=4)
    clflush = run(w, "SC-offline", sc_fixed_size=1)
    clwb = run(w, "SC-offline", sc_fixed_size=1, use_clwb=True)
    assert clwb.l1_misses < clflush.l1_misses / 2


# ---------------------------------------------------------------------------
# Thread-group adaptation (§III-C future work)
# ---------------------------------------------------------------------------


def test_shared_adaptation_propagates_size():
    w = tile_workload("t", tile_lines=12, passes=12.0, tiles=8, fases=12)
    cfg = AdaptiveConfig(burst_length=1024)
    res = run(w, "SC", threads=4, adaptive_config=cfg, shared_adaptation=True)
    sizes = res.selected_sizes
    # Thread 0 sampled and decided ...
    assert sizes[0], "the sampling thread never decided"
    decision = sizes[0][0]
    # ... and the other threads adopted the group decision.
    for tid in range(1, 4):
        assert sizes[tid] == [decision], sizes


def test_shared_adaptation_matches_private_on_homogeneous_threads():
    w = tile_workload("t", tile_lines=10, passes=10.0, tiles=8, fases=12)
    cfg = AdaptiveConfig(burst_length=1024)
    private = run(w, "SC", threads=4, adaptive_config=cfg)
    shared = run(w, "SC", threads=4, adaptive_config=cfg, shared_adaptation=True)
    # Homogeneous threads: one MRC is as good as four.
    assert shared.flush_ratio == pytest.approx(private.flush_ratio, rel=0.35)
    # ... at a fraction of the sampling cost.
    shared_cost = sum(t.adaptation_cycles for t in shared.threads)
    private_cost = sum(t.adaptation_cycles for t in private.threads)
    assert shared_cost < private_cost / 2


# ---------------------------------------------------------------------------
# Periodic re-adaptation (finite hibernation) on phase changes
# ---------------------------------------------------------------------------


def test_composed_workload_validation():
    with pytest.raises(ConfigurationError):
        ComposedWorkload([])


def test_composed_workload_chains_phases():
    a = tile_workload("a", tile_lines=4, fases=5)
    b = tile_workload("b", tile_lines=20, fases=5)
    w = ComposedWorkload([a, b], name="phases")
    res = run(w, "BEST")
    expected = a.config.approx_total_stores + b.config.approx_total_stores
    assert res.persistent_stores == pytest.approx(expected, rel=0.05)
    assert res.fase_count == 10


def test_readaptation_follows_phase_change():
    """One-shot sampling locks in the first phase's small knee; periodic
    re-sampling discovers the second phase's larger one."""
    small = tile_workload("small", tile_lines=4, passes=20.0, tiles=6, fases=8)
    wide = tile_workload("wide", tile_lines=24, passes=20.0, tiles=2, fases=8)
    w = ComposedWorkload([small, wide], name="shift")

    once = run(
        w, "SC",
        adaptive_config=AdaptiveConfig(burst_length=2048, hibernation=None),
    )
    periodic = run(
        w, "SC",
        adaptive_config=AdaptiveConfig(burst_length=2048, hibernation=6144),
    )
    assert once.selected_sizes[0][-1] < 10          # stuck with phase 1
    assert periodic.selected_sizes[0][-1] >= 20     # followed phase 2
    assert periodic.flushes < once.flushes


def test_mixed_thread_composition_supports_threads():
    a = tile_workload("a", tile_lines=4)
    w = ComposedWorkload([a, a])
    assert w.supports_threads(3)
    res = run(w, "LA", threads=3)
    assert res.num_threads == 3
