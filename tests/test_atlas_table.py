"""Atlas's direct-mapped table (§II-A)."""

import pytest

from repro.cache.table import ATLAS_TABLE_SIZE, AtlasTable
from repro.common.errors import ConfigurationError


def test_default_size_is_eight():
    assert ATLAS_TABLE_SIZE == 8
    assert AtlasTable().size == 8


def test_repeat_write_is_absorbed():
    t = AtlasTable()
    assert t.access(5) is None
    assert t.access(5) is None
    assert t.hits == 1


def test_conflict_evicts_occupant():
    t = AtlasTable(8)
    assert t.access(3) is None
    assert t.access(11) == 3      # 11 % 8 == 3 % 8
    assert 11 in t and 3 not in t
    assert t.conflicts == 1


def test_distinct_slots_no_conflict():
    t = AtlasTable(8)
    for line in range(8):
        assert t.access(line) is None
    assert len(t) == 8


def test_drain_returns_occupants_and_clears():
    t = AtlasTable(4)
    for line in (0, 1, 6):
        t.access(line)
    drained = t.drain()
    assert sorted(drained) == [0, 1, 6]
    assert len(t) == 0


def test_sequential_spatial_combining():
    """The persistent-array effect: a line written 16 times in a row is
    inserted once; the table removes 15/16 of the flushes."""
    t = AtlasTable(8)
    flushes = 0
    for line in range(32):          # 32 lines cycling the 8 slots
        for _ in range(16):
            if t.access(line) is not None:
                flushes += 1
    # Every line except the first 8 evicted a predecessor.
    assert flushes == 32 - 8
    assert t.hits == 32 * 15


def test_strided_access_thrashes():
    """Aliased lines (stride == table size) defeat the table — the
    conflict-miss pattern the software cache fixes."""
    t = AtlasTable(8)
    conflicts = 0
    for _ in range(10):
        for line in (0, 8, 16):     # all map to slot 0
            if t.access(line) is not None:
                conflicts += 1
    assert conflicts == 29          # every access after the first conflicts
    assert t.hits == 0


def test_validation():
    with pytest.raises(ConfigurationError):
        AtlasTable(0)


def test_len_and_contains():
    t = AtlasTable(2)
    assert len(t) == 0
    t.access(4)
    assert len(t) == 1
    assert 4 in t
    assert 6 not in t   # same slot, different line
