"""FASE bracketing, nesting and the lock front end."""

import pytest

from repro.atlas.fase import FaseLock, FaseManager
from repro.cache.policies import make_factory
from repro.common.errors import SimulationError
from repro.nvram.machine import Machine, MachineConfig


@pytest.fixture
def manager():
    machine = Machine(MachineConfig(track_values=True))
    session = machine.session(make_factory("LA")(0))
    return FaseManager(session)


def test_depth_tracking(manager):
    assert manager.depth == 0 and not manager.in_fase
    manager.begin()
    assert manager.depth == 1 and manager.in_fase
    manager.begin()
    assert manager.depth == 2
    manager.end()
    manager.end()
    assert manager.depth == 0
    assert manager.completed == 1


def test_end_without_begin_raises(manager):
    with pytest.raises(SimulationError):
        manager.end()


def test_context_manager(manager):
    with manager.fase():
        assert manager.in_fase
        with manager.fase():
            assert manager.depth == 2
    assert manager.depth == 0
    assert manager.completed == 1


def test_current_id_changes_per_outermost(manager):
    with manager.fase():
        first = manager.current_id
    with manager.fase():
        second = manager.current_id
    assert first != second
    assert manager.current_id == -1


def test_nested_fase_keeps_outer_id(manager):
    with manager.fase():
        outer = manager.current_id
        with manager.fase():
            assert manager.current_id == outer


def test_lock_brackets_fase(manager):
    lock = FaseLock("l", manager)
    with lock:
        assert lock.held
        assert manager.in_fase
    assert not lock.held
    assert manager.depth == 0


def test_lock_release_unheld_raises(manager):
    lock = FaseLock("l", manager)
    with pytest.raises(SimulationError):
        lock.release()


def test_nested_locks(manager):
    a, b = FaseLock("a", manager), FaseLock("b", manager)
    with a:
        with b:
            assert manager.depth == 2
    assert manager.completed == 1
