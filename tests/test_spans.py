"""Scheduler span model: plan validation, virtual replay, Perfetto export."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.spans import (
    SchedulePlan,
    replay_schedule,
    schedule_to_chrome,
    write_schedule_spans,
)


def _plan():
    """Two summaries, one blocked group each, one free group."""
    plan = SchedulePlan()
    plan.add("summary:a", "summary", "summary:a")
    plan.add("summary:b", "summary", "summary:b")
    plan.add("cells:a", "cells", "a/t1×3", release_after="summary:a")
    plan.add("cells:b", "cells", "b/t1×2", release_after="summary:b")
    plan.add("cells:free", "cells", "free/t1×1")
    plan.set_cost("summary:a", 4)
    plan.set_cost("summary:b", 2)
    plan.set_cost("cells:a", 10)
    plan.set_cost("cells:b", 6)
    plan.set_cost("cells:free", 3)
    return plan


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------


def test_plan_rejects_duplicates_and_unknown_releasers():
    plan = SchedulePlan()
    plan.add("a", "cells", "a")
    with pytest.raises(ConfigurationError):
        plan.add("a", "cells", "again")
    with pytest.raises(ConfigurationError):
        plan.add("b", "cells", "b", release_after="nope")
    with pytest.raises(ConfigurationError):
        plan.set_cost("nope", 3)


def test_plan_cost_clamps_to_one():
    plan = SchedulePlan()
    plan.add("a", "cells", "a")
    plan.set_cost("a", 0)
    assert plan.tasks["a"].cost == 1
    plan.set_cost("a", -7)
    assert plan.tasks["a"].cost == 1
    assert len(plan) == 1


def test_replay_rejects_bad_jobs():
    with pytest.raises(ConfigurationError):
        replay_schedule(SchedulePlan(), 0)


# ---------------------------------------------------------------------------
# virtual replay
# ---------------------------------------------------------------------------


def test_replay_single_worker_is_submission_order():
    plan = _plan()
    spans, releases = replay_schedule(plan, 1)
    # One worker: FIFO by order, blocked tasks are always ready by the
    # time the queue reaches them (their releaser ran earlier).
    assert [s.task.uid for s in spans] == [
        "summary:a", "summary:b", "cells:a", "cells:b", "cells:free"
    ]
    # Back-to-back, no idle gaps.
    for prev, nxt in zip(spans, spans[1:]):
        assert nxt.start == prev.end
    assert spans[-1].end == 4 + 2 + 10 + 6 + 3


def test_replay_respects_release_edges():
    spans, releases = replay_schedule(_plan(), 2)
    by_uid = {s.task.uid: s for s in spans}
    # A blocked group never starts before its summary finishes.
    assert by_uid["cells:a"].start >= by_uid["summary:a"].end
    assert by_uid["cells:b"].start >= by_uid["summary:b"].end
    # Releases are reported at the releaser's finish time, sorted.
    times = {t.uid: ts for ts, t in releases}
    assert times["cells:a"] == by_uid["summary:a"].end
    assert times["cells:b"] == by_uid["summary:b"].end
    assert [ts for ts, _ in releases] == sorted(ts for ts, _ in releases)
    # Every task got scheduled exactly once on a valid worker.
    assert len(spans) == len(by_uid) == 5
    assert {s.worker for s in spans} <= {0, 1}


def test_replay_is_deterministic():
    a = replay_schedule(_plan(), 3)
    b = replay_schedule(_plan(), 3)
    assert a == b


def test_replay_workers_never_overlap():
    spans, _ = replay_schedule(_plan(), 2)
    per_worker = {}
    for s in spans:
        per_worker.setdefault(s.worker, []).append((s.start, s.end))
    for intervals in per_worker.values():
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1


# ---------------------------------------------------------------------------
# chrome export
# ---------------------------------------------------------------------------


def test_chrome_export_shape():
    doc = schedule_to_chrome(_plan(), 2)
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    # One named track per worker plus the scheduler track.
    assert {m["args"]["name"] for m in metas} == {"worker 0", "worker 1", "scheduler"}
    assert len(spans) == 5
    assert all(e["pid"] == 0 for e in events)
    # Release instants live on the scheduler track (tid == jobs).
    assert len(instants) == 2
    assert all(e["tid"] == 2 and e["cat"] == "release" for e in instants)
    assert counters and all(e["name"] == "queued_tasks" for e in counters)
    blocked = [e for e in spans if "released_by" in e["args"]]
    assert {e["args"]["released_by"] for e in blocked} == {
        "summary:a", "summary:b"
    }
    other = doc["otherData"]
    assert other["jobs"] == 2
    assert other["tasks"] == 5
    assert other["makespan"] == max(e["ts"] + e["dur"] for e in spans)
    assert other["straggler_tail"] >= 0
    assert len(other["worker_busy"]) == 2


def test_chrome_export_byte_deterministic(tmp_path):
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_schedule_spans(_plan(), 2, str(p1))
    write_schedule_spans(_plan(), 2, str(p2))
    assert p1.read_bytes() == p2.read_bytes()
    doc = json.loads(p1.read_text())  # valid trace_event JSON
    assert doc["traceEvents"]


def test_run_id_is_the_only_varying_field(tmp_path):
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_schedule_spans(_plan(), 2, str(p1), run_id="run-1")
    write_schedule_spans(_plan(), 2, str(p2), run_id="run-2")
    d1, d2 = json.loads(p1.read_text()), json.loads(p2.read_text())
    assert d1["otherData"].pop("run_id") == "run-1"
    assert d2["otherData"].pop("run_id") == "run-2"
    assert d1 == d2
