"""RunResult/ThreadStats serialization and aggregate edge cases."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.harness import Harness, HarnessConfig
from repro.nvram.stats import RunResult, ThreadStats


def sample_result(crashed=False):
    return RunResult(
        workload="queue",
        technique="SC",
        num_threads=2,
        threads=[
            ThreadStats(
                thread_id=0,
                cycles=100,
                instructions=50,
                persistent_stores=10,
                flushes=4,
                stall_cycles=3,
                fase_count=2,
                selected_sizes=[4, 8],
            ),
            ThreadStats(thread_id=1, cycles=90),
        ],
        l1_accesses=60,
        l1_misses=6,
        crashed=crashed,
    )


@pytest.mark.parametrize("crashed", (False, True))
def test_round_trip_preserves_every_counter(crashed):
    result = sample_result(crashed=crashed)
    back = RunResult.from_dict(result.to_dict())
    assert back.crashed is crashed
    assert [dataclasses.asdict(t) for t in back.threads] == [
        dataclasses.asdict(t) for t in result.threads
    ]
    assert back.to_dict() == result.to_dict()
    assert back.selected_sizes == {0: [4, 8], 1: []}
    assert back.traces is None


def test_from_dict_rejects_missing_and_unknown_keys():
    data = sample_result().to_dict()
    del data["crashed"]
    with pytest.raises(ConfigurationError, match="missing keys: \\['crashed'\\]"):
        RunResult.from_dict(data)

    data = sample_result().to_dict()
    data["bogus"] = 1
    with pytest.raises(ConfigurationError, match="unknown keys: \\['bogus'\\]"):
        RunResult.from_dict(data)


def test_from_dict_rejects_stale_thread_entries():
    data = sample_result().to_dict()
    del data["threads"][1]["cycles"]
    with pytest.raises(ConfigurationError, match="ThreadStats payload #1"):
        RunResult.from_dict(data)

    data = sample_result().to_dict()
    data["threads"][0]["old_counter"] = 7
    with pytest.raises(ConfigurationError, match="old_counter"):
        RunResult.from_dict(data)


def test_has_traces_flag_is_tolerated():
    data = sample_result().to_dict()
    assert data["has_traces"] is False
    RunResult.from_dict(data)   # must not raise


def test_stale_disk_cache_entry_is_recomputed(tmp_path):
    """A cache entry from an older schema is a miss, not a crash."""
    harness = Harness(HarnessConfig(scale=0.02, seed=7), cache_dir=str(tmp_path))
    cell = ("queue", "ER", 1)
    key = ResultCache.key(
        harness.config, "run", name=cell[0], technique=cell[1], threads=cell[2]
    )
    stale = sample_result().to_dict()
    del stale["crashed"]                       # an "older schema" payload
    harness._disk.put(key, stale)
    result = harness.run(*cell)
    assert result.technique == "ER"
    assert result.persistent_stores > 0
    # The recomputed (current-schema) entry replaced the stale one.
    assert RunResult.from_dict(harness._disk.get(key)).to_dict() == result.to_dict()


def test_zero_store_and_zero_access_aggregates():
    empty = RunResult("w", "BEST", 1, [ThreadStats()], 0, 0)
    assert empty.flush_ratio == 0.0
    assert empty.l1_miss_ratio == 0.0
    assert empty.time == 0
    assert ThreadStats().flush_ratio == 0.0
    no_threads = RunResult("w", "BEST", 0, [], 0, 0)
    assert no_threads.time == 0
    busy = RunResult("w", "BEST", 1, [ThreadStats(cycles=50)], 0, 0)
    assert busy.speedup_over(busy) == 1.0
    assert empty.speedup_over(busy) == float("inf")
