"""The NVRAM/DRAM backing store and the persistence domain boundary."""

import pytest

from repro.common.errors import SimulationError
from repro.nvram.memory import NVRAM_BASE, MainMemory


def test_persistence_domain_boundary():
    assert MainMemory.is_persistent(NVRAM_BASE)
    assert MainMemory.is_persistent(NVRAM_BASE + 1)
    assert not MainMemory.is_persistent(NVRAM_BASE - 1)
    assert not MainMemory.is_persistent(0)


def test_write_back_routes_by_region():
    mem = MainMemory()
    mem.write_back([(NVRAM_BASE + 8, "durable"), (64, "volatile")])
    assert mem.nvram == {NVRAM_BASE + 8: "durable"}
    assert mem.dram == {64: "volatile"}
    assert mem.writebacks == 1


def test_read_with_default():
    mem = MainMemory()
    assert mem.read(NVRAM_BASE, default="missing") == "missing"
    mem.write_back([(NVRAM_BASE, 42)])
    assert mem.read(NVRAM_BASE) == 42


def test_snapshot_is_a_copy():
    mem = MainMemory()
    mem.write_back([(NVRAM_BASE, 1)])
    snap = mem.nvram_snapshot()
    mem.write_back([(NVRAM_BASE, 2)])
    assert snap[NVRAM_BASE] == 1


def test_require_persistent():
    mem = MainMemory()
    mem.require_persistent(NVRAM_BASE)
    with pytest.raises(SimulationError):
        mem.require_persistent(100)
