"""Legacy entry points stay bit-identical through the TechniqueSpec shim."""

import pytest

from repro.cache.policies import TECHNIQUES, make_factory
from repro.cache.spec import technique_factory
from repro.experiments.harness import HarnessConfig
from repro.nvram.machine import Machine
from repro.workloads.registry import get_workload

SCALE = 0.05
KWARGS = {"SC-offline": {"sc_fixed_size": 8}}


def run_with(factory):
    workload = get_workload("queue", scale=SCALE)
    config = HarnessConfig(scale=SCALE, seed=0).machine_config()
    return Machine(config).run(workload, factory, num_threads=2, seed=0)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_legacy_make_factory_matches_spec_path(technique):
    """make_factory warns but produces bit-identical results."""
    kwargs = KWARGS.get(technique, {})
    with pytest.warns(DeprecationWarning, match="make_factory"):
        old = run_with(make_factory(technique, **kwargs))
    new = run_with(technique_factory(technique, **kwargs))
    assert old.to_dict() == new.to_dict()


def test_runspec_canonicalizes_spec_strings():
    from repro import api

    spec = api.RunSpec(workload="queue", technique="SC+clean", scale=SCALE)
    assert spec.technique == "SC+clean:4"
    from repro.cache.spec import TechniqueSpec

    spec = api.RunSpec(
        workload="queue",
        technique=TechniqueSpec.parse("SC+victim:8"),
        scale=SCALE,
    )
    assert spec.technique == "SC+victim:8"


def test_runspec_rejects_bad_specs_at_construction():
    from repro import api
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown policy stage"):
        api.RunSpec(workload="queue", technique="SC+bogus")
