"""Cache-line geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.geometry import (
    CACHE_LINE_SIZE,
    align_down,
    align_up,
    line_base,
    line_of,
    line_offset,
    lines_spanned,
)


def test_line_size_is_64():
    assert CACHE_LINE_SIZE == 64


def test_line_of_basics():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 1
    assert line_of(128) == 2


def test_line_offset_and_base():
    assert line_offset(70) == 6
    assert line_base(70) == 64
    assert line_base(64) == 64


@given(st.integers(min_value=0, max_value=2**48))
def test_decomposition_roundtrip(addr):
    assert line_base(addr) + line_offset(addr) == addr
    assert line_base(addr) == line_of(addr) * CACHE_LINE_SIZE


def test_lines_spanned_single_line():
    assert list(lines_spanned(0, 8)) == [0]
    assert list(lines_spanned(60, 4)) == [0]


def test_lines_spanned_straddles():
    assert list(lines_spanned(60, 8)) == [0, 1]
    assert list(lines_spanned(0, 129)) == [0, 1, 2]


def test_lines_spanned_zero_length():
    assert list(lines_spanned(100, 0)) == []


def test_lines_spanned_negative_raises():
    with pytest.raises(ConfigurationError):
        lines_spanned(0, -1)


@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=4096))
def test_lines_spanned_covers_all_bytes(addr, size):
    lines = set(lines_spanned(addr, size))
    assert lines == {line_of(addr + i) for i in (0, size - 1)} | lines
    assert line_of(addr) in lines
    assert line_of(addr + size - 1) in lines
    # Contiguity.
    assert sorted(lines) == list(range(min(lines), max(lines) + 1))


def test_align_up_down():
    assert align_up(1) == 64
    assert align_up(64) == 64
    assert align_down(127) == 64
    assert align_up(0) == 0


def test_align_requires_power_of_two():
    with pytest.raises(ConfigurationError):
        align_up(10, 48)
    with pytest.raises(ConfigurationError):
        align_down(10, 0)
