"""The offline trace analyzer: provenance, latency, diagnostics, diffs.

Two kinds of evidence: synthetic traces with hand-computable answers
(the fold's arithmetic is checked exactly), and real traced runs whose
profiles must reconcile — counter for counter — with the RunResult the
same run produced.
"""

import json

import pytest

from repro.obs.analyze import (
    AnalyzerConfig,
    DiffTolerances,
    Diagnosis,
    analyze,
    diff_profiles,
    max_severity,
    reconcile,
)
from repro.obs.runner import traced_run
from repro.obs.trace import (
    EV_BURST_START,
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_KNEE_CANDIDATE,
    EV_MRC_COMPUTED,
    EV_SIZE_SELECTED,
    EV_STALL,
    TraceRecorder,
    parse_jsonl,
)

# ---------------------------------------------------------------------------
# Synthetic traces
# ---------------------------------------------------------------------------


def test_flush_provenance_arithmetic():
    rec = TraceRecorder()
    # Three capacity evictions of line 5 (two dirty), one of line 9,
    # one resize-forced eviction of line 5 on thread 1.
    rec.record(EV_EVICT_FLUSH, 0, 10, 5, 1, 0)
    rec.record(EV_EVICT_FLUSH, 0, 20, 5, 1, 0)
    rec.record(EV_EVICT_FLUSH, 0, 30, 5, 0, 0)
    rec.record(EV_EVICT_FLUSH, 0, 40, 9, 1, 0)
    rec.record(EV_EVICT_FLUSH, 1, 50, 5, 1, 1)
    # Stalls: issue (b=0) and write-back (b=1).
    rec.record(EV_STALL, 0, 60, 100, 0)
    rec.record(EV_STALL, 1, 70, 40, 1)
    # One FASE-end drain (fase_id 7) and one final drain.
    rec.record(EV_DRAIN, 0, 80, 25, 3, 7)
    rec.record(EV_DRAIN, 0, 90, 5, 1, -1)
    p = analyze(rec).provenance
    assert p.capacity_evictions == 4
    assert p.resize_evictions == 1
    assert p.evict_flushes == 5
    assert p.dirty_evict_flushes == 4
    assert p.line_flushes == {5: 4, 9: 1}
    assert p.distinct_lines == 2
    assert p.write_amplification == 2.5
    assert p.top_lines == [(5, 4), (9, 1)]
    assert p.issue_stall_cycles == 100
    assert p.writeback_stall_cycles == 40
    assert p.fase_drains == 1
    assert p.fase_drain_stall_cycles == 25
    assert p.fase_drain_outstanding == 3
    assert p.final_drains == 1
    assert p.final_drain_stall_cycles == 5
    assert p.fase_drain_stall_by_fase == {7: 25}
    assert p.per_thread[0] == {
        "capacity": 4,
        "resize": 0,
        "clean": 0,
        "bypass": 0,
        "victim": 0,
        "fase_drains": 1,
        "drain_stall": 25,
    }
    assert p.per_thread[1] == {
        "capacity": 0,
        "resize": 1,
        "clean": 0,
        "bypass": 0,
        "victim": 0,
        "fase_drains": 0,
        "drain_stall": 0,
    }


def test_top_lines_ranking_is_deterministic():
    rec = TraceRecorder()
    # Lines 1..5, line i flushed i times; ties broken by line number.
    for line in range(1, 6):
        for _ in range(line):
            rec.record(EV_EVICT_FLUSH, 0, 0, line, 1, 0)
    rec.record(EV_EVICT_FLUSH, 0, 0, 99, 1, 0)  # ties with line 1
    p = analyze(rec, AnalyzerConfig(top_k=3)).provenance
    assert p.top_lines == [(5, 5), (4, 4), (3, 3)]


def test_fase_latency_percentiles():
    rec = TraceRecorder()
    # 100 spans with durations 1..100 on one thread.
    t = 0
    for uid in range(100):
        rec.record(EV_FASE_BEGIN, 0, t, uid)
        rec.record(EV_FASE_END, 0, t + uid + 1, uid)
        t += 1000
    f = analyze(rec).fase
    assert f.count == 100
    assert (f.p50, f.p95, f.p99, f.max) == (50, 95, 99, 100)
    assert f.total_cycles == sum(range(1, 101))
    assert f.per_thread_count == {0: 100}


def test_fase_stall_share_uses_attributed_drains():
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 0, 3)
    rec.record(EV_DRAIN, 0, 90, 40, 2, 3)
    rec.record(EV_FASE_END, 0, 100, 3)
    f = analyze(rec).fase
    assert f.total_cycles == 100
    assert f.drain_stall_cycles == 40
    assert f.stall_share == 0.4


def test_unbalanced_fase_is_an_error():
    rec = TraceRecorder()
    rec.record(EV_FASE_BEGIN, 0, 0, 1)          # never closed
    rec.record(EV_FASE_END, 1, 10, 9)           # never opened
    profile = analyze(rec)
    codes = sorted((d.code, d.thread_id) for d in profile.diagnoses)
    assert codes == [("unbalanced_fase", 0), ("unbalanced_fase", 1)]
    assert max_severity(profile.diagnoses) == "error"


# -- controller narrative ---------------------------------------------------


def _select(rec, tid, t, size, knees=None):
    """One full burst: MRC -> knee candidates -> selection."""
    knees = [size] if knees is None else knees
    rec.record(EV_BURST_START, tid, t, 512)
    rec.record(EV_MRC_COMPUTED, tid, t + 1, 1000, len(knees))
    for k in knees:
        rec.record(EV_KNEE_CANDIDATE, tid, t + 2, k, 0)
    rec.record(EV_SIZE_SELECTED, tid, t + 3, size)


def test_knee_oscillation_detected_on_thrash_trace():
    rec = TraceRecorder()
    for i in range(6):                       # 4, 8, 4, 8, 4, 8 -> 4 flips
        _select(rec, 0, i * 10_000_000, 4 if i % 2 == 0 else 8)
    profile = analyze(rec)
    osc = [d for d in profile.diagnoses if d.code == "knee_oscillation"]
    assert len(osc) == 1
    assert osc[0].severity == "error"        # >= oscillation_error_flips
    assert osc[0].data == {"flips": 4, "selections": 6}
    assert profile.adaptation.bursts == 6
    assert profile.adaptation.analyses == 6
    assert [s for _, s in profile.adaptation.trajectories[0]] == [4, 8] * 3


def test_oscillation_warning_threshold():
    rec = TraceRecorder()
    for i, size in enumerate([4, 8, 4, 8]):  # 2 flips -> warning
        _select(rec, 0, i * 10_000_000, size)
    diags = analyze(rec).diagnoses
    assert [d.severity for d in diags if d.code == "knee_oscillation"] == ["warning"]


def test_monotone_trajectory_yields_no_oscillation():
    rec = TraceRecorder()
    for i, size in enumerate([4, 8, 16, 16, 32]):
        _select(rec, 0, i * 10_000_000, size)
    assert all(d.code != "knee_oscillation" for d in analyze(rec).diagnoses)


def test_resize_storm_detected():
    rec = TraceRecorder()
    for i in range(8):                       # 8 selections in 70k cycles
        _select(rec, 0, i * 10_000, 2 ** (i % 2 + 2), knees=[4, 8])
    storms = [d for d in analyze(rec).diagnoses if d.code == "resize_storm"]
    assert len(storms) == 1
    assert storms[0].severity == "warning"
    assert storms[0].data["span_cycles"] <= 1_000_000


def test_unmatched_selection_and_fallback():
    rec = TraceRecorder()
    # Selection matching no knee candidate -> error.
    _select(rec, 0, 0, 64, knees=[4, 8])
    # MRC with zero knees followed by a selection -> the max-size
    # fallback, an info-level note.
    rec.record(EV_MRC_COMPUTED, 1, 100, 500, 0)
    rec.record(EV_SIZE_SELECTED, 1, 101, 512)
    diags = analyze(rec).diagnoses
    by_code = {d.code: d for d in diags}
    assert by_code["unmatched_selection"].severity == "error"
    assert by_code["unmatched_selection"].thread_id == 0
    assert by_code["knee_fallback"].severity == "info"
    assert by_code["knee_fallback"].thread_id == 1


def test_adoption_is_not_an_unmatched_selection():
    """A thread adopting a group-published size never ran its own MRC;
    that is the shared-size extension working as designed, not an error."""
    rec = TraceRecorder()
    rec.record(EV_SIZE_SELECTED, 1, 50, 16)
    profile = analyze(rec)
    assert profile.adaptation.adoptions == 1
    assert all(d.code != "unmatched_selection" for d in profile.diagnoses)


def test_diagnoses_sorted_most_severe_first():
    rec = TraceRecorder()
    rec.record(EV_MRC_COMPUTED, 1, 100, 500, 0)
    rec.record(EV_SIZE_SELECTED, 1, 101, 512)     # info
    rec.record(EV_FASE_BEGIN, 0, 0, 1)            # error (never closed)
    diags = analyze(rec).diagnoses
    assert [d.severity for d in diags] == ["error", "info"]


# ---------------------------------------------------------------------------
# Real traced runs
# ---------------------------------------------------------------------------


def test_profile_reconciles_with_run_result(tiny_harness):
    for cell in (("queue", "SC", 2), ("queue", "LA", 1), ("mdb", "SC", 1)):
        result, recorder, _ = traced_run(tiny_harness, cell[0], cell[1], threads=cell[2])
        profile = analyze(recorder)
        assert reconcile(profile, result) == [], cell


def test_seed_workloads_raise_no_oscillation(tiny_harness):
    """Seed threads adapt at most once, so the acceptance baseline is
    oscillation-free (the thresholds are calibrated against this)."""
    for workload in ("queue", "linked-list"):
        _, recorder, _ = traced_run(tiny_harness, workload, "SC", threads=2)
        profile = analyze(recorder)
        assert all(d.code != "knee_oscillation" for d in profile.diagnoses), workload
        assert all(d.code != "resize_storm" for d in profile.diagnoses), workload
        assert all(d.severity != "error" for d in profile.diagnoses), workload


def test_profile_is_byte_deterministic(tiny_harness):
    docs = []
    for _ in range(2):
        _, recorder, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
        docs.append(analyze(recorder).to_json())
    assert docs[0] == docs[1]
    json.loads(docs[0])  # valid JSON with trailing newline
    assert docs[0].endswith("\n")


def test_profile_survives_jsonl_round_trip(tiny_harness):
    """Analyzing a parsed-back trace gives the identical profile —
    the on-disk document loses nothing the analyzer uses."""
    _, recorder, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    direct = analyze(recorder).to_json()
    parsed = analyze(parse_jsonl(recorder.to_jsonl())).to_json()
    assert direct == parsed


# ---------------------------------------------------------------------------
# Cross-run diffs
# ---------------------------------------------------------------------------


def test_diff_identical_profiles_is_ok(tiny_harness):
    _, r1, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    _, r2, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    diff = diff_profiles(analyze(r1), analyze(r2))
    assert diff["verdict"] == "ok"
    assert all(e["ok"] for e in diff["entries"])
    assert diff["notes"] == []


def test_diff_flags_changed_runs(tiny_harness):
    _, r1, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    _, r2, _ = traced_run(tiny_harness, "queue", "LA", threads=2)
    diff = diff_profiles(analyze(r1), analyze(r2))
    assert diff["verdict"] == "different"
    assert any(not e["ok"] for e in diff["entries"])


def test_diff_incomparable_thread_sets(tiny_harness):
    _, r1, _ = traced_run(tiny_harness, "queue", "SC", threads=2)
    _, r2, _ = traced_run(tiny_harness, "queue", "SC", threads=1)
    diff = diff_profiles(analyze(r1), analyze(r2))
    assert diff["verdict"] == "incomparable"
    assert diff["entries"] == []


def test_diff_tolerance_is_configurable():
    rec_a, rec_b = TraceRecorder(), TraceRecorder()
    for _ in range(1000):
        rec_a.record(EV_EVICT_FLUSH, 0, 0, 1, 1, 0)
    for _ in range(1004):                    # 0.4% more flushes
        rec_b.record(EV_EVICT_FLUSH, 0, 0, 1, 1, 0)
    a, b = analyze(rec_a), analyze(rec_b)
    assert diff_profiles(a, b, DiffTolerances(ratio_pct=0.5))["verdict"] == "ok"
    assert (
        diff_profiles(a, b, DiffTolerances(ratio_pct=0.1))["verdict"] == "different"
    )


def test_diagnosis_to_dict_and_max_severity():
    d = Diagnosis("x", "warning", 0, "msg", {"b": 2, "a": 1})
    assert list(d.to_dict()["data"]) == ["a", "b"]
    assert max_severity([]) is None
    assert max_severity([d]) == "warning"
