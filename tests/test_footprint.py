"""Footprint fp(k) (Eq. 4) and the duality reuse(k) + fp(k) = k (Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality.footprint import footprint_curve, reuse_from_footprint
from repro.locality.reference import footprint_brute, footprint_curve_brute
from repro.locality.reuse import reuse_curve_from_trace
from repro.locality.trace import WriteTrace

traces = st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=50)


def test_footprint_abb():
    fp = footprint_curve(WriteTrace.from_string("abb"))
    assert fp[1] == pytest.approx(1.0)
    assert fp[2] == pytest.approx(1.5)   # windows "ab" and "bb"
    assert fp[3] == pytest.approx(2.0)


def test_footprint_distinct_trace():
    # All-distinct: every window of k accesses holds k distinct data.
    fp = footprint_curve(WriteTrace.from_string("abcdefgh"))
    np.testing.assert_allclose(fp, np.arange(9, dtype=float))


def test_footprint_constant_trace():
    fp = footprint_curve(WriteTrace([3] * 10))
    np.testing.assert_allclose(fp[1:], np.ones(10))


@settings(max_examples=60, deadline=None)
@given(traces)
def test_linear_time_matches_brute_force(lines):
    t = WriteTrace(lines)
    np.testing.assert_allclose(
        footprint_curve(t), footprint_curve_brute(t), atol=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(traces)
def test_duality_eq5(lines):
    """Eq. 5: reuse(k) + fp(k) = k, exactly, for every k."""
    t = WriteTrace(lines)
    r = reuse_curve_from_trace(t, honor_fases=False)
    fp = footprint_curve(t)
    np.testing.assert_allclose(r + fp, np.arange(t.n + 1, dtype=float), atol=1e-9)


def test_reuse_from_footprint_matches_direct():
    t = WriteTrace(np.random.default_rng(0).integers(0, 9, size=120))
    direct = reuse_curve_from_trace(t, honor_fases=False)
    via_fp = reuse_from_footprint(t)
    np.testing.assert_allclose(direct, via_fp, atol=1e-9)


def test_footprint_bounded_by_m_and_k():
    t = WriteTrace(np.random.default_rng(1).integers(0, 5, size=70))
    fp = footprint_curve(t)
    ks = np.arange(t.n + 1)
    assert np.all(fp <= np.minimum(ks, t.m) + 1e-9)
    assert np.all(fp[1:] >= 1.0 - 1e-9)


def test_footprint_monotone():
    """A longer window sees at least as many distinct data on average."""
    t = WriteTrace(np.random.default_rng(2).integers(0, 8, size=90))
    fp = footprint_curve(t)
    assert np.all(np.diff(fp) >= -1e-9)


def test_footprint_spot_single_k():
    t = WriteTrace.from_string("aabbccab")
    fp = footprint_curve(t)
    for k in (1, 2, 4, 7):
        assert fp[k] == pytest.approx(footprint_brute(t, k))


def test_footprint_empty():
    fp = footprint_curve(WriteTrace([]))
    assert list(fp) == [0.0]
