"""Shared fixtures: small deterministic machines, harnesses and traces."""

from __future__ import annotations

import os
import tempfile

# Keep the suite hermetic: the run ledger is on by default, and tests
# exercise every recording entry point — always point it at a throwaway
# directory, even when the invoking environment (e.g. CI's job-level
# REPRO_LEDGER) chose one, so test runs never pollute a real ledger.
# Tests that need a specific ledger monkeypatch the variable themselves.
os.environ["REPRO_LEDGER"] = tempfile.mkdtemp(prefix="repro-test-ledger-")

import numpy as np
import pytest

from repro.experiments.harness import Harness, HarnessConfig
from repro.locality.trace import WriteTrace
from repro.nvram.machine import Machine, MachineConfig


@pytest.fixture
def machine() -> Machine:
    """A fresh default machine."""
    return Machine(MachineConfig())


@pytest.fixture
def value_machine() -> Machine:
    """A machine with value tracking (for crash/recovery tests)."""
    return Machine(MachineConfig(track_values=True))


@pytest.fixture(scope="session")
def tiny_harness() -> Harness:
    """A heavily scaled-down harness shared across harness-level tests.

    Session-scoped: the harness caches runs, so tests touching the same
    (workload, technique) pay once.
    """
    return Harness(HarnessConfig(scale=0.02, seed=7))


@pytest.fixture(scope="session")
def small_harness() -> Harness:
    """A moderately scaled harness for shape assertions."""
    return Harness(HarnessConfig(scale=0.1, seed=7))


def random_trace(seed: int, n: int, m: int, fases: int = 1) -> WriteTrace:
    """A random trace helper used across locality tests."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, m, size=n)
    if fases <= 1:
        return WriteTrace(lines)
    bounds = np.sort(rng.choice(np.arange(1, n), size=fases - 1, replace=False))
    fids = np.zeros(n, dtype=np.int64)
    for b in bounds:
        fids[b:] += 1
    return WriteTrace(lines, fids)
