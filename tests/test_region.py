"""Persistent regions and the region manager."""

import pytest

from repro.atlas.region import PersistentRegion, RegionManager
from repro.common.errors import ConfigurationError
from repro.common.geometry import CACHE_LINE_SIZE
from repro.nvram.memory import NVRAM_BASE


def test_region_must_live_in_nvram():
    with pytest.raises(ConfigurationError):
        PersistentRegion("bad", 0, 4096)


def test_root_slot_reserved():
    r = PersistentRegion("r", NVRAM_BASE, 4096)
    assert r.root_addr == NVRAM_BASE
    first = r.alloc(8)
    assert first >= NVRAM_BASE + CACHE_LINE_SIZE


def test_alloc_line_alignment():
    r = PersistentRegion("r", NVRAM_BASE, 65536)
    a = r.alloc(10)
    b = r.alloc(10)
    assert a % CACHE_LINE_SIZE == 0
    assert b % CACHE_LINE_SIZE == 0
    assert b > a
    c = r.alloc(8, line_aligned=False)
    d = r.alloc(8, line_aligned=False)
    assert d == c + 8


def test_alloc_exhaustion():
    r = PersistentRegion("r", NVRAM_BASE, 2 * CACHE_LINE_SIZE)
    r.alloc(CACHE_LINE_SIZE)
    with pytest.raises(ConfigurationError):
        r.alloc(CACHE_LINE_SIZE)


def test_alloc_validation():
    r = PersistentRegion("r", NVRAM_BASE, 4096)
    with pytest.raises(ConfigurationError):
        r.alloc(0)


def test_contains():
    r = PersistentRegion("r", NVRAM_BASE, 4096)
    assert r.contains(NVRAM_BASE)
    assert r.contains(NVRAM_BASE + 4095)
    assert not r.contains(NVRAM_BASE + 4096)


def test_manager_find_or_create_idempotent():
    mgr = RegionManager()
    a = mgr.find_or_create("data", 4096)
    b = mgr.find_or_create("data", 4096)
    assert a is b
    assert mgr.get("data") is a
    assert mgr.get("nope") is None


def test_manager_deterministic_layout():
    """Same names, same order => same addresses (recovery depends on it)."""
    m1, m2 = RegionManager(), RegionManager()
    for name in ("log", "heap", "extra"):
        assert m1.find_or_create(name, 8192).base == m2.find_or_create(name, 8192).base


def test_manager_regions_disjoint():
    mgr = RegionManager()
    a = mgr.find_or_create("a", 4096)
    b = mgr.find_or_create("b", 4096)
    assert a.end <= b.base
    assert list(mgr) == [a, b]


def test_manager_rejects_bad_size():
    with pytest.raises(ConfigurationError):
        RegionManager().find_or_create("x", 0)
