"""Workload base utilities: allocator, trace replay."""

import pytest

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError
from repro.common.geometry import CACHE_LINE_SIZE
from repro.locality.trace import WriteTrace
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import BumpAllocator, TraceWorkload


def test_bump_allocator_monotone_disjoint():
    a = BumpAllocator()
    x = a.alloc(24)
    y = a.alloc(24)
    assert y >= x + 24
    assert x >= NVRAM_BASE


def test_bump_allocator_line_aligned():
    a = BumpAllocator()
    a.alloc(10)
    addr = a.alloc(10, line_aligned=True)
    assert addr % CACHE_LINE_SIZE == 0


def test_bump_allocator_validation():
    with pytest.raises(ConfigurationError):
        BumpAllocator(base=0)
    with pytest.raises(ConfigurationError):
        BumpAllocator().alloc(0)


def test_trace_workload_replays_fases():
    t = WriteTrace([1, 2, 1, 3], [0, 0, 1, -1])
    w = TraceWorkload([t])
    machine = Machine(MachineConfig())
    res = machine.run(w, make_factory("LA"), num_threads=1, seed=0, record_traces=True)
    assert res.persistent_stores == 4
    assert res.fase_count == 2
    replayed = res.traces[0]
    # Line pattern preserved (modulo the NVRAM shift).
    assert (replayed.lines[0] == replayed.lines[2])
    assert (replayed.lines[0] != replayed.lines[1])
    assert list(replayed.fase_ids)[3] == -1


def test_trace_workload_shifts_small_lines_into_nvram():
    t = WriteTrace([0, 1, 2])
    events = list(TraceWorkload([t]).streams(1, 0)[0])
    stores = [e for e in events if e.kind == 0]
    assert all(s.addr >= NVRAM_BASE for s in stores)


def test_trace_workload_thread_count_enforced():
    w = TraceWorkload([WriteTrace([1])])
    with pytest.raises(ConfigurationError):
        w.streams(2, 0)
    assert w.supports_threads(1)
    assert not w.supports_threads(2)


def test_trace_workload_multi_thread():
    w = TraceWorkload([WriteTrace([1, 2]), WriteTrace([3])])
    machine = Machine(MachineConfig())
    res = machine.run(w, make_factory("ER"), num_threads=2, seed=0)
    assert res.persistent_stores == 3
    assert res.threads[0].persistent_stores == 2
    assert res.threads[1].persistent_stores == 1
