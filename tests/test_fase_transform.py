"""The FASE-boundary address renaming (§III-B)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality.fase_transform import rename_for_fases
from repro.locality.trace import WriteTrace


def test_paper_example_ababab():
    """"ab|ab|ab" becomes a trace of six distinct addresses."""
    t = rename_for_fases(WriteTrace.from_string("ab|ab|ab"))
    assert t.m == 6
    assert t.n == 6


def test_within_fase_reuse_preserved():
    t = rename_for_fases(WriteTrace.from_string("aab|ab"))
    starts, ends = t.reuse_intervals()
    # Only the in-FASE "aa" reuse survives.
    assert len(starts) == 1
    assert (list(starts), list(ends)) == ([1], [2])


def test_outside_fase_writes_share_one_region():
    # fase id -1 marks writes outside any FASE; they stay combinable.
    t = WriteTrace([1, 1, 1], [-1, -1, -1])
    renamed = rename_for_fases(t)
    assert renamed.m == 1


def test_same_line_across_fase_and_outside_are_distinct():
    t = WriteTrace([7, 7], [0, -1])
    renamed = rename_for_fases(t)
    assert renamed.m == 2


def test_deterministic():
    t = WriteTrace.from_string("abc|cba|abc")
    a = rename_for_fases(t)
    b = rename_for_fases(t)
    assert np.array_equal(a.lines, b.lines)


def test_empty():
    t = rename_for_fases(WriteTrace([]))
    assert t.n == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=5),
)
def test_renaming_invariants(lines, nfases):
    n = len(lines)
    fids = [(i * nfases) // n for i in range(n)]
    t = WriteTrace(lines, fids)
    renamed = rename_for_fases(t)
    # Same length; fase ids preserved.
    assert renamed.n == t.n
    assert np.array_equal(renamed.fase_ids, t.fase_ids)
    # Two accesses map to the same renamed id iff same line AND same FASE.
    for i in range(n):
        for j in range(i + 1, n):
            same = lines[i] == lines[j] and fids[i] == fids[j]
            assert (renamed.lines[i] == renamed.lines[j]) == same
