"""Persistent containers: functional behaviour + crash consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import AtlasRuntime, recover
from repro.pstructs import PersistentDict, PersistentQueue, PersistentVector


@pytest.fixture
def rt():
    return AtlasRuntime(technique="SC")


# ---------------------------------------------------------------------------
# vector
# ---------------------------------------------------------------------------


def test_vector_append_get(rt):
    v = PersistentVector(rt)
    for i in range(20):
        v.append(i * 3)
    assert len(v) == 20
    assert v.get(7) == 21
    assert list(v) == [i * 3 for i in range(20)]


def test_vector_growth_preserves_contents(rt):
    v = PersistentVector(rt, initial_capacity=2)
    for i in range(40):              # forces several doublings
        v.append(i)
    assert list(v) == list(range(40))


def test_vector_set_pop_bounds(rt):
    v = PersistentVector(rt)
    v.append("a")
    v.set(0, "b")
    assert v.get(0) == "b"
    assert v.pop() == "b"
    with pytest.raises(IndexError):
        v.pop()
    with pytest.raises(IndexError):
        v.get(0)
    with pytest.raises(IndexError):
        v.set(3, "x")


def test_vector_crash_mid_growth_rolls_back(rt):
    v = PersistentVector(rt, initial_capacity=4)
    v.extend(range(4))
    # Open the growth FASE by hand and crash inside it.
    rt.fases.begin()
    rt.log.on_fase_begin()
    length, cap, data = v._header()
    new_data = rt.alloc(8 * cap * 2)
    for i in range(length):
        rt.store(new_data + 8 * i, value=rt.load(data + 8 * i))
    rt.store(v.header, value=(length, cap * 2, new_data))   # not committed!
    state = rt.crash()
    report = recover(state, rt.layout())
    assert PersistentVector.read_back(report.read, v.header) == [0, 1, 2, 3]


def test_vector_reattach(rt):
    v = PersistentVector(rt)
    v.extend(["x", "y"])
    again = PersistentVector.reattach(rt, v.header)
    assert list(again) == ["x", "y"]


# ---------------------------------------------------------------------------
# dict
# ---------------------------------------------------------------------------


def test_dict_put_get_delete(rt):
    d = PersistentDict(rt)
    d.put("a", 1)
    d.put("b", 2)
    d.put("a", 10)                   # overwrite
    assert d.get("a") == 10
    assert d.get("missing", "dflt") == "dflt"
    assert "b" in d and "c" not in d
    assert d.delete("b")
    assert not d.delete("b")
    assert len(d) == 1


def test_dict_rehash_keeps_entries(rt):
    d = PersistentDict(rt, initial_capacity=4)
    for i in range(40):              # forces several rehashes
        d.put(i, i * i)
    assert len(d) == 40
    assert dict(d.items()) == {i: i * i for i in range(40)}


def test_dict_tombstone_reuse(rt):
    d = PersistentDict(rt, initial_capacity=8)
    d.put(0, "zero")
    d.delete(0)
    d.put(8, "eight")                # may land on the tombstoned slot
    assert d.get(8) == "eight"
    assert d.get(0) is None


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "del"]), st.integers(0, 30)),
        max_size=60,
    )
)
def test_dict_matches_model(ops):
    rt = AtlasRuntime(technique="LA")
    d = PersistentDict(rt, initial_capacity=4)
    model = {}
    for op, key in ops:
        if op == "put":
            d.put(key, key + 1)
            model[key] = key + 1
        else:
            assert d.delete(key) == (key in model)
            model.pop(key, None)
    assert len(d) == len(model)
    assert dict(d.items()) == model
    # And the durable image agrees after a clean crash point.
    state = rt.crash()
    report = recover(state, rt.layout())
    assert PersistentDict.read_back(report.read, d.header) == model


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------


def test_queue_fifo_order(rt):
    q = PersistentQueue(rt)
    for i in range(10):
        q.enqueue(i)
    assert len(q) == 10
    assert q.peek() == 0
    assert [q.dequeue() for _ in range(10)] == list(range(10))
    with pytest.raises(IndexError):
        q.dequeue()
    with pytest.raises(IndexError):
        q.peek()


def test_queue_interleaved(rt):
    q = PersistentQueue(rt)
    q.enqueue("a")
    q.enqueue("b")
    assert q.dequeue() == "a"
    q.enqueue("c")
    assert q.dequeue() == "b"
    assert q.dequeue() == "c"


def test_queue_crash_recovers_committed_prefix(rt):
    q = PersistentQueue(rt)
    for i in range(6):
        q.enqueue(i)
    q.dequeue()
    # A torn enqueue: header update never commits.
    rt.fases.begin()
    rt.log.on_fase_begin()
    node = rt.alloc(8)
    rt.store(node, value=("torn", None))
    state = rt.crash()
    report = recover(state, rt.layout())
    assert PersistentQueue.read_back(report.read, q.header) == [1, 2, 3, 4, 5]


def test_containers_share_one_runtime(rt):
    v = PersistentVector(rt)
    d = PersistentDict(rt)
    q = PersistentQueue(rt)
    v.append(1)
    d.put("k", "v")
    q.enqueue("x")
    state = rt.crash()
    report = recover(state, rt.layout())
    assert PersistentVector.read_back(report.read, v.header) == [1]
    assert PersistentDict.read_back(report.read, d.header) == {"k": "v"}
    assert PersistentQueue.read_back(report.read, q.header) == ["x"]
