"""The O(1) hash-map + doubly-linked-list LRU structure (§III-C)."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.lru import LruCache
from repro.common.errors import ConfigurationError


def test_insert_and_membership():
    c = LruCache()
    c.insert(1)
    c.insert(2)
    assert 1 in c and 2 in c and 3 not in c
    assert len(c) == 2


def test_duplicate_insert_rejected():
    c = LruCache()
    c.insert(1)
    with pytest.raises(ConfigurationError):
        c.insert(1)


def test_insert_absent_skips_membership_check():
    """The hot-path variant behaves like insert for genuinely new keys."""
    c = LruCache()
    c.insert_absent(1)
    c.insert_absent(2)
    assert list(c) == [1, 2]
    c.check_invariants()


def test_eviction_order_is_lru():
    c = LruCache()
    for k in (1, 2, 3):
        c.insert(k)
    assert c.evict_lru() == 1
    assert c.evict_lru() == 2
    assert c.evict_lru() == 3


def test_touch_moves_to_mru():
    c = LruCache()
    for k in (1, 2, 3):
        c.insert(k)
    assert c.touch(1)
    assert c.evict_lru() == 2
    assert list(c) == [3, 1]


def test_touch_missing_returns_false():
    c = LruCache()
    assert not c.touch(9)


def test_evict_empty_raises():
    with pytest.raises(ConfigurationError):
        LruCache().evict_lru()


def test_remove():
    c = LruCache()
    for k in (1, 2, 3):
        c.insert(k)
    assert c.remove(2)
    assert not c.remove(2)
    assert list(c) == [1, 3]
    c.check_invariants()


def test_clear_returns_lru_order():
    c = LruCache()
    for k in (5, 6, 7):
        c.insert(k)
    c.touch(5)
    assert c.clear() == [6, 7, 5]
    assert len(c) == 0
    assert c.peek_lru() is None


def test_peek_lru():
    c = LruCache()
    c.insert(4)
    c.insert(9)
    assert c.peek_lru() == 4


class LruModel(RuleBasedStateMachine):
    """Stateful comparison against a plain list model."""

    def __init__(self):
        super().__init__()
        self.cache = LruCache()
        self.model = []  # LRU .. MRU

    @rule(key=st.integers(min_value=0, max_value=20))
    def insert_or_touch(self, key):
        if key in self.model:
            assert self.cache.touch(key)
            self.model.remove(key)
            self.model.append(key)
        else:
            self.cache.insert(key)
            self.model.append(key)

    @rule()
    def evict(self):
        if self.model:
            assert self.cache.evict_lru() == self.model.pop(0)

    @rule(key=st.integers(min_value=0, max_value=20))
    def remove(self, key):
        present = key in self.model
        assert self.cache.remove(key) == present
        if present:
            self.model.remove(key)

    @invariant()
    def agrees_with_model(self):
        assert list(self.cache) == self.model
        assert len(self.cache) == len(self.model)
        self.cache.check_invariants()


TestLruStateful = LruModel.TestCase
TestLruStateful.settings = settings(max_examples=40, deadline=None)
