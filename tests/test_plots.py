"""The SVG chart renderer."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.plots import (
    render_artifact_svg,
    svg_bar_chart,
    svg_line_chart,
    write_artifact_svgs,
)
from repro.experiments.tables import Artifact


def test_line_chart_structure():
    svg = svg_line_chart(
        {"a": ([1, 2, 3], [0.5, 0.2, 0.1]), "b": ([1, 2, 3], [0.4, 0.4, 0.4])},
        title="T & T", xlabel="x", ylabel="y",
    )
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert svg.count("<circle") == 6
    assert "T &amp; T" in svg                 # titles are escaped


def test_line_chart_validation():
    with pytest.raises(ConfigurationError):
        svg_line_chart({}, "t")
    with pytest.raises(ConfigurationError):
        svg_line_chart({"a": ([], [])}, "t")


def test_bar_chart_structure():
    svg = svg_bar_chart(
        ["one", "two"], {"s1": [1.0, 2.0], "s2": [0.5, 1.5]}, title="bars"
    )
    assert svg.count("<rect") == 1 + 4        # background + 4 bars
    assert "one" in svg and "two" in svg


def test_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        svg_bar_chart([], {"a": []}, "t")


def artifact(name, series):
    art = Artifact(name, f"title {name}")
    art.series = series
    return art


def test_render_figure2():
    art = artifact("figure2", {"miss_ratio": {"x": [1, 2], "y": [0.9, 0.1]}})
    out = render_artifact_svg(art)
    assert list(out) == ["figure2.svg"]


def test_render_figure7_multi_panel():
    panel = {"x": [1, 2], "actual": [0.5, 0.1], "full_trace": [0.5, 0.12],
             "sampled": [0.55, 0.1]}
    art = artifact("figure7", {"barnes": panel, "fmm": panel})
    out = render_artifact_svg(art)
    assert set(out) == {"figure7_barnes.svg", "figure7_fmm.svg"}


def test_render_figure5_and_8():
    art5 = artifact(
        "figure5", {"p": {"x": [1, 2], "sc_over_at": [1.2, 1.1],
                          "sco_over_at": [1.3, 1.2]}}
    )
    assert "figure5.svg" in render_artifact_svg(art5)
    art8 = artifact("figure8", {"overhead": {"x": ["a/1", "b/8"], "y": [3, 7]}})
    assert "figure8.svg" in render_artifact_svg(art8)


def test_render_unknown_artifact():
    with pytest.raises(ConfigurationError):
        render_artifact_svg(artifact("table1", {}))


def test_write_artifact_svgs(tmp_path):
    art = artifact("figure2", {"miss_ratio": {"x": [1, 2], "y": [0.9, 0.1]}})
    paths = write_artifact_svgs(art, str(tmp_path / "charts"))
    assert len(paths) == 1
    assert (tmp_path / "charts" / "figure2.svg").read_text().startswith("<svg")
