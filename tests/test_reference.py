"""The brute-force oracles themselves (they verify the fast paths, so
their own semantics deserve direct pinning)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.locality.reference import (
    enclosing_windows_brute,
    footprint_brute,
    lru_mrc,
    lru_write_cache_misses,
    reuse_brute,
)
from repro.locality.trace import WriteTrace


def test_reuse_brute_hand_example():
    t = WriteTrace.from_string("abb")
    assert reuse_brute(t, 2) == 0.5
    assert reuse_brute(t, 3) == 1.0
    with pytest.raises(ConfigurationError):
        reuse_brute(t, 0)
    with pytest.raises(ConfigurationError):
        reuse_brute(t, 4)


def test_footprint_brute_hand_example():
    t = WriteTrace.from_string("abb")
    assert footprint_brute(t, 2) == 1.5


def test_enclosing_windows_brute():
    # Interval [2,3] in a 3-long trace: only the k=2 window at 2 and the
    # whole trace enclose it.
    assert enclosing_windows_brute(2, 3, 3, 2) == 1
    assert enclosing_windows_brute(2, 3, 3, 3) == 1
    assert enclosing_windows_brute(2, 3, 3, 1) == 0


def test_lru_misses_basic():
    t = WriteTrace([1, 2, 1, 3, 1])
    # size 2: 1m 2m 1h 3m(evict 2) 1h -> 3 misses
    assert lru_write_cache_misses(t, 2, honor_fases=False) == 3
    assert lru_write_cache_misses(t, 3, honor_fases=False) == 3
    assert lru_write_cache_misses(t, 1, honor_fases=False) == 5


def test_lru_misses_fase_drain():
    t = WriteTrace.from_string("ab|ab")
    assert lru_write_cache_misses(t, 4, honor_fases=True) == 4
    assert lru_write_cache_misses(t, 4, honor_fases=False) == 2


def test_lru_validation():
    with pytest.raises(ConfigurationError):
        lru_write_cache_misses(WriteTrace([1]), 0)
    with pytest.raises(ConfigurationError):
        lru_mrc(WriteTrace([]), [1])


def test_lru_mrc_monotone():
    rng = np.random.default_rng(2)
    t = WriteTrace(rng.integers(0, 20, size=400))
    curve = lru_mrc(t, [1, 2, 4, 8, 16, 32], honor_fases=False)
    assert np.all(np.diff(curve) <= 1e-12)   # LRU inclusion property
