"""MDB store: pages, MVCC transactions, the public API, Mtest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import make_factory
from repro.common.errors import ConfigurationError, SimulationError
from repro.mdb.kvstore import MdbStore
from repro.mdb.mtest import MtestWorkload
from repro.mdb.ops import RecordingOps
from repro.mdb.pages import Page, PageAllocator
from repro.nvram.machine import Machine, MachineConfig


def make_store(page_size=256):
    ops = RecordingOps(record_loads=False)
    return MdbStore(ops, page_size=page_size), ops


# ---------------------------------------------------------------------------
# pages
# ---------------------------------------------------------------------------


def test_page_header_and_slots():
    ops = RecordingOps(record_loads=False)
    alloc = PageAllocator(ops, 256)
    page = alloc.new_page()
    page.write_header(Page.LEAF, 2)
    page.write_slot(0, (1, "a"))
    page.write_slot(1, (2, "b"))
    assert page.read_header() == (Page.LEAF, 2)
    assert page.read_entries(2) == [(1, "a"), (2, "b")]


def test_page_slot_bounds():
    ops = RecordingOps(record_loads=False)
    page = PageAllocator(ops, 256).new_page()
    with pytest.raises(ConfigurationError):
        page.write_slot(page.capacity, "x")
    with pytest.raises(ConfigurationError):
        page.read_slot(-1)


def test_allocator_validation():
    ops = RecordingOps(record_loads=False)
    with pytest.raises(ConfigurationError):
        PageAllocator(ops, 16)
    alloc = PageAllocator(ops, 512)
    assert alloc.capacity_per_page == (512 - 16) // 16


def test_fresh_page_reads_as_unknown():
    ops = RecordingOps(record_loads=False)
    page = PageAllocator(ops, 256).new_page()
    assert page.read_header() == ("?", 0)


# ---------------------------------------------------------------------------
# store API + MVCC
# ---------------------------------------------------------------------------


def test_put_get_delete_roundtrip():
    db, _ = make_store()
    db.put(1, "one")
    db.put(2, "two")
    assert db.get(1) == "one"
    assert db.get(3) is None
    assert db.delete(1)
    assert not db.delete(1)
    assert db.get(1) is None
    assert db.count() == 1


def test_write_txn_batches_in_one_fase():
    db, ops = make_store()
    before = sum(1 for e in ops.events if e.kind == 3)   # FaseBegin
    with db.write_txn() as txn:
        for i in range(20):
            txn.put(i, i)
    after = sum(1 for e in ops.events if e.kind == 3)
    assert after == before + 1
    assert db.count() == 20


def test_snapshot_isolation():
    db, _ = make_store()
    db.put(1, "v1")
    snap = db.read_txn()
    db.put(1, "v2")
    db.put(2, "new")
    assert snap.get(1) == "v1"
    assert snap.get(2) is None
    assert db.get(1) == "v2"


def test_writer_sees_own_uncommitted_writes():
    db, _ = make_store()
    with db.write_txn() as txn:
        txn.put(7, "x")
        assert txn.get(7) == "x"
    assert db.get(7) == "x"


def test_single_writer_enforced():
    db, _ = make_store()
    with db.write_txn():
        with pytest.raises(SimulationError):
            db.txns.begin_write()


def test_abort_discards_changes():
    db, _ = make_store()
    db.put(1, "keep")
    try:
        with db.write_txn() as txn:
            txn.put(1, "discard")
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert db.get(1) == "keep"
    # The writer slot is free again.
    db.put(2, "ok")


def test_finished_txn_rejects_operations():
    db, _ = make_store()
    with db.write_txn() as txn:
        txn.put(1, 1)
    with pytest.raises(SimulationError):
        txn.put(2, 2)


def test_meta_alternation():
    db, _ = make_store()
    i0, _, t0 = db.txns.latest()
    db.put(1, 1)
    i1, _, t1 = db.txns.latest()
    db.put(2, 2)
    i2, _, t2 = db.txns.latest()
    assert t0 < t1 < t2
    assert i1 != i2   # dual meta pages alternate


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "del"]), st.integers(0, 40)),
        max_size=60,
    )
)
def test_store_matches_dict_model(ops_list):
    db, _ = make_store()
    model = {}
    for op, key in ops_list:
        if op == "put":
            db.put(key, key + 1000)
            model[key] = key + 1000
        else:
            assert db.delete(key) == (key in model)
            model.pop(key, None)
    assert db.check() == len(model)
    assert dict(db.read_txn().scan()) == model


# ---------------------------------------------------------------------------
# Mtest workload
# ---------------------------------------------------------------------------


def test_mtest_through_machine():
    w = MtestWorkload(pairs=400)
    machine = Machine(MachineConfig())
    res = machine.run(w, make_factory("LA"), num_threads=1, seed=0)
    assert res.persistent_stores > 5_000
    assert res.fase_count >= 400 // 24
    assert 0 < res.flush_ratio < 1


def test_mtest_reader_threads_do_not_flush():
    w = MtestWorkload(pairs=400)
    machine = Machine(MachineConfig())
    res = machine.run(w, make_factory("LA"), num_threads=3, seed=0)
    writer, readers = res.threads[0], res.threads[1:]
    assert writer.flushes > 0
    assert all(r.flushes == 0 for r in readers)
    assert all(r.persistent_loads > 0 for r in readers)


def test_mtest_validation():
    with pytest.raises(ConfigurationError):
        MtestWorkload(pairs=0)
    with pytest.raises(ConfigurationError):
        MtestWorkload(pairs=10, batch_size=0)
    with pytest.raises(ConfigurationError):
        MtestWorkload(pairs=10, delete_fraction=1.5)


def test_mtest_deterministic():
    w = MtestWorkload(pairs=300)
    r1 = Machine(MachineConfig()).run(w, make_factory("LA"), num_threads=1, seed=4)
    r2 = Machine(MachineConfig()).run(w, make_factory("LA"), num_threads=1, seed=4)
    assert r1.flushes == r2.flushes
    assert r1.persistent_stores == r2.persistent_stores
