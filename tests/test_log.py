"""The undo log: ordering, durability, scanning."""

import pytest

from repro.atlas.log import (
    KIND_COMMIT,
    KIND_UNDO,
    LOG_SLOT_BYTES,
    LogRecord,
    UndoLog,
)
from repro.atlas.region import RegionManager
from repro.cache.policies import make_factory
from repro.nvram.machine import Machine, MachineConfig


@pytest.fixture
def setup():
    machine = Machine(MachineConfig(track_values=True))
    session = machine.session(make_factory("LA")(0))
    region = RegionManager().find_or_create("log", 1 << 16)
    return machine, session, UndoLog(region, session)


def test_record_payload_roundtrip():
    rec = LogRecord(KIND_UNDO, 7, 1234, "old")
    assert LogRecord.from_payload(rec.as_payload()) == rec
    commit = LogRecord(KIND_COMMIT, 7)
    assert LogRecord.from_payload(commit.as_payload()) == commit


def test_from_payload_rejects_garbage():
    assert LogRecord.from_payload(None) is None
    assert LogRecord.from_payload(("weird", 1, 2, 3)) is None
    assert LogRecord.from_payload((KIND_UNDO, 1)) is None
    assert LogRecord.from_payload(42) is None


def test_log_entry_is_durable_immediately(setup):
    machine, session, log = setup
    log.log_store(fase_id=1, addr=999, old_value="before")
    records = list(UndoLog.scan(machine.memory.nvram, log.region.base, log.region.size))
    assert records == [LogRecord(KIND_UNDO, 1, 999, "before")]


def test_duplicate_addr_logged_once_per_fase(setup):
    machine, session, log = setup
    log.on_fase_begin()
    log.log_store(1, 100, "a")
    log.log_store(1, 100, "stale")     # second store to the same addr
    assert log.appended == 1
    log.commit(1)
    log.on_fase_begin()
    log.log_store(2, 100, "b")         # new FASE: logged again
    assert log.appended == 3           # undo + commit + undo


def test_commit_record_written(setup):
    machine, session, log = setup
    log.log_store(5, 100, None)
    log.commit(5)
    records = list(UndoLog.scan(machine.memory.nvram, log.region.base, log.region.size))
    assert records[-1] == LogRecord(KIND_COMMIT, 5, 0, None)
    assert log.commits == 1


def test_scan_stops_at_first_hole(setup):
    machine, session, log = setup
    log.log_store(1, 100, "x")
    log.log_store(1, 200, "y")
    # Corrupt the middle slot (as if it never became durable).
    nvram = dict(machine.memory.nvram)
    first_slot = log.region.base + 64
    del nvram[first_slot]
    assert list(UndoLog.scan(nvram, log.region.base, log.region.size)) == []


def test_log_slot_spacing(setup):
    machine, session, log = setup
    log.log_store(1, 100, "x")
    log.log_store(1, 200, "y")
    slots = sorted(
        a for a in machine.memory.nvram if log.region.contains(a)
    )
    assert slots[1] - slots[0] == LOG_SLOT_BYTES


def test_log_flushes_counted_separately(setup):
    machine, session, log = setup
    log.log_store(1, 100, "x")
    assert session.stats.log_flushes == 1
    assert session.stats.eviction_flushes == 0
