"""Tracing wired through the machine: equivalence, determinism, metrics.

The observability layer must *observe*, never perturb: a traced run's
statistics are bit-identical to the untraced run of the same cell, the
per-event and batched execution paths emit the same events, and repeated
traced runs of one configuration export byte-identical documents.
"""

import json

from repro.cache.policies import make_factory
from repro.nvram.machine import Machine, MachineConfig
from repro.obs.runner import traced_run
from repro.obs.trace import (
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_SIZE_SELECTED,
    NULL_RECORDER,
    TraceRecorder,
)
from repro.workloads.registry import get_workload

CELL = ("queue", "SC", 2)


def test_untraced_machine_holds_the_null_recorder():
    machine = Machine(MachineConfig())
    assert machine.recorder is NULL_RECORDER
    assert machine.metrics is None


def test_size_selected_events_match_run_result(tiny_harness):
    result, recorder, _ = traced_run(
        tiny_harness, CELL[0], CELL[1], threads=CELL[2]
    )
    got = {}
    for e in recorder.events_of(EV_SIZE_SELECTED):
        got.setdefault(e.thread_id, []).append(e.a)
    want = {t: s for t, s in result.selected_sizes.items() if s}
    assert got == want
    assert got   # the SC run did adapt


def test_tracing_does_not_perturb_the_run(tiny_harness):
    traced, recorder, _ = traced_run(
        tiny_harness, CELL[0], CELL[1], threads=CELL[2]
    )
    plain = tiny_harness.run(*CELL)
    assert traced.to_dict() == plain.to_dict()
    assert len(recorder) > 0


def test_fase_spans_are_balanced(tiny_harness):
    result, recorder, _ = traced_run(tiny_harness, "queue", "LA")
    begins = recorder.events_of(EV_FASE_BEGIN)
    ends = recorder.events_of(EV_FASE_END)
    assert len(begins) == len(ends) == result.fase_count
    # Same uids, and every end is at or after its begin.
    starts = {e.a: e.time for e in begins}
    for e in ends:
        assert e.time >= starts[e.a]


def test_trace_exports_are_deterministic(tiny_harness):
    runs = [
        traced_run(tiny_harness, "queue", "SC", threads=2, metrics_interval=5000)
        for _ in range(2)
    ]
    (_, rec1, met1), (_, rec2, met2) = runs
    assert rec1.to_jsonl() == rec2.to_jsonl()
    assert json.dumps(rec1.to_chrome(), sort_keys=True) == json.dumps(
        rec2.to_chrome(), sort_keys=True
    )
    assert met1.to_dict() == met2.to_dict()


def test_per_event_and_batched_traces_are_identical():
    def run(technique, use_batches):
        recorder = TraceRecorder()
        machine = Machine(MachineConfig(), recorder=recorder)
        machine.run(
            get_workload("water-spatial", scale=0.05),
            make_factory(technique),
            num_threads=2,
            seed=7,
            use_batches=use_batches,
        )
        per_thread = {}
        for e in recorder.events():
            per_thread.setdefault(e.thread_id, []).append(e)
        return per_thread

    for technique in ("BEST", "SC"):
        assert run(technique, False) == run(technique, True), technique


def test_drain_events_carry_fase_ids(tiny_harness):
    """FASE-boundary drains are attributed to the committing FASE; the
    final drain is marked unattributed (-1)."""
    result, recorder, _ = traced_run(tiny_harness, "queue", "LA")
    drains = recorder.events_of(EV_DRAIN)
    assert drains, "LA drains at every FASE end"
    fase_uids = {e.a for e in recorder.events_of(EV_FASE_END)}
    attributed = [e for e in drains if e.c >= 0]
    unattributed = [e for e in drains if e.c == -1]
    assert attributed, "at least one FASE-end drain"
    assert all(e.c in fase_uids for e in attributed)
    # One final drain per thread, at most (threads with nothing queued
    # drain for free and may still record a zero-stall drain).
    assert len(unattributed) <= len(result.threads)
    assert len(drains) == len(attributed) + len(unattributed)


def test_evict_flush_resize_flags():
    """Capacity evictions carry resize_evict=0; an SC run that shrinks
    its cache marks resize-forced write-backs with resize_evict=1."""
    recorder = TraceRecorder()
    machine = Machine(MachineConfig(l1_capacity_lines=16), recorder=recorder)
    result = machine.run(
        get_workload("water-spatial", scale=0.05),
        make_factory("SC"),
        num_threads=2,
        seed=7,
    )
    flushes = recorder.events_of(EV_EVICT_FLUSH)
    assert flushes
    assert all(e.c in (0, 1) for e in flushes)
    # Every evict_flush (capacity or resize) counts into the same
    # RunResult eviction_flushes aggregate — the trace adds provenance
    # without changing the statistics schema.
    assert len(flushes) == sum(t.eviction_flushes for t in result.threads)


def test_resize_eviction_carries_the_resize_flag():
    """A controller shrink that evicts resident lines flags the forced
    write-backs with resize_evict=1 and keeps counting them as eviction
    flushes in the RunResult."""
    from repro.nvram.memory import NVRAM_BASE

    recorder = TraceRecorder()
    machine = Machine(MachineConfig(), recorder=recorder)
    technique = make_factory("SC-offline", sc_fixed_size=8)(0)
    session = machine.session(technique)
    for i in range(8):
        session.store(NVRAM_BASE + 64 * i)
    technique._resize(2)               # shrink below occupancy: 6 evictions
    session.finish()
    flushes = recorder.events_of(EV_EVICT_FLUSH)
    resize_forced = [e for e in flushes if e.c == 1]
    assert len(resize_forced) == 6
    assert session.stats.eviction_flushes == len(flushes)


def test_metrics_sampling_through_a_run(tiny_harness):
    result, _, metrics = traced_run(
        tiny_harness, "queue", "SC", threads=2, metrics_interval=2000
    )
    names = metrics.series_names()
    for tid in range(2):
        assert f"flush_queue_depth/t{tid}" in names
        assert f"cache_occupancy/t{tid}" in names
        assert f"flush_ratio/t{tid}" in names
        ts, vs = metrics.series(f"cache_occupancy/t{tid}")
        assert ts == sorted(ts)
        assert all(v >= 0 for v in vs)
        # End-of-run totals land as counters/gauges.
        stats = result.threads[tid]
        assert metrics.counters[f"flushes/t{tid}"] == stats.flushes
        assert metrics.counters[f"fase_count/t{tid}"] == stats.fase_count
        assert metrics.gauges[f"cycles/t{tid}"] == stats.cycles
