"""Figure 2 — the MRC of water-spatial, and §IV-G's selected sizes.

Shape under test: a sharp knee at ~23 where the miss ratio collapses;
and across programs, the knee rule reproduces the paper's "no
one-fits-for-all" table of selections (barnes 15, fmm 10, ocean 2,
raytrace 8, volrend 3, water-nsquared 28, water-spatial 23, mdb 20).
"""

from repro.experiments.figures import PAPER_SELECTED_SIZES, figure2


def test_fig2_water_spatial_mrc(harness, once):
    art = once(figure2, harness)
    print("\n" + art.text)
    selected = art.rows[0]["selected_size"]
    assert abs(selected - 23) <= 2
    mr = art.series["miss_ratio"]["y"]
    # The knee is sharp: >20x drop across it.
    assert mr[selected] < mr[selected - 4] / 20
    # Flat tail beyond the knee.
    assert mr[49] <= mr[selected] * 1.01 + 1e-9


def test_selected_sizes_match_paper(harness, once):
    """§IV-G's per-program selections, within +-2 (fmm may drift a bit
    more at some scales: its curve has a secondary shelf)."""
    hits = 0
    once(harness.offline_mrc, "water-spatial")
    for name, paper_size in PAPER_SELECTED_SIZES.items():
        ours = harness.offline_size(name)
        if abs(ours - paper_size) <= 3:
            hits += 1
        print(f"{name}: selected {ours} (paper {paper_size})")
    assert hits >= 6, f"only {hits}/8 selections near the paper's"


def test_no_one_size_fits_all(harness, once):
    sizes = once(lambda: {harness.offline_size(n) for n in PAPER_SELECTED_SIZES})
    assert len(sizes) >= 5
