"""The observability layer's overhead budget (DESIGN.md §9).

Two assertions keep ``repro.obs`` honest:

- **Disabled path**: a machine built without a recorder holds the shared
  ``NULL_RECORDER`` and runs the batched fast path at (noise-bounded)
  parity with the pre-obs loop — the only added work per quantum is one
  hoisted ``enabled`` attribute load.  Measured here as untraced-vs-
  traced throughput; the cross-PR guard is ``tools/bench_compare.py``
  against the committed BENCH trajectory.
- **Enabled path**: recording every event of a flush-heavy run costs a
  bounded multiple, not an order of magnitude.
"""

import time

from repro.cache.spec import technique_factory
from repro.nvram.machine import Machine, MachineConfig
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.workloads.registry import get_workload

SCALE = 0.2
REPS = 3


def _timed_run(workload, technique, recorder=None):
    """Best-of-REPS wall time and the result of one batched run."""
    best = float("inf")
    result = None
    for _ in range(REPS):
        machine = Machine(MachineConfig(), recorder=recorder)
        start = time.perf_counter()
        result = machine.run(
            workload, technique_factory(technique), num_threads=2, seed=7
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_null_recorder_overhead_is_noise(once):
    workload = get_workload("water-spatial", scale=SCALE)
    _timed_run(workload, "SC")                       # warm-up (JIT-free, but caches)
    t_null, r_null = once(_timed_run, workload, "SC")
    t_traced, r_traced = _timed_run(workload, "SC", recorder=TraceRecorder())
    events = r_null.persistent_stores + r_null.instructions
    print(
        f"\nnull: {t_null * 1e3:.1f} ms, traced: {t_traced * 1e3:.1f} ms "
        f"({events / max(t_null, 1e-9) / 1e6:.2f} M events/s untraced)"
    )
    # Identical simulation either way — tracing only observes.
    assert r_null.to_dict() == r_traced.to_dict()
    # The disabled path must never be meaningfully slower than the
    # enabled one (generous noise bound for shared CI runners).
    assert t_null <= t_traced * 1.25


def test_default_machine_shares_the_null_recorder():
    a = Machine(MachineConfig())
    b = Machine(MachineConfig())
    assert a.recorder is NULL_RECORDER
    assert b.recorder is NULL_RECORDER      # module singleton, no per-run state


def test_enabled_path_overhead_is_bounded():
    workload = get_workload("queue", scale=SCALE)    # flush/FASE heavy
    t_null, _ = _timed_run(workload, "SC")
    recorder = TraceRecorder()
    t_traced, _ = _timed_run(workload, "SC", recorder=recorder)
    print(
        f"\nqueue SC: {t_null * 1e3:.1f} ms untraced, "
        f"{t_traced * 1e3:.1f} ms traced, {len(recorder)} events"
    )
    assert len(recorder) > 0
    # Recording is five list appends per (rare) event: stay within 3x
    # even on this adversarially event-dense workload.
    assert t_traced <= t_null * 3.0


def test_streaming_recorder_overhead_is_bounded(tmp_path):
    """The full live pipeline — ring, counts, JSONL spill — stays a
    bounded multiple of the untraced run (BENCH tracks the exact ratio
    as ``streaming_recorder.streaming_overhead``)."""
    from repro.obs.live import StreamingRecorder

    workload = get_workload("queue", scale=SCALE)    # flush/FASE heavy
    t_null, r_null = _timed_run(workload, "SC")
    spill = tmp_path / "spill.jsonl"
    best = float("inf")
    events = 0
    result = None
    for _ in range(REPS):
        recorder = StreamingRecorder(str(spill))     # fresh ring + file per rep
        machine = Machine(MachineConfig(), recorder=recorder)
        start = time.perf_counter()
        result = machine.run(
            workload, technique_factory("SC"), num_threads=2, seed=7
        )
        recorder.close()                             # spill priced in
        best = min(best, time.perf_counter() - start)
        events = len(recorder)
    print(
        f"\nqueue SC: {t_null * 1e3:.1f} ms untraced, "
        f"{best * 1e3:.1f} ms streaming, {events} events spilled"
    )
    assert events > 0
    # Streaming only observes — the simulation is unchanged.
    assert result.to_dict() == r_null.to_dict()
    # Measured ~2.4x on the pinned case; 5x leaves room for CI noise.
    assert best <= t_null * 5.0
