"""Table IV — water-spatial across thread counts.

Shape under test: SC executes more instructions than AT (paper: ~8%
more) but flushes an order of magnitude less; flush ratios rise gently
with the thread count (more FASEs, more compulsory drains); hardware
cache miss ratios rise with the thread count for *every* technique
(capacity contention), with BEST < SC < AT throughout.
"""

from repro.experiments.tables import table4


def test_table4_water_spatial(harness, bench_threads, once):
    art = once(table4, harness, threads=bench_threads)
    print("\n" + art.text)
    rows = art.rows

    for row in rows:
        assert row["inst_be"] < row["inst_at"] < row["inst_sc"], row["threads"]
        # SC's instruction overhead over AT stays modest (paper ~8%).
        assert row["inst_sc"] < row["inst_at"] * 1.6, row["threads"]
        assert row["flush_ratio_be"] == 0.0
        # SC's online warm-up (default size 8 until the burst closes)
        # weighs more in short per-thread streams; the order-of-
        # magnitude gap must hold up to 16 threads, a clear gap at 32.
        bound = 3.0 if row["threads"] <= 16 else 1.5
        assert row["flush_ratio_sc"] < row["flush_ratio_at"] / bound, row["threads"]
        assert row["l1_mr_be"] <= row["l1_mr_sc"] + 0.02, row["threads"]
        assert row["l1_mr_sc"] <= row["l1_mr_at"] + 0.02, row["threads"]

    # Contention: BEST's L1 miss ratio grows with the thread count
    # (the effect the paper attributes SC's narrowing advantage to).
    assert rows[-1]["l1_mr_be"] >= rows[0]["l1_mr_be"]
    # SC's flush ratio rises only gently with threads.
    assert rows[-1]["flush_ratio_sc"] <= max(
        rows[0]["flush_ratio_sc"] * 12, rows[0]["flush_ratio_sc"] + 0.02
    )
