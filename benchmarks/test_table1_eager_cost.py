"""Table I — the cost of eager data persistence (paper average: 22x)."""

from repro.experiments.tables import table1


def test_table1_eager_cost(harness, once):
    art = once(table1, harness)
    print("\n" + art.text)
    rows = {r["program"]: r for r in art.rows}

    # Every SPLASH2 program pays an order of magnitude for flush-per-store.
    for name, row in rows.items():
        if name == "average":
            continue
        assert row["slowdown"] > 4, f"{name}: eager cost implausibly low"
        # Within ~2.5x of the published slowdown (the calibration claim).
        ratio = row["slowdown"] / row["paper_slowdown"]
        assert 0.4 < ratio < 2.5, f"{name}: {row}"

    avg = rows["average"]["slowdown"]
    assert 14 <= avg <= 35, f"average {avg} vs paper 22"
