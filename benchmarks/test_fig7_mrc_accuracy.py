"""Figure 7 — actual vs full-trace vs sampled MRC.

Paper: "Sampled MRC is not as precise as the accurate MRC.  But in
terms of cache size selection, it is sufficiently good, since the
sampled MRC has the same inflection points as accurate MRC."
"""

import numpy as np

from repro.experiments.figures import FIG7_PROGRAMS, figure7


def test_fig7_mrc_accuracy(harness, once):
    art = once(figure7, harness)
    print("\n" + art.text)

    # Selection agreement: the sampled selection must be *equivalent* to
    # the full-trace one — same size up to a couple of entries, or a
    # different shelf of the curve with the same achieved miss ratio
    # (fmm's curve has two near-equal shelves and the tie-break is
    # legitimately unstable between them).
    for row in art.rows:
        close = abs(row["selected_full"] - row["selected_sampled"]) <= 3
        mrc = harness.offline_mrc(row["benchmark"])
        equivalent = abs(
            mrc.miss_ratio(row["selected_full"])
            - mrc.miss_ratio(row["selected_sampled"])
        ) < 0.02
        assert close or equivalent, row

    for name in FIG7_PROGRAMS:
        s = art.series[name]
        actual = np.asarray(s["actual"])
        full = np.asarray(s["full_trace"])
        sampled = np.asarray(s["sampled"])
        # The theory tracks the measured curve: mean absolute error is
        # small relative to the curve's range.
        spread = actual.max() - actual.min() + 1e-9
        assert np.mean(np.abs(full - actual)) < 0.35 * spread, name
        # Sampling stays close to the full-trace theory.
        assert np.mean(np.abs(sampled - full)) < 0.35 * spread, name
        # All three agree on where the curve has flattened out.
        assert abs(full[-1] - actual[-1]) < 0.1, name
