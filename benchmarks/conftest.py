"""Benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures on a
shared, cached harness and asserts the published *shape* (who wins, by
roughly what factor, where crossovers fall).  Absolute numbers are model
cycles, not wall-clock — see DESIGN.md §2.

Environment knobs:

``REPRO_BENCH_SCALE``
    Problem-size multiplier (default 0.4; 1.0 reproduces the scaled
    defaults documented in EXPERIMENTS.md).
``REPRO_BENCH_THREADS``
    Comma-separated thread counts for the parallel sweeps
    (default ``1,2,4,8,16,32``).

Each benchmark runs its generator exactly once (``pedantic`` with one
round): the regenerated artifact is the product; the timing recorded by
pytest-benchmark documents the cost of regenerating it.
"""

from __future__ import annotations

import os
import tempfile

# Hermetic runs: benchmark sweeps hit the recording entry points too —
# always keep their ledger out of the working tree (and out of any
# ledger the invoking environment selected).
os.environ["REPRO_LEDGER"] = tempfile.mkdtemp(prefix="repro-bench-ledger-")

import pytest

from repro.experiments.harness import Harness, HarnessConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_THREADS = tuple(
    int(t) for t in os.environ.get("REPRO_BENCH_THREADS", "1,2,4,8,16,32").split(",")
)


@pytest.fixture(scope="session")
def harness() -> Harness:
    """The shared, run-caching harness all benchmarks draw from."""
    return Harness(HarnessConfig(scale=BENCH_SCALE, seed=0))


@pytest.fixture(scope="session")
def bench_threads() -> tuple:
    """Thread counts for the parallel sweeps (Figs. 5/6, Table IV)."""
    return BENCH_THREADS


@pytest.fixture
def once(benchmark):
    """Run a generator exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
