"""Figure 4 — single-thread speedups over ER.

Paper: SC averages 9.6x over ER (range 1.4x-34.2x), AT averages 4.5x,
SC beats AT by 2.1x on average, SC-offline edges SC by ~7%, BEST tops
out at 16.1x.  Shape under test: the full ordering per benchmark and
the aggregate factors within a factor-of-two band.
"""

from repro.experiments.figures import figure4


def test_fig4_speedups(harness, once):
    art = once(figure4, harness)
    print("\n" + art.text)
    rows = {r["benchmark"]: r for r in art.rows}

    for name, row in rows.items():
        if name == "average":
            continue
        assert row["BEST"] >= row["SC-offline"] * 0.98, name
        assert row["SC-offline"] >= row["SC"] * 0.95, name
        assert row["AT"] >= 0.9, name

    avg = rows["average"]
    # SC beats AT on average (paper: 2.1x).
    assert avg["SC"] > avg["AT"] * 1.15
    # Order-of-magnitude agreement with the published averages.
    assert 3 <= avg["SC"] <= 25, f"SC average {avg['SC']} (paper 9.6x)"
    assert 2 <= avg["AT"] <= 12, f"AT average {avg['AT']} (paper 4.5x)"
    assert avg["BEST"] <= 45, f"BEST average {avg['BEST']} (paper 16.1x)"
    # SC-offline's edge over SC is small (paper ~7%).
    assert avg["SC-offline"] / avg["SC"] < 1.5


def test_fig4_sc_uniformly_competitive(harness, once):
    """Paper: "SC is uniformly better than AT" single-threaded."""
    art = once(figure4, harness)
    rows = [r for r in art.rows if r["benchmark"] != "average"]
    better = [r for r in rows if r["SC"] >= r["AT"] * 0.97]
    assert len(better) >= len(rows) - 1
