"""Table III — data flush ratios of all 12 benchmarks, six techniques.

The paper's headline table: SC reduces write-backs by ~12x over AT on
average (excluding the artificial/optimal rows) while staying within
~1.4x of the lazy lower bound.
"""

import pytest

from repro.experiments.tables import AVERAGE_EXCLUDED, table3

#: Rows whose SC ratio the paper shows reaching the lazy bound exactly.
SC_EQUALS_LA = ("linked-list", "queue", "volrend", "persistent-array")


def test_table3_flush_ratios(harness, once):
    art = once(table3, harness)
    print("\n" + art.text)
    rows = {r["benchmark"]: r for r in art.rows}

    for name, row in rows.items():
        if name == "average":
            continue
        assert row["er"] == 1.0, name
        # LA is the floor; SC sits between LA and AT.
        assert row["la"] <= row["sc"] * 1.05, name
        assert row["sc"] <= row["at"] * 1.05, name

    for name in SC_EQUALS_LA:
        assert rows[name]["sc"] == pytest.approx(rows[name]["la"], rel=0.05), name

    # Calibration: SPLASH2 + micro rows land near the published ratios.
    # (mdb/hash reproduce the ordering, not the magnitude;
    # persistent-array's LA is a fixed 27 flushes, so its *ratio* scales
    # with the problem size — its exact counts are asserted in the unit
    # suite.)
    for name, row in rows.items():
        if name in ("average", "mdb", "hash"):
            continue
        assert row["at"] == pytest.approx(row["paper_at"], rel=0.3), name
        if name != "persistent-array":
            assert row["la"] == pytest.approx(row["paper_la"], rel=0.5), name

    avg = rows["average"]
    assert avg["at_over_sc"] > 4, f"AT/SC average {avg['at_over_sc']} (paper 11.9x)"
    assert avg["sc_over_la"] < 2.5, f"SC/LA average {avg['sc_over_la']} (paper 1.43x)"


def test_table3_per_benchmark_gains(harness, once):
    """Spot-check the biggest published wins (AT/SC factors)."""
    art = once(table3, harness)
    rows = {r["benchmark"]: r for r in art.rows}
    # water-spatial: paper 45x; barnes: 21x; volrend: 14.5x.
    assert rows["water-spatial"]["at_over_sc"] > 15
    assert rows["barnes"]["at_over_sc"] > 8
    assert rows["volrend"]["at_over_sc"] > 8
    # persistent-array's analytic 2083x (26/1e6 vs 1/16), scaled run.
    assert rows["persistent-array"]["at_over_sc"] > 100
    assert "persistent-array" in AVERAGE_EXCLUDED
