"""Figure 6 — slowdown of SC relative to BEST across thread counts.

Paper: ocean starts near 11x and falls; the other programs sit between
1x and 2x, roughly flat in the thread count — i.e. the overhead of
adaptive caching does not grow with parallelism.
"""

from repro.experiments.figures import figure6


def test_fig6_overhead(harness, bench_threads, once):
    art = once(figure6, harness, threads=bench_threads)
    print("\n" + art.text)

    for row in art.rows:
        assert row["slowdown"] >= 0.95, row          # BEST is the floor
        assert row["slowdown"] < 25, row

    # Most programs sit in the paper's 1x-3x band.
    in_band = [r for r in art.rows if r["slowdown"] <= 3.5]
    assert len(in_band) >= 0.6 * len(art.rows)

    # Flat-ish in the thread count: the overhead does not explode with
    # parallelism (paper's conclusion; our short per-thread streams give
    # the online warm-up more weight at 32 threads than theirs had).
    for name, series in art.series.items():
        first, last = series["slowdown"][0], series["slowdown"][-1]
        assert last <= first * 4 + 1.5, (name, first, last)
