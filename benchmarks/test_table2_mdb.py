"""Table II — Mtest on MDB: speedups over eager flushing.

Paper (8 threads): ER 1x, AT 2.94x, SC 5.07x, SC-offline 5.60x,
BEST 6.94x.  The shape under test: the full ordering, AT clearly above
ER, SC clearly above AT, SC within ~15% of SC-offline.
"""

from repro.experiments.tables import table2


def test_table2_mdb_speedups(harness, once):
    art = once(table2, harness, threads=8)
    print("\n" + art.text)
    s = {r["method"]: r["speedup"] for r in art.rows}

    assert s["ER"] == 1.0
    assert s["AT"] > 1.8, f"AT speedup {s['AT']} (paper 2.94x)"
    assert s["SC"] > s["AT"] * 1.05, f"SC {s['SC']} vs AT {s['AT']} (paper 1.7x gap)"
    assert s["SC-offline"] >= s["SC"] * 0.98
    assert s["BEST"] >= s["SC-offline"]
    # SC-offline's edge over SC is the online adaptation cost (paper:
    # ~10% on mdb; larger here because our scaled bursts sample a bigger
    # fraction of the run).
    assert s["SC"] >= 0.7 * s["SC-offline"]
