"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation swaps one design decision and measures the flush-ratio /
selection consequences, substantiating why the paper's choice is the
right one on this substrate.
"""

import pytest

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.spec import technique_factory
from repro.locality.knee import SelectionPolicy, find_knees, select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.locality.sampling import sampled_mrc
from repro.nvram.machine import Machine, MachineConfig
from repro.workloads.splash2 import make_splash2

BUDGET = 60_000


def run(workload, technique, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, technique_factory(technique, **kw), 1, seed=1)


@pytest.fixture(scope="module")
def ws_trace(harness):
    return harness.trace("water-spatial")


def test_ablation_knee_rule(harness, ws_trace, once):
    """Largest-of-top-knees vs naive alternatives.

    'Smallest miss ratio' alone would always pick max_size (paying the
    drain stall for nothing on knee-less curves); 'biggest drop' alone
    would stop at the burst knee (size 1-2) and forfeit the pass reuse.
    """
    mrc = once(mrc_from_trace, ws_trace)
    knees = find_knees(mrc)
    paper_rule = select_cache_size(mrc)
    biggest_drop_rule = knees[0].size
    assert biggest_drop_rule <= 2            # the burst knee
    assert paper_rule >= 20                  # the pass-reuse knee
    w = harness.workload("water-spatial")
    small = run(w, "SC-offline", sc_fixed_size=biggest_drop_rule)
    ours = run(w, "SC-offline", sc_fixed_size=paper_rule)
    print(f"\nbiggest-drop size {biggest_drop_rule}: ratio {small.flush_ratio:.5f}; "
          f"paper rule size {paper_rule}: ratio {ours.flush_ratio:.5f}")
    assert ours.flush_ratio < small.flush_ratio / 10


def test_ablation_max_size_bound(harness, once):
    """The 50-line cap trades flushes for bounded FASE-end stalls.

    ocean's wide loops would reward a cache >= their region size; the
    cap forfeits those hits deliberately.  Removing the cap must recover
    them - and it must not change programs whose knees sit below 50.
    """
    trace = harness.trace("ocean")
    mrc = once(mrc_from_trace, trace)
    capped = select_cache_size(mrc, SelectionPolicy(max_size=50))
    uncapped = select_cache_size(mrc, SelectionPolicy(max_size=400))
    print(f"\nocean selection: capped {capped}, uncapped {uncapped}")
    assert capped <= 50
    w = harness.workload("ocean")
    r_capped = run(w, "SC-offline", sc_fixed_size=capped)
    r_big = run(w, "SC-offline", sc_fixed_size=max(uncapped, 200))
    assert r_big.flush_ratio < r_capped.flush_ratio
    # ... but the drain stall per FASE grows with the cache size.
    assert (
        r_big.threads[0].fase_end_flushes
        > r_capped.threads[0].fase_end_flushes
    )


@pytest.mark.parametrize("table_size", [4, 8, 16, 64])
def test_ablation_atlas_table_size(table_size, once):
    """AT's table size barely helps: the direct mapping, not the
    capacity, is its binding constraint on strided/aliased writes."""
    w = make_splash2("water-spatial", store_budget=BUDGET)
    res = once(run, w, "AT", table_size=table_size)
    print(f"\nAT table size {table_size}: ratio {res.flush_ratio:.5f}")
    # Even an 8x bigger table cannot reach the software cache's level.
    sc = run(w, "SC-offline", sc_fixed_size=24)
    assert res.flush_ratio > sc.flush_ratio * 5


def test_ablation_burst_length(harness, once):
    """Sampling burst: too short mis-selects, long enough converges.

    Fig. 7's claim quantified: the selection from a modest burst matches
    the whole-trace selection."""
    trace = harness.trace("water-spatial")
    full = select_cache_size(mrc_from_trace(trace))
    chosen = {}
    for burst in (64, 2_048, trace.n):
        mrc = sampled_mrc(trace, burst)
        chosen[burst] = select_cache_size(mrc)
    print(f"\nselections by burst: {chosen} (full-trace: {full})")
    assert chosen[trace.n] == full
    assert abs(chosen[2_048] - full) <= 2
    once(sampled_mrc, trace, 2_048)


def test_ablation_fase_renaming(harness, once):
    """Disabling the §III-B renaming inflates the apparent reuse.

    The queue rewrites its head/tail anchor lines in every one-operation
    FASE; ignoring FASE boundaries, those look like near-perfect cache
    hits, but the drained write cache can never combine them.  The
    corrected MRC must match what an exact drained LRU cache measures.
    """
    from repro.locality.reference import lru_mrc

    trace = harness.trace("queue")          # one tiny FASE per operation
    with_fix = once(mrc_from_trace, trace, honor_fases=True)
    without = mrc_from_trace(trace, honor_fases=False)
    actual = lru_mrc(trace, [8], honor_fases=True)[0]
    print(f"\nqueue: corrected mr(8)={with_fix.miss_ratio(8):.4f} "
          f"raw mr(8)={without.miss_ratio(8):.4f} "
          f"measured (drained LRU)={actual:.4f}")
    # Ignoring FASEs claims far better locality than the drained cache
    # can ever deliver; the corrected curve tracks the measurement.
    assert without.miss_ratio(8) < actual / 2
    assert with_fix.miss_ratio(8) == pytest.approx(actual, abs=0.1)


def test_ablation_online_default_size(harness, once):
    """Starting size: the paper's default 8 vs starting at the cap.

    Starting at 50 wastes drain stalls before adaptation; starting at 8
    wastes eviction flushes on big-knee programs.  Either way adaptation
    converges to the same place - the default only prices the warm-up.
    """
    w = harness.workload("water-spatial")
    n = harness.profile("water-spatial").persistent_stores
    cfg = AdaptiveConfig(burst_length=max(512, n // 10))
    small = once(run, w, "SC", sc_initial_size=8, adaptive_config=cfg)
    big = run(w, "SC", sc_initial_size=50, adaptive_config=cfg)
    print(f"\nstart@8: ratio {small.flush_ratio:.5f}, "
          f"start@50: ratio {big.flush_ratio:.5f}, "
          f"selected {small.selected_sizes[0]} / {big.selected_sizes[0]}")
    assert small.selected_sizes[0] == big.selected_sizes[0]
    assert big.flush_ratio <= small.flush_ratio


def test_ablation_clwb_vs_clflush(harness, once):
    """§II-A's trade-off quantified: clwb avoids the invalidation-refill
    cost clflush pays, at identical flush counts.

    (Atlas still chooses clflush for multi-thread visibility; this shows
    what that choice costs on the simulator.)
    """
    w = harness.workload("water-spatial")
    size = harness.offline_size("water-spatial")
    clflush = once(run, w, "SC-offline", sc_fixed_size=size)
    clwb = run(w, "SC-offline", sc_fixed_size=size, use_clwb=True)
    print(f"\nclflush: misses {clflush.l1_misses}, time {clflush.time / 1e6:.2f}M; "
          f"clwb: misses {clwb.l1_misses}, time {clwb.time / 1e6:.2f}M")
    assert clwb.flushes == clflush.flushes
    assert clwb.l1_misses <= clflush.l1_misses
    assert clwb.time <= clflush.time


def test_ablation_shared_group_adaptation(harness, once):
    """§III-C's future work: one MRC per thread group.

    With homogeneous threads, the grouped controller reaches the same
    flush ratio while paying the sampling/analysis cost once instead of
    per thread.
    """
    from repro.cache.adaptive import AdaptiveConfig

    w = harness.workload("water-spatial")
    n = harness.profile("water-spatial").persistent_stores
    cfg = AdaptiveConfig(burst_length=max(768, n // 80))
    private = once(run_threads, w, "SC", 8, adaptive_config=cfg)
    shared = run_threads(w, "SC", 8, adaptive_config=cfg, shared_adaptation=True)
    private_cost = sum(t.adaptation_cycles for t in private.threads)
    shared_cost = sum(t.adaptation_cycles for t in shared.threads)
    print(f"\nprivate: ratio {private.flush_ratio:.5f}, adapt {private_cost}; "
          f"shared: ratio {shared.flush_ratio:.5f}, adapt {shared_cost}")
    assert shared.flush_ratio < private.flush_ratio * 1.6
    assert shared_cost < private_cost


def run_threads(workload, technique, threads, **kw):
    machine = Machine(MachineConfig())
    return machine.run(workload, technique_factory(technique, **kw), threads, seed=1)


def test_ablation_mrc_method_spectrum(harness, once):
    """§III-A's efficiency spectrum on a real evaluation trace.

    Exact stack distance, SHARDS sampling, and the paper's linear-time
    timescale theory must all place water-spatial's knee at the same
    position; the timescale method gets there in O(n) with no sampling
    error at the knee.
    """
    from repro.locality.knee import select_cache_size
    from repro.locality.shards import shards_mrc
    from repro.locality.stack_distance import exact_mrc

    trace = harness.trace("water-spatial")
    exact = once(exact_mrc, trace)
    sampled = shards_mrc(trace, rate=0.3)
    timescale = harness.offline_mrc("water-spatial")
    selections = {
        "exact": select_cache_size(exact),
        "shards": select_cache_size(sampled),
        "timescale": select_cache_size(timescale),
    }
    print(f"\nknee selections: {selections} (paper: 23)")
    assert abs(selections["timescale"] - selections["exact"]) <= 2
    assert abs(selections["shards"] - selections["exact"]) <= 4
