"""Figure 8 — the time cost of online cache-size selection.

Paper: the overhead of sampling + analysis + starting from the default
size is 1-10% per program, 6.78% on average, similar at 1 and 8
threads.
"""

from repro.experiments.figures import figure8


def test_fig8_online_overhead(harness, once):
    art = once(figure8, harness, thread_counts=(1, 8))
    print("\n" + art.text)

    rows = [r for r in art.rows if r["benchmark"] != "average"]
    for row in rows:
        assert 0 <= row["overhead_pct"] < 60, row

    avg = art.rows[-1]
    assert avg["benchmark"] == "average"
    # Paper average 6.78%: single-digit to low-twenties at our scales
    # (our bursts are a far larger fraction of the scaled runs than the
    # paper's were of its full-size ones).
    assert avg["overhead_pct"] < 25, avg

    # Most programs sit near the paper's 1-10% band.
    in_band = [r for r in rows if r["overhead_pct"] <= 18]
    assert len(in_band) >= 0.55 * len(rows)
