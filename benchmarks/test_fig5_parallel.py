"""Figure 5 — SC and SC-offline over AT across thread counts.

Paper: SC beats AT in 85% of (program, thread-count) cells (SC-offline
in 90%); SC wins uniformly at 1-8 threads; the advantage narrows at 16
and 32 threads where hardware-cache contention levels the field.
"""

from repro.experiments.figures import figure5


def test_fig5_parallel(harness, bench_threads, once):
    art = once(figure5, harness, threads=bench_threads)
    print("\n" + art.text)
    rows = art.rows

    cells = len(rows)
    sc_wins = sum(1 for r in rows if r["sc_over_at"] > 1.0)
    sco_wins = sum(1 for r in rows if r["sco_over_at"] > 1.0)
    print(f"\nSC wins {sc_wins}/{cells}; SC-offline wins {sco_wins}/{cells}")
    assert sco_wins >= 0.75 * cells, "SC-offline should win ~90% (paper)"
    assert sc_wins >= 0.6 * cells, "SC should win ~85% (paper)"
    assert sco_wins >= sc_wins - 2

    # At low thread counts SC wins essentially everywhere.
    low = [r for r in rows if r["threads"] <= 4]
    low_wins = sum(1 for r in low if r["sc_over_at"] > 0.98)
    assert low_wins >= 0.85 * len(low)


def test_fig5_contention_narrows_advantage(harness, bench_threads, once):
    """The paper's §IV-F analysis: for the water programs the SC edge
    shrinks as threads contend for the hardware cache."""
    if max(bench_threads) < 8:
        return
    art = once(figure5, harness, threads=bench_threads)
    for name in ("water-spatial", "fmm"):
        series = art.series[name]
        first, last = series["sc_over_at"][0], series["sc_over_at"][-1]
        assert last < max(first * 1.2, 1.2), (name, first, last)
