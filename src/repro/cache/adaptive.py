"""The online adaptation loop: burst → MRC → knee → resize (§III-C).

Each thread's SC technique owns one :class:`AdaptiveController`.  During
the burst the controller records every persistent write (with its FASE
id, so the FASE-semantics renaming applies); when the burst fills it
computes the MRC with the linear-time reuse algorithm, selects a size
with the knee rule, and reports it to the technique, which resizes the
write-combining cache.

Cost accounting mirrors the paper's Fig. 8 overhead study: sampling adds
a small per-write instrumentation cost while the burst is open, and the
one-shot analysis charges cycles linear in the burst length (the
algorithm *is* linear; that is the point of §III-B).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.locality.knee import SelectionPolicy, find_knees
from repro.locality.mrc import MissRatioCurve
from repro.locality.sampling import DEFAULT_BURST_LENGTH, BurstSampler
from repro.obs.trace import EV_BURST_START, EV_KNEE_CANDIDATE, EV_MRC_COMPUTED


@dataclass(frozen=True)
class AdaptiveConfig:
    """Parameters of the online adaptation.

    Attributes
    ----------
    burst_length:
        Writes recorded per burst (the paper uses 64 M on full-scale
        workloads; the default here matches our scaled-down traces).
    hibernation:
        Writes skipped between bursts; ``None`` = adapt once (paper).
    initial_skip:
        Warm-up writes skipped before the burst opens.
    selection:
        Knee-selection policy (default size 8, max 50).
    sample_cost:
        Extra cycles per write while the burst is recording.
    analysis_cost_per_write:
        Cycles charged per recorded write for the linear-time MRC
        computation and knee selection.
    """

    burst_length: int = DEFAULT_BURST_LENGTH
    hibernation: Optional[int] = None
    initial_skip: int = 0
    selection: SelectionPolicy = SelectionPolicy()
    sample_cost: int = 2
    analysis_cost_per_write: int = 3

    def __post_init__(self) -> None:
        if self.sample_cost < 0 or self.analysis_cost_per_write < 0:
            raise ConfigurationError("adaptation costs must be non-negative")


class AdaptiveController:
    """Drives one thread's cache-size adaptation."""

    __slots__ = ("config", "sampler", "last_mrc", "last_size", "analyses", "port")

    def __init__(self, *args, config: Optional[AdaptiveConfig] = None) -> None:
        if args:
            # Positional ``AdaptiveController(cfg)`` predates the
            # keyword-only API; accepted for one release.
            if len(args) > 1:
                raise TypeError(
                    f"AdaptiveController() takes at most one config, got "
                    f"{len(args)} positional arguments"
                )
            warnings.warn(
                "passing config positionally to AdaptiveController is "
                "deprecated; use AdaptiveController(config=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if config is None:
                config = args[0]
        self.config = config or AdaptiveConfig()
        self.sampler = BurstSampler(
            self.config.burst_length,
            self.config.hibernation,
            self.config.initial_skip,
        )
        self.last_mrc: Optional[MissRatioCurve] = None
        self.last_size: Optional[int] = None
        self.analyses = 0
        #: The owning technique's flush port, attached at ``bind`` time;
        #: used only for structured trace events (burst/MRC/knees).
        self.port = None

    @property
    def sampling(self) -> bool:
        """True while the burst is open (per-write cost applies)."""
        return self.sampler.recording

    def observe(self, line: int, fase_id: int) -> Optional[int]:
        """Feed one persistent write; return a new size when one is chosen.

        Returns ``None`` on the (vastly common) path where the burst is
        still filling or the sampler is hibernating.
        """
        sampler = self.sampler
        port = self.port
        if port is not None and sampler.recorded == 0 and sampler.recording:
            port.record_event(EV_BURST_START, self.config.burst_length)
        if not sampler.record(line, fase_id):
            return None
        mrc = sampler.analyze()
        # select_cache_size inlined over find_knees so the candidates
        # themselves are visible to the trace, not just the winner.
        knees = find_knees(mrc, self.config.selection)
        size = max(k.size for k in knees) if knees else self.config.selection.max_size
        self.last_mrc = mrc
        self.last_size = size
        self.analyses += 1
        if port is not None:
            port.record_event(EV_MRC_COMPUTED, self.analysis_cost(), len(knees))
            for knee in knees:
                port.record_event(
                    EV_KNEE_CANDIDATE, knee.size, int(knee.miss_ratio * 1_000_000)
                )
        return size

    def analysis_cost(self) -> int:
        """Cycles to charge for the analysis that just ran."""
        return self.config.analysis_cost_per_write * self.config.burst_length
