"""The six persistence techniques of the evaluation (§IV-A).

========  =============================================================
ER        eager: ``clflush`` after every persistent store.
LA        lazy: record dirty lines, flush them all at the FASE end.
AT        Atlas: fixed 8-entry direct-mapped table (state of the art).
SC        the adaptive software cache (online bursty-sampled MRC).
SC-o      SC-offline: the software cache with a size chosen from a
          whole-trace MRC computed in a profiling run.
BEST      no flushes at all — not a correct technique, but the upper
          bound on what perfect flush scheduling could achieve.
========  =============================================================

A technique instance is strictly per-thread (the machine builds one per
thread through a factory).  The machine drives it through ``bind``,
``on_store``, ``on_fase_begin``/``on_fase_end`` (outermost only) and
``finish``, and charges ``cost_per_store`` cycles of bookkeeping per
persistent store.  The per-store costs are read off the paper's
Table IV instruction counts (per store: AT ~16-19, SC ~24 on top of the
program's own ~62): BEST < ER < LA < AT < SC, with SC running ~8% more
instructions than AT.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.cache.adaptive import AdaptiveConfig, AdaptiveController
from repro.cache.table import ATLAS_TABLE_SIZE, AtlasTable
from repro.cache.write_cache import WriteCombiningCache


class PersistenceTechnique:
    """Base class: the machine-facing protocol with no-op defaults."""

    name = "abstract"
    #: Bookkeeping cycles charged per persistent store.
    cost_per_store = 0
    #: Declares ``on_store`` a guaranteed no-op, letting the machine's
    #: batched loop skip the call (and the stats hand-off around it)
    #: per persistent store.  Only set True when ``on_store`` neither
    #: reads nor writes any state.
    on_store_noop = False

    def __init__(self) -> None:
        self.port = None

    def bind(self, port) -> None:
        """Attach the machine's per-thread flush port."""
        self.port = port

    def on_store(self, line: int) -> None:
        """A persistent store touched ``line``."""

    def on_fase_begin(self) -> None:
        """An outermost FASE began."""

    def on_fase_end(self) -> None:
        """An outermost FASE ended — persistence point."""

    def finish(self) -> None:
        """The thread's stream ended; make remaining data durable."""


class EagerTechnique(PersistenceTechnique):
    """ER — flush every store immediately (§I).

    Maximally overlaps transfer with computation but issues one flush per
    store (flush ratio exactly 1.0, Table III) and saturates the flush
    queue, throttling the CPU to the write-back service rate.
    """

    name = "ER"
    cost_per_store = 4

    def on_store(self, line: int) -> None:
        self.port.flush_async(line, "eager")


class LazyTechnique(PersistenceTechnique):
    """LA — record lines, flush everything at the FASE end (§I).

    Achieves the minimum possible flush count (each distinct line once
    per FASE) but pays the whole transfer as an unoverlapped stall at the
    end of the FASE.
    """

    name = "LA"
    cost_per_store = 8

    def __init__(self) -> None:
        super().__init__()
        self._pending: Dict[int, None] = {}

    def on_store(self, line: int) -> None:
        self._pending[line] = None

    def on_fase_end(self) -> None:
        if self._pending:
            self.port.flush_sync(self._pending.keys(), "fase_end")
            self._pending.clear()

    def finish(self) -> None:
        if self._pending:
            self.port.flush_sync(self._pending.keys(), "final")
            self._pending.clear()


class AtlasTechnique(PersistenceTechnique):
    """AT — the Atlas 8-entry direct-mapped table (§II-A)."""

    name = "AT"
    cost_per_store = 16

    def __init__(self, table_size: int = ATLAS_TABLE_SIZE) -> None:
        super().__init__()
        self.table = AtlasTable(table_size)

    def on_store(self, line: int) -> None:
        evicted = self.table.access(line)
        if evicted is not None:
            self.port.flush_async(evicted, "eviction")

    def on_fase_end(self) -> None:
        lines = self.table.drain()
        if lines:
            self.port.flush_sync(lines, "fase_end")

    def finish(self) -> None:
        lines = self.table.drain()
        if lines:
            self.port.flush_sync(lines, "final")


class SoftwareCacheTechnique(PersistenceTechnique):
    """SC / SC-offline — the paper's contribution (§II-B, §III).

    A fully associative LRU write-combining cache of line addresses.
    Evictions flush asynchronously; the FASE end drains synchronously
    (bounded by the size cap).  With a controller attached the size
    adapts online from a bursty-sampled MRC; without one the size is
    fixed (SC-offline, size from a profiling run).
    """

    name = "SC"
    cost_per_store = 24

    def __init__(
        self,
        initial_size: int = 8,
        controller: Optional[AdaptiveController] = None,
        name: Optional[str] = None,
        use_clwb: bool = False,
        shared_size: Optional["SharedSizeState"] = None,
    ) -> None:
        super().__init__()
        self.cache = WriteCombiningCache(initial_size)
        self.controller = controller
        self.use_clwb = use_clwb
        self.shared_size = shared_size
        if name is not None:
            self.name = name
        if controller is None and shared_size is None:
            # Fixed-size operation (SC-offline): shadow on_store with a
            # closure that skips the adaptation checks and the self.cache
            # lookup on every store (the port resolves late: it is only
            # needed on the rare eviction, and bind() comes later).
            cache_access = self.cache.access
            invalidate = not use_clwb

            def _fixed_on_store(line: int) -> None:
                evicted = cache_access(line)
                if evicted is not None:
                    self.port.flush_async(evicted, "eviction", invalidate=invalidate)

            self.on_store = _fixed_on_store

    def bind(self, port) -> None:
        super().bind(port)
        if self.controller is not None:
            # The controller emits its burst/MRC/knee trace events
            # through the thread's flush port.
            self.controller.port = port

    def _resize(self, new_size: int) -> None:
        port = self.port
        port.record_selected_size(new_size)
        for evicted in self.cache.resize(new_size):
            # Distinct category so the trace can attribute these to the
            # resize rather than to capacity pressure; the machine still
            # counts them as eviction flushes (same site class, same
            # RunResult totals).
            port.flush_async(evicted, "resize_eviction", invalidate=not self.use_clwb)

    def on_store(self, line: int) -> None:
        port = self.port
        controller = self.controller
        if controller is not None and not controller.sampler.done:  # fast gate
            new_size = controller.observe(line, port.current_fase_id)
            if controller.sampling or new_size is not None:
                port.add_adaptation_cost(controller.config.sample_cost)
            if new_size is not None:
                port.add_adaptation_cost(controller.analysis_cost())
                self._resize(new_size)
                if self.shared_size is not None:
                    self.shared_size.publish(new_size)
        elif self.shared_size is not None:
            # The paper's future-work extension: threads with similar
            # write locality share one MRC analysis.  A non-sampling
            # thread adopts the published group decision.
            published = self.shared_size.current
            if published is not None and published != self.cache.capacity:
                self._resize(published)
        evicted = self.cache.access(line)
        if evicted is not None:
            port.flush_async(evicted, "eviction", invalidate=not self.use_clwb)

    def on_fase_end(self) -> None:
        lines = self.cache.drain()
        if lines:
            self.port.flush_sync(lines, "fase_end", invalidate=not self.use_clwb)

    def finish(self) -> None:
        lines = self.cache.drain()
        if lines:
            self.port.flush_sync(lines, "final", invalidate=not self.use_clwb)


class SharedSizeState:
    """Group cache-size decision shared across threads (§III-C's
    future work: "group threads with similar write locality and
    calculate one MRC for each group")."""

    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current: Optional[int] = None

    def publish(self, size: int) -> None:
        """Make ``size`` the group's decision."""
        self.current = size


class BestTechnique(PersistenceTechnique):
    """BEST — never flush (§IV-A).

    "BEST is not a valid solution but approximates the effect of optimal
    caching": zero direct flush cost, zero invalidation-induced misses.
    The upper bound every real technique is compared against.
    """

    name = "BEST"
    cost_per_store = 0
    on_store_noop = True


#: Base technique names accepted by the spec parser
#: (:class:`repro.cache.spec.TechniqueSpec`) and the experiment harness.
TECHNIQUES = ("ER", "LA", "AT", "SC", "SC-offline", "BEST")


def _base_factory(
    technique: str,
    *,
    table_size: int = ATLAS_TABLE_SIZE,
    sc_initial_size: int = 8,
    sc_fixed_size: Optional[int] = None,
    adaptive_config: Optional[AdaptiveConfig] = None,
    use_clwb: bool = False,
    shared_adaptation: bool = False,
) -> Callable[[int], PersistenceTechnique]:
    """Build a per-thread factory for one *base* technique.

    Internal: callers go through
    :func:`repro.cache.spec.technique_factory`, which parses a spec,
    builds the base here and wraps it in the composed policy stages.

    Parameters
    ----------
    technique:
        One of :data:`TECHNIQUES`.
    table_size:
        AT table size (ablation hook; the paper/Atlas use 8).
    sc_initial_size:
        SC's size before adaptation (the paper's default is 8).
    sc_fixed_size:
        For ``SC-offline``: the profiled best size.
    adaptive_config:
        For ``SC``: sampling/selection parameters.
    use_clwb:
        For ``SC``/``SC-offline``: flush with ``clwb`` (write back, keep
        the line valid) instead of ``clflush`` — the §II-A alternative.
    shared_adaptation:
        For ``SC``: one thread samples and decides for the whole group
        (the paper's future-work thread-grouping extension).
    """
    if technique == "ER":
        return lambda tid: EagerTechnique()
    if technique == "LA":
        return lambda tid: LazyTechnique()
    if technique == "AT":
        return lambda tid: AtlasTechnique(table_size)
    if technique == "SC":
        cfg = adaptive_config or AdaptiveConfig()
        if shared_adaptation:
            # One sampling thread (thread 0) decides for the group.
            state = SharedSizeState()
            return lambda tid: SoftwareCacheTechnique(
                sc_initial_size,
                AdaptiveController(config=cfg) if tid == 0 else None,
                use_clwb=use_clwb,
                shared_size=state,
            )
        return lambda tid: SoftwareCacheTechnique(
            sc_initial_size, AdaptiveController(config=cfg), use_clwb=use_clwb
        )
    if technique == "SC-offline":
        if sc_fixed_size is None:
            raise ConfigurationError("SC-offline requires sc_fixed_size")
        return lambda tid: SoftwareCacheTechnique(
            sc_fixed_size, None, name="SC-offline", use_clwb=use_clwb
        )
    if technique == "BEST":
        return lambda tid: BestTechnique()
    raise ConfigurationError(
        f"unknown technique {technique!r}; expected one of {TECHNIQUES}"
    )


def make_factory(
    technique: str,
    **kwargs,
) -> Callable[[int], PersistenceTechnique]:
    """Deprecated: use :func:`repro.cache.spec.technique_factory`.

    Thin shim over the spec path — the string is parsed with
    :meth:`~repro.cache.spec.TechniqueSpec.parse` (so spec strings like
    ``"SC+clean"`` work here too) and the kwargs configure the base
    technique exactly as before.  Results are bit-identical to the old
    implementation for every seed technique.
    """
    import warnings

    warnings.warn(
        "make_factory is deprecated; use "
        "repro.cache.spec.technique_factory (or pass a TechniqueSpec)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cache.spec import technique_factory

    return technique_factory(technique, **kwargs)
