"""O(1) LRU bookkeeping: a hash map over an intrusive doubly linked list.

This is the structure the paper specifies for the software cache
(§III-C): "Each cache includes a hash map and a doubly linked list … All
cache operations have O(1) time complexity: including search using the
hash map; insertion, update and deletion using the linked list," noting
it is faster than the red-black-tree + list combination Linux uses for
page management.

The list is implemented with explicit node objects rather than
``collections.OrderedDict`` so the structure matches the paper's design
and so tests can assert on the intrusive-list invariants directly.
Head = least recently used (next eviction victim); tail = most recently
used.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigurationError


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int) -> None:
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LruCache:
    """An LRU-ordered set of integer keys with O(1) operations.

    This holds *keys only* (cache-line addresses); the software cache
    stores no data, just the addresses of lines that still need flushing.
    """

    __slots__ = ("_map", "_head", "_tail")

    def __init__(self) -> None:
        self._map: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None   # LRU end
        self._tail: Optional[_Node] = None   # MRU end

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: int) -> bool:
        return key in self._map

    # -- intrusive list plumbing ----------------------------------------

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _append(self, node: _Node) -> None:
        node.prev = self._tail
        node.next = None
        if self._tail is not None:
            self._tail.next = node
        else:
            self._head = node
        self._tail = node

    # -- operations ------------------------------------------------------

    def touch(self, key: int) -> bool:
        """Mark ``key`` most recently used; return False if absent."""
        node = self._map.get(key)
        if node is None:
            return False
        tail = self._tail
        if node is not tail:
            # _unlink + _append fused inline: touch is the per-store hit
            # path of the write-combining cache, and the two calls cost
            # more than the pointer swaps.  node is not tail, so
            # node.next is a real node and tail is not None.
            prev = node.prev
            nxt = node.next
            if prev is not None:
                prev.next = nxt
            else:
                self._head = nxt
            nxt.prev = prev
            node.prev = tail
            node.next = None
            tail.next = node
            self._tail = node
        return True

    def insert(self, key: int) -> None:
        """Insert ``key`` as most recently used (must be absent)."""
        if key in self._map:
            raise ConfigurationError(f"key already present: {key}")
        self.insert_absent(key)

    def insert_absent(self, key: int) -> None:
        """Insert ``key`` the caller *guarantees* is absent.

        Skips the membership check of :meth:`insert` — the write cache's
        miss path already knows the key is absent from the failed
        ``touch``, and the duplicate hash lookup is measurable on the
        per-store hot path.  Inserting a present key through this method
        corrupts the map/list invariants.
        """
        node = _Node(key)
        self._map[key] = node
        self._append(node)

    def evict_lru(self) -> int:
        """Remove and return the least recently used key."""
        node = self._head
        if node is None:
            raise ConfigurationError("cannot evict from an empty cache")
        self._unlink(node)
        del self._map[node.key]
        return node.key

    def remove(self, key: int) -> bool:
        """Remove ``key`` if present; return whether it was present."""
        node = self._map.pop(key, None)
        if node is None:
            return False
        self._unlink(node)
        return True

    def clear(self) -> List[int]:
        """Empty the cache; return the keys in LRU-to-MRU order."""
        keys = list(self)
        self._map.clear()
        self._head = self._tail = None
        return keys

    def peek_lru(self) -> Optional[int]:
        """The key that would be evicted next, or None when empty."""
        return self._head.key if self._head is not None else None

    def __iter__(self) -> Iterator[int]:
        """Iterate keys from least to most recently used."""
        node = self._head
        while node is not None:
            yield node.key
            node = node.next

    def check_invariants(self) -> None:
        """Assert list/map consistency (used by the property tests)."""
        seen = []
        node = self._head
        prev = None
        while node is not None:
            assert node.prev is prev, "broken prev link"
            assert self._map.get(node.key) is node, "map/list disagree"
            seen.append(node.key)
            prev, node = node, node.next
        assert self._tail is prev, "tail mismatch"
        assert len(seen) == len(self._map), "length mismatch"
        assert len(set(seen)) == len(seen), "duplicate keys in list"
