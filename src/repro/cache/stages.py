"""Composable policy stages over a base persistence technique.

:class:`StagedTechnique` wraps any base
:class:`~repro.cache.policies.PersistenceTechnique` with up to four
orthogonal policies (see DESIGN.md §14 and the grammar in
:mod:`repro.cache.spec`):

``nhit:N``
    Promotion filter ("Writes Hurt"-style admission): a line reaches
    the base technique only once it has been stored N times; colder
    stores flush straight through (category ``bypass``).
``cutoff:L``
    Sequential cutoff (NVCache-style write-bypass): a run of L
    consecutive-line stores is streaming — bypass the base technique
    so the stream does not wash its working set out.
``clean:B``
    Background cleaning (Open-CAS ALRU/ACP): at scheduler quantum
    boundaries where the thread's flush queue is idle, flush up to B
    LRU-tail lines out of the software cache (category ``clean``) via
    the new ``on_quantum`` technique hook — turning idle write-back
    bandwidth into shorter FASE-end drains.
``victim:V``
    Victim cache behind SC: lines the base cache evicts park in a small
    LRU buffer instead of flushing; a re-store rescues them back into
    the base cache (no flush at all), overflow flushes the oldest entry
    (category ``victim``).

Filter semantics are deliberately order-invariant: *every* filter
observes *every* store (state updates never short-circuit), and the
admit decision is the conjunction of the verdicts — so ``SC+nhit+cutoff``
and ``SC+cutoff+nhit`` behave identically.  A victim-cache hit overrides
the filters: the line already proved itself hot enough to be cached.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.policies import PersistenceTechnique


class _VictimPort:
    """Flush port wrapper that diverts the base technique's evictions.

    Eviction flushes (categories ``eviction`` / ``resize_eviction``)
    park the line in the stage's victim cache instead of flushing;
    everything else — drains, logging, bookkeeping, context — delegates
    untouched to the real :class:`~repro.nvram.machine.FlushPort`.
    """

    __slots__ = ("_port", "_stage")

    def __init__(self, port, stage: "StagedTechnique") -> None:
        self._port = port
        self._stage = stage

    def flush_async(
        self, line: int, category: str = "eviction", invalidate: bool = True
    ) -> None:
        if category == "eviction" or category == "resize_eviction":
            self._stage._victim_insert(line, invalidate)
        else:
            self._port.flush_async(line, category, invalidate)

    def __getattr__(self, name):
        return getattr(self._port, name)


class StagedTechnique(PersistenceTechnique):
    """A base technique wrapped by the composed policy stack.

    Built by :func:`repro.cache.spec.technique_factory` — never with
    zero effective stages (degenerate specs return the bare base
    instead, keeping their results bit-identical to the plain base).
    """

    def __init__(
        self,
        inner: PersistenceTechnique,
        name: str,
        stages: Tuple[Tuple[str, int], ...],
        use_clwb: bool = False,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.name = name
        self.use_clwb = use_clwb
        params = dict(stages)
        self.nhit = params.get("nhit", 0)
        self.cutoff = params.get("cutoff", 0)
        self.clean_budget = params.get("clean", 0)
        self.victim_capacity = params.get("victim", 0)
        # Per-store bookkeeping cost on top of the base technique,
        # in the spirit of the paper's Table IV instruction accounting:
        # one counter update (nhit), one run-length compare (cutoff),
        # one victim lookup (victim).  Cleaning costs nothing per store.
        self.cost_per_store = (
            inner.cost_per_store
            + (3 if self.nhit else 0)
            + (2 if self.cutoff else 0)
            + (3 if self.victim_capacity else 0)
        )
        self._touches: Optional[Dict[int, int]] = {} if self.nhit else None
        self._last_line: Optional[int] = None
        self._run_len = 0
        self._victim: Optional[Dict[int, None]] = (
            {} if self.victim_capacity else None
        )

    # -- machine metrics sampling hooks ---------------------------------
    # ``Machine._sample_metrics`` reads occupancy off ``technique.cache``
    # or ``technique.table``; delegate so staged runs keep their gauges.

    @property
    def cache(self):
        return getattr(self.inner, "cache", None)

    @property
    def table(self):
        return getattr(self.inner, "table", None)

    # -- protocol --------------------------------------------------------

    def bind(self, port) -> None:
        super().bind(port)
        if self._victim is not None:
            self.inner.bind(_VictimPort(port, self))
        else:
            self.inner.bind(port)

    def on_store(self, line: int) -> None:
        victim = self._victim
        rescued = victim is not None and line in victim
        if rescued:
            # The line earned a second life: back into the base cache,
            # no flush issued at all for the original eviction.
            del victim[line]
        admit = True
        touches = self._touches
        if touches is not None:
            n = touches.get(line, 0) + 1
            touches[line] = n
            if n < self.nhit:
                admit = False
        if self.cutoff:
            last = self._last_line
            self._run_len = (
                self._run_len + 1 if last is not None and line == last + 1 else 1
            )
            self._last_line = line
            if self._run_len >= self.cutoff:
                admit = False
        if admit or rescued:
            self.inner.on_store(line)
        else:
            self.port.flush_async(line, "bypass", invalidate=not self.use_clwb)

    def on_quantum(self) -> None:
        """Scheduler quantum boundary: opportunistic background cleaning.

        Only acts when the thread's flush queue is idle — cleaning uses
        write-back bandwidth the program is not, never bandwidth it is.
        Lines leave the software cache LRU-tail first (the ones a future
        eviction or drain would flush anyway) with category ``clean``.
        """
        budget = self.clean_budget
        if not budget:
            return
        port = self.port
        if port is None or port.outstanding:
            return
        cache = getattr(self.inner, "cache", None)
        if cache is None or not len(cache):
            return
        invalidate = not self.use_clwb
        clean = cache.clean_lru
        flush = port.flush_async
        for _ in range(budget):
            line = clean()
            if line is None:
                break
            flush(line, "clean", invalidate=invalidate)

    def on_fase_begin(self) -> None:
        self.inner.on_fase_begin()

    def on_fase_end(self) -> None:
        self.inner.on_fase_end()
        self._drain_victim("fase_end")

    def finish(self) -> None:
        self.inner.finish()
        self._drain_victim("final")

    # -- victim cache ----------------------------------------------------

    def _victim_insert(self, line: int, invalidate: bool) -> None:
        victim = self._victim
        if line in victim:
            del victim[line]  # refresh recency
        victim[line] = None
        if len(victim) > self.victim_capacity:
            oldest = next(iter(victim))
            del victim[oldest]
            self.port.flush_async(oldest, "victim", invalidate=invalidate)

    def _drain_victim(self, category: str) -> None:
        victim = self._victim
        if victim:
            lines = list(victim)
            victim.clear()
            self.port.flush_sync(lines, category, invalidate=not self.use_clwb)

    def __repr__(self) -> str:
        return f"StagedTechnique({self.name!r})"
