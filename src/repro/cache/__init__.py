"""The software write-combining cache and the six persistence techniques.

- :mod:`repro.cache.lru` — the O(1) hash-map + doubly-linked-list LRU
  structure the paper specifies (§III-C, "The Cache").
- :mod:`repro.cache.write_cache` — the resizable write-combining cache of
  cache-line addresses.
- :mod:`repro.cache.table` — Atlas's fixed-size direct-mapped table
  (§II-A), the state of the art the paper improves on.
- :mod:`repro.cache.adaptive` — the online controller: bursty sampling →
  MRC → knee → resize (§III-C).
- :mod:`repro.cache.policies` — the six techniques of §IV-A: ER, LA, AT,
  SC, SC-offline and BEST.
- :mod:`repro.cache.spec` — the declarative ``BASE+stage:param`` spec
  grammar and the one technique factory every entry point uses.
- :mod:`repro.cache.stages` — the composable policy stages (nhit
  promotion, sequential cutoff, background cleaning, victim cache).
"""

from repro.cache.lru import LruCache
from repro.cache.write_cache import WriteCombiningCache
from repro.cache.table import AtlasTable
from repro.cache.adaptive import AdaptiveController, AdaptiveConfig
from repro.cache.policies import (
    PersistenceTechnique,
    SharedSizeState,
    EagerTechnique,
    LazyTechnique,
    AtlasTechnique,
    SoftwareCacheTechnique,
    BestTechnique,
    TECHNIQUES,
    make_factory,
)
from repro.cache.spec import (
    STAGES,
    TechniqueSpec,
    list_techniques,
    technique_factory,
)
from repro.cache.stages import StagedTechnique

__all__ = [
    "LruCache",
    "WriteCombiningCache",
    "AtlasTable",
    "AdaptiveController",
    "AdaptiveConfig",
    "PersistenceTechnique",
    "SharedSizeState",
    "EagerTechnique",
    "LazyTechnique",
    "AtlasTechnique",
    "SoftwareCacheTechnique",
    "BestTechnique",
    "TECHNIQUES",
    "make_factory",
    "STAGES",
    "TechniqueSpec",
    "StagedTechnique",
    "list_techniques",
    "technique_factory",
]
