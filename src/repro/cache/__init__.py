"""The software write-combining cache and the six persistence techniques.

- :mod:`repro.cache.lru` — the O(1) hash-map + doubly-linked-list LRU
  structure the paper specifies (§III-C, "The Cache").
- :mod:`repro.cache.write_cache` — the resizable write-combining cache of
  cache-line addresses.
- :mod:`repro.cache.table` — Atlas's fixed-size direct-mapped table
  (§II-A), the state of the art the paper improves on.
- :mod:`repro.cache.adaptive` — the online controller: bursty sampling →
  MRC → knee → resize (§III-C).
- :mod:`repro.cache.policies` — the six techniques of §IV-A: ER, LA, AT,
  SC, SC-offline and BEST, plus the factory the harness uses.
"""

from repro.cache.lru import LruCache
from repro.cache.write_cache import WriteCombiningCache
from repro.cache.table import AtlasTable
from repro.cache.adaptive import AdaptiveController, AdaptiveConfig
from repro.cache.policies import (
    PersistenceTechnique,
    SharedSizeState,
    EagerTechnique,
    LazyTechnique,
    AtlasTechnique,
    SoftwareCacheTechnique,
    BestTechnique,
    TECHNIQUES,
    make_factory,
)

__all__ = [
    "LruCache",
    "WriteCombiningCache",
    "AtlasTable",
    "AdaptiveController",
    "AdaptiveConfig",
    "PersistenceTechnique",
    "SharedSizeState",
    "EagerTechnique",
    "LazyTechnique",
    "AtlasTechnique",
    "SoftwareCacheTechnique",
    "BestTechnique",
    "TECHNIQUES",
    "make_factory",
]
