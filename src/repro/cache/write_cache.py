"""The resizable write-combining software cache (§II-B, §III-A).

The cache buffers *addresses* of dirty cache lines: "Each time a thread
running in a FASE writes to persistent memory, the thread stores the
cache line address to its software cache."  A write to a line already
present is a *reuse* — the flush is combined and nothing happens.  A
write to an absent line inserts it; if the cache is over capacity the
least-recently-written line is evicted, and the caller must flush it to
NVRAM (Fig. 1's execution model).

Capacity can change at run time (the adaptive controller resizes it when
a new MRC arrives); shrinking evicts LRU lines, which the caller flushes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.lru import LruCache


class WriteCombiningCache:
    """A fully associative, LRU, resizable cache of dirty-line addresses."""

    __slots__ = (
        "_lru",
        "capacity",
        "hits",
        "misses",
        "evictions",
        "resize_evictions",
        "resizes",
        "drains",
        "cleans",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._lru = LruCache()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resize_evictions = 0
        self.resizes = 0
        self.drains = 0
        self.cleans = 0

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, line: int) -> bool:
        return line in self._lru

    def access(self, line: int) -> Optional[int]:
        """Record a write to ``line``; return an evicted line to flush.

        A hit combines the write (returns ``None``).  A miss inserts the
        line and, if the cache exceeded capacity, returns the evicted LRU
        line — the caller must issue its flush.
        """
        # This is the software cache's per-store path — the simulator
        # calls it for every persistent store under SC/SC-offline — so
        # LruCache.touch is inlined here (same pointer swaps; kept in
        # sync with lru.py, guarded by both files' invariant tests).
        lru = self._lru
        node = lru._map.get(line)
        if node is not None:
            tail = lru._tail
            if node is not tail:
                prev = node.prev
                nxt = node.next
                if prev is not None:
                    prev.next = nxt
                else:
                    lru._head = nxt
                nxt.prev = prev
                node.prev = tail
                node.next = None
                tail.next = node
                lru._tail = node
            self.hits += 1
            return None
        self.misses += 1
        # The lookup above already proved absence — insert without
        # re-checking membership (one hash lookup per miss on the hot path).
        lru.insert_absent(line)
        if len(lru) > self.capacity:
            self.evictions += 1
            return lru.evict_lru()
        return None

    def drain(self) -> List[int]:
        """Empty the cache (end of FASE); return lines to flush, LRU first.

        Draining an already-empty cache is a no-op and does not count as
        a drain: back-to-back FASEs with no intervening stores would
        otherwise inflate the ``drains`` statistic without any flush work.
        """
        if not len(self._lru):
            return []
        self.drains += 1
        return self._lru.clear()

    def clean_lru(self) -> Optional[int]:
        """Pop the least-recently-written line for a background clean.

        Background cleaning (the ``clean`` policy stage) retires
        LRU-tail lines early, during idle write-back bandwidth — the
        very lines a later capacity eviction or FASE-end drain would
        have to flush anyway.  Returns ``None`` when the cache is empty.
        Cleans are counted separately from evictions: they are not
        forced by a miss, so the eviction/miss accounting identity must
        not see them.
        """
        if not len(self._lru):
            return None
        self.cleans += 1
        return self._lru.evict_lru()

    def resize(self, capacity: int) -> List[int]:
        """Change capacity; return lines evicted by a shrink (LRU first)."""
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        evicted: List[int] = []
        while len(self._lru) > capacity:
            evicted.append(self._lru.evict_lru())
        self.evictions += len(evicted)
        self.resize_evictions += len(evicted)
        self.resizes += 1
        self.capacity = capacity
        return evicted

    @property
    def accesses(self) -> int:
        """Total persistent writes observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of writes combined so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """An invariant-checked copy of the counters at this instant.

        The checks are the cache's accounting identities: every access
        is a hit or a miss, and a capacity eviction needs a miss to have
        inserted the line (resize evictions are the one exception, so
        they are tracked — and excepted — separately).  A violation
        means the counters can no longer be trusted and raises
        :class:`~repro.common.errors.SimulationError`.
        """
        snap = {
            "capacity": self.capacity,
            "used": len(self),
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resize_evictions": self.resize_evictions,
            "resizes": self.resizes,
            "drains": self.drains,
            "cleans": self.cleans,
        }
        if any(v < 0 for v in snap.values()):
            raise SimulationError(
                f"write-cache accounting broken: negative counter in {snap}"
            )
        if snap["hits"] + snap["misses"] != snap["accesses"]:
            raise SimulationError(
                f"write-cache accounting broken: hits {snap['hits']} + "
                f"misses {snap['misses']} != accesses {snap['accesses']}"
            )
        if snap["evictions"] - snap["resize_evictions"] > snap["misses"]:
            raise SimulationError(
                f"write-cache accounting broken: "
                f"{snap['evictions'] - snap['resize_evictions']} capacity "
                f"evictions exceed {snap['misses']} misses"
            )
        if snap["resize_evictions"] > 0 and snap["resizes"] == 0:
            raise SimulationError(
                f"write-cache accounting broken: "
                f"{snap['resize_evictions']} resize evictions with no resize"
            )
        if snap["used"] > snap["capacity"]:
            raise SimulationError(
                f"write-cache over capacity: {snap['used']} lines held, "
                f"capacity {snap['capacity']}"
            )
        return snap

    def __repr__(self) -> str:
        return (
            f"WriteCombiningCache(capacity={self.capacity}, used={len(self)}, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
