"""Atlas's address table (§II-A) — the state-of-the-art baseline.

"Atlas monitors data writes at cache-line granularity.  It uses a table
to record the address of all modified cache blocks.  Upon a write, if its
cache-line address is in the table, Atlas does nothing.  Otherwise, the
address is inserted.  If the table is full, a previously stored
cache-line address is read and then flushed before the new insertion.
The whole table is flushed at the end of a FASE."

The paper characterises the table as "equivalent to a direct-mapped,
fixed size cache": each line indexes one slot (``line mod size``); a
conflicting occupant is flushed and replaced.  Atlas uses 8 entries.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError

#: Atlas's table size ("The software solution is pioneered in Atlas as a
#: 8-entry table", §V).
ATLAS_TABLE_SIZE = 8


class AtlasTable:
    """A direct-mapped, fixed-size table of dirty-line addresses."""

    __slots__ = ("size", "slots", "hits", "misses", "conflicts")

    def __init__(self, size: int = ATLAS_TABLE_SIZE) -> None:
        if size < 1:
            raise ConfigurationError("table size must be >= 1")
        self.size = size
        self.slots: List[Optional[int]] = [None] * size
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    def access(self, line: int) -> Optional[int]:
        """Record a write to ``line``; return a conflicting line to flush."""
        idx = line % self.size
        occupant = self.slots[idx]
        if occupant == line:
            self.hits += 1
            return None
        self.misses += 1
        self.slots[idx] = line
        if occupant is not None:
            self.conflicts += 1
        return occupant

    def drain(self) -> List[int]:
        """Empty the table (end of FASE); return lines to flush."""
        lines = [line for line in self.slots if line is not None]
        self.slots = [None] * self.size
        return lines

    def __len__(self) -> int:
        return sum(1 for line in self.slots if line is not None)

    def __contains__(self, line: int) -> bool:
        return self.slots[line % self.size] == line

    def __repr__(self) -> str:
        return f"AtlasTable(size={self.size}, used={len(self)})"
