"""Declarative technique specs: the ``BASE+stage:param`` grammar.

The paper evaluates six monolithic techniques, but real NVRAM cache
stacks compose orthogonal policies — background cleaning, promotion
filters, sequential cutoff, victim caching (Open-CAS ALRU/ACP, "Writes
Hurt" admission, NVCache write-bypass).  :class:`TechniqueSpec` is the
one parser every entry point (harness, CLI, ``repro.api``, fault
campaigns, bench suite) routes through: a frozen, serializable value
describing a base technique plus an ordered stack of policy stages.

Grammar (see DESIGN.md §14)::

    spec   := base ("+" stage)*
    base   := "ER" | "LA" | "AT" | "SC" | "SC-offline" | "BEST"
    stage  := name (":" int)?          # int >= 0; omitted -> default

Examples: ``SC``, ``SC+clean``, ``SC+nhit:2+clean+victim:16``.

``parse``/``format`` round-trip exactly (property-tested with
hypothesis); ``to_dict``/``from_dict`` give the deterministic form used
for :class:`~repro.experiments.cache.ResultCache` sha256 keys and
shared-memory worker transport.  Degenerate stage parameters
(``victim:0``, ``clean:0``, ``nhit:0``/``nhit:1``, ``cutoff:0``) are
dropped at factory time, so e.g. ``SC+victim:0`` builds the *same* bare
:class:`~repro.cache.policies.SoftwareCacheTechnique` as plain ``SC``
and produces bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.cache.adaptive import AdaptiveConfig
from repro.cache.table import ATLAS_TABLE_SIZE
from repro.cache.policies import TECHNIQUES, PersistenceTechnique, _base_factory


@dataclass(frozen=True)
class StageInfo:
    """Registry entry describing one composable policy stage."""

    name: str
    default: int
    #: Parameter values below this make the stage a guaranteed no-op;
    #: the factory drops such stages so degenerate specs build the bare
    #: base technique (bit-identical results to the un-staged spec).
    noop_below: int
    #: Base techniques the stage composes with (``None`` = any base).
    bases: Optional[Tuple[str, ...]]
    param_doc: str
    doc: str


#: The composable policy stages, in their canonical documentation order.
STAGES: Dict[str, StageInfo] = {
    info.name: info
    for info in (
        StageInfo(
            name="nhit",
            default=2,
            noop_below=2,
            bases=None,
            param_doc="touches required before a line is admitted",
            doc=(
                "promotion filter: hand a line to the base technique only "
                "after it has been stored N times; colder lines bypass "
                "straight to flush_async"
            ),
        ),
        StageInfo(
            name="cutoff",
            default=8,
            noop_below=1,
            bases=None,
            param_doc="consecutive-line run length that triggers bypass",
            doc=(
                "sequential cutoff: detect streaming store runs of "
                "consecutive lines and bypass the base technique straight "
                "to flush_async"
            ),
        ),
        StageInfo(
            name="clean",
            default=4,
            noop_below=1,
            bases=("SC", "SC-offline"),
            param_doc="LRU-tail lines flushed per idle scheduler quantum",
            doc=(
                "background cleaning (ALRU/ACP-style): when the flush "
                "queue is idle at a scheduler quantum boundary, flush up "
                "to N LRU-tail lines out of the software cache"
            ),
        ),
        StageInfo(
            name="victim",
            default=16,
            noop_below=1,
            bases=("SC", "SC-offline"),
            param_doc="victim-cache entries",
            doc=(
                "victim cache: evicted lines park in a small LRU buffer "
                "instead of flushing; a re-store rescues the line back "
                "into the base cache, overflow flushes the oldest entry"
            ),
        ),
    )
}


def _parse_stage_token(token: str, text: str) -> Tuple[str, int]:
    """Decode one ``name`` / ``name:int`` stage token of spec ``text``."""
    name, sep, param_text = token.partition(":")
    info = STAGES.get(name)
    if info is None:
        raise ConfigurationError(
            f"unknown policy stage {name!r} in technique spec {text!r}; "
            f"expected one of {tuple(STAGES)}"
        )
    if not sep:
        return name, info.default
    try:
        param = int(param_text)
    except ValueError:
        raise ConfigurationError(
            f"stage {name!r} in technique spec {text!r} takes an integer "
            f"parameter ({info.param_doc}), got {param_text!r}"
        ) from None
    return name, param


@dataclass(frozen=True)
class TechniqueSpec:
    """A base technique plus an ordered stack of policy stages.

    Frozen and hashable; ``str()`` gives the canonical spec string and
    :meth:`parse` accepts it back (exact round-trip).  Construction
    validates the base name, stage names, parameter ranges, duplicate
    stages and base/stage compatibility, raising
    :class:`~repro.common.errors.ConfigurationError` naming the bad
    stage or parameter — the same error text at every entry point.
    """

    base: str
    stages: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.base not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown technique {self.base!r}; expected one of {TECHNIQUES}"
            )
        stages = tuple((str(n), int(p)) for n, p in self.stages)
        object.__setattr__(self, "stages", stages)
        seen = set()
        for name, param in stages:
            info = STAGES.get(name)
            if info is None:
                raise ConfigurationError(
                    f"unknown policy stage {name!r} in technique spec "
                    f"{self._format(self.base, stages)!r}; expected one of "
                    f"{tuple(STAGES)}"
                )
            if name in seen:
                raise ConfigurationError(
                    f"duplicate policy stage {name!r} in technique spec "
                    f"{self._format(self.base, stages)!r}"
                )
            seen.add(name)
            if param < 0:
                raise ConfigurationError(
                    f"stage {name!r} parameter must be >= 0 "
                    f"({info.param_doc}), got {param}"
                )
            if info.bases is not None and self.base not in info.bases:
                raise ConfigurationError(
                    f"stage {name!r} requires a base technique in "
                    f"{info.bases}, not {self.base!r}"
                )

    # -- parse / format --------------------------------------------------

    @classmethod
    def parse(cls, spec: Union[str, "TechniqueSpec"]) -> "TechniqueSpec":
        """The one spec parser: a spec string (or spec, passed through).

        Raises :class:`~repro.common.errors.ConfigurationError` with the
        offending base, stage or parameter named.
        """
        if isinstance(spec, TechniqueSpec):
            return spec
        if not isinstance(spec, str):
            raise ConfigurationError(
                f"technique spec must be a string or TechniqueSpec, "
                f"got {type(spec).__name__}"
            )
        tokens = spec.split("+")
        base = tokens[0]
        if base not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown technique {base!r}; expected one of {TECHNIQUES}"
            )
        stages = tuple(_parse_stage_token(tok, spec) for tok in tokens[1:])
        return cls(base, stages)

    @staticmethod
    def _format(base: str, stages: Tuple[Tuple[str, int], ...]) -> str:
        return "+".join([base] + [f"{n}:{p}" for n, p in stages])

    def format(self) -> str:
        """The canonical spec string (parameters always explicit)."""
        return self._format(self.base, self.stages)

    def __str__(self) -> str:
        return self.format()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """Deterministic JSON-ready form (cache keys, worker transport)."""
        return {
            "base": self.base,
            "stages": [[name, param] for name, param in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TechniqueSpec":
        keys = set(data)
        if keys != {"base", "stages"}:
            raise ConfigurationError(
                f"bad TechniqueSpec dict: expected keys base/stages, "
                f"got {sorted(keys)}"
            )
        return cls(data["base"], tuple((n, p) for n, p in data["stages"]))

    # -- introspection ---------------------------------------------------

    def stage_param(self, name: str) -> Optional[int]:
        """The parameter of stage ``name``, or ``None`` if absent."""
        for stage, param in self.stages:
            if stage == name:
                return param
        return None

    def effective_stages(self) -> Tuple[Tuple[str, int], ...]:
        """The stages that actually do anything (no-op params dropped)."""
        return tuple(
            (name, param)
            for name, param in self.stages
            if param >= STAGES[name].noop_below
        )


def list_techniques() -> Dict:
    """Machine-readable catalogue of bases, stages and valid params.

    Exported through ``repro.api`` so tools can enumerate the spec
    grammar without importing the cache layer.
    """
    return {
        "bases": list(TECHNIQUES),
        "stages": {
            info.name: {
                "default": info.default,
                "noop_below": info.noop_below,
                "bases": list(info.bases) if info.bases is not None else list(TECHNIQUES),
                "param": info.param_doc,
                "doc": info.doc,
            }
            for info in STAGES.values()
        },
        "grammar": "BASE(+stage(:int)?)*  e.g. SC+nhit:2+clean+victim:16",
    }


def technique_factory(
    spec: Union[str, TechniqueSpec],
    *,
    table_size: int = ATLAS_TABLE_SIZE,
    sc_initial_size: int = 8,
    sc_fixed_size: Optional[int] = None,
    adaptive_config: Optional[AdaptiveConfig] = None,
    use_clwb: bool = False,
    shared_adaptation: bool = False,
) -> Callable[[int], PersistenceTechnique]:
    """Build a per-thread technique factory from a spec (the one path).

    Accepts a spec string or :class:`TechniqueSpec`; keyword context
    mirrors the legacy ``make_factory`` knobs (they configure the *base*
    technique).  Specs whose stages are all no-ops (``SC+victim:0``,
    zero-budget ``clean``) return the bare base factory, so their
    results are bit-identical to the un-staged spec.
    """
    parsed = TechniqueSpec.parse(spec)
    base_factory = _base_factory(
        parsed.base,
        table_size=table_size,
        sc_initial_size=sc_initial_size,
        sc_fixed_size=sc_fixed_size,
        adaptive_config=adaptive_config,
        use_clwb=use_clwb,
        shared_adaptation=shared_adaptation,
    )
    active = parsed.effective_stages()
    if not active:
        return base_factory
    from repro.cache.stages import StagedTechnique

    name = str(parsed)

    def factory(tid: int) -> PersistenceTechnique:
        return StagedTechnique(
            base_factory(tid), name=name, stages=active, use_clwb=use_clwb
        )

    return factory
