"""Shared substrate: cache-line geometry, the event model, RNG helpers.

Everything in :mod:`repro` sits on top of this package.  It deliberately has
no dependencies on the other subpackages so that the locality theory, the
hardware model and the workloads can all import it without cycles.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    RecoveryError,
)
from repro.common.geometry import (
    CACHE_LINE_SIZE,
    line_of,
    line_offset,
    line_base,
    lines_spanned,
    align_up,
    align_down,
)
from repro.common.events import (
    EventKind,
    Event,
    Store,
    Load,
    Work,
    FaseBegin,
    FaseEnd,
)
from repro.common.rng import make_rng, derive_seed

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "RecoveryError",
    "CACHE_LINE_SIZE",
    "line_of",
    "line_offset",
    "line_base",
    "lines_spanned",
    "align_up",
    "align_down",
    "EventKind",
    "Event",
    "Store",
    "Load",
    "Work",
    "FaseBegin",
    "FaseEnd",
    "make_rng",
    "derive_seed",
]
