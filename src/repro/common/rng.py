"""Deterministic random-number helpers.

Every stochastic component (workload generators, crash injection, sampled
MRC) takes an explicit seed so that full experiment runs are reproducible
bit-for-bit.  ``derive_seed`` produces decorrelated child seeds from a
parent seed and a label, so per-thread and per-phase streams never overlap.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded with ``seed``."""
    return np.random.default_rng(seed)


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a child seed from ``parent`` and a sequence of labels.

    The derivation hashes the parent seed together with the labels, so
    ``derive_seed(s, "thread", 0)`` and ``derive_seed(s, "thread", 1)``
    give independent streams, and the mapping is stable across runs and
    platforms.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(parent)).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little")
