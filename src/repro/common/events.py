"""The instrumented-program event model.

The paper instruments programs with an LLVM pass that reports every memory
store and every FASE lock/unlock to the runtime (§III-C, "Compiler
Support").  We replace the compiler pass with an explicit event stream: a
workload is a generator of events per thread, and the simulated machine
consumes the stream, driving the hardware cache, the persistence technique
and the timing model.

Event classes use ``__slots__`` and an integer ``kind`` tag so that the
machine's dispatch loop — the hottest code in the simulator — can branch on
an int instead of ``isinstance``.

Events
------
``Store(addr, size, value)``
    A store to *persistent* memory.  ``value`` is an optional payload used
    by the crash/recovery machinery; pure trace-driven workloads leave it
    ``None``.
``Load(addr, size)``
    A load from persistent memory.  Loads never trigger flush bookkeeping
    (the software cache is write-combining and "does not consider data
    reads at all", §III-A) but they do exercise the hardware cache, which
    is how the *indirect* cost of `clflush` invalidations is measured.
``Work(amount)``
    ``amount`` instructions of computation that do not touch persistent
    memory.  Asynchronous flushes overlap with this work.
``FaseBegin()`` / ``FaseEnd()``
    Failure-atomic section boundaries.  FASEs may nest; persistence is
    only guaranteed at the end of an *outermost* FASE, matching Atlas.
"""

from __future__ import annotations

from typing import Iterator, Union


class EventKind:
    """Integer tags for fast dispatch in the machine's inner loop."""

    STORE = 0
    LOAD = 1
    WORK = 2
    FASE_BEGIN = 3
    FASE_END = 4


class Store:
    """A store of ``size`` bytes at byte address ``addr``."""

    __slots__ = ("addr", "size", "value")
    kind = EventKind.STORE

    def __init__(self, addr: int, size: int = 8, value: object = None) -> None:
        self.addr = addr
        self.size = size
        self.value = value

    def __repr__(self) -> str:
        return f"Store(addr={self.addr:#x}, size={self.size}, value={self.value!r})"


class Load:
    """A load of ``size`` bytes at byte address ``addr``."""

    __slots__ = ("addr", "size")
    kind = EventKind.LOAD

    def __init__(self, addr: int, size: int = 8) -> None:
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"Load(addr={self.addr:#x}, size={self.size})"


class Work:
    """``amount`` instructions of computation not touching persistent data."""

    __slots__ = ("amount",)
    kind = EventKind.WORK

    def __init__(self, amount: int) -> None:
        self.amount = amount

    def __repr__(self) -> str:
        return f"Work({self.amount})"


class FaseBegin:
    """Enter a failure-atomic section (may nest)."""

    __slots__ = ()
    kind = EventKind.FASE_BEGIN

    def __repr__(self) -> str:
        return "FaseBegin()"


class FaseEnd:
    """Leave a failure-atomic section."""

    __slots__ = ()
    kind = EventKind.FASE_END

    def __repr__(self) -> str:
        return "FaseEnd()"


Event = Union[Store, Load, Work, FaseBegin, FaseEnd]
EventStream = Iterator[Event]


def validate_stream(events: EventStream) -> Iterator[Event]:
    """Yield events from ``events`` while checking FASE bracketing.

    Raises :class:`~repro.common.errors.SimulationError` on an unmatched
    ``FaseEnd`` or on a stream ending inside a FASE.  Useful for testing
    hand-written workloads; the machine itself performs the same checks.
    """
    from repro.common.errors import SimulationError

    depth = 0
    for ev in events:
        k = ev.kind
        if k == EventKind.FASE_BEGIN:
            depth += 1
        elif k == EventKind.FASE_END:
            depth -= 1
            if depth < 0:
                raise SimulationError("FaseEnd without matching FaseBegin")
        yield ev
    if depth != 0:
        raise SimulationError(f"stream ended inside a FASE (depth={depth})")
