"""The instrumented-program event model.

The paper instruments programs with an LLVM pass that reports every memory
store and every FASE lock/unlock to the runtime (§III-C, "Compiler
Support").  We replace the compiler pass with an explicit event stream: a
workload is a generator of events per thread, and the simulated machine
consumes the stream, driving the hardware cache, the persistence technique
and the timing model.

Event classes use ``__slots__`` and an integer ``kind`` tag so that the
machine's dispatch loop — the hottest code in the simulator — can branch on
an int instead of ``isinstance``.

Events
------
``Store(addr, size, value)``
    A store to *persistent* memory.  ``value`` is an optional payload used
    by the crash/recovery machinery; pure trace-driven workloads leave it
    ``None``.
``Load(addr, size)``
    A load from persistent memory.  Loads never trigger flush bookkeeping
    (the software cache is write-combining and "does not consider data
    reads at all", §III-A) but they do exercise the hardware cache, which
    is how the *indirect* cost of `clflush` invalidations is measured.
``Work(amount)``
    ``amount`` instructions of computation that do not touch persistent
    memory.  Asynchronous flushes overlap with this work.
``FaseBegin()`` / ``FaseEnd()``
    Failure-atomic section boundaries.  FASEs may nest; persistence is
    only guaranteed at the end of an *outermost* FASE, matching Atlas.

Batched representation
----------------------
Even with ``__slots__``, one Python object per event dominates the
simulator's run time: the machine spends more cycles resuming workload
generator frames and allocating ``Store`` instances than it spends in
the cache and flush models.  :class:`EventBatch` is the compact
alternative — three parallel ``array`` columns (kind / addr-or-amount /
size, ~17 bytes per event) that a workload fills by appending plain
integers and the machine consumes with an indexed loop, no per-event
allocation at all.  Workloads expose batches through
``Workload.batch_streams`` *alongside* the per-object ``streams``; both
encodings describe the same event sequence, and the machine's two
execution paths are required (and tested) to produce bit-identical
statistics.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Union


class EventKind:
    """Integer tags for fast dispatch in the machine's inner loop."""

    STORE = 0
    LOAD = 1
    WORK = 2
    FASE_BEGIN = 3
    FASE_END = 4


class Store:
    """A store of ``size`` bytes at byte address ``addr``."""

    __slots__ = ("addr", "size", "value")
    kind = EventKind.STORE

    def __init__(self, addr: int, size: int = 8, value: object = None) -> None:
        self.addr = addr
        self.size = size
        self.value = value

    def __repr__(self) -> str:
        return f"Store(addr={self.addr:#x}, size={self.size}, value={self.value!r})"


class Load:
    """A load of ``size`` bytes at byte address ``addr``."""

    __slots__ = ("addr", "size")
    kind = EventKind.LOAD

    def __init__(self, addr: int, size: int = 8) -> None:
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"Load(addr={self.addr:#x}, size={self.size})"


class Work:
    """``amount`` instructions of computation not touching persistent data."""

    __slots__ = ("amount",)
    kind = EventKind.WORK

    def __init__(self, amount: int) -> None:
        self.amount = amount

    def __repr__(self) -> str:
        return f"Work({self.amount})"


class FaseBegin:
    """Enter a failure-atomic section (may nest)."""

    __slots__ = ()
    kind = EventKind.FASE_BEGIN

    def __repr__(self) -> str:
        return "FaseBegin()"


class FaseEnd:
    """Leave a failure-atomic section."""

    __slots__ = ()
    kind = EventKind.FASE_END

    def __repr__(self) -> str:
        return "FaseEnd()"


Event = Union[Store, Load, Work, FaseBegin, FaseEnd]
EventStream = Iterator[Event]


class EventBatch:
    """A run of events as parallel integer columns (no per-event objects).

    Columns (all the same length):

    ``kinds``
        One :class:`EventKind` tag per event (signed byte array).
    ``args``
        The event's primary integer: byte address for ``STORE``/``LOAD``,
        instruction count for ``WORK``, 0 for FASE boundaries.
    ``sizes``
        Access size in bytes for ``STORE``/``LOAD``, 0 otherwise.

    Batches carry no value payloads; crash/recovery runs that need
    ``Store.value`` use the per-object encoding (the machine falls back
    automatically when value tracking is on).
    """

    __slots__ = ("kinds", "args", "sizes")

    def __init__(self) -> None:
        self.kinds = array("b")
        self.args = array("q")
        self.sizes = array("q")

    def __len__(self) -> int:
        return len(self.kinds)

    def __repr__(self) -> str:
        return f"EventBatch(len={len(self.kinds)})"

    # -- construction from existing columns -------------------------------

    #: ``array`` typecodes of the three columns, in slot order.  The
    #: shared-memory transport (``repro.experiments.transport``) ships
    #: batches as raw column bytes plus these typecodes and rebuilds them
    #: with :meth:`from_columns`; every batch a workload can produce must
    #: use exactly these dtypes.
    COLUMN_TYPECODES = ("b", "q", "q")

    @classmethod
    def from_columns(cls, kinds, args, sizes) -> "EventBatch":
        """Adopt three existing parallel columns without copying.

        The columns may be ``array`` objects (the native encoding) or any
        integer sequences with the same values (e.g. buffers rebuilt from
        a shared-memory segment).  Lengths must agree; the batch takes
        ownership — callers must not mutate the columns afterwards.
        """
        if not (len(kinds) == len(args) == len(sizes)):
            raise ValueError(
                f"column lengths disagree: kinds={len(kinds)} "
                f"args={len(args)} sizes={len(sizes)}"
            )
        batch = cls.__new__(cls)
        batch.kinds = kinds
        batch.args = args
        batch.sizes = sizes
        return batch

    def columns(self):
        """The three parallel columns, in :data:`COLUMN_TYPECODES` order."""
        return (self.kinds, self.args, self.sizes)

    # -- building --------------------------------------------------------

    def append_store(self, addr: int, size: int = 8) -> None:
        """Append a persistent-or-not store of ``size`` bytes at ``addr``."""
        self.kinds.append(EventKind.STORE)
        self.args.append(addr)
        self.sizes.append(size)

    def append_load(self, addr: int, size: int = 8) -> None:
        """Append a load of ``size`` bytes at ``addr``."""
        self.kinds.append(EventKind.LOAD)
        self.args.append(addr)
        self.sizes.append(size)

    def append_work(self, amount: int) -> None:
        """Append ``amount`` instructions of computation."""
        self.kinds.append(EventKind.WORK)
        self.args.append(amount)
        self.sizes.append(0)

    def append_fase_begin(self) -> None:
        """Append a failure-atomic-section entry."""
        self.kinds.append(EventKind.FASE_BEGIN)
        self.args.append(0)
        self.sizes.append(0)

    def append_fase_end(self) -> None:
        """Append a failure-atomic-section exit."""
        self.kinds.append(EventKind.FASE_END)
        self.args.append(0)
        self.sizes.append(0)

    def append_event(self, ev: Event) -> None:
        """Append one per-object event (payload values are dropped)."""
        kind = ev.kind
        self.kinds.append(kind)
        if kind == EventKind.STORE or kind == EventKind.LOAD:
            self.args.append(ev.addr)
            self.sizes.append(ev.size)
        elif kind == EventKind.WORK:
            self.args.append(ev.amount)
            self.sizes.append(0)
        else:
            self.args.append(0)
            self.sizes.append(0)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBatch":
        """Pack an event sequence into one batch (values are dropped)."""
        batch = cls()
        for ev in events:
            batch.append_event(ev)
        return batch

    # -- expanding -------------------------------------------------------

    def events(self) -> Iterator[Event]:
        """Expand back into per-object events (the reference decoding)."""
        kinds = self.kinds
        args = self.args
        sizes = self.sizes
        for i in range(len(kinds)):
            kind = kinds[i]
            if kind == EventKind.STORE:
                yield Store(args[i], sizes[i])
            elif kind == EventKind.LOAD:
                yield Load(args[i], sizes[i])
            elif kind == EventKind.WORK:
                yield Work(args[i])
            elif kind == EventKind.FASE_BEGIN:
                yield FaseBegin()
            else:
                yield FaseEnd()


BatchStream = Iterator[EventBatch]

#: Default events per batch when converting a per-object stream.
BATCH_CHUNK = 4096


def batches_from_events(
    events: EventStream, chunk: int = BATCH_CHUNK
) -> BatchStream:
    """Chunk a per-object event stream into :class:`EventBatch` runs.

    A compatibility adapter for workloads without a native batch
    emitter; it still pays the source stream's per-event costs once, so
    native emitters are preferred on hot paths.
    """
    batch = EventBatch()
    append = batch.append_event
    n = 0
    for ev in events:
        append(ev)
        n += 1
        if n >= chunk:
            yield batch
            batch = EventBatch()
            append = batch.append_event
            n = 0
    if n:
        yield batch


def events_from_batches(batches: BatchStream) -> EventStream:
    """Flatten a batch stream back into per-object events."""
    for batch in batches:
        yield from batch.events()


def validate_stream(events: EventStream) -> Iterator[Event]:
    """Yield events from ``events`` while checking FASE bracketing.

    Raises :class:`~repro.common.errors.SimulationError` on an unmatched
    ``FaseEnd`` or on a stream ending inside a FASE.  Useful for testing
    hand-written workloads; the machine itself performs the same checks.
    """
    from repro.common.errors import SimulationError

    depth = 0
    for ev in events:
        k = ev.kind
        if k == EventKind.FASE_BEGIN:
            depth += 1
        elif k == EventKind.FASE_END:
            depth -= 1
            if depth < 0:
                raise SimulationError("FaseEnd without matching FaseBegin")
        yield ev
    if depth != 0:
        raise SimulationError(f"stream ended inside a FASE (depth={depth})")
