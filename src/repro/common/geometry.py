"""Cache-line geometry.

The paper's platform (and essentially every x86 machine) uses 64-byte cache
lines; both the hardware cache model and the software write-combining cache
operate at cache-line granularity, exactly as Atlas does ("Atlas monitors
data writes at cache-line granularity", §II-A).

Addresses are plain integers (byte addresses).  A *line number* is the byte
address divided by the line size; a *line base* is the first byte address of
the line.  The software cache and all flush bookkeeping key on line numbers.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

#: Cache-line (cache-block) size in bytes, matching the evaluation platform
#: ("a cache block has 64 bytes, i.e. 16 (4-byte) integers", §IV-B).
CACHE_LINE_SIZE: int = 64

_LINE_SHIFT: int = CACHE_LINE_SIZE.bit_length() - 1
_LINE_MASK: int = CACHE_LINE_SIZE - 1

assert (1 << _LINE_SHIFT) == CACHE_LINE_SIZE, "line size must be a power of two"


def line_of(addr: int) -> int:
    """Return the cache-line number containing byte address ``addr``."""
    return addr >> _LINE_SHIFT


def line_offset(addr: int) -> int:
    """Return the offset of ``addr`` within its cache line (0..63)."""
    return addr & _LINE_MASK


def line_base(addr: int) -> int:
    """Return the byte address of the first byte of ``addr``'s cache line."""
    return addr & ~_LINE_MASK


def lines_spanned(addr: int, nbytes: int) -> range:
    """Return the range of line numbers touched by ``nbytes`` at ``addr``.

    A zero-length access touches no lines.
    """
    if nbytes < 0:
        raise ConfigurationError(f"negative access size: {nbytes}")
    if nbytes == 0:
        return range(0)
    first = line_of(addr)
    last = line_of(addr + nbytes - 1)
    return range(first, last + 1)


def align_up(addr: int, alignment: int = CACHE_LINE_SIZE) -> int:
    """Round ``addr`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ConfigurationError(f"alignment must be a power of two: {alignment}")
    return (addr + alignment - 1) & ~(alignment - 1)


def align_down(addr: int, alignment: int = CACHE_LINE_SIZE) -> int:
    """Round ``addr`` down to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ConfigurationError(f"alignment must be a power of two: {alignment}")
    return addr & ~(alignment - 1)
