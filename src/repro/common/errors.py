"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """The simulated machine was driven into an invalid state.

    Raised for protocol violations such as ending a FASE that was never
    begun, storing to unallocated persistent memory, or flushing an
    address outside the persistence domain.
    """


class RecoveryError(ReproError):
    """Post-crash recovery found NVRAM in an unrecoverable state."""
