"""A durable open-addressing hash map.

Layout:

- header slot: ``(count, capacity, table_base)``;
- table: ``capacity`` slots at ``table_base + 8*i``, each holding
  ``None`` (empty), the tombstone marker, or ``(key, value)``.

Linear probing with tombstoned deletion; the table doubles (one
rehash FASE) when the load factor crosses 2/3.  Every operation is one
FASE, so crash recovery never exposes a half-rehashed table: the new
table is fully built before the header that points at it is published.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.atlas.runtime import AtlasRuntime
from repro.common.errors import ConfigurationError

_SLOT = 8
_MAX_LOAD_NUM, _MAX_LOAD_DEN = 2, 3

#: Distinguishable deleted-slot marker (a plain string survives the
#: simulated NVRAM's object storage).
TOMBSTONE = "__repro_tombstone__"


def _hash(key: object, capacity: int) -> int:
    return (hash(key) * 2654435761) % capacity


class PersistentDict:
    """A crash-consistent hash map of Python keys/values."""

    def __init__(
        self,
        runtime: AtlasRuntime,
        initial_capacity: int = 16,
        header_addr: Optional[int] = None,
    ) -> None:
        if initial_capacity < 4:
            raise ConfigurationError("initial capacity must be >= 4")
        self.rt = runtime
        if header_addr is None:
            self.header = runtime.alloc(_SLOT)
            table = runtime.alloc(initial_capacity * _SLOT)
            with runtime.fase():
                runtime.store(self.header, value=(0, initial_capacity, table))
        else:
            self.header = header_addr

    @classmethod
    def reattach(cls, runtime: AtlasRuntime, header_addr: int) -> "PersistentDict":
        """Rebuild a handle from a recovered/reopened header address."""
        return cls(runtime, header_addr=header_addr)

    # -- internals ---------------------------------------------------------

    def _header(self) -> Tuple[int, int, int]:
        header = self.rt.load(self.header)
        if header is None:
            raise ConfigurationError(f"no dict at {self.header:#x}")
        return header

    def _probe(self, table: int, capacity: int, key: object):
        """Yield ``(slot_addr, payload)`` along ``key``'s probe sequence."""
        idx = _hash(key, capacity)
        for step in range(capacity):
            addr = table + ((idx + step) % capacity) * _SLOT
            yield addr, self.rt.load(addr)

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._header()[0]

    def get(self, key: object, default: object = None) -> object:
        """Look ``key`` up."""
        _count, capacity, table = self._header()
        for _addr, payload in self._probe(table, capacity, key):
            if payload is None:
                return default
            if payload != TOMBSTONE and payload[0] == key:
                return payload[1]
        return default

    def __contains__(self, key: object) -> bool:
        marker = object()
        return self.get(key, marker) is not marker

    def items(self) -> Iterator[Tuple[object, object]]:
        """Iterate live ``(key, value)`` pairs (arbitrary order)."""
        _count, capacity, table = self._header()
        for i in range(capacity):
            payload = self.rt.load(table + i * _SLOT)
            if payload is not None and payload != TOMBSTONE:
                yield payload

    # -- writes ----------------------------------------------------------------

    def put(self, key: object, value: object) -> None:
        """Insert or overwrite (one FASE, may rehash)."""
        with self.rt.fase():
            count, capacity, table = self._header()
            if (count + 1) * _MAX_LOAD_DEN > capacity * _MAX_LOAD_NUM:
                capacity, table = self._rehash(capacity, table)
                count = self._header()[0]
            first_free = None
            for addr, payload in self._probe(table, capacity, key):
                if payload == TOMBSTONE:
                    if first_free is None:
                        first_free = addr
                elif payload is None:
                    self.rt.store(first_free or addr, value=(key, value))
                    self.rt.store(self.header, value=(count + 1, capacity, table))
                    return
                elif payload[0] == key:
                    self.rt.store(addr, value=(key, value))
                    return
            raise ConfigurationError("probe sequence exhausted (table corrupt?)")

    def delete(self, key: object) -> bool:
        """Remove ``key`` (one FASE); returns whether it was present."""
        with self.rt.fase():
            count, capacity, table = self._header()
            for addr, payload in self._probe(table, capacity, key):
                if payload is None:
                    return False
                if payload != TOMBSTONE and payload[0] == key:
                    self.rt.store(addr, value=TOMBSTONE)
                    self.rt.store(self.header, value=(count - 1, capacity, table))
                    return True
            return False

    def _rehash(self, capacity: int, table: int) -> Tuple[int, int]:
        """Double the table inside the caller's FASE; returns (cap, base)."""
        new_cap = capacity * 2
        new_table = self.rt.alloc(new_cap * _SLOT)
        live = 0
        for i in range(capacity):
            payload = self.rt.load(table + i * _SLOT)
            if payload is None or payload == TOMBSTONE:
                continue
            key = payload[0]
            idx = _hash(key, new_cap)
            for step in range(new_cap):
                addr = new_table + ((idx + step) % new_cap) * _SLOT
                if self.rt.load(addr) is None:
                    self.rt.store(addr, value=payload)
                    break
            live += 1
        self.rt.store(self.header, value=(live, new_cap, new_table))
        return new_cap, new_table

    # -- post-crash verification -------------------------------------------------

    @staticmethod
    def read_back(
        read: Callable[[int], object], header_addr: int
    ) -> Dict[object, object]:
        """Materialise the mapping from a recovered NVRAM image."""
        header = read(header_addr)
        if header is None:
            raise ConfigurationError(f"no dict header at {header_addr:#x}")
        _count, capacity, table = header
        out: Dict[object, object] = {}
        for i in range(capacity):
            payload = read(table + i * _SLOT)
            if payload is not None and payload != TOMBSTONE:
                out[payload[0]] = payload[1]
        return out
