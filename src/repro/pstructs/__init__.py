"""Persistent data structures on the Atlas FASE runtime.

The paper's introduction motivates a world where "only one format of
data will suffice": applications keep their objects in NVRAM directly,
and the runtime (FASEs + flush management) makes them crash-consistent.
This package is that world's standard library — durable containers a
downstream user builds applications from, each operation a failure-
atomic section managed by the software cache:

- :class:`~repro.pstructs.vector.PersistentVector` — a growable array
  (amortised-doubling storage, durable length).
- :class:`~repro.pstructs.pdict.PersistentDict` — an open-addressing
  hash map with durable tombstones and incremental growth.
- :class:`~repro.pstructs.pqueue.PersistentQueue` — a Michael–Scott
  style linked FIFO (the durable twin of the `queue` micro-benchmark).

All of them share one discipline: every mutation happens inside a FASE,
so after a crash, :func:`repro.atlas.recovery.recover` returns an image
in which each container holds exactly its committed state.  Each class
carries a ``reattach`` constructor that rebuilds the handle from the
region root after recovery — the persistent-memory programming pattern
Atlas calls finding your data again.
"""

from repro.pstructs.vector import PersistentVector
from repro.pstructs.pdict import PersistentDict
from repro.pstructs.pqueue import PersistentQueue

__all__ = ["PersistentVector", "PersistentDict", "PersistentQueue"]
