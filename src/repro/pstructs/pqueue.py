"""A durable linked FIFO — the persistent twin of the queue benchmark.

Michael & Scott's structure with a dummy node: the header slot holds
``(head_node, tail_node, count)``; each node slot holds
``(value, next_addr)``.  Enqueue links a node after the tail and
publishes the new header; dequeue advances the head pointer.  One FASE
per operation, exactly the benchmark's persistence pattern — but here
the values are real and recoverable.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.atlas.runtime import AtlasRuntime
from repro.common.errors import ConfigurationError

_SLOT = 8


class PersistentQueue:
    """A crash-consistent FIFO of Python values."""

    def __init__(
        self,
        runtime: AtlasRuntime,
        header_addr: Optional[int] = None,
    ) -> None:
        self.rt = runtime
        if header_addr is None:
            self.header = runtime.alloc(_SLOT)
            dummy = runtime.alloc(_SLOT)
            with runtime.fase():
                runtime.store(dummy, value=(None, None))
                runtime.store(self.header, value=(dummy, dummy, 0))
        else:
            self.header = header_addr

    @classmethod
    def reattach(cls, runtime: AtlasRuntime, header_addr: int) -> "PersistentQueue":
        """Rebuild a handle from a recovered/reopened header address."""
        return cls(runtime, header_addr=header_addr)

    def _header(self) -> tuple:
        header = self.rt.load(self.header)
        if header is None:
            raise ConfigurationError(f"no queue at {self.header:#x}")
        return header

    def __len__(self) -> int:
        return self._header()[2]

    def enqueue(self, value: object) -> None:
        """Append ``value`` at the tail (one FASE)."""
        node = self.rt.alloc(_SLOT)
        with self.rt.fase():
            head, tail, count = self._header()
            self.rt.store(node, value=(value, None))
            tail_value, _next = self.rt.load(tail)
            self.rt.store(tail, value=(tail_value, node))
            self.rt.store(self.header, value=(head, node, count + 1))

    def dequeue(self) -> object:
        """Remove and return the oldest value (one FASE)."""
        with self.rt.fase():
            head, tail, count = self._header()
            if count == 0:
                raise IndexError("dequeue from empty queue")
            _dummy_value, first = self.rt.load(head)
            value, _next = self.rt.load(first)
            # The dequeued node becomes the new dummy (M&S style).
            self.rt.store(self.header, value=(first, tail, count - 1))
            return value

    def peek(self) -> object:
        """The oldest value without removing it."""
        head, _tail, count = self._header()
        if count == 0:
            raise IndexError("peek at empty queue")
        _dummy_value, first = self.rt.load(head)
        return self.rt.load(first)[0]

    # -- post-crash verification -------------------------------------------------

    @staticmethod
    def read_back(read: Callable[[int], object], header_addr: int) -> List[object]:
        """Materialise the FIFO contents from a recovered NVRAM image."""
        header = read(header_addr)
        if header is None:
            raise ConfigurationError(f"no queue header at {header_addr:#x}")
        head, _tail, count = header
        out: List[object] = []
        node = read(head)[1]     # skip the dummy
        while node is not None and len(out) < count:
            value, node = read(node)
            out.append(value)
        if len(out) != count:
            raise ConfigurationError(
                f"queue truncated: {len(out)} of {count} recovered"
            )
        return out
