"""A durable growable array.

Layout (one logical slot = 8 bytes of simulated NVRAM):

- header slot: ``(length, capacity, data_base)`` — one durable word, so
  publishing a new length (or a regrown data block) is a single store;
- data block: ``capacity`` value slots at ``data_base + 8*i``.

Every mutation is one FASE: an append that triggers growth allocates the
new block, copies the live prefix, writes the element, then publishes
the new header — all-or-nothing under crash recovery.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.atlas.runtime import AtlasRuntime
from repro.common.errors import ConfigurationError

_SLOT = 8


class PersistentVector:
    """A crash-consistent vector of Python values (see module docstring)."""

    def __init__(
        self,
        runtime: AtlasRuntime,
        initial_capacity: int = 8,
        header_addr: Optional[int] = None,
    ) -> None:
        if initial_capacity < 1:
            raise ConfigurationError("initial capacity must be >= 1")
        self.rt = runtime
        if header_addr is None:
            self.header = runtime.alloc(_SLOT)
            data = runtime.alloc(initial_capacity * _SLOT)
            with runtime.fase():
                runtime.store(self.header, value=(0, initial_capacity, data))
        else:
            self.header = header_addr

    # -- construction after recovery --------------------------------------

    @classmethod
    def reattach(cls, runtime: AtlasRuntime, header_addr: int) -> "PersistentVector":
        """Rebuild a handle from a recovered/reopened header address."""
        return cls(runtime, header_addr=header_addr)

    # -- internals ---------------------------------------------------------

    def _header(self) -> tuple:
        header = self.rt.load(self.header)
        if header is None:
            raise ConfigurationError(f"no vector at {self.header:#x}")
        return header

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._header()[0]

    def get(self, index: int) -> object:
        """Read element ``index``."""
        length, _cap, data = self._header()
        if not 0 <= index < length:
            raise IndexError(index)
        return self.rt.load(data + index * _SLOT)

    def __iter__(self) -> Iterator[object]:
        length, _cap, data = self._header()
        for i in range(length):
            yield self.rt.load(data + i * _SLOT)

    # -- writes ----------------------------------------------------------------

    def append(self, value: object) -> None:
        """Append ``value`` (one FASE, growing the storage if needed)."""
        with self.rt.fase():
            length, cap, data = self._header()
            if length == cap:
                new_cap = cap * 2
                new_data = self.rt.alloc(new_cap * _SLOT)
                for i in range(length):
                    self.rt.store(
                        new_data + i * _SLOT,
                        value=self.rt.load(data + i * _SLOT),
                    )
                data, cap = new_data, new_cap
            self.rt.store(data + length * _SLOT, value=value)
            self.rt.store(self.header, value=(length + 1, cap, data))

    def set(self, index: int, value: object) -> None:
        """Overwrite element ``index`` (one FASE)."""
        with self.rt.fase():
            length, _cap, data = self._header()
            if not 0 <= index < length:
                raise IndexError(index)
            self.rt.store(data + index * _SLOT, value=value)

    def pop(self) -> object:
        """Remove and return the last element (one FASE)."""
        with self.rt.fase():
            length, cap, data = self._header()
            if length == 0:
                raise IndexError("pop from empty vector")
            value = self.rt.load(data + (length - 1) * _SLOT)
            self.rt.store(self.header, value=(length - 1, cap, data))
            return value

    def extend(self, values) -> None:
        """Append several values, one FASE each (each durable on commit)."""
        for value in values:
            self.append(value)

    # -- post-crash verification -------------------------------------------------

    @staticmethod
    def read_back(read: Callable[[int], object], header_addr: int) -> List[object]:
        """Materialise the vector from a recovered NVRAM image."""
        header = read(header_addr)
        if header is None:
            raise ConfigurationError(f"no vector header at {header_addr:#x}")
        length, _cap, data = header
        return [read(data + i * _SLOT) for i in range(length)]
