"""repro — Adaptive Software Caching for Efficient NVRAM Data Persistence.

A from-scratch reproduction of Li, Chakrabarti, Ding & Yuan (IPDPS 2017):
the adaptive software write-combining cache, its linear-time reuse-based
MRC theory, the Atlas-style FASE runtime it lives in, and the simulated
NVRAM machine plus workloads that regenerate the paper's evaluation.

Orientation (details in each subpackage's docstring):

- :mod:`repro.locality` — the theory: all-window reuse, footprint
  duality, MRC conversion, knee selection, sampling, stack distance.
- :mod:`repro.cache` — the software cache and the six persistence
  techniques (ER / LA / AT / SC / SC-offline / BEST).
- :mod:`repro.nvram` — the simulated machine (hardware cache, flush
  engine, timing, crash injection).
- :mod:`repro.atlas` — failure-atomic sections, undo logging, recovery.
- :mod:`repro.workloads`, :mod:`repro.mdb` — the twelve evaluation
  workloads.
- :mod:`repro.pstructs` — durable containers built on the runtime.
- :mod:`repro.experiments` — every table and figure, regenerable
  (``python -m repro.experiments all``).
"""

__version__ = "1.0.0"

__all__ = [
    "atlas",
    "cache",
    "common",
    "experiments",
    "locality",
    "mdb",
    "nvram",
    "pstructs",
    "workloads",
]
