"""repro — Adaptive Software Caching for Efficient NVRAM Data Persistence.

A from-scratch reproduction of Li, Chakrabarti, Ding & Yuan (IPDPS 2017):
the adaptive software write-combining cache, its linear-time reuse-based
MRC theory, the Atlas-style FASE runtime it lives in, and the simulated
NVRAM machine plus workloads that regenerate the paper's evaluation.

Orientation (details in each subpackage's docstring):

- :mod:`repro.locality` — the theory: all-window reuse, footprint
  duality, MRC conversion, knee selection, sampling, stack distance.
- :mod:`repro.cache` — the software cache and the six persistence
  techniques (ER / LA / AT / SC / SC-offline / BEST).
- :mod:`repro.nvram` — the simulated machine (hardware cache, flush
  engine, timing, crash injection).
- :mod:`repro.atlas` — failure-atomic sections, undo logging, recovery.
- :mod:`repro.workloads`, :mod:`repro.mdb` — the twelve evaluation
  workloads.
- :mod:`repro.pstructs` — durable containers built on the runtime.
- :mod:`repro.experiments` — every table and figure, regenerable
  (``python -m repro.experiments all``).
- :mod:`repro.faults` — crash-point fault-injection campaigns with a
  recovery oracle (``python -m repro.experiments crashmatrix``).
- :mod:`repro.api` — the typed facade: ``RunSpec`` in, ``RunResult``
  or ``CrashMatrix`` out.

The facade is re-exported here lazily, so ``from repro import RunSpec,
run, campaign`` works without paying for the experiment stack on a bare
``import repro``.
"""

__version__ = "1.1.0"

__all__ = [
    "FaultSpec",
    "RunSpec",
    "TechniqueSpec",
    "api",
    "atlas",
    "cache",
    "campaign",
    "common",
    "experiments",
    "faults",
    "locality",
    "mdb",
    "nvram",
    "pstructs",
    "list_techniques",
    "run",
    "traced_run",
    "workloads",
]

#: Facade names resolved lazily from :mod:`repro.api` (PEP 562).
_API_NAMES = (
    "FaultSpec",
    "RunSpec",
    "TechniqueSpec",
    "campaign",
    "list_techniques",
    "run",
    "traced_run",
)


def __getattr__(name):
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
