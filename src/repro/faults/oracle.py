"""The recovery oracle: judge a recovered image against golden truth.

For a crash at site *s*, the FASE contract (§II-A: "upon a system
failure, either all or none of the updates in a FASE are visible")
determines the recovered image exactly, up to unprotected data:

``committed-present``
    Every FASE whose commit record was durable by *s* must have **all**
    its writes present — committed data drained before the commit record
    was flushed, so nothing of it was lost with the volatile caches.
``uncommitted-absent``
    Every FASE not committed by *s* must be fully rolled back: each of
    its addresses reads the value the *last committed* writer left there
    (or nothing, if no committed FASE ever wrote it).
``log-before-data``
    Already in the **pre-recovery** image: a not-yet-committed FASE's
    value may appear in NVRAM only if its undo record does too —
    otherwise recovery had nothing to roll back with, which is precisely
    the unsound state the write ordering exists to prevent.

The first two are checked by overlaying the golden run's committed
writes in commit order and comparing address-by-address; the third by
scanning the crash image's undo logs directly.  ``recovery.py``'s module
docstring carries the matching soundness argument; DESIGN.md §10 ties
the two together.

A stored ``None`` payload and an absent address are deliberately
indistinguishable here — that is the repo-wide convention (the undo log
encodes "did not exist before" as ``old_value None``), so the oracle
normalizes both to ``None`` before comparing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.atlas.log import KIND_UNDO, UndoLog
from repro.atlas.recovery import RecoveryReport, recover
from repro.common.errors import RecoveryError
from repro.faults.driver import GoldenRun
from repro.nvram.failure import CrashedState

#: Violation kinds the oracle reports.
V_MISSING_COMMITTED = "missing_committed"
V_LEAKED_UNCOMMITTED = "leaked_uncommitted"
V_WRONG_VALUE = "wrong_value"
V_LOG_BEFORE_DATA = "log_before_data"
V_RECOVERY_ERROR = "recovery_error"


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant at one crash point."""

    kind: str
    site: int
    site_class: str
    fault_model: str
    addr: Optional[int] = None
    fase: Optional[int] = None
    expected: object = None
    actual: object = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "site_class": self.site_class,
            "fault_model": self.fault_model,
            "addr": self.addr,
            "fase": self.fase,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
            "detail": self.detail,
        }


def expected_image_at(golden: GoldenRun, site: int) -> Dict[int, object]:
    """The FASE-protected portion of the image a crash at ``site`` must
    recover to: committed writes overlaid in commit order."""
    expected: Dict[int, object] = {}
    for uid in golden.committed_by(site):
        expected.update(golden.fases[uid].writes)
    return expected


def _scan_undo_entries(
    image: Dict[int, object], layout
) -> Set[Tuple[int, int]]:
    """All ``(fase_id, addr)`` undo records durable in ``image``."""
    entries: Set[Tuple[int, int]] = set()
    for region in layout.log_regions:
        for record in UndoLog.scan(image, region.base, region.size):
            if record.kind == KIND_UNDO:
                entries.add((record.fase_id, record.addr))
    return entries


def check_crash(
    golden: GoldenRun,
    site: int,
    state: CrashedState,
    layout=None,
) -> List[OracleViolation]:
    """Recover ``state`` and report every FASE-invariant violation.

    ``layout`` defaults to the golden run's (replays of one configuration
    share the region layout by construction).
    """
    if layout is None:
        layout = golden.layout
    site_class = golden.site_class(site)
    fault_model = state.fault_model
    violations: List[OracleViolation] = []

    # Invariant 3 first, on the untouched pre-recovery image: every
    # leaked in-flight value must have its undo record already durable.
    expected = expected_image_at(golden, site)
    committed = set(golden.committed_by(site))
    undo_entries = _scan_undo_entries(state.nvram, layout)
    for uid, record in golden.fases.items():
        if uid in committed or record.begin_site > site:
            continue  # committed, or not yet begun at the crash
        for addr, values in record.all_values.items():
            if addr in golden.unprotected:
                continue
            leaked = state.nvram.get(addr)
            if leaked is None or leaked not in values:
                continue
            if leaked == expected.get(addr):
                continue  # indistinguishable from the committed value
            if (uid, addr) not in undo_entries:
                violations.append(
                    OracleViolation(
                        kind=V_LOG_BEFORE_DATA,
                        site=site,
                        site_class=site_class,
                        fault_model=fault_model,
                        addr=addr,
                        fase=uid,
                        actual=leaked,
                        detail="in-flight value durable without its undo record",
                    )
                )

    try:
        report: RecoveryReport = recover(state, layout)
    except RecoveryError as exc:
        violations.append(
            OracleViolation(
                kind=V_RECOVERY_ERROR,
                site=site,
                site_class=site_class,
                fault_model=fault_model,
                detail=str(exc),
            )
        )
        return violations

    # Invariants 1 + 2: compare every FASE-protected address against the
    # committed overlay.  Unprotected addresses carry no guarantee.
    checked: Set[int] = set()
    for record in golden.fases.values():
        checked.update(record.writes)
    checked -= golden.unprotected
    for addr in sorted(checked):
        exp = expected.get(addr)
        act = report.nvram.get(addr)
        if exp == act:
            continue
        if exp is not None and act is None:
            kind = V_MISSING_COMMITTED
        elif exp is None and act is not None:
            kind = V_LEAKED_UNCOMMITTED
        else:
            kind = V_WRONG_VALUE
        violations.append(
            OracleViolation(
                kind=kind,
                site=site,
                site_class=site_class,
                fault_model=fault_model,
                addr=addr,
                expected=exp,
                actual=act,
            )
        )
    return violations
