"""Fault-injection campaigns: sites × fault models → verified/violated.

One campaign = one ``(workload, technique, threads)`` configuration.  A
golden replay enumerates the injectable sites and records FASE ground
truth; the :class:`~repro.faults.enumerator.CrashPointEnumerator` picks
the injection targets; each ``(site, fault_model)`` pair then replays to
the site, crashes, recovers, and is judged by the oracle.  Results fold
into a :class:`CrashMatrix` — the (crash-site-class × fault-model →
verified/violated) table the ``crashmatrix`` CLI artifact emits.

Replays are independent pure functions of the configuration, so they fan
out over the same fork-once
:class:`~repro.experiments.transport.WorkerPool` as experiment grid
cells (``--jobs``) — which also means campaigns ride the fleet telemetry
bus: pass ``telemetry=`` and every worker streams per-chunk claims and
per-crash progress (site class, violation verdict) live.  A finished
campaign memoizes whole into the PR-1 on-disk
:class:`~repro.experiments.cache.ResultCache` when the workload is
registry-named (anonymous workload objects have no stable fingerprint,
so they always recompute).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.faults.driver import AtlasReplayDriver, GoldenRun
from repro.faults.enumerator import CrashPointEnumerator
from repro.faults.oracle import check_crash
from repro.nvram.failure import FAULT_CLEAN, FAULT_MODELS, SITE_CLASSES
from repro.nvram.timing import DEFAULT_TIMING, TimingModel

#: Matrix serialization schema (bump on shape changes).
MATRIX_SCHEMA = 1


@dataclass(frozen=True)
class FaultCampaignSpec:
    """What to inject: fault models, site filter, sampling bounds."""

    fault_models: Tuple[str, ...] = (FAULT_CLEAN,)
    site_classes: Optional[Tuple[str, ...]] = None
    max_sites: int = 256
    sample_seed: int = 0
    fault_seed: int = 0
    jobs: int = 1

    def __post_init__(self) -> None:
        unknown = set(self.fault_models) - set(FAULT_MODELS)
        if unknown:
            raise ConfigurationError(
                f"unknown fault models {sorted(unknown)}; "
                f"expected among {FAULT_MODELS}"
            )
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")


@dataclass(frozen=True)
class _CampaignConfig:
    """Cache-key fingerprint of everything a campaign's result depends on."""

    workload: str
    scale: float
    technique: str
    threads: int
    seed: int
    timing: TimingModel
    l1_capacity_lines: int
    l1_ways: int
    fault_models: Tuple[str, ...]
    site_classes: Optional[Tuple[str, ...]]
    max_sites: int
    sample_seed: int
    fault_seed: int
    commit_before_drain: bool


@dataclass
class CrashMatrix:
    """Campaign verdicts, foldable to JSON and markdown."""

    workload: str
    technique: str
    threads: int
    seed: int
    total_sites: int
    exhaustive: bool
    fault_models: Tuple[str, ...]
    #: (site_class, fault_model) -> {"injected": n, "violated": n}
    cells: Dict[Tuple[str, str], Dict[str, int]] = field(default_factory=dict)
    violations: List[dict] = field(default_factory=list)

    @property
    def injected(self) -> int:
        """Total crash points injected across all fault models."""
        return sum(c["injected"] for c in self.cells.values())

    @property
    def ok(self) -> bool:
        """True when every injected crash recovered cleanly."""
        return not self.violations

    def record(self, site_class: str, fault_model: str, violations) -> None:
        cell = self.cells.setdefault(
            (site_class, fault_model), {"injected": 0, "violated": 0}
        )
        cell["injected"] += 1
        if violations:
            cell["violated"] += 1
            self.violations.extend(v.to_dict() for v in violations)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": MATRIX_SCHEMA,
            "workload": self.workload,
            "technique": self.technique,
            "threads": self.threads,
            "seed": self.seed,
            "total_sites": self.total_sites,
            "exhaustive": self.exhaustive,
            "fault_models": list(self.fault_models),
            "cells": {
                f"{cls}/{model}": dict(stats)
                for (cls, model), stats in sorted(self.cells.items())
            },
            "violations": list(self.violations),
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrashMatrix":
        if data.get("schema") != MATRIX_SCHEMA:
            raise ConfigurationError(
                f"crash matrix schema {data.get('schema')!r} != {MATRIX_SCHEMA}"
            )
        matrix = cls(
            workload=data["workload"],
            technique=data["technique"],
            threads=data["threads"],
            seed=data["seed"],
            total_sites=data["total_sites"],
            exhaustive=data["exhaustive"],
            fault_models=tuple(data["fault_models"]),
            violations=list(data["violations"]),
        )
        for key, stats in data["cells"].items():
            cls_name, model = key.split("/", 1)
            matrix.cells[(cls_name, model)] = dict(stats)
        return matrix

    def to_markdown(self) -> str:
        """A site-class × fault-model verdict table."""
        models = list(self.fault_models)
        lines = [
            f"### crashmatrix: {self.workload} × {self.technique} "
            f"({self.threads} thread{'s' if self.threads != 1 else ''}, "
            f"{'exhaustive' if self.exhaustive else 'sampled'}, "
            f"{self.total_sites} sites)",
            "",
            "| crash-site class | " + " | ".join(models) + " |",
            "|---" * (len(models) + 1) + "|",
        ]
        classes = [c for c in SITE_CLASSES if any(k[0] == c for k in self.cells)]
        for cls_name in classes:
            row = [cls_name]
            for model in models:
                stats = self.cells.get((cls_name, model))
                if stats is None:
                    row.append("—")
                elif stats["violated"]:
                    row.append(
                        f"**VIOLATED** {stats['violated']}/{stats['injected']}"
                    )
                else:
                    row.append(f"verified {stats['injected']}/{stats['injected']}")
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        lines.append(
            "zero violations" if self.ok else f"{len(self.violations)} violation(s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker entry point (the pool's "crash" task handler body)
# ---------------------------------------------------------------------------


def execute_crash_chunk(
    state: Dict[str, object],
    payload: Tuple[dict, object, GoldenRun, List[Tuple[int, str, int]]],
    emitter=None,
) -> List[Tuple[int, str, List[dict]]]:
    """Inject one chunk of ``(site, fault_model, fault_seed)`` crashes.

    Runs inside a :class:`~repro.experiments.transport.WorkerPool`
    worker (dispatched by the ``"crash"`` handler in
    :func:`repro.experiments.parallel.make_task_handlers`).  ``state``
    is the worker's lifetime dict: the replay driver — whose
    construction re-materializes the workload's event streams — is built
    once per (workload, config) and reused across every chunk the worker
    pulls, the same fork-once amortization grid cells get.  The golden
    run ships from the parent, so workers never repeat the crash-free
    replay.

    ``emitter``, when the pool carries fleet telemetry, streams one
    ``task_progress`` event per injected crash with the site class and
    violation verdict — the campaign monitor's live feed.
    """
    driver_kwargs, workload, golden, jobs = payload
    key = "crash_driver:{}:{}".format(
        getattr(workload, "name", type(workload).__name__),
        repr(sorted(driver_kwargs.items())),
    )
    driver = state.get(key)
    if driver is None:
        driver = AtlasReplayDriver(workload, **driver_kwargs)
        state[key] = driver
    out: List[Tuple[int, str, List[dict]]] = []
    for site, model, fseed in jobs:
        crash_state, layout = driver.crash_at(
            site, fault_model=model, fault_seed=fseed
        )
        violations = check_crash(golden, site, crash_state, layout)
        out.append((site, model, [v.to_dict() for v in violations]))
        if emitter is not None:
            emitter.task_progress(
                {
                    "site": site,
                    "model": model,
                    "site_class": golden.site_class(site),
                    "violated": bool(violations),
                }
            )
    return out


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


def run_campaign(
    workload: object,
    *,
    technique: str = "SC",
    threads: int = 1,
    seed: int = 0,
    scale: float = 1.0,
    spec: Optional[FaultCampaignSpec] = None,
    timing: TimingModel = DEFAULT_TIMING,
    l1_capacity_lines: int = 512,
    l1_ways: int = 8,
    technique_options: Optional[dict] = None,
    commit_before_drain: bool = False,
    cache_dir: Optional[str] = None,
    recorder: Optional[object] = None,
    metrics: Optional[object] = None,
    progress=None,
    telemetry=None,
) -> CrashMatrix:
    """Run one fault-injection campaign; see the module docstring.

    ``workload`` is a registry name (resolved with ``scale``) or a
    :class:`~repro.workloads.base.Workload` instance.  A workload that
    cannot partition over ``threads`` runs single-threaded instead —
    the hash benchmark, for one, is single-threaded by construction.
    ``progress(done, total)`` is called after every injected crash; a
    callback declaring a third parameter also receives a per-crash info
    dict (``site``/``model``/``site_class``/``violated``).

    ``recorder``/``metrics`` attach the observability layer to the
    replays this process performs (the golden run, plus every crash
    replay when ``spec.jobs == 1``; worker processes never ship their
    observability home).  A campaign served whole from the on-disk
    cache performs no replays at all, so both stay empty then.

    ``telemetry`` (:class:`repro.obs.fleet.FleetTelemetry`) attaches the
    fleet bus to the parallel fan-out (``spec.jobs > 1``): workers
    stream per-chunk claims and per-crash site-class/violation progress,
    and a configured span path gets the deterministic chunk-schedule
    timeline.  The sequential path has no fleet and ignores it.
    """
    spec = spec or FaultCampaignSpec()
    # One parser for every entry point: reject bad specs up front and
    # canonicalize (``SC+clean`` == ``SC+clean:4``) so the campaign
    # cache key and the reported matrix agree on the spec's spelling.
    from repro.cache.spec import TechniqueSpec

    technique = str(TechniqueSpec.parse(technique))
    if isinstance(workload, str):
        from repro.workloads.registry import get_workload

        name = workload
        workload = get_workload(name, scale=scale)
    else:
        name = getattr(workload, "name", type(workload).__name__)
    if threads > 1 and not workload.supports_threads(threads):
        threads = 1

    started = time.monotonic()
    config = _CampaignConfig(
        workload=name if isinstance(name, str) else str(name),
        scale=scale,
        technique=technique,
        threads=threads,
        seed=seed,
        timing=timing,
        l1_capacity_lines=l1_capacity_lines,
        l1_ways=l1_ways,
        fault_models=tuple(spec.fault_models),
        site_classes=spec.site_classes,
        max_sites=spec.max_sites,
        sample_seed=spec.sample_seed,
        fault_seed=spec.fault_seed,
        commit_before_drain=commit_before_drain,
    )
    cache = None
    cache_key = None
    if cache_dir is not None and isinstance(name, str):
        cache = ResultCache(cache_dir)
        cache_key = ResultCache.key(config, "crashmatrix")
        data = cache.get(cache_key)
        if data is not None:
            try:
                matrix = CrashMatrix.from_dict(data)
            except ConfigurationError:
                pass  # stale schema: recompute and overwrite
            else:
                _record_campaign(
                    config, matrix, time.monotonic() - started, cached=True
                )
                return matrix

    driver_kwargs = dict(
        technique=technique,
        num_threads=threads,
        seed=seed,
        timing=timing,
        l1_capacity_lines=l1_capacity_lines,
        l1_ways=l1_ways,
        technique_options=technique_options,
        commit_before_drain=commit_before_drain,
    )
    driver = AtlasReplayDriver(
        workload, recorder=recorder, metrics=metrics, **driver_kwargs
    )
    golden = driver.golden()
    enumerator = CrashPointEnumerator(
        golden.sites,
        max_sites=spec.max_sites,
        sample_seed=spec.sample_seed,
        site_classes=spec.site_classes,
    )
    targets = enumerator.select()
    jobs = [
        (site[0], model, spec.fault_seed + site[0])
        for model in spec.fault_models
        for site in targets
    ]

    matrix = CrashMatrix(
        workload=name,
        technique=technique,
        threads=threads,
        seed=seed,
        total_sites=len(golden.sites),
        exhaustive=enumerator.exhaustive,
        fault_models=tuple(spec.fault_models),
    )

    if progress is not None:
        from repro.obs.live import progress_arity

        # Legacy callbacks take (done, total); richer ones declare a
        # third parameter and also get {site, model, site_class,
        # violated} per injected crash — the live monitor's feed.
        if progress_arity(progress) >= 3:
            notify = progress
        else:
            notify = lambda done, total, info: progress(done, total)
    else:
        notify = None

    done = 0
    if spec.jobs > 1 and len(jobs) > 1:
        from repro.experiments.transport import WorkerPool

        chunks: List[List[Tuple[int, str, int]]] = [
            jobs[i :: spec.jobs * 2] for i in range(spec.jobs * 2)
        ]
        chunks = [c for c in chunks if c]
        plan = None
        if telemetry is not None:
            from repro.obs.spans import SchedulePlan

            # Chunk sizes and order are deterministic (pure striding of
            # the enumerator's selection), so the plan — and hence the
            # span export — is a pure function of the campaign config.
            plan = SchedulePlan()
            for i, chunk in enumerate(chunks):
                uid = f"crash:{i}"
                plan.add(uid, "crash", f"crash:{name}#{i}×{len(chunk)}")
                plan.set_cost(uid, len(chunk))
            if telemetry.aggregator.tasks_total is None:
                telemetry.aggregator.tasks_total = len(chunks)
        collected = []
        with WorkerPool(spec.jobs, (None, None), telemetry=telemetry) as pool:
            for chunk in chunks:
                pool.submit("crash", (driver_kwargs, workload, golden, chunk))
            while pool.outstanding:
                _task_id, replies = pool.next_result()
                for site, model, viols in replies:
                    collected.append((site, model, viols))
                    done += 1
                    if notify is not None:
                        notify(
                            done,
                            len(jobs),
                            {
                                "site": site,
                                "model": model,
                                "site_class": golden.site_class(site),
                                "violated": bool(viols),
                            },
                        )
        if plan is not None:
            telemetry.export_spans(plan, spec.jobs)
        # Fold in deterministic order regardless of completion order.
        for site, model, viols in sorted(collected, key=lambda r: (r[1], r[0])):
            matrix.cells.setdefault(
                (golden.site_class(site), model), {"injected": 0, "violated": 0}
            )
            cell = matrix.cells[(golden.site_class(site), model)]
            cell["injected"] += 1
            if viols:
                cell["violated"] += 1
                matrix.violations.extend(viols)
    else:
        for site, model, fseed in jobs:
            state, layout = driver.crash_at(site, fault_model=model, fault_seed=fseed)
            violations = check_crash(golden, site, state, layout)
            matrix.record(golden.site_class(site), model, violations)
            done += 1
            if notify is not None:
                notify(
                    done,
                    len(jobs),
                    {
                        "site": site,
                        "model": model,
                        "site_class": golden.site_class(site),
                        "violated": bool(violations),
                    },
                )

    if cache is not None and cache_key is not None:
        cache.put(cache_key, matrix.to_dict())
    _record_campaign(config, matrix, time.monotonic() - started, cached=False)
    return matrix


def _record_campaign(
    config: _CampaignConfig,
    matrix: CrashMatrix,
    wall_s: float,
    *,
    cached: bool,
) -> None:
    """One ``campaign`` ledger record per :func:`run_campaign` call.

    The spec is the campaign's cache-key fingerprint (everything the
    verdicts depend on), so ``history flaky`` can detect a spec whose
    recorded outcomes disagree across sessions.  A cache-served matrix
    records too — it is still a run that happened — flagged in
    ``extra`` so overhead analysis can tell replays from lookups.
    """
    from repro.obs.ledger import record_run

    spec_dict = dataclasses.asdict(config)
    spec_dict["fault_models"] = list(config.fault_models)
    spec_dict["site_classes"] = (
        list(config.site_classes) if config.site_classes is not None else None
    )
    record_run(
        "campaign",
        spec_dict,
        {
            "injected": int(matrix.injected),
            "violated": len(matrix.violations),
            "total_sites": int(matrix.total_sites),
            "exhaustive": bool(matrix.exhaustive),
            "ok": bool(matrix.ok),
        },
        wall_s=wall_s,
        extra={"cached": cached},
    )
