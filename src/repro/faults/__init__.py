"""Deterministic fault-injection campaigns with a recovery oracle.

The package answers one question systematically: *does FASE atomicity
survive a power failure at every point the implementation could crash?*

- :mod:`repro.faults.driver` — Atlas-semantics replay of a workload,
  crashable at any enumerated site (golden run + per-site replays);
- :mod:`repro.faults.enumerator` — exhaustive or seeded-strided
  selection of injection targets;
- :mod:`repro.faults.oracle` — judges each recovered image against the
  golden run's FASE ground truth (committed-present, uncommitted-absent,
  log-before-data);
- :mod:`repro.faults.campaign` — fans the sweep out over worker
  processes and folds verdicts into a :class:`CrashMatrix`.
"""

from repro.faults.campaign import (
    CrashMatrix,
    FaultCampaignSpec,
    run_campaign,
)
from repro.faults.driver import AtlasReplayDriver, FaseRecord, GoldenRun
from repro.faults.enumerator import CrashPointEnumerator
from repro.faults.oracle import OracleViolation, check_crash, expected_image_at

__all__ = [
    "AtlasReplayDriver",
    "CrashMatrix",
    "CrashPointEnumerator",
    "FaseRecord",
    "FaultCampaignSpec",
    "GoldenRun",
    "OracleViolation",
    "check_crash",
    "expected_image_at",
    "run_campaign",
]
