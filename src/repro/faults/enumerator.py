"""Choosing which crash sites to inject: exhaustive or seeded-strided.

Small runs are swept exhaustively — every enumerated site gets a crash.
Past ``max_sites`` the enumerator falls back to deterministic sampling
that still guarantees class coverage: within each site class it always
keeps the first and last occurrence (the boundary cases recovery bugs
love) and fills the rest of the class's proportional quota with a
strided walk whose phase is seeded — so two campaigns with the same seed
pick the same sites (pinned by a regression test), while different seeds
explore different phases of the run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.nvram.failure import SITE_CLASSES

#: One enumerated site: (index, site_class, thread_id, cycles).
Site = Tuple[int, str, int, int]


class CrashPointEnumerator:
    """Select injection targets from a golden run's site list."""

    def __init__(
        self,
        sites: Sequence[Site],
        *,
        max_sites: int = 256,
        sample_seed: int = 0,
        site_classes: Optional[Sequence[str]] = None,
    ) -> None:
        if max_sites < 1:
            raise ConfigurationError("max_sites must be >= 1")
        if site_classes is not None:
            unknown = set(site_classes) - set(SITE_CLASSES)
            if unknown:
                raise ConfigurationError(
                    f"unknown site classes {sorted(unknown)}; "
                    f"expected among {SITE_CLASSES}"
                )
        self.sites = list(sites)
        self.max_sites = max_sites
        self.sample_seed = sample_seed
        self.site_classes = tuple(site_classes) if site_classes else None

    def _pool(self) -> List[Site]:
        if self.site_classes is None:
            return self.sites
        wanted = set(self.site_classes)
        return [s for s in self.sites if s[1] in wanted]

    @property
    def exhaustive(self) -> bool:
        """Whether every eligible site will be injected."""
        return len(self._pool()) <= self.max_sites

    def select(self) -> List[Site]:
        """The sites to inject, in site-index order."""
        pool = self._pool()
        if len(pool) <= self.max_sites:
            return pool

        by_class: Dict[str, List[Site]] = {}
        for site in pool:
            by_class.setdefault(site[1], []).append(site)

        # Proportional quotas, every non-empty class guaranteed >= 2
        # (its first and last site), remainder to the largest classes.
        classes = sorted(by_class)  # deterministic iteration order
        quotas: Dict[str, int] = {}
        for cls in classes:
            share = self.max_sites * len(by_class[cls]) // len(pool)
            quotas[cls] = max(2, min(share, len(by_class[cls])))
        # Trim overshoot from the biggest quotas first.
        excess = sum(quotas.values()) - self.max_sites
        while excess > 0:
            cls = max(classes, key=lambda c: quotas[c])
            if quotas[cls] <= 2:
                break
            quotas[cls] -= 1
            excess -= 1

        rng = random.Random(self.sample_seed)
        picked: Dict[int, Site] = {}
        for cls in classes:
            members = by_class[cls]
            quota = quotas[cls]
            chosen = {0, len(members) - 1}
            interior = quota - len(chosen)
            if interior > 0 and len(members) > 2:
                stride = (len(members) - 2) / (interior + 1)
                phase = rng.random()  # seeded: one draw per class
                for k in range(interior):
                    pos = 1 + int((k + phase) * stride)
                    chosen.add(min(pos, len(members) - 2))
            for pos in chosen:
                site = members[pos]
                picked[site[0]] = site
        return [picked[idx] for idx in sorted(picked)]
