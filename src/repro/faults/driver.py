"""Deterministic Atlas replay of workload event streams, crashable anywhere.

The fault-injection campaign needs to execute a workload *with full Atlas
semantics* — undo logging, data-drain-before-commit ordering, per-thread
software caches — and to do so twice over: once crash-free while
recording every injectable site plus the ground-truth FASE bookkeeping
(the **golden run**), then once per crash plan, stopping dead at one
site.  :class:`AtlasReplayDriver` is that executor.

It is deliberately *not* ``Machine.run``: the stream path routes stores
through the persistence technique only, while fault injection needs each
in-FASE store to pass through :class:`~repro.atlas.runtime.AtlasRuntime`
so old values are undo-logged first.  The driver therefore replays the
workload's per-thread event streams through one runtime per thread over
a shared value-tracking machine, interleaved with the same
smallest-cycle-first, ``SCHED_BATCH``-quantum scheduling the machine
uses — so a replay is bit-deterministic and every replay of one
configuration visits the identical global site sequence, which is what
makes ``CrashPlan(at_site=k)`` meaningful.

Address plumbing: workload allocators hand out addresses from
``NVRAM_BASE`` up — the same space the Atlas region manager carves log
regions from.  The driver reserves a ``__replay_data`` region *after*
the per-thread log regions and shifts every persistent workload address
into it (a constant, line-aligned offset), so data and log never
collide.  All golden bookkeeping and oracle checks speak shifted
addresses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.atlas.region import RegionManager
from repro.atlas.runtime import AtlasLayout, AtlasRuntime
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import EventKind
from repro.common.geometry import CACHE_LINE_SIZE
from repro.nvram.failure import CrashedState, CrashPlan, PowerFailure
from repro.nvram.machine import SCHED_BATCH, Machine, MachineConfig
from repro.nvram.memory import NVRAM_BASE
from repro.nvram.timing import DEFAULT_TIMING, TimingModel

#: Address space reserved for shifted workload data.  Simulated NVRAM is
#: a dict, so the reservation costs nothing; it only has to exceed any
#: workload's address span.
DATA_REGION_SIZE = 256 * 1024 * 1024


@dataclass
class FaseRecord:
    """Ground truth about one outermost FASE from the golden run."""

    uid: int
    thread_id: int
    begin_site: int                 # sites completed before the FASE began
    commit_site: Optional[int] = None   # site index of the commit flush
    #: Last value written per (shifted) address inside the FASE.
    writes: Dict[int, object] = field(default_factory=dict)
    #: Every value written per address (torn crashes can leak any of them).
    all_values: Dict[int, Set[object]] = field(default_factory=dict)


@dataclass
class GoldenRun:
    """Everything the oracle needs from one crash-free replay."""

    #: Injectable sites: (index, site_class, thread_id, cycles).
    sites: List[Tuple[int, str, int, int]]
    fases: Dict[int, FaseRecord]
    commit_order: List[int]         # FASE uids in commit completion order
    #: Persistent (shifted) addresses ever stored *outside* any FASE —
    #: unprotected by atomicity, so the oracle must not judge them.
    unprotected: Set[int]
    final_nvram: Dict[int, object]
    layout: AtlasLayout

    def committed_by(self, site: int) -> List[int]:
        """Uids of FASEs whose commit record was durable by ``site``,
        in commit order (crash-at-``site`` means site ``site`` completed)."""
        return [
            uid
            for uid in self.commit_order
            if self.fases[uid].commit_site <= site
        ]

    def site_class(self, site: int) -> str:
        return self.sites[site][1]


class AtlasReplayDriver:
    """Replays one workload configuration; see the module docstring.

    ``commit_before_drain`` deliberately breaks the Atlas write ordering
    (commit record flushed *before* the FASE's data drains) — the
    negative-control knob the campaign's self-test uses to prove the
    oracle actually detects ordering violations.
    """

    def __init__(
        self,
        workload: object,
        *,
        technique: str = "SC",
        num_threads: int = 1,
        seed: int = 0,
        timing: TimingModel = DEFAULT_TIMING,
        l1_capacity_lines: int = 512,
        l1_ways: int = 8,
        technique_options: Optional[Dict[str, object]] = None,
        commit_before_drain: bool = False,
        recorder: Optional[object] = None,
        metrics: Optional[object] = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        self.workload = workload
        self.technique = technique
        self.num_threads = num_threads
        self.seed = seed
        self.timing = timing
        self.l1_capacity_lines = l1_capacity_lines
        self.l1_ways = l1_ways
        self.technique_options = dict(technique_options or {})
        self.commit_before_drain = commit_before_drain
        self.recorder = recorder
        self.metrics = metrics
        self._events: Optional[List[List[object]]] = None

    # ------------------------------------------------------------------

    def _materialized_events(self) -> List[List[object]]:
        """Per-thread event lists, materialized once and replayed many
        times (generators cannot be rewound; lists can)."""
        if self._events is None:
            streams = self.workload.streams(self.num_threads, self.seed)
            if len(streams) != self.num_threads:
                raise SimulationError(
                    f"workload produced {len(streams)} streams for "
                    f"{self.num_threads} threads"
                )
            self._events = [list(s) for s in streams]
        return self._events

    def _build(self) -> Tuple[Machine, List[AtlasRuntime], int]:
        """A fresh machine + per-thread runtimes + the data-address shift.

        Every replay rebuilds from scratch so state never leaks between
        crash plans; construction is deterministic, so the region layout
        — and with it the shift — is identical across replays.
        """
        machine = Machine(
            MachineConfig(
                timing=self.timing,
                l1_capacity_lines=self.l1_capacity_lines,
                l1_ways=self.l1_ways,
                track_values=True,
            ),
            recorder=self.recorder,
            metrics=self.metrics,
        )
        regions = RegionManager()
        runtimes = [
            AtlasRuntime.for_machine(
                machine, regions, self.technique, tid, **self.technique_options
            )
            for tid in range(self.num_threads)
        ]
        data_region = regions.find_or_create("__replay_data", DATA_REGION_SIZE)
        # First line of a region holds the root slot; region bases are
        # line-aligned, so the shift preserves line geometry exactly.
        shift = data_region.base + CACHE_LINE_SIZE - NVRAM_BASE
        return machine, runtimes, shift

    # ------------------------------------------------------------------

    def _replay(
        self,
        machine: Machine,
        runtimes: List[AtlasRuntime],
        shift: int,
        golden: Optional[GoldenRun],
    ) -> None:
        """Drive all threads to completion (or let PowerFailure escape).

        With ``golden`` given, records FASE ground truth as it executes.
        """
        events = self._materialized_events()
        positions = [0] * self.num_threads
        open_fases: List[Optional[FaseRecord]] = [None] * self.num_threads
        kind_store = EventKind.STORE
        kind_load = EventKind.LOAD
        kind_work = EventKind.WORK
        kind_begin = EventKind.FASE_BEGIN
        nvram_base = NVRAM_BASE
        sampling = machine.metrics is not None
        heap: List[Tuple[int, int]] = [(0, tid) for tid in range(self.num_threads)]
        heapq.heapify(heap)
        while heap:
            _, tid = heapq.heappop(heap)
            rt = runtimes[tid]
            stream = events[tid]
            pos = positions[tid]
            end = min(pos + SCHED_BATCH, len(stream))
            while pos < end:
                ev = stream[pos]
                pos += 1
                kind = ev.kind
                if kind == kind_store:
                    addr = ev.addr
                    if addr >= nvram_base:
                        addr += shift
                        rt.store(addr, ev.size, ev.value)
                        if golden is not None:
                            record = open_fases[tid]
                            if record is not None:
                                record.writes[addr] = ev.value
                                record.all_values.setdefault(addr, set()).add(
                                    ev.value
                                )
                            else:
                                golden.unprotected.add(addr)
                    else:
                        rt.session.store(addr, ev.size, ev.value)
                elif kind == kind_work:
                    rt.work(ev.amount)
                elif kind == kind_load:
                    addr = ev.addr
                    rt.load(addr + shift if addr >= nvram_base else addr, ev.size)
                elif kind == kind_begin:
                    rt.fases.begin()
                    if rt.fases.depth == 1:
                        rt.log.on_fase_begin()
                        if golden is not None:
                            record = FaseRecord(
                                uid=rt.fases.current_id,
                                thread_id=tid,
                                begin_site=machine.sites_seen,
                            )
                            golden.fases[record.uid] = record
                            open_fases[tid] = record
                else:  # FASE_END
                    if rt.fases.depth == 1:
                        uid = rt.fases.current_id
                        if self.commit_before_drain:
                            # Broken ordering (negative control): the
                            # commit record becomes durable while the
                            # FASE's data still sits in volatile caches.
                            rt.log.commit(uid)
                            commit_site = machine.sites_seen - 1
                            rt.fases.end()
                        else:
                            # Atlas ordering: drain data, then commit.
                            rt.fases.end()
                            rt.log.commit(uid)
                            commit_site = machine.sites_seen - 1
                        if golden is not None:
                            golden.fases[uid].commit_site = commit_site
                            golden.commit_order.append(uid)
                            open_fases[tid] = None
                    else:
                        rt.fases.end()
            positions[tid] = pos
            # Sessions have no Machine.run scheduler loop, so the replay
            # fires the technique's quantum hook (background cleaning)
            # at its own quantum boundaries — cleaning stages stay live
            # under crash campaigns, and a PowerFailure from an armed
            # clean flush escapes exactly like one from a store.
            rt.session.on_quantum()
            if sampling:
                # Same for the metrics sampling boundary.
                rt.session.sample_metrics()
            if pos < len(stream):
                heapq.heappush(heap, (rt.stats.cycles, tid))
            else:
                rt.finish()
                if sampling:
                    rt.session.record_final_metrics()

    # ------------------------------------------------------------------

    def golden(self) -> GoldenRun:
        """One crash-free replay recording sites and FASE ground truth."""
        machine, runtimes, shift = self._build()
        sites = machine.record_sites()
        golden = GoldenRun(
            sites=sites,
            fases={},
            commit_order=[],
            unprotected=set(),
            final_nvram={},
            layout=runtimes[0].layout(),
        )
        self._replay(machine, runtimes, shift, golden)
        golden.final_nvram = machine.memory.nvram_snapshot()
        return golden

    def crash_at(
        self,
        site: int,
        fault_model: str = "clean",
        fault_seed: int = 0,
    ) -> Tuple[CrashedState, AtlasLayout]:
        """Replay until site ``site`` completes, then fail the power.

        Returns the (fault-mutated) durable image and the layout recovery
        needs.  Raises :class:`~repro.common.errors.SimulationError` if
        the site never fires (index out of this configuration's range).
        """
        machine, runtimes, shift = self._build()
        machine.arm_crash_plan(
            CrashPlan(at_site=site, fault_model=fault_model, fault_seed=fault_seed)
        )
        try:
            self._replay(machine, runtimes, shift, golden=None)
        except PowerFailure:
            pass
        state = machine.crashed_state
        if state is None:
            raise SimulationError(
                f"crash site {site} never fired (run has fewer sites)"
            )
        return state, runtimes[0].layout()
