"""The FASE-semantics correction (§III-B, "Adaptation to FASE Semantics").

FASE semantics invalidate all data reuses across a FASE boundary: the
software cache is drained when a FASE ends, so a write in the next FASE to
the same line cannot be combined, no matter how large the cache is.  The
paper's example: under ``ab|ab|ab…`` every write is a miss, although the
un-annotated trace ``ababab…`` has a perfect hit ratio at size 2.

The fix is applied to the *trace*, not the cache: "We modify a write trace
so the writes from different FASEs use completely different addresses" —
``ab|ab|ab`` becomes ``abcdef`` before locality analysis.  Renaming (rather
than clearing a simulated cache) is required because the MRC must be known
for *all* cache sizes at once.
"""

from __future__ import annotations

import numpy as np

from repro.locality.trace import WriteTrace


def rename_for_fases(trace: WriteTrace) -> WriteTrace:
    """Return a trace where each (line, FASE) pair is a fresh address.

    Writes outside any FASE (fase id ``-1``) form their own shared region:
    they are never drained by a FASE end, so reuses among them remain
    combinable and they keep a single renamed id per line.

    The renaming is dense and deterministic: renamed ids are
    ``fase_code * m + line_code`` with both codes dense from
    :func:`numpy.unique`, so two runs over the same trace agree.
    """
    lines = trace.lines
    fids = trace.fase_ids
    if len(lines) == 0:
        return WriteTrace(lines.copy(), fids.copy())
    _, line_code = np.unique(lines, return_inverse=True)
    _, fase_code = np.unique(fids, return_inverse=True)
    m = int(line_code.max()) + 1
    renamed = fase_code.astype(np.int64) * m + line_code.astype(np.int64)
    return WriteTrace(renamed, fids.copy())
