"""Write-trace persistence and import.

Makes the locality toolkit usable on traces from outside the simulator:
save/load the compact binary form (``.npz``), or import a plain-text
trace — one access per line, ``address [fase_id]``, addresses decimal or
``0x``-hex, ``#`` comments — as produced by e.g. a Pin tool or a
hand-instrumented run.

``python -m repro.locality <trace-file>`` runs the full analysis
pipeline (reuse, MRC, knee selection, stack-distance cross-check) on
any such file.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.geometry import line_of
from repro.locality.knee import SelectionPolicy, find_knees, select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.locality.stack_distance import average_stack_distance, exact_mrc
from repro.locality.trace import WriteTrace


def save_trace(trace: WriteTrace, path: str) -> None:
    """Store a trace as a compressed ``.npz`` file."""
    np.savez_compressed(path, lines=trace.lines, fase_ids=trace.fase_ids)


def load_trace(path: str) -> WriteTrace:
    """Load a trace saved by :func:`save_trace`."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no trace file at {path!r}")
    with np.load(path) as data:
        if "lines" not in data:
            raise ConfigurationError(f"{path!r} is not a saved trace")
        return WriteTrace(data["lines"], data["fase_ids"])


def load_text_trace(path: str, addresses_are_lines: bool = False) -> WriteTrace:
    """Import a plain-text trace (``address [fase_id]`` per line).

    Byte addresses are mapped to cache lines unless
    ``addresses_are_lines`` says they already are line ids.  Missing
    fase ids default to one whole-trace FASE (id 0).
    """
    lines = []
    fids = []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            parts = text.split()
            if len(parts) > 2:
                raise ConfigurationError(
                    f"{path}:{lineno}: expected 'address [fase_id]', got {raw!r}"
                )
            try:
                addr = int(parts[0], 0)
                fid = int(parts[1], 0) if len(parts) == 2 else 0
            except ValueError as exc:
                raise ConfigurationError(f"{path}:{lineno}: {exc}") from exc
            lines.append(addr if addresses_are_lines else line_of(addr))
            fids.append(fid)
    if not lines:
        raise ConfigurationError(f"{path!r} contains no accesses")
    return WriteTrace(
        np.asarray(lines, dtype=np.int64), np.asarray(fids, dtype=np.int64)
    )


def analyze(
    trace: WriteTrace,
    policy: Optional[SelectionPolicy] = None,
    honor_fases: bool = True,
) -> Dict[str, object]:
    """The full paper pipeline on one trace, as a summary dict.

    Keys: basic statistics, the timescale-MRC selection (knee sizes,
    selected size, miss ratios at the selected size from both the
    linear-time theory and the exact stack-distance curve), and the mean
    stack distance.
    """
    if trace.n == 0:
        raise ConfigurationError("cannot analyse an empty trace")
    policy = policy or SelectionPolicy()
    mrc = mrc_from_trace(trace, honor_fases=honor_fases)
    exact = exact_mrc(trace, honor_fases=honor_fases)
    selected = select_cache_size(mrc, policy)
    return {
        "n": trace.n,
        "distinct_lines": trace.m,
        "fases": trace.num_fases,
        "selected_size": selected,
        "candidate_knees": [k.size for k in find_knees(mrc, policy)],
        "miss_ratio_at_selected": mrc.miss_ratio(selected),
        "exact_miss_ratio_at_selected": exact.miss_ratio(selected),
        "miss_ratio_at_default": mrc.miss_ratio(policy.default_size),
        "mean_stack_distance": average_stack_distance(
            trace, honor_fases=honor_fases
        ),
    }


def format_analysis(summary: Dict[str, object]) -> str:
    """Human-readable rendering of an :func:`analyze` summary."""
    lines = [
        f"accesses            : {summary['n']}",
        f"distinct lines      : {summary['distinct_lines']}",
        f"FASEs               : {summary['fases']}",
        f"candidate knees     : {summary['candidate_knees']}",
        f"selected cache size : {summary['selected_size']}",
        f"miss ratio @selected: {summary['miss_ratio_at_selected']:.5f} "
        f"(exact LRU: {summary['exact_miss_ratio_at_selected']:.5f})",
        f"miss ratio @default : {summary['miss_ratio_at_default']:.5f}",
    ]
    msd = summary["mean_stack_distance"]
    lines.append(
        "mean stack distance : "
        + ("inf (no reuse)" if msd == float("inf") else f"{msd:.2f}")
    )
    return "\n".join(lines)
