"""Classical LRU stack distance (Mattson et al. [34]) — access locality.

The paper contrasts two locality theories (§III-A): *access locality*
(reuse/stack distance — exact, but "costly to measure, especially online")
and *timescale locality* (footprint/reuse — approximate via the
reuse-window hypothesis, but linear time).  This module supplies the
access-locality side:

- :func:`stack_distances` computes every access's LRU stack distance —
  the number of distinct data touched since the previous access to the
  same datum — in O(n log n) with a Fenwick tree (the standard
  efficiency baseline the paper's related work starts from);
- :func:`exact_mrc` turns the distance histogram into the *exact* LRU
  miss ratio curve at every size in one pass (a miss at capacity ``c``
  iff the distance exceeds ``c``; cold accesses always miss).

Together they quantify the paper's central conversion claim: the
linear-time timescale MRC approximates this exact curve wherever the
reuse-window hypothesis holds.  The test suite pins ``exact_mrc`` to
per-size LRU simulation (they must agree *exactly* — stack distance is
not an approximation) and then measures the timescale curve against it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.mrc import MissRatioCurve
from repro.locality.trace import WriteTrace

#: Distance assigned to cold (first-ever) accesses.
COLD = np.iinfo(np.int64).max


class _Fenwick:
    """A Fenwick (binary indexed) tree over positions 1..n."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        tree = self.tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        tree = self.tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over positions ``lo..hi`` inclusive."""
        if hi < lo:
            return 0
        return self.prefix(hi) - self.prefix(lo - 1)


def stack_distances(
    trace: WriteTrace, honor_fases: bool = True
) -> np.ndarray:
    """Per-access LRU stack distances (cold accesses get :data:`COLD`).

    The distance of access ``t`` to datum ``x`` is the number of
    *distinct* data accessed in the open interval since ``x``'s previous
    access — exactly the minimum LRU capacity at which access ``t`` hits.
    With ``honor_fases`` the §III-B renaming is applied first, so a
    FASE-drained write cache's behaviour is measured.
    """
    from repro.locality.fase_transform import rename_for_fases

    if honor_fases:
        trace = rename_for_fases(trace)
    ids = trace.dense_ids()
    n = len(ids)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    # Standard trick: keep a 1 at each datum's *latest* access position;
    # the number of distinct data since x's previous access at p is the
    # count of ones in (p, t).
    fen = _Fenwick(n)
    last = {}
    for t in range(n):
        x = int(ids[t])
        p = last.get(x)
        if p is not None:
            out[t] = fen.range_sum(p + 2, t)   # positions are 1-based
            fen.add(p + 1, -1)
        fen.add(t + 1, 1)
        last[x] = t
    return out


def distance_histogram(distances: np.ndarray) -> np.ndarray:
    """Histogram of finite stack distances (index = distance)."""
    finite = distances[distances != COLD]
    if len(finite) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(finite).astype(np.int64)


def exact_mrc(
    trace: WriteTrace,
    honor_fases: bool = True,
    max_size: Optional[int] = None,
) -> MissRatioCurve:
    """The exact LRU miss ratio curve from stack distances.

    ``mr(c) = (#cold + #{distance >= c}) / n`` — a hit needs capacity
    strictly greater than the distance (the datum sits at stack depth
    ``distance + 1``).  Cold accesses miss at every size.
    """
    n = trace.n
    if n == 0:
        raise ConfigurationError("cannot analyse an empty trace")
    dists = stack_distances(trace, honor_fases=honor_fases)
    hist = distance_histogram(dists)
    cold = int(np.sum(dists == COLD))
    limit = max_size if max_size is not None else len(hist)
    limit = max(1, limit)
    # hits_at[c] = accesses with distance < c  (hit at capacity c).
    cum = np.cumsum(hist)
    sizes = np.arange(0, limit + 1, dtype=np.float64)
    hits = np.zeros(limit + 1, dtype=np.int64)
    idx = np.minimum(np.arange(limit + 1), len(cum)) - 1
    valid = idx >= 0
    hits[valid] = cum[idx[valid]]
    miss = 1.0 - hits / n
    return MissRatioCurve(sizes, miss, n=n)


def average_stack_distance(trace: WriteTrace, honor_fases: bool = True) -> float:
    """Mean finite stack distance (a scalar locality summary)."""
    dists = stack_distances(trace, honor_fases=honor_fases)
    finite = dists[dists != COLD]
    if len(finite) == 0:
        return float("inf")
    return float(np.mean(finite))
