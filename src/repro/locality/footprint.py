"""Average footprint ``fp(k)`` (Xiang et al., Eq. 4) and the duality Eq. 5.

The footprint of a window is its working-set size — the number of distinct
data accessed in it.  ``fp(k)`` is the average over all ``n - k + 1``
windows of length ``k``.  The paper proves the duality (Eq. 5)::

    reuse(k) + fp(k) = k

which follows per-window: accesses = distinct data + reuses.

Derivation of the linear-time form used here (equivalent to the paper's
Eq. 4 up to boundary-constant typos; validated against brute force):

``sum over windows of WSS`` counts, for each datum ``d``, the number of
windows containing at least one access to ``d``.  Complementing: a window
misses ``d`` iff it fits entirely in one of the *gaps* around ``d``'s
accesses — before the first access (``f_d - 1`` free slots), between
consecutive accesses (``e - s - 1`` slots for a reuse interval ``[s,e]``),
or after the last access (``n - l_d`` slots).  A gap with ``g`` free slots
holds ``max(0, g - k + 1)`` windows of length ``k``.  Hence::

    fp(k) = m - (1/(n-k+1)) * [  Σ_d max(0, f_d - k)
                                + Σ_intervals max(0, (e-s) - k)
                                + Σ_d max(0, (n - l_d + 1) - k) ]

Each of the three sums is ``Σ_x max(0, x - k)`` over a multiset of
integers, computed for all ``k`` at once from a histogram by two suffix
sums — O(n + m) total.
"""

from __future__ import annotations

import numpy as np

from repro.locality.trace import WriteTrace


def _excess_sums(values: np.ndarray, n: int) -> np.ndarray:
    """Return ``g`` with ``g[k] = sum(max(0, v - k) for v in values)``.

    ``g`` has shape ``(n + 2,)`` so callers can index ``k = 0..n+1``.
    Values are clipped into ``[0, n]`` (values above ``n`` cannot occur for
    valid traces; negatives contribute nothing).
    """
    g = np.zeros(n + 2, dtype=np.int64)
    if len(values) == 0:
        return g
    vals = np.clip(np.asarray(values, dtype=np.int64), 0, n)
    hist = np.bincount(vals, minlength=n + 1).astype(np.int64)
    # count_gt[k] = number of values strictly greater than k
    count_ge = np.cumsum(hist[::-1])[::-1]           # values >= k
    count_gt = np.zeros(n + 2, dtype=np.int64)
    count_gt[: n] = count_ge[1:]                     # values >= k+1
    # g[k] = g[k+1] + count_gt[k]; integrate from the top.
    g[: n + 1] = np.cumsum(count_gt[: n + 1][::-1])[::-1]
    return g


def footprint_curve(trace: WriteTrace) -> np.ndarray:
    """``fp(k)`` for ``k = 0..n`` in linear time (Eq. 4).

    ``fp[0]`` is 0 by convention.  FASE boundaries are *not* applied here;
    apply :func:`repro.locality.fase_transform.rename_for_fases` first if
    the FASE-corrected footprint is wanted.
    """
    n = trace.n
    fp = np.zeros(n + 1, dtype=np.float64)
    if n == 0:
        return fp
    m = trace.m
    first, last = trace.first_last_times()
    starts, ends = trace.reuse_intervals()

    head_gaps = _excess_sums(first, n)                # before first access
    reuse_gaps = _excess_sums(ends - starts, n) if len(starts) else np.zeros(
        n + 2, dtype=np.int64
    )
    tail_gaps = _excess_sums(n - last + 1, n)         # after last access

    ks = np.arange(1, n + 1)
    misses = head_gaps[1 : n + 1] + reuse_gaps[1 : n + 1] + tail_gaps[1 : n + 1]
    fp[1:] = m - misses / (n - ks + 1)
    return fp


def reuse_from_footprint(trace: WriteTrace) -> np.ndarray:
    """``reuse(k)`` derived through the duality Eq. 5: ``k - fp(k)``.

    Independent of the direct interval-counting algorithm in
    :mod:`repro.locality.reuse`; the test suite asserts the two agree to
    floating-point accuracy on arbitrary traces (the paper's Eq. 5).
    """
    fp = footprint_curve(trace)
    ks = np.arange(len(fp), dtype=np.float64)
    return ks - fp
