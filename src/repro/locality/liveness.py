"""All-window average liveness (Li, Ding & Luo, ISMM'14).

The paper derives its reuse algorithm from all-window liveness analysis
("The solution of interval counting is based on our prior work of
all-window liveness [27] … it is the first mathematical connection between
the theory of locality (data caching) and the theory of liveness (memory
allocation)").  We include the liveness side of that connection: given
object lifetimes ``[s_i, e_i]`` (allocation to free), ``liveness(k)`` is
the average number of objects *live* in a window of ``k`` accesses — an
object is live in a window iff its lifetime intersects the window.

The counting kernel is the same piecewise-linear / second-difference trick
as :mod:`repro.locality.reuse`, with *intersection* instead of *enclosure*:
a window ``[w, w+k-1]`` intersects ``[s, e]`` iff ``w ≤ e`` and
``w+k-1 ≥ s``, giving::

    count(k) = min(e, n-k+1) - max(s-k+1, 1) + 1

which rises with slope +1 from ``count(1) = e-s+1``, plateaus at
``min(e, n-s+1)`` between ``k1 = min(s, n-e+1)`` and
``k2 = max(s, n-e+1)``, then follows the total window count ``n-k+1``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError


def liveness_counts(starts: np.ndarray, ends: np.ndarray, n: int) -> np.ndarray:
    """Summed intersecting-window counts for every window length.

    Returns ``total`` of shape ``(n + 1,)``; ``total[k]`` sums, over all
    lifetime intervals, the number of length-``k`` windows intersecting
    the interval.  Lifetimes may be points (``s == e``).
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ConfigurationError("starts and ends must have equal length")
    if len(starts) and (starts.min() < 1 or ends.max() > n or np.any(ends < starts)):
        raise ConfigurationError("lifetimes must satisfy 1 <= s <= e <= n")

    base = np.int64(0)
    d2 = np.zeros(n + 3, dtype=np.int64)
    if len(starts):
        k1 = np.minimum(starts, n - ends + 1)
        k2 = np.maximum(starts, n - ends + 1)
        base = np.sum(ends - starts)       # virtual count at k = 0
        d2[1] += len(starts)               # slope +1 from k = 1
        np.add.at(d2, k1 + 1, -1)          # rise ends after k1
        np.add.at(d2, k2 + 1, -1)          # plateau ends after k2
    slope = np.cumsum(d2[: n + 1])
    total = base + np.cumsum(slope)
    total[0] = 0
    return total


def average_liveness(starts: np.ndarray, ends: np.ndarray, n: int) -> np.ndarray:
    """``liveness(k)`` for ``k = 0..n``: average live objects per window."""
    total = liveness_counts(starts, ends, n)
    out = np.zeros(n + 1, dtype=np.float64)
    if n >= 1:
        ks = np.arange(1, n + 1)
        out[1:] = total[1:] / (n - ks + 1)
    return out
