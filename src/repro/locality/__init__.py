"""Reuse-based timescale locality theory (the paper's §III).

This package implements:

- :mod:`repro.locality.trace` — write traces at cache-line granularity,
  with FASE boundaries.
- :mod:`repro.locality.reuse` — the all-window timescale reuse ``reuse(k)``
  for every window length ``k`` in linear time (Eq. 2 / Fig. 3).
- :mod:`repro.locality.footprint` — Xiang et al.'s average footprint
  ``fp(k)`` (Eq. 4), used to validate the duality ``reuse(k) + fp(k) = k``
  (Eq. 5).
- :mod:`repro.locality.mrc` — conversion from timescale reuse to a cache
  miss-ratio curve (Eq. 3 / Eq. 6).
- :mod:`repro.locality.knee` — knee detection and cache-size selection
  (§III-C, "Cache Size Optimization").
- :mod:`repro.locality.fase_transform` — the FASE-semantics correction
  that renames addresses per FASE so cross-FASE reuses are not counted
  (§III-B, "Adaptation to FASE Semantics").
- :mod:`repro.locality.sampling` — bursty sampling for online MRC analysis
  (§III-C, "MRC Analysis").
- :mod:`repro.locality.liveness` — all-window average liveness, the
  mathematical sibling of timescale reuse the paper connects to.
- :mod:`repro.locality.stack_distance` — classical Mattson stack
  distance (the "access locality" of §III-A): the exact LRU MRC the
  linear-time timescale curve approximates.
- :mod:`repro.locality.shards` — SHARDS sampled stack distance, the
  third point on §III-A's cost/exactness spectrum.
- :mod:`repro.locality.reference` — brute-force O(n²) oracles used by the
  test suite, plus exact LRU simulation ("actual MRC" in Fig. 7).
"""

from repro.locality.trace import WriteTrace
from repro.locality.reuse import (
    reuse_counts,
    reuse_curve,
    reuse_curve_from_trace,
)
from repro.locality.footprint import footprint_curve, reuse_from_footprint
from repro.locality.mrc import MissRatioCurve, mrc_from_reuse, mrc_from_trace
from repro.locality.knee import Knee, find_knees, select_cache_size, SelectionPolicy
from repro.locality.fase_transform import rename_for_fases
from repro.locality.sampling import BurstSampler, sampled_mrc
from repro.locality.liveness import average_liveness
from repro.locality.stack_distance import (
    stack_distances,
    exact_mrc,
    average_stack_distance,
)
from repro.locality.shards import shards_mrc, shards_filter

__all__ = [
    "WriteTrace",
    "reuse_counts",
    "reuse_curve",
    "reuse_curve_from_trace",
    "footprint_curve",
    "reuse_from_footprint",
    "MissRatioCurve",
    "mrc_from_reuse",
    "mrc_from_trace",
    "Knee",
    "find_knees",
    "select_cache_size",
    "SelectionPolicy",
    "rename_for_fases",
    "BurstSampler",
    "sampled_mrc",
    "average_liveness",
    "stack_distances",
    "exact_mrc",
    "average_stack_distance",
    "shards_mrc",
    "shards_filter",
]
