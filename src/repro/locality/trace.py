"""Write traces at cache-line granularity.

A :class:`WriteTrace` is the object of study of the paper's locality theory
(§III-B): "We consider an execution as a sequence of data accesses
(writes). A logical time is assigned to each data access."  Logical times
are 1-based throughout this package, matching the paper's window algebra.

A trace records, per access, the cache-line id written and the id of the
FASE the write occurred in (-1 when outside any FASE).  FASE ids only need
to be distinct per dynamic FASE instance; the FASE-semantics correction
(:mod:`repro.locality.fase_transform`) renames lines so that accesses to
the same line in different FASEs look like accesses to different data.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.geometry import line_of


class WriteTrace:
    """A sequence of persistent writes, one cache line id per access.

    Parameters
    ----------
    lines:
        Cache-line ids, one per write, in program order.
    fase_ids:
        Optional per-access FASE instance ids (same length).  ``-1`` marks
        writes outside any FASE.  If omitted, the whole trace is treated
        as a single FASE (id 0).
    """

    __slots__ = ("lines", "fase_ids")

    def __init__(
        self,
        lines: Sequence[int] | np.ndarray,
        fase_ids: Optional[Sequence[int] | np.ndarray] = None,
    ) -> None:
        self.lines = np.asarray(lines, dtype=np.int64)
        if self.lines.ndim != 1:
            raise ConfigurationError("trace lines must be one-dimensional")
        if fase_ids is None:
            self.fase_ids = np.zeros(len(self.lines), dtype=np.int64)
        else:
            self.fase_ids = np.asarray(fase_ids, dtype=np.int64)
            if self.fase_ids.shape != self.lines.shape:
                raise ConfigurationError(
                    "fase_ids must have the same length as lines "
                    f"({len(self.fase_ids)} != {len(self.lines)})"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_addresses(
        cls,
        addrs: Iterable[int],
        fase_ids: Optional[Iterable[int]] = None,
    ) -> "WriteTrace":
        """Build a trace from byte addresses, mapping each to its line."""
        lines = np.fromiter((line_of(a) for a in addrs), dtype=np.int64)
        fids = None if fase_ids is None else np.fromiter(
            (int(f) for f in fase_ids), dtype=np.int64
        )
        return cls(lines, fids)

    @classmethod
    def from_string(cls, text: str) -> "WriteTrace":
        """Build a trace from a compact string like ``"abb"`` or ``"ab|ab"``.

        Each letter is a datum; ``|`` marks a FASE boundary (the paper's
        notation in §III-B).  Useful for unit tests and doctests::

            >>> t = WriteTrace.from_string("abb")
            >>> t.n
            3
        """
        lines = []
        fids = []
        fase = 0
        for ch in text:
            if ch == "|":
                fase += 1
            elif ch.isspace():
                continue
            else:
                lines.append(ord(ch))
                fids.append(fase)
        return cls(np.asarray(lines, dtype=np.int64), np.asarray(fids, dtype=np.int64))

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """The trace length (number of writes)."""
        return int(len(self.lines))

    @property
    def m(self) -> int:
        """The number of distinct lines written."""
        return int(len(np.unique(self.lines)))

    @property
    def num_fases(self) -> int:
        """The number of distinct FASE instances in the trace."""
        inside = self.fase_ids[self.fase_ids >= 0]
        return int(len(np.unique(inside))) if len(inside) else 0

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"WriteTrace(n={self.n}, m={self.m}, fases={self.num_fases})"

    # ------------------------------------------------------------------
    # Derived interval structure (the inputs to Eq. 2 and Eq. 4)
    # ------------------------------------------------------------------

    def dense_ids(self) -> np.ndarray:
        """Return lines re-coded as dense ids ``0..m-1`` (stable mapping)."""
        _, inverse = np.unique(self.lines, return_inverse=True)
        return inverse.astype(np.int64)

    def reuse_intervals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(starts, ends)`` of all reuse intervals, 1-based times.

        A reuse interval spans a write and the *next* write to the same
        line (Def. 1).  A trace with ``n`` writes and ``m`` distinct lines
        has exactly ``n - m`` reuse intervals.
        """
        ids = self.dense_ids()
        n = len(ids)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Stable sort by id keeps program order within each id, so
        # consecutive entries with equal ids are consecutive accesses.
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        times = order + 1  # 1-based logical times
        same = sorted_ids[1:] == sorted_ids[:-1]
        starts = times[:-1][same]
        ends = times[1:][same]
        return starts.astype(np.int64), ends.astype(np.int64)

    def first_last_times(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(first, last)`` access time (1-based) per distinct line."""
        ids = self.dense_ids()
        n = len(ids)
        m = int(ids.max()) + 1 if n else 0
        first = np.zeros(m, dtype=np.int64)
        last = np.zeros(m, dtype=np.int64)
        times = np.arange(n, 0, -1, dtype=np.int64)  # n..1
        # Writing in reverse time order leaves the earliest time in place.
        first[ids[::-1]] = times
        times = np.arange(1, n + 1, dtype=np.int64)
        last[ids] = times
        return first, last

    # ------------------------------------------------------------------
    # Slicing / composition
    # ------------------------------------------------------------------

    def head(self, k: int) -> "WriteTrace":
        """Return the first ``k`` writes as a new trace (for sampling)."""
        return WriteTrace(self.lines[:k], self.fase_ids[:k])

    def concat(self, other: "WriteTrace") -> "WriteTrace":
        """Concatenate two traces, keeping FASE ids disjoint."""
        shift = 0
        if self.num_fases and other.num_fases:
            shift = int(self.fase_ids.max()) + 1
        other_fids = np.where(other.fase_ids >= 0, other.fase_ids + shift, -1)
        return WriteTrace(
            np.concatenate([self.lines, other.lines]),
            np.concatenate([self.fase_ids, other_fids]),
        )
