"""Brute-force oracles for the locality theory, plus exact LRU simulation.

These are deliberately simple O(n²)-ish implementations used to validate
the linear-time algorithms in the test suite, and to produce the "actual
MRC" series of Fig. 7 — the measured miss ratio of a real write-combining
LRU cache run over the trace with FASE drains, against which the
theory-predicted (full-trace) and sampled MRCs are compared.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.trace import WriteTrace


def reuse_brute(trace: WriteTrace, k: int) -> float:
    """``reuse(k)`` by enumerating every window of length ``k``.

    Uses the identity "reuses in a window = accesses - distinct data"
    (the basis of Eq. 5).  O(n·k).
    """
    n = trace.n
    if not 1 <= k <= n:
        raise ConfigurationError(f"window length must be in 1..{n}: {k}")
    lines = trace.lines
    total = 0
    for w in range(n - k + 1):
        window = lines[w : w + k]
        total += k - len(np.unique(window))
    return total / (n - k + 1)


def reuse_curve_brute(trace: WriteTrace) -> np.ndarray:
    """``reuse(k)`` for all ``k = 0..n`` by brute force."""
    n = trace.n
    out = np.zeros(n + 1, dtype=np.float64)
    for k in range(1, n + 1):
        out[k] = reuse_brute(trace, k)
    return out


def footprint_brute(trace: WriteTrace, k: int) -> float:
    """``fp(k)`` by enumerating every window of length ``k``."""
    n = trace.n
    if not 1 <= k <= n:
        raise ConfigurationError(f"window length must be in 1..{n}: {k}")
    lines = trace.lines
    total = 0
    for w in range(n - k + 1):
        total += len(np.unique(lines[w : w + k]))
    return total / (n - k + 1)


def footprint_curve_brute(trace: WriteTrace) -> np.ndarray:
    """``fp(k)`` for all ``k = 0..n`` by brute force."""
    n = trace.n
    out = np.zeros(n + 1, dtype=np.float64)
    for k in range(1, n + 1):
        out[k] = footprint_brute(trace, k)
    return out


def liveness_brute(
    starts: Sequence[int], ends: Sequence[int], n: int, k: int
) -> float:
    """Average live objects per window of length ``k``, by enumeration."""
    if not 1 <= k <= n:
        raise ConfigurationError(f"window length must be in 1..{n}: {k}")
    total = 0
    for w in range(1, n - k + 2):
        lo, hi = w, w + k - 1
        total += sum(1 for s, e in zip(starts, ends) if s <= hi and e >= lo)
    return total / (n - k + 1)


def enclosing_windows_brute(s: int, e: int, n: int, k: int) -> int:
    """Number of length-``k`` windows enclosing interval ``[s, e]``."""
    count = 0
    for w in range(1, n - k + 2):
        if w <= s and e <= w + k - 1:
            count += 1
    return count


def lru_write_cache_misses(
    trace: WriteTrace,
    size: int,
    honor_fases: bool = True,
) -> int:
    """Misses of an exact size-``size`` write-combining LRU cache.

    A *miss* is a write whose line is not in the cache (the line is then
    inserted, evicting the LRU line if full) — each miss corresponds to
    one eventual flush.  With ``honor_fases``, the cache is drained at
    every FASE boundary, exactly like the runtime's software cache; writes
    outside any FASE share one never-drained region.
    """
    if size < 1:
        raise ConfigurationError("cache size must be >= 1")
    cache: OrderedDict[int, None] = OrderedDict()
    misses = 0
    lines = trace.lines
    fids = trace.fase_ids
    current_fase: Optional[int] = None
    for i in range(len(lines)):
        fid = int(fids[i])
        if honor_fases and fid != current_fase:
            if current_fase is not None and current_fase != -1:
                cache.clear()          # drain at the FASE boundary
            current_fase = fid
        line = int(lines[i])
        if line in cache:
            cache.move_to_end(line)
        else:
            misses += 1
            if len(cache) >= size:
                cache.popitem(last=False)
            cache[line] = None
    return misses


def lru_mrc(
    trace: WriteTrace,
    sizes: Sequence[int],
    honor_fases: bool = True,
) -> np.ndarray:
    """Measured ("actual") miss ratios at each cache size (Fig. 7)."""
    n = trace.n
    if n == 0:
        raise ConfigurationError("cannot simulate an empty trace")
    return np.asarray(
        [lru_write_cache_misses(trace, s, honor_fases) / n for s in sizes],
        dtype=np.float64,
    )
