"""SHARDS: spatially hashed sampling for MRC construction.

Waldspurger et al. (FAST'15) — cited by the paper among the efficient
reuse-distance techniques its related work surveys — showed that an
exact-but-expensive MRC can be approximated from a tiny spatially-hashed
sample: keep only the data whose hash falls under a threshold ``T`` (a
sampling rate ``R = T / M``), run exact stack-distance analysis on the
filtered trace, and *rescale* every measured distance by ``1/R``.

Included here as the third point on the paper's §III-A efficiency
spectrum:

=====================  ============  =======================
method                 cost          exactness
=====================  ============  =======================
stack distance          O(n log n)   exact
SHARDS                  O(nR log m)  unbiased approximation
timescale reuse (paper) O(n)         reuse-window hypothesis
=====================  ============  =======================

The test suite checks SHARDS against the exact curve and the benchmark
ablation compares all three on the evaluation traces.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.mrc import MissRatioCurve
from repro.locality.stack_distance import COLD, stack_distances
from repro.locality.trace import WriteTrace

#: Hash-space modulus (SHARDS uses a fixed-point threshold over it).
_HASH_SPACE = 1 << 24


def _spatial_hash(lines: np.ndarray) -> np.ndarray:
    """A deterministic mixing hash over line ids (vectorised)."""
    x = lines.astype(np.uint64)
    x = (x ^ (x >> np.uint64(33))) * np.uint64(0xFF51AFD7ED558CCD)
    x = (x ^ (x >> np.uint64(33))) * np.uint64(0xC4CEB9FE1A85EC53)
    x = x ^ (x >> np.uint64(33))
    return (x % np.uint64(_HASH_SPACE)).astype(np.int64)


def shard_of_lines(lines: np.ndarray, num_shards: int) -> np.ndarray:
    """Deterministic shard assignment of cache-line ids (vectorised).

    The same mixing hash SHARDS samples with, reduced modulo
    ``num_shards``: all-or-none per line, uniform across shards, stable
    across runs and processes.  This is the partitioning function of the
    sharded executor (:mod:`repro.nvram.sharded`): every access to a
    line lands in the same shard, so per-line technique state never
    straddles shard machines.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    return _spatial_hash(np.asarray(lines, dtype=np.int64)) % num_shards


def shards_filter(trace: WriteTrace, rate: float) -> WriteTrace:
    """Keep only the accesses whose *line* is sampled at ``rate``.

    Spatial hashing keeps either all or none of a line's accesses, which
    is what makes the rescaled distances unbiased.
    """
    if not 0 < rate <= 1:
        raise ConfigurationError(f"sampling rate must be in (0, 1]: {rate}")
    threshold = int(rate * _HASH_SPACE)
    keep = _spatial_hash(trace.lines) < threshold
    return WriteTrace(trace.lines[keep], trace.fase_ids[keep])


def shards_mrc(
    trace: WriteTrace,
    rate: float = 0.1,
    honor_fases: bool = True,
    max_size: int = 4096,
) -> MissRatioCurve:
    """An approximate MRC from a spatially-hashed sample.

    Runs exact stack-distance analysis on the filtered trace and
    rescales each distance by ``1/rate`` (a sampled distance ``d`` stands
    for ``d/R`` distinct lines of the full trace).  Cold misses are
    assumed representative of the full trace's cold-miss ratio.
    """
    sample = shards_filter(trace, rate)
    if sample.n == 0:
        raise ConfigurationError(
            f"sampling rate {rate} left no accesses; raise it"
        )
    dists = stack_distances(sample, honor_fases=honor_fases)
    finite = dists[dists != COLD]
    cold = len(dists) - len(finite)
    scaled = np.floor(finite / rate).astype(np.int64)
    scaled = np.minimum(scaled, max_size)
    hist = np.bincount(scaled, minlength=max_size + 1)
    cum = np.cumsum(hist)
    n = len(dists)
    sizes = np.arange(0, max_size + 1, dtype=np.float64)
    hits = np.concatenate([[0], cum[:-1]])      # hits at capacity c: dist < c
    miss = np.clip(1.0 - hits / n, 0.0, 1.0)
    miss[0] = 1.0
    # cold misses never hit at any size
    miss = np.maximum(miss, cold / n)
    return MissRatioCurve(sizes, miss, n=trace.n)
