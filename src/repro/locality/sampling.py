"""Bursty sampling for online MRC analysis (§III-C, "MRC Analysis").

Online analysis "partitions a program execution into bursts and
hibernation periods.  At a burst, we monitor the sequence of persistent
writes.  At the end of a burst period, we calculate MRC and then adjust
the cache capacity."  The paper uses one burst of 64 M writes and an
infinite hibernation ("we found it is sufficient to analyze MRC just
once"); both are configurable here — the default burst is scaled down in
proportion to the scaled-down workloads.

:class:`BurstSampler` is the per-thread recorder embedded in the SC
technique; :func:`sampled_mrc` is the offline convenience used by the
Fig. 7 accuracy study (sampled vs. full-trace vs. actual MRC).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.mrc import MissRatioCurve, mrc_from_trace
from repro.locality.trace import WriteTrace

#: Default burst length.  The paper's 64 M writes sample roughly the first
#: fifth of its smallest SPLASH2 run; our workloads are scaled down by
#: ~1000x, so the default burst scales with them.
DEFAULT_BURST_LENGTH = 65536


class BurstSampler:
    """Record the first ``burst_length`` persistent writes of a thread.

    The sampler is deliberately cheap on the hot path: recording is two
    list appends; all analysis cost is paid once, when the burst closes.

    Parameters
    ----------
    burst_length:
        Number of writes per burst.
    hibernation:
        Writes to skip between bursts; ``None`` (the paper's choice) means
        the sampler never re-opens after the first burst.
    initial_skip:
        Writes to skip before the first burst opens — a warm-up window,
        so programs whose write locality is still forming at start-up
        (growing data structures) are sampled in their steady phase.
    """

    __slots__ = ("burst_length", "hibernation", "_lines", "_fids", "_skip", "_done")

    def __init__(
        self,
        burst_length: int = DEFAULT_BURST_LENGTH,
        hibernation: Optional[int] = None,
        initial_skip: int = 0,
    ) -> None:
        if burst_length < 2:
            raise ConfigurationError("burst_length must be >= 2")
        if hibernation is not None and hibernation < 0:
            raise ConfigurationError("hibernation must be non-negative")
        if initial_skip < 0:
            raise ConfigurationError("initial_skip must be non-negative")
        self.burst_length = burst_length
        self.hibernation = hibernation
        self._lines: List[int] = []
        self._fids: List[int] = []
        self._skip = initial_skip
        self._done = False

    @property
    def burst_complete(self) -> bool:
        """True once a full burst has been recorded and awaits analysis."""
        return len(self._lines) >= self.burst_length

    @property
    def recording(self) -> bool:
        """True while the sampler is accepting writes."""
        return not self._done and self._skip == 0 and not self.burst_complete

    @property
    def done(self) -> bool:
        """True once the sampler has permanently shut down."""
        return self._done

    def record(self, line: int, fase_id: int) -> bool:
        """Feed one persistent write; return True when the burst just filled."""
        if self._done:
            return False
        if self._skip > 0:
            self._skip -= 1
            return False
        if len(self._lines) >= self.burst_length:
            return False
        self._lines.append(line)
        self._fids.append(fase_id)
        return len(self._lines) >= self.burst_length

    def trace(self) -> WriteTrace:
        """The recorded burst as a :class:`WriteTrace`."""
        return WriteTrace(
            np.asarray(self._lines, dtype=np.int64),
            np.asarray(self._fids, dtype=np.int64),
        )

    def analyze(self) -> MissRatioCurve:
        """Close the burst: compute the MRC and enter hibernation."""
        mrc = mrc_from_trace(self.trace())
        self._lines.clear()
        self._fids.clear()
        if self.hibernation is None:
            self._done = True      # the paper's infinite hibernation
        else:
            self._skip = self.hibernation
        return mrc

    @property
    def recorded(self) -> int:
        """Number of writes currently recorded in the open burst."""
        return len(self._lines)


def sampled_mrc(
    trace: WriteTrace, burst_length: int = DEFAULT_BURST_LENGTH
) -> MissRatioCurve:
    """The MRC an online sampler would compute for ``trace``.

    Takes the first ``burst_length`` writes (or the whole trace, if
    shorter) and runs the standard pipeline — this is the "sampled
    (online) MRC" series of Fig. 7.
    """
    k = min(burst_length, trace.n)
    return mrc_from_trace(trace.head(k))
