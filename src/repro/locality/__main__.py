"""Analyse a write trace from the command line.

Examples::

    python -m repro.locality trace.npz
    python -m repro.locality trace.txt --text --lines
    python -m repro.locality trace.txt --text --max-size 100 --mrc
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.locality.knee import SelectionPolicy
from repro.locality.mrc import mrc_from_trace
from repro.locality.traceio import (
    analyze,
    format_analysis,
    load_text_trace,
    load_trace,
)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring); returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.locality",
        description="Write-cache locality analysis of a trace file "
        "(the paper's linear-time pipeline).",
    )
    parser.add_argument("trace", help="path to a .npz or text trace")
    parser.add_argument(
        "--text", action="store_true", help="parse as plain text (address [fase])"
    )
    parser.add_argument(
        "--lines",
        action="store_true",
        help="text addresses are already cache-line ids",
    )
    parser.add_argument(
        "--no-fases",
        action="store_true",
        help="skip the FASE-boundary renaming (raw locality)",
    )
    parser.add_argument(
        "--max-size", type=int, default=50, help="cache size cap (paper: 50)"
    )
    parser.add_argument(
        "--mrc", action="store_true", help="also print the miss-ratio table"
    )
    args = parser.parse_args(argv)

    if args.text:
        trace = load_text_trace(args.trace, addresses_are_lines=args.lines)
    else:
        trace = load_trace(args.trace)
    policy = SelectionPolicy(max_size=args.max_size)
    summary = analyze(trace, policy, honor_fases=not args.no_fases)
    print(format_analysis(summary))
    if args.mrc:
        mrc = mrc_from_trace(trace, honor_fases=not args.no_fases)
        table = mrc.miss_ratios_at(np.arange(1.0, args.max_size + 1))
        print("\nsize  miss ratio")
        for size, ratio in enumerate(table, 1):
            print(f"{size:4d}  {ratio:.5f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
