"""Miss-ratio curves from timescale reuse (Eq. 3 / Eq. 6).

At any moment a fully associative LRU cache holds the distinct data of the
last ``k`` accesses, for some ``k``.  On average those ``k`` accesses
contain ``reuse(k)`` reuses, hence ``k - reuse(k)`` distinct data — so the
cache *size* reached at timescale ``k`` is ``c(k) = k - reuse(k)``.  The
chance that the next access is a reuse (a hit) is the discrete derivative
``reuse(k+1) - reuse(k)`` (Eq. 3)::

    hr(c) = reuse(k+1) - reuse(k)   at   c = k - reuse(k)

which by the duality ``reuse + fp = k`` is exactly Xiang et al.'s HOTL
conversion ``mr(c) = fp'(k)`` (Eq. 6).  The correctness condition is the
reuse-window hypothesis, inherited unchanged from HOTL (§III-B,
"Correctness").

:class:`MissRatioCurve` wraps the ``(c(k), mr(k))`` samples with monotone
clean-up and step interpolation, and is the object consumed by the knee
detector and the adaptive cache controller.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.reuse import reuse_curve_from_trace
from repro.locality.trace import WriteTrace


class MissRatioCurve:
    """A cache miss-ratio curve sampled at non-uniform sizes.

    Parameters
    ----------
    sizes:
        Cache sizes ``c(k)``, non-decreasing, starting at 0.
    miss_ratios:
        Miss ratio at each size, in ``[0, 1]``.
    n:
        Length of the trace the curve was computed from (metadata).
    """

    __slots__ = ("sizes", "miss_ratios", "n")

    def __init__(
        self,
        sizes: np.ndarray,
        miss_ratios: np.ndarray,
        n: int = 0,
    ) -> None:
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.miss_ratios = np.asarray(miss_ratios, dtype=np.float64)
        if self.sizes.shape != self.miss_ratios.shape:
            raise ConfigurationError("sizes and miss_ratios must align")
        if len(self.sizes) == 0:
            raise ConfigurationError("an MRC needs at least one sample")
        if np.any(np.diff(self.sizes) < 0):
            raise ConfigurationError("sizes must be non-decreasing")
        self.n = int(n)

    def miss_ratio(self, size: float) -> float:
        """Miss ratio of a cache of ``size`` blocks (step interpolation)."""
        return float(self.miss_ratios_at(np.asarray([size]))[0])

    def miss_ratios_at(self, sizes: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`miss_ratio`."""
        q = np.asarray(sizes, dtype=np.float64)
        if np.any(q < 0):
            raise ConfigurationError("cache sizes must be non-negative")
        # Largest sample index whose size is <= query; below the first
        # sample every access misses (an empty cache).
        idx = np.searchsorted(self.sizes, q, side="right") - 1
        out = np.ones(len(q), dtype=np.float64)
        valid = idx >= 0
        out[valid] = self.miss_ratios[idx[valid]]
        return out

    def hit_ratio(self, size: float) -> float:
        """Hit ratio of a cache of ``size`` blocks."""
        return 1.0 - self.miss_ratio(size)

    def table(self, max_size: int) -> np.ndarray:
        """Miss ratios at integer sizes ``1..max_size`` (for figures)."""
        if max_size < 1:
            raise ConfigurationError("max_size must be >= 1")
        return self.miss_ratios_at(np.arange(1, max_size + 1))

    def __repr__(self) -> str:
        return (
            f"MissRatioCurve(samples={len(self.sizes)}, "
            f"max_size={self.sizes[-1]:.1f}, n={self.n})"
        )


def mrc_from_reuse(
    reuse: np.ndarray, n: Optional[int] = None, monotone: bool = True
) -> MissRatioCurve:
    """Convert a ``reuse(k)`` curve (``k = 0..n``) into an MRC (Eq. 3).

    The tail of the reuse curve is dominated by boundary windows (only a
    handful of windows of near-trace length exist), which makes the
    discrete derivative noisy there.  Since a fully associative LRU cache
    satisfies the inclusion property — a larger cache never misses more —
    ``monotone=True`` (the default) clamps the curve to be non-increasing
    in size, which repairs the sparse tail without disturbing the densely
    sampled head.  Pass ``monotone=False`` for the raw Eq. 3 derivative.
    """
    reuse = np.asarray(reuse, dtype=np.float64)
    if reuse.ndim != 1 or len(reuse) < 2:
        raise ConfigurationError("reuse curve needs at least k = 0 and k = 1")
    if n is None:
        n = len(reuse) - 1
    ks = np.arange(len(reuse) - 1, dtype=np.float64)
    sizes = ks - reuse[:-1]                 # c(k) = k - reuse(k)
    hit = np.diff(reuse)                    # hr = reuse(k+1) - reuse(k)
    # Guard against floating-point jitter: sizes are mathematically
    # non-decreasing (c(k+1) - c(k) = 1 - hr >= 0) and hit ratios lie in
    # [0, 1]; enforce both so downstream search stays well-defined.
    sizes = np.maximum.accumulate(np.maximum(sizes, 0.0))
    miss = np.clip(1.0 - hit, 0.0, 1.0)
    if monotone:
        miss = np.minimum.accumulate(miss)
    return MissRatioCurve(sizes, miss, n=n)


def mrc_from_trace(trace: WriteTrace, honor_fases: bool = True) -> MissRatioCurve:
    """Compute the write-cache MRC of a trace (the paper's full pipeline).

    Applies the FASE-semantics renaming (unless ``honor_fases`` is false),
    computes all-window reuse in linear time, and converts to an MRC.
    """
    reuse = reuse_curve_from_trace(trace, honor_fases=honor_fases)
    return mrc_from_reuse(reuse, n=trace.n)
