"""All-window timescale reuse — the paper's core algorithm (§III-B).

Definitions (paper Def. 1 and Eq. 1):

- logical times are ``1..n``, one per write;
- a *window of length k* is ``k`` consecutive accesses; there are
  ``n - k + 1`` of them, starting at ``w = 1..n-k+1`` and covering times
  ``[w, w+k-1]``;
- a *reuse interval* ``[s, e]`` spans an access at time ``s`` and the next
  access to the same datum at time ``e``;
- ``reuse(k)`` is the average number of reuse intervals *enclosed* by a
  window, over all windows of length ``k``.

Instead of enumerating the Θ(n²) windows, we count for each reuse interval
the number of windows enclosing it (Eq. 1's exchange of summation order).
A window ``[w, w+k-1]`` encloses ``[s, e]`` iff ``w ≤ s`` and
``e ≤ w+k-1``, so the number of enclosing windows of length ``k`` is::

    count(k) = max(0, min(s, n-k+1) - max(e-k+1, 1) + 1)

Note on the paper's printed Eq. 2: its constants
(``min(n-k, s) - max(k, e) + k + 1`` with predicate ``e-s ≤ k``) are not
consistent with the paper's own worked examples — for the infinitely
repeating trace "abab…" it would give ``reuse(3) = 2`` instead of the
stated ``1``.  The form above reproduces both worked examples ("abb" gives
``reuse(2) = 1/2``; "abab…" gives ``reuse(2) = 0`` and ``reuse(3) = 1``)
and is validated against brute-force window enumeration in the test suite.
DESIGN.md records the discrepancy.

The linear-time trick: as a function of ``k``, ``count(k)`` is piecewise
linear with slopes ``0, +1, 0, -1``:

- zero for ``k ≤ d`` where ``d = e - s`` (a window needs ``d+1`` accesses);
- slope ``+1`` on ``[d+1, k1]`` with ``k1 = min(e, n-s+1)``;
- a plateau at ``min(s, n-e+1)`` on ``[k1, k2]`` with ``k2 = max(e, n-s+1)``;
- slope ``-1`` on ``[k2, n]`` (ending at 1: only the whole-trace window).

Summing the *second differences* of all intervals into one array and
integrating twice yields ``total(k)`` for every ``k`` in O(n + r) time,
where ``r`` is the number of reuse intervals.  This is the same
accumulation structure as the all-window liveness algorithm of Li, Ding
and Luo (ISMM'14) that the paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.trace import WriteTrace


def reuse_counts(starts: np.ndarray, ends: np.ndarray, n: int) -> np.ndarray:
    """Total enclosing-window counts for every window length.

    Parameters
    ----------
    starts, ends:
        1-based start/end times of the reuse intervals (equal length).
    n:
        Trace length.

    Returns
    -------
    numpy.ndarray
        ``total`` of shape ``(n + 1,)`` where ``total[k]`` is the summed
        number of length-``k`` windows enclosing each interval
        (``total[0]`` is 0 by convention).
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ConfigurationError("starts and ends must have equal length")
    if n < 0:
        raise ConfigurationError(f"trace length must be non-negative: {n}")
    if len(starts) and (
        starts.min() < 1 or ends.max() > n or np.any(ends <= starts)
    ):
        raise ConfigurationError("reuse intervals must satisfy 1 <= s < e <= n")

    # Second-difference accumulator over k = 0..n (+2 slack for k2+1 <= n+1).
    d2 = np.zeros(n + 3, dtype=np.int64)
    if len(starts):
        d = ends - starts
        k1 = np.minimum(ends, n - starts + 1)
        k2 = np.maximum(ends, n - starts + 1)
        np.add.at(d2, d + 1, 1)       # slope becomes +1 at k = d+1
        np.add.at(d2, k1 + 1, -1)     # slope +1 -> 0 after the rise
        np.add.at(d2, k2 + 1, -1)     # slope 0 -> -1 after the plateau
    slope = np.cumsum(d2[: n + 1])
    total = np.cumsum(slope)
    return total


def reuse_curve(starts: np.ndarray, ends: np.ndarray, n: int) -> np.ndarray:
    """``reuse(k)`` for ``k = 0..n`` (Eq. 1 / Eq. 2), linear time.

    ``reuse[0]`` is defined as 0.  Each ``reuse[k]`` for ``k >= 1`` is the
    enclosing-window total divided by the window count ``n - k + 1``.
    """
    total = reuse_counts(starts, ends, n)
    reuse = np.zeros(n + 1, dtype=np.float64)
    if n >= 1:
        ks = np.arange(1, n + 1)
        reuse[1:] = total[1:] / (n - ks + 1)
    return reuse


def reuse_curve_from_trace(trace: WriteTrace, honor_fases: bool = True) -> np.ndarray:
    """``reuse(k)`` for ``k = 0..n`` of a write trace.

    When ``honor_fases`` is true, the FASE-semantics correction of §III-B
    is applied first: writes in different FASEs are renamed to different
    addresses, so a cross-FASE reuse — which the runtime can never combine,
    because the software cache is drained at the FASE end — contributes no
    reuse interval.
    """
    from repro.locality.fase_transform import rename_for_fases

    if honor_fases:
        trace = rename_for_fases(trace)
    starts, ends = trace.reuse_intervals()
    return reuse_curve(starts, ends, trace.n)
