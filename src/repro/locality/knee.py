"""Knee detection and cache-size selection (§III-C).

The paper's procedure: "we calculate the decrease in miss ratio for every
cache size increase (i.e. the gradient), rank the decreases, and pick the
top few as candidate knees.  We then choose the knee that has the largest
cache size."  The size is bounded — default 8, maximum 50 — because a
larger software cache lengthens the stall at the end of a FASE.  If the
MRC has no obvious inflection points, the maximal size is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.errors import ConfigurationError
from repro.locality.mrc import MissRatioCurve


@dataclass(frozen=True)
class SelectionPolicy:
    """Tunable parameters of the §III-C selection procedure.

    Attributes
    ----------
    default_size:
        Cache size used before any MRC is available (paper: 8).
    max_size:
        Upper bound on the selected size (paper: 50) — bounds the
        end-of-FASE drain stall.
    top_candidates:
        How many of the largest miss-ratio drops become candidate knees
        (the paper's "top few").
    min_drop:
        Smallest miss-ratio decrease that counts as an inflection at all;
        if no size clears it the MRC is considered knee-less and
        ``max_size`` is chosen.
    min_drop_fraction:
        A candidate must also achieve at least this fraction of the
        curve's *range beyond size 1* (``mr(1) - mr(max_size)``) — this
        separates genuine inflection points from sampling noise in the
        tail (without it, any tiny late wiggle would win the "largest
        size" tie-break).  The range is measured beyond size 1 because
        the drop at size 1 — write combining of consecutive same-line
        stores — dwarfs every later knee in write traces.
    """

    default_size: int = 8
    max_size: int = 50
    top_candidates: int = 10
    min_drop: float = 1e-4
    min_drop_fraction: float = 0.06

    def __post_init__(self) -> None:
        if self.default_size < 1:
            raise ConfigurationError("default_size must be >= 1")
        if self.max_size < self.default_size:
            raise ConfigurationError("max_size must be >= default_size")
        if self.top_candidates < 1:
            raise ConfigurationError("top_candidates must be >= 1")
        if self.min_drop < 0:
            raise ConfigurationError("min_drop must be non-negative")
        if not 0 <= self.min_drop_fraction <= 1:
            raise ConfigurationError("min_drop_fraction must be in [0, 1]")


DEFAULT_POLICY = SelectionPolicy()


@dataclass(frozen=True)
class Knee:
    """A candidate inflection point of an MRC."""

    size: int          # cache size at which the drop lands
    miss_ratio: float  # miss ratio at that size
    drop: float        # decrease in miss ratio vs. size - 1

    def __repr__(self) -> str:
        return f"Knee(size={self.size}, mr={self.miss_ratio:.4f}, drop={self.drop:.4f})"


def find_knees(
    mrc: MissRatioCurve,
    policy: SelectionPolicy = DEFAULT_POLICY,
) -> List[Knee]:
    """Return candidate knees, largest miss-ratio drop first.

    The gradient at size ``c`` is ``mr(c-1) - mr(c)`` with ``mr(0) = 1``
    (an empty cache misses always).  Only sizes ``1..max_size`` are
    considered, and only drops of at least ``policy.min_drop`` qualify.
    """
    sizes = np.arange(0, policy.max_size + 1)
    mr = mrc.miss_ratios_at(sizes)
    mr[0] = 1.0
    drops = mr[:-1] - mr[1:]                  # drop achieved by size c = 1..max
    order = np.argsort(drops, kind="stable")[::-1]
    tail_range = float(mr[1] - mr[policy.max_size])
    threshold = max(policy.min_drop, policy.min_drop_fraction * tail_range)
    knees: List[Knee] = []
    for idx in order[: policy.top_candidates]:
        drop = float(drops[idx])
        if drop < threshold:
            break
        size = int(idx) + 1
        knees.append(Knee(size=size, miss_ratio=float(mr[size]), drop=drop))
    return knees


def select_cache_size(
    mrc: MissRatioCurve,
    policy: SelectionPolicy = DEFAULT_POLICY,
) -> int:
    """Pick the software-cache size for an MRC, per the paper's rule.

    Among the top-gradient candidate knees, the one with the *largest*
    cache size wins (it has the smallest miss ratio of the candidates and
    is still bounded by ``max_size``).  A knee-less MRC yields
    ``max_size``.
    """
    knees = find_knees(mrc, policy)
    if not knees:
        return policy.max_size
    return max(k.size for k in knees)
