"""Crash injection: plans, sites, fault models, and what survives.

A simulated power failure stops execution instantly: whatever has been
written back (flushed or evicted dirty) is durable in NVRAM; everything
still dirty in the hardware cache is lost.  This is precisely the failure
model that makes cache-line flushing necessary in the first place (§I).

Beyond the legacy "crash after N persistent stores" trigger, a
:class:`CrashPlan` can schedule the failure at an *injectable site* — a
point where the durable state just changed or a persistence-critical
operation just completed.  The machine numbers sites globally in
execution order (see :data:`SITE_CLASSES`); the fault-injection campaign
(:mod:`repro.faults`) enumerates them in a golden run and then replays
with a plan per site.

Fault models sharpen the failure beyond a clean power cut:

``clean``
    The baseline: dirty hardware-cache lines are lost whole, everything
    written back is durable.  (8-byte atomicity within a line, as on
    real hardware with ADR.)
``torn_line``
    A dirty cache line *tears* at the crash: a strict, seeded subset of
    its pending values reaches NVRAM even though the line was never
    flushed — the partial-line write-back window real controllers have.
    Sound recovery must roll the leaked values back via the undo log.
``reordered_flush``
    Hardware-initiated eviction write-backs still in the flush queue at
    the crash did not all complete: a seeded suffix of the in-flight
    write-backs is dropped (reverted to the previous durable values).
    Explicit ``clflush``/``clwb`` flushes and drained queues are not
    affected — a drain is the technique's ordering point, and dropping
    past it would fault *every* implementation, correct or not.

:class:`CrashedState` is what recovery code gets to look at afterwards —
the (possibly fault-mutated) NVRAM image and nothing else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ReproError

#: Classes of injectable crash sites, in the vocabulary the campaign
#: matrix reports.  A site fires when the named operation *completes*;
#: site index k means "crash immediately after the k-th site".
SITE_STORE = "store"              # a persistent store retired
SITE_EVICT_FLUSH = "evict_flush"  # a software-cache eviction flush issued
SITE_LOG_APPEND = "log_append"    # an undo-log entry made durable
SITE_COMMIT = "commit"            # a FASE commit record made durable
SITE_DRAIN = "drain"              # a synchronous flush-queue drain completed

SITE_CLASSES = (
    SITE_STORE,
    SITE_EVICT_FLUSH,
    SITE_LOG_APPEND,
    SITE_COMMIT,
    SITE_DRAIN,
)

#: Fault models a :class:`CrashPlan` can apply at the crash instant.
FAULT_CLEAN = "clean"
FAULT_TORN_LINE = "torn_line"
FAULT_REORDERED_FLUSH = "reordered_flush"

FAULT_MODELS = (FAULT_CLEAN, FAULT_TORN_LINE, FAULT_REORDERED_FLUSH)

#: Sentinel distinguishing "address absent from NVRAM" from a stored
#: ``None`` value in pre-write-back bookkeeping.
_ABSENT = object()


class PowerFailure(ReproError):
    """Raised when a site-scheduled crash fires on the session path.

    The machine snapshots the durable state *before* raising, so the
    handler finds ``machine.crashed_state`` populated.  Stream-driven
    runs (:meth:`~repro.nvram.machine.Machine.run`) catch this
    internally and return a crashed :class:`~repro.nvram.stats.RunResult`
    as they always have for store-count plans.
    """


@dataclass(frozen=True)
class CrashPlan:
    """Schedule a crash — after a store count or at an injectable site.

    Exactly one trigger must be given:

    ``after_stores``
        Legacy trigger: the machine stops once this many persistent
        stores (across all threads) have retired.
    ``at_site``
        Site trigger: crash immediately after the site with this global
        index completes (see :data:`SITE_CLASSES`); the indexing matches
        a site-recording golden run of the same configuration.

    ``fault_model`` selects how the durable image is mutilated at the
    crash (see the module docstring); ``fault_seed`` makes the mutation
    deterministic.
    """

    after_stores: Optional[int] = None
    at_site: Optional[int] = None
    fault_model: str = FAULT_CLEAN
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if (self.after_stores is None) == (self.at_site is None):
            raise ConfigurationError(
                "CrashPlan needs exactly one of after_stores / at_site"
            )
        if self.after_stores is not None and self.after_stores < 0:
            raise ConfigurationError("after_stores must be non-negative")
        if self.at_site is not None and self.at_site < 0:
            raise ConfigurationError("at_site must be non-negative")
        if self.fault_model not in FAULT_MODELS:
            raise ConfigurationError(
                f"unknown fault model {self.fault_model!r}; "
                f"expected one of {FAULT_MODELS}"
            )


@dataclass
class CrashedState:
    """What survives the failure: the durable NVRAM image.

    ``lost_lines`` lists cache lines that were dirty in the hardware cache
    at the crash — useful in tests to confirm that data was genuinely at
    risk (i.e. the crash was not trivially recoverable).  ``at_site``,
    ``fault_model``, ``torn_lines`` and ``dropped_writebacks`` record how
    the failure was injected, for campaign reporting.
    """

    nvram: Dict[int, object]
    lost_lines: List[int]
    at_store: int
    at_site: Optional[int] = None
    site_class: Optional[str] = None
    fault_model: str = FAULT_CLEAN
    torn_lines: List[int] = field(default_factory=list)
    dropped_writebacks: int = 0

    def read(self, addr: int, default: object = None) -> object:
        """Read a durable value from the post-crash NVRAM image."""
        return self.nvram.get(addr, default)


# ---------------------------------------------------------------------------
# Fault-model application (called by Machine._crash at the crash instant)
# ---------------------------------------------------------------------------


def apply_torn_lines(
    image: Dict[int, object],
    dirty_lines: Iterable[int],
    pending_values: Dict[int, Dict[int, object]],
    seed: int,
) -> List[int]:
    """Tear a seeded selection of dirty lines into ``image``.

    For each torn line a strict, non-empty subset of its pending
    ``{addr: value}`` payload becomes durable.  Lines with fewer than two
    pending values cannot tear (8-byte stores are atomic).  Returns the
    lines torn, for :class:`CrashedState` bookkeeping.
    """
    rng = random.Random(seed)
    torn: List[int] = []
    for line in sorted(dirty_lines):
        values = pending_values.get(line)
        if not values or len(values) < 2:
            continue
        if rng.random() < 0.5:
            continue
        addrs = sorted(values)
        keep = rng.randrange(1, len(addrs))
        for addr in addrs[:keep]:
            image[addr] = values[addr]
        torn.append(line)
    return torn


def apply_reordered_flushes(
    image: Dict[int, object],
    inflight: List[Tuple[object, int, Dict[int, object]]],
    seed: int,
) -> int:
    """Drop a seeded suffix of in-flight eviction write-backs.

    ``inflight`` holds ``(ctx, line, {addr: old_durable_value})`` records
    in issue order, where old values use :data:`_ABSENT` for addresses
    that had never been durable.  Dropping newest-first keeps the result
    consistent with a per-thread FIFO write-back queue: a dropped
    write-back implies every later one from the same queue also dropped.
    Returns how many write-backs were dropped.
    """
    if not inflight:
        return 0
    rng = random.Random(seed)
    drop = rng.randrange(0, len(inflight) + 1)
    for _ctx, _line, olds in reversed(inflight[len(inflight) - drop:]):
        for addr, old in olds.items():
            if old is _ABSENT:
                image.pop(addr, None)
            else:
                image[addr] = old
    return drop
