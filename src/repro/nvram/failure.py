"""Crash injection.

A simulated power failure stops execution instantly: whatever has been
written back (flushed or evicted dirty) is durable in NVRAM; everything
still dirty in the hardware cache is lost.  This is precisely the failure
model that makes cache-line flushing necessary in the first place (§I).

:class:`CrashPlan` schedules the failure; :class:`CrashedState` is what
recovery code gets to look at afterwards — the NVRAM image and nothing
else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class CrashPlan:
    """Schedule a crash after a number of persistent stores.

    ``after_stores`` counts persistent stores across all threads; the
    machine stops before processing any further event once the budget is
    exhausted.
    """

    after_stores: int

    def __post_init__(self) -> None:
        if self.after_stores < 0:
            raise ConfigurationError("after_stores must be non-negative")


@dataclass
class CrashedState:
    """What survives the failure: the durable NVRAM image.

    ``lost_lines`` lists cache lines that were dirty in the hardware cache
    at the crash — useful in tests to confirm that data was genuinely at
    risk (i.e. the crash was not trivially recoverable).
    """

    nvram: Dict[int, object]
    lost_lines: List[int]
    at_store: int

    def read(self, addr: int, default: object = None) -> object:
        """Read a durable value from the post-crash NVRAM image."""
        return self.nvram.get(addr, default)
