"""The cycle-accounting cost model.

All "time" reported by the simulator is in model cycles.  The constants
are back-derived from the paper's own measurements so the relative
behaviour matches by construction:

- Table IV's instruction counts give ~62 instructions of computation
  per persistent store (BEST: 2.56G instructions / 41M stores) and the
  per-store instrumentation costs of each technique (AT ~19, SC ~24);
- Table I's eager slowdowns (22x on ~62-instruction stores) then pin
  the end-to-end cost of a serialised flush at ~1900 cycles — the
  clflush + fence + NVRAM-write path of the emulated platform;
- the hardware-cache re-fill after an invalidating flush costs an
  NVRAM read (~100 cycles), §II-A's indirect cost.

Mechanically:

- ``clflush`` to (emulated) NVRAM is expensive and serialising — several
  hundred nanoseconds once fencing is accounted for.  Eager flushing of
  every store therefore throttles the CPU to the flush service rate,
  giving the order-of-magnitude slowdowns of Table I.
- An asynchronous flush only charges the CPU its *issue* cost as long as
  the flush queue has room; the write-back itself overlaps with
  computation ("the eager solution has the benefit of hiding memory
  transfer cost via asynchronous cache line flushes").
- A synchronous drain at the end of a FASE stalls until the queue is
  empty — the lazy solution's weakness ("the CPU stall at the end of a
  FASE severely hurts performance").
- ``clflush`` invalidates, so the next access to a flushed line misses in
  the hardware cache; the simulator charges that indirect cost through
  the cache model, not through a constant.

Per-store software bookkeeping costs are properties of the *techniques*
(see :mod:`repro.cache.policies`) and are expressed in the same cycle
units; Table IV's "SC executes ~8% more instructions than AT" emerges
from those constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class TimingModel:
    """Cycle costs of the simulated machine.

    Attributes
    ----------
    cpi:
        Cycles per plain instruction (``Work`` units and bookkeeping).
    l1_hit:
        Cycles for a load/store that hits the hardware cache.
    l1_miss:
        Additional cycles for a hardware-cache miss (line fill).
    flush_issue:
        CPU-visible cost of issuing one ``clflush`` (decode + queue
        insert); paid whether or not the line is dirty.
    writeback_service:
        Memory-channel occupancy of one cache-line write-back to NVRAM.
        This is the asynchronous part: it only stalls the CPU when the
        flush queue is full or on a synchronous drain.
    flush_queue_depth:
        Outstanding flushes the hardware can buffer before the CPU blocks.
    """

    cpi: float = 1.0
    l1_hit: int = 1
    l1_miss: int = 100
    flush_issue: int = 800
    writeback_service: int = 1900
    flush_queue_depth: int = 8

    def __post_init__(self) -> None:
        if self.cpi <= 0:
            raise ConfigurationError("cpi must be positive")
        for name in ("l1_hit", "l1_miss", "flush_issue", "writeback_service"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.flush_queue_depth < 1:
            raise ConfigurationError("flush_queue_depth must be >= 1")


#: The model used by the experiment harness unless overridden.
DEFAULT_TIMING = TimingModel()
