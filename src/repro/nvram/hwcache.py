"""A set-associative write-back hardware cache with flush operations.

The cache models the part of the memory hierarchy the paper's problem
lives in: "at any point of program execution, some of the updates to
persistent memory may only reside in CPU caches and have not yet
propagated to NVRAM" (§I).  It provides:

- ``access(line, is_write)`` — a load or store at cache-line granularity
  with LRU replacement within the set; write-allocate, write-back.
- ``clflush(line)`` — write back if dirty and *invalidate*, the operation
  Atlas uses; the invalidation is why "the next access will be a cache
  miss" (§II-A), the indirect flush cost the software cache reduces.
- ``clwb(line)`` — write back without invalidating (modelled for the
  ablation study; the paper notes Atlas avoids it for visibility
  reasons).
- value tracking per dirty line, so write-backs carry real data into
  simulated NVRAM for crash/recovery tests.

Sets use ``OrderedDict`` for O(1) LRU: lookup, move-to-end on touch,
pop-first on eviction.  When several simulated threads share the cache,
capacity contention between them arises naturally — the effect behind
Table IV's rising L1 miss ratios.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError


class HardwareCache:
    """A ``capacity_lines``-line, ``ways``-way set-associative cache.

    Parameters
    ----------
    capacity_lines:
        Total capacity in cache lines (must be a multiple of ``ways``).
    ways:
        Associativity.  ``ways == capacity_lines`` gives a fully
        associative cache.
    track_values:
        When true, dirty lines carry an ``{addr: value}`` payload that is
        handed to the write-back sink on eviction or flush.
    """

    __slots__ = (
        "num_sets",
        "ways",
        "track_values",
        "sets",
        "values",
        "loads",
        "stores",
        "load_misses",
        "store_misses",
        "evict_writebacks",
        "flush_writebacks",
        "clean_flushes",
    )

    def __init__(
        self, capacity_lines: int = 512, ways: int = 8, track_values: bool = False
    ) -> None:
        if capacity_lines < 1 or ways < 1:
            raise ConfigurationError("capacity and ways must be >= 1")
        if capacity_lines % ways:
            raise ConfigurationError(
                f"capacity {capacity_lines} not a multiple of ways {ways}"
            )
        self.num_sets = capacity_lines // ways
        self.ways = ways
        self.track_values = track_values
        # One OrderedDict per set: line -> dirty flag, LRU order = insertion order.
        self.sets: List[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Pending (not yet written back) values per dirty line.
        self.values: Dict[int, Dict[int, object]] = {}
        self.loads = 0
        self.stores = 0
        self.load_misses = 0
        self.store_misses = 0
        self.evict_writebacks = 0
        self.flush_writebacks = 0
        self.clean_flushes = 0

    # ------------------------------------------------------------------

    def access(
        self, line: int, is_write: bool
    ) -> Tuple[bool, Optional[Tuple[int, bool]]]:
        """Touch ``line``; return ``(hit, evicted)``.

        ``evicted`` is ``(victim_line, was_dirty)`` when the fill displaced
        a line, else ``None``.  Dirty evictions are write-backs the caller
        must route to memory (they occupy the memory channel but do not
        count as persistence flushes).
        """
        cache_set = self.sets[line % self.num_sets]
        if is_write:
            self.stores += 1
        else:
            self.loads += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            return True, None
        # Miss: fill (write-allocate), evict LRU if the set is full.
        if is_write:
            self.store_misses += 1
        else:
            self.load_misses += 1
        evicted: Optional[Tuple[int, bool]] = None
        if len(cache_set) >= self.ways:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                self.evict_writebacks += 1
            evicted = (victim, dirty)
        cache_set[line] = is_write
        return False, evicted

    def store_value(self, line: int, addr: int, value: object) -> None:
        """Attach a value to a dirty line (value-tracking mode only)."""
        self.values.setdefault(line, {})[addr] = value

    def take_values(self, line: int) -> Dict[int, object]:
        """Remove and return the pending values of ``line`` (may be empty)."""
        return self.values.pop(line, {})

    # ------------------------------------------------------------------

    def clflush(self, line: int) -> bool:
        """Flush-and-invalidate; return True when a write-back happened."""
        cache_set = self.sets[line % self.num_sets]
        dirty = cache_set.pop(line, None)
        if dirty is None:
            self.clean_flushes += 1
            return False
        if dirty:
            self.flush_writebacks += 1
            return True
        self.clean_flushes += 1
        return False

    def clwb(self, line: int) -> bool:
        """Write back without invalidating; return True on write-back."""
        cache_set = self.sets[line % self.num_sets]
        if line not in cache_set:
            self.clean_flushes += 1
            return False
        if cache_set[line]:
            cache_set[line] = False
            self.flush_writebacks += 1
            return True
        self.clean_flushes += 1
        return False

    def contains(self, line: int) -> bool:
        """True when ``line`` is currently cached."""
        return line in self.sets[line % self.num_sets]

    def is_dirty(self, line: int) -> bool:
        """True when ``line`` is cached and dirty."""
        return self.sets[line % self.num_sets].get(line, False)

    def dirty_lines(self) -> List[int]:
        """All currently dirty lines (the data lost in a crash)."""
        out: List[int] = []
        for cache_set in self.sets:
            out.extend(line for line, dirty in cache_set.items() if dirty)
        return out

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total loads + stores."""
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        """Total load + store misses."""
        return self.load_misses + self.store_misses

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio (0 when no accesses happened)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"HardwareCache(sets={self.num_sets}, ways={self.ways}, "
            f"mr={self.miss_ratio:.3f})"
        )
