"""Sharded execution: scale *within* one run by partitioning line space.

``Machine.run`` is single-process by construction; grids parallelize
across cells, but one large simulation still runs on one core.  This
module splits a run into ``num_shards`` independent sub-simulations by
spatially hashing cache-line ids (the SHARDS hash,
:func:`repro.locality.shards.shard_of_lines`), so shards can simulate
concurrently — in-process here, across worker processes in
``repro.experiments.parallel.run_sharded_parallel``.

**The drain-barrier merge rule.**  Every built-in technique fully drains
at the end of an *outermost* FASE: SC empties its write-combining cache,
LA flushes its pending set, AT drains its table (enforced by
``tests/test_policies.py``).  Outermost-FASE ends are therefore *renewal
points* — no technique state survives them — and the shard machines,
which replicate every FASE boundary, are mutually independent between
consecutive drain barriers.  Shard results may consequently be merged
exactly at any barrier (in particular at the end of the run): counters
that partition by line sum across shards; replicated quantities (FASE
count) take the per-shard value; wall-clock takes the slowest shard.
:func:`split_batches` cuts every shard substream's batch boundaries on
drain barriers so the chunk structure mirrors the merge rule.

**What the split preserves bit-identically.**  Stores and loads route
whole to the shard of their first line; FASE begin/end markers replicate
to every shard; ``Work(n)`` splits into near-equal integer parts that
sum to ``n``.  For techniques whose flush decisions are per-store or
per-(FASE, line) set properties — ER, LA, BEST — the merged result's
store, load, flush (every category) and instruction counters equal the
unsharded machine's **bit for bit** whenever no store spans a
shard boundary (``split stats["cross_shard_spans"] == 0``; multi-line
stores travel with their first line, so a span crossing shards can
double-count one line in LA's per-FASE distinct set).  Capacity-driven
techniques (SC, AT) evict in LRU/occupancy order over the *global*
within-FASE interleaving, which no line partition preserves; for them —
and for hardware-cache and cycle/stall counters generally — the sharded
run is a documented model variant (per-shard caches at
``capacity / num_shards``, the partitioning
:func:`shard_machine_config` applies), and the guarantee is
determinism: concurrent execution is bit-identical to the sequential
shard-by-shard reference for *every* technique and counter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.events import BATCH_CHUNK, EventBatch, EventKind
from repro.locality.shards import shard_of_lines
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.stats import RunResult, ThreadStats
from repro.workloads.base import PrebuiltBatchWorkload, Workload

#: Outermost FASEs per barrier-aligned batch cut.  Any multiple of a
#: drain barrier is still a drain barrier; cutting on every single FASE
#: end would shred FASE-heavy streams into tiny batches.
DEFAULT_BARRIER_EVERY = 64


def shard_machine_config(config: MachineConfig, num_shards: int) -> MachineConfig:
    """The per-shard machine geometry: the L1 partitioned across shards.

    Total hardware capacity is conserved (each shard machine gets
    ``capacity / num_shards``, rounded down to whole sets, floor one
    set), mirroring how the line space itself is partitioned.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    capacity = config.l1_capacity_lines // num_shards
    capacity -= capacity % config.l1_ways
    capacity = max(config.l1_ways, capacity)
    return replace(config, l1_capacity_lines=capacity)


# ---------------------------------------------------------------------------
# Stream splitting
# ---------------------------------------------------------------------------


def split_batches(
    batches: Iterable[EventBatch],
    num_shards: int,
    barrier_every: int = DEFAULT_BARRIER_EVERY,
) -> tuple:
    """Split one thread's batch stream into ``num_shards`` substreams.

    Returns ``(per_shard, stats)``: ``per_shard[s]`` is the list of
    barrier-aligned :class:`EventBatch` chunks shard ``s`` executes, and
    ``stats`` records what the split did (event conservation inputs and
    the ``cross_shard_spans`` count the exactness guarantee checks).
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if barrier_every < 1:
        raise ConfigurationError(f"barrier_every must be >= 1, got {barrier_every}")
    builders = [EventBatch() for _ in range(num_shards)]
    out: List[List[EventBatch]] = [[] for _ in range(num_shards)]
    stats = {
        "events": 0,
        "stores": 0,
        "loads": 0,
        "work_amount": 0,
        "fases": 0,
        "barriers": 0,
        "cross_shard_spans": 0,
    }
    depth = 0
    kind_store = EventKind.STORE
    kind_load = EventKind.LOAD
    kind_work = EventKind.WORK
    kind_begin = EventKind.FASE_BEGIN
    for batch in batches:
        kinds = batch.kinds.tolist()
        args = batch.args.tolist()
        sizes = batch.sizes.tolist()
        n = len(kinds)
        stats["events"] += n
        if n == 0:
            continue
        # Shard of every event's first line, vectorised; only consulted
        # for stores/loads (>> 6 == line_of for the 64-byte line size).
        shards = shard_of_lines(
            np.array(args, dtype=np.int64) >> 6, num_shards
        ).tolist()
        for i in range(n):
            kind = kinds[i]
            if kind == kind_store or kind == kind_load:
                shard = shards[i]
                builder = builders[shard]
                builder.kinds.append(kind)
                builder.args.append(args[i])
                builder.sizes.append(sizes[i])
                if kind == kind_store:
                    stats["stores"] += 1
                else:
                    stats["loads"] += 1
                first = args[i] >> 6
                last = (args[i] + max(1, sizes[i]) - 1) >> 6
                if last != first:
                    span = np.arange(first, last + 1, dtype=np.int64)
                    if bool((shard_of_lines(span, num_shards) != shard).any()):
                        stats["cross_shard_spans"] += 1
            elif kind == kind_work:
                amount = args[i]
                stats["work_amount"] += amount
                base, rem = divmod(amount, num_shards)
                for shard in range(num_shards):
                    part = base + (1 if shard < rem else 0)
                    if part:
                        builder = builders[shard]
                        builder.kinds.append(kind_work)
                        builder.args.append(part)
                        builder.sizes.append(0)
            elif kind == kind_begin:
                depth += 1
                for builder in builders:
                    builder.append_fase_begin()
            else:  # FASE_END
                depth -= 1
                for builder in builders:
                    builder.append_fase_end()
                if depth == 0:
                    stats["fases"] += 1
                    if stats["fases"] % barrier_every == 0:
                        stats["barriers"] += 1
                        for shard in range(num_shards):
                            if len(builders[shard]):
                                out[shard].append(builders[shard])
                                builders[shard] = EventBatch()
        # Bound chunk size between barriers (a cut inside a FASE is just
        # a chunk boundary; barrier alignment concerns merge points).
        for shard in range(num_shards):
            if len(builders[shard]) >= BATCH_CHUNK:
                out[shard].append(builders[shard])
                builders[shard] = EventBatch()
    for shard in range(num_shards):
        if len(builders[shard]):
            out[shard].append(builders[shard])
    return out, stats


def split_workload(
    workload: Workload,
    num_threads: int,
    seed: int,
    num_shards: int,
    barrier_every: int = DEFAULT_BARRIER_EVERY,
) -> tuple:
    """Materialize and split every thread's stream.

    Returns ``(per_shard, stats)`` where ``per_shard[s][t]`` is thread
    ``t``'s batch list for shard ``s`` and ``stats`` aggregates the
    per-thread split stats.
    """
    streams = workload.batch_streams(num_threads, seed)
    if streams is None:
        from repro.common.events import batches_from_events

        streams = [
            batches_from_events(s) for s in workload.streams(num_threads, seed)
        ]
    per_shard: List[List[List[EventBatch]]] = [
        [] for _ in range(num_shards)
    ]
    totals: Dict[str, int] = {}
    for stream in streams:
        split, stats = split_batches(stream, num_shards, barrier_every)
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
        for shard in range(num_shards):
            per_shard[shard].append(split[shard])
    return per_shard, totals


# ---------------------------------------------------------------------------
# Execution and merging
# ---------------------------------------------------------------------------

#: ThreadStats counters that partition by line/event and therefore sum.
_SUMMED_FIELDS = (
    "instructions",
    "persistent_stores",
    "persistent_loads",
    "flushes",
    "eviction_flushes",
    "fase_end_flushes",
    "eager_flushes",
    "log_flushes",
    "final_flushes",
    "stall_cycles",
    "technique_overhead_cycles",
    "adaptation_cycles",
)


def merge_shard_results(shard_results: Sequence[RunResult]) -> RunResult:
    """Apply the drain-barrier merge rule to per-shard results.

    Per thread: partitioned counters sum across shards; ``cycles`` is
    the slowest shard's clock (shards run concurrently); ``fase_count``
    is the replicated per-shard value; ``selected_sizes`` concatenates
    in shard order.  Hardware counters sum.  Traces are never merged
    (shard-local recording order does not define a global order).
    """
    if not shard_results:
        raise ConfigurationError("no shard results to merge")
    first = shard_results[0]
    num_threads = first.num_threads
    for r in shard_results[1:]:
        if r.num_threads != num_threads:
            raise ConfigurationError(
                "shard results disagree on thread count: "
                f"{r.num_threads} != {num_threads}"
            )
    threads: List[ThreadStats] = []
    for t in range(num_threads):
        per = [r.threads[t] for r in shard_results]
        merged = ThreadStats(thread_id=per[0].thread_id)
        for name in _SUMMED_FIELDS:
            setattr(merged, name, sum(getattr(p, name) for p in per))
        merged.cycles = max(p.cycles for p in per)
        fase_counts = {p.fase_count for p in per}
        if len(fase_counts) != 1:
            raise ConfigurationError(
                f"shards of thread {t} disagree on fase_count {sorted(fase_counts)}; "
                f"FASE markers must replicate to every shard"
            )
        merged.fase_count = fase_counts.pop()
        merged.selected_sizes = [s for p in per for s in p.selected_sizes]
        threads.append(merged)
    return RunResult(
        workload=first.workload,
        technique=first.technique,
        num_threads=num_threads,
        threads=threads,
        l1_accesses=sum(r.l1_accesses for r in shard_results),
        l1_misses=sum(r.l1_misses for r in shard_results),
        traces=None,
        crashed=any(r.crashed for r in shard_results),
    )


def run_one_shard(
    shard_config: MachineConfig,
    name: str,
    technique_factory: Callable,
    per_thread_batches: Sequence[Sequence[EventBatch]],
    seed: int = 0,
) -> RunResult:
    """Execute one shard's substreams on a fresh per-shard machine.

    The single execution path both the sequential reference and the
    process-parallel driver call — which is what makes "concurrent ==
    sequential" a structural property rather than a coincidence.
    """
    workload = PrebuiltBatchWorkload(name, per_thread_batches)
    machine = Machine(shard_config)
    return machine.run(
        workload,
        technique_factory,
        num_threads=len(per_thread_batches),
        seed=seed,
        use_batches=True,
    )


@dataclass
class ShardedRun:
    """Everything one sharded execution produced."""

    merged: RunResult           # the drain-barrier merge of all shards
    shards: List[RunResult]     # per-shard results, in shard order
    split_stats: Dict[str, int]  # event-conservation / exactness stats
    num_shards: int


def run_sharded(
    config: MachineConfig,
    workload: Workload,
    technique_factory: Callable,
    *,
    num_threads: int = 1,
    seed: int = 0,
    num_shards: int = 2,
    barrier_every: int = DEFAULT_BARRIER_EVERY,
) -> ShardedRun:
    """The sequential sharded reference: shards run in-process, in order.

    ``technique_factory`` is the per-thread factory ``Machine.run``
    takes; it is invoked once per (shard, thread), so factories must be
    reusable (every ``repro.cache.spec.technique_factory`` product is).
    """
    per_shard, stats = split_workload(
        workload, num_threads, seed, num_shards, barrier_every
    )
    shard_config = shard_machine_config(config, num_shards)
    name = getattr(workload, "name", "sharded")
    shards = [
        run_one_shard(shard_config, name, technique_factory, per_shard[s], seed)
        for s in range(num_shards)
    ]
    return ShardedRun(
        merged=merge_shard_results(shards),
        shards=shards,
        split_stats=stats,
        num_shards=num_shards,
    )
