"""Simulated NVRAM machine — the substrate replacing the paper's emulator.

The paper evaluates on a 60-core Xeon where tmpfs-backed DRAM emulates
NVRAM; flush counts come from software accounting and L1 miss ratios from
perf counters.  We replace that testbed with a deterministic simulator
that measures the same architectural quantities directly:

- :mod:`repro.nvram.memory` — the physical address space: a DRAM region
  and an NVRAM region (the persistence domain), with value tracking for
  crash/recovery testing.
- :mod:`repro.nvram.hwcache` — a set-associative write-back hardware
  cache with ``clflush`` (write back + invalidate, what Atlas uses) and
  ``clwb`` (write back, keep) operations and hit/miss/write-back counters.
- :mod:`repro.nvram.flushqueue` — the asynchronous flush engine: a
  bounded queue over a serialised memory channel.  Flushes issued during
  computation overlap with it; a drain (end of FASE) stalls the CPU until
  the queue empties.  This is where eager flushing hides latency and lazy
  flushing pays the stall the paper describes.
- :mod:`repro.nvram.timing` — the cycle-accounting cost model.
- :mod:`repro.nvram.machine` — executes per-thread event streams against
  the cache, the flush queue and a persistence technique.
- :mod:`repro.nvram.failure` — crash injection: at a crash, dirty lines
  still in the hardware cache are lost; only written-back values survive
  in NVRAM.
"""

from repro.nvram.timing import TimingModel
from repro.nvram.memory import MainMemory, NVRAM_BASE
from repro.nvram.hwcache import HardwareCache
from repro.nvram.flushqueue import FlushQueue
from repro.nvram.machine import Machine, MachineConfig, FlushPort
from repro.nvram.stats import ThreadStats, RunResult
from repro.nvram.failure import CrashPlan, CrashedState

__all__ = [
    "TimingModel",
    "MainMemory",
    "NVRAM_BASE",
    "HardwareCache",
    "FlushQueue",
    "Machine",
    "MachineConfig",
    "FlushPort",
    "ThreadStats",
    "RunResult",
    "CrashPlan",
    "CrashedState",
]
