"""The asynchronous flush engine.

Cache-line write-backs to NVRAM travel through a bounded queue over a
serialised memory channel.  The model captures the two behaviours the
paper's techniques trade off:

- *Overlap*: a flush issued while the queue has room costs the CPU only
  the issue overhead; the write-back proceeds in the background.  This is
  how eager flushing "hides memory transfer cost via asynchronous cache
  line flushes" — until the queue saturates, at which point the CPU is
  throttled to the write-back service rate (Table I's slowdowns).
- *Drain stall*: at the end of a FASE all buffered dirty lines must be
  durable before the FASE can commit, so the CPU waits for the queue to
  empty.  The lazy technique pays this for its entire working set; the
  software cache bounds it by capping its size (§III-C).

The queue is shared by all threads (one memory channel), so heavy
flushing by one thread delays the others — a second-order effect the
paper attributes contention to.

All times are absolute model cycles supplied by the caller's clock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.common.errors import ConfigurationError


class FlushQueue:
    """A depth-bounded FIFO over a serialised write-back channel."""

    __slots__ = ("depth", "service", "pending", "last_completion", "issued", "busy_until")

    def __init__(self, depth: int = 8, service: int = 250) -> None:
        if depth < 1:
            raise ConfigurationError("queue depth must be >= 1")
        if service < 0:
            raise ConfigurationError("service time must be non-negative")
        self.depth = depth
        self.service = service
        self.pending: Deque[int] = deque()       # completion times, ascending
        self.last_completion = 0                 # channel serialisation point
        self.issued = 0

    def _reap(self, now: int) -> None:
        pending = self.pending
        while pending and pending[0] <= now:
            pending.popleft()

    def issue(self, now: int) -> Tuple[int, int]:
        """Issue one write-back at cycle ``now``.

        Returns ``(new_now, stall)``: if the queue was full the CPU waited
        ``stall`` cycles for a slot.  The write-back completes in the
        background.
        """
        self._reap(now)
        stall = 0
        if len(self.pending) >= self.depth:
            # Wait until the oldest of the last `depth` entries completes.
            free_at = self.pending[len(self.pending) - self.depth]
            stall = free_at - now
            now = free_at
            self._reap(now)
        start = max(now, self.last_completion)
        done = start + self.service
        self.pending.append(done)
        self.last_completion = done
        self.issued += 1
        return now, stall

    def drain(self, now: int) -> Tuple[int, int]:
        """Wait at cycle ``now`` until every issued write-back is durable.

        Returns ``(new_now, stall)``.
        """
        stall = 0
        if self.pending:
            last = self.pending[-1]
            if last > now:
                stall = last - now
                now = last
            self.pending.clear()
        return now, stall

    @property
    def outstanding(self) -> int:
        """Entries not yet known to have completed (approximate)."""
        return len(self.pending)
