"""The simulated physical address space.

Addresses at or above :data:`NVRAM_BASE` form the *persistence domain* —
the byte-addressable non-volatile region the paper's tmpfs emulation
stands in for.  Addresses below it are ordinary volatile DRAM (where the
software cache itself lives; the paper places it "in the faster DRAM,
rather than NVRAM").

For crash/recovery testing the NVRAM region tracks actual values: a store
becomes *durable* only when its cache line is written back (evicted dirty
or flushed).  :class:`MainMemory` therefore exposes ``write_back`` — the
only way values enter NVRAM — and a read path that recovery code uses
after a simulated power failure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.common.errors import SimulationError

#: Start of the persistence domain.  Everything at or above this byte
#: address survives a crash once written back.
NVRAM_BASE: int = 0x1000_0000


class MainMemory:
    """Backing store: volatile DRAM plus non-volatile NVRAM.

    Values are Python objects keyed by byte address.  Workloads that only
    study flush *counts* never materialise values (they pass
    ``value=None`` in their stores) and pay no bookkeeping here.
    """

    __slots__ = ("nvram", "dram", "writebacks")

    def __init__(self) -> None:
        self.nvram: Dict[int, object] = {}
        self.dram: Dict[int, object] = {}
        self.writebacks: int = 0

    @staticmethod
    def is_persistent(addr: int) -> bool:
        """True when ``addr`` lies in the persistence domain."""
        return addr >= NVRAM_BASE

    def write_back(self, values: Iterable[Tuple[int, object]]) -> None:
        """Make ``(addr, value)`` pairs durable (a cache-line write-back)."""
        self.writebacks += 1
        for addr, value in values:
            if addr >= NVRAM_BASE:
                self.nvram[addr] = value
            else:
                self.dram[addr] = value

    def read(self, addr: int, default: object = None) -> object:
        """Read the durable value at ``addr`` (post-write-back state)."""
        if addr >= NVRAM_BASE:
            return self.nvram.get(addr, default)
        return self.dram.get(addr, default)

    def nvram_snapshot(self) -> Dict[int, object]:
        """A copy of the NVRAM contents (what survives a crash)."""
        return dict(self.nvram)

    def require_persistent(self, addr: int) -> None:
        """Raise unless ``addr`` is in the persistence domain."""
        if addr < NVRAM_BASE:
            raise SimulationError(
                f"address {addr:#x} is below NVRAM_BASE {NVRAM_BASE:#x}"
            )
