"""The simulated machine: event streams × technique × cache × flush engine.

``Machine.run`` executes a workload's per-thread event streams against

- one shared hardware cache (threads contend for capacity, the effect
  behind Table IV's rising L1 miss ratios),
- one asynchronous flush queue *per thread* (clflush ordering is a
  per-core constraint; the emulated NVRAM behind it is DRAM with
  bandwidth to spare, as on the paper's testbed), and
- one *persistence technique instance per thread* (the paper's software
  caches are strictly per-thread, §II-B: "There is no data sharing
  between software caches").

Threads are interleaved deterministically by smallest-cycle-first
scheduling: the thread whose clock is furthest behind runs the next batch
of events.  Wall-clock time of a run is the largest per-thread clock.

The technique object is duck-typed (see :mod:`repro.cache.policies`): the
machine calls ``bind(port)``, ``on_store(line)``, ``on_fase_begin()``,
``on_fase_end()`` (outermost FASEs only) and ``finish()``, and reads the
``cost_per_store`` attribute for per-store bookkeeping cycles.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import Event, EventBatch, EventKind
from repro.common.geometry import lines_spanned
from repro.locality.trace import WriteTrace
from repro.nvram.failure import (
    _ABSENT,
    FAULT_CLEAN,
    FAULT_REORDERED_FLUSH,
    FAULT_TORN_LINE,
    SITE_COMMIT,
    SITE_DRAIN,
    SITE_EVICT_FLUSH,
    SITE_LOG_APPEND,
    SITE_STORE,
    CrashedState,
    CrashPlan,
    PowerFailure,
    apply_reordered_flushes,
    apply_torn_lines,
)
from repro.nvram.flushqueue import FlushQueue
from repro.nvram.hwcache import HardwareCache
from repro.nvram.memory import NVRAM_BASE, MainMemory
from repro.nvram.stats import RunResult, ThreadStats
from repro.nvram.timing import DEFAULT_TIMING, TimingModel
from repro.obs.trace import (
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_SIZE_SELECTED,
    EV_STALL,
    NULL_RECORDER,
)

#: Events a thread executes before the scheduler re-evaluates clocks.
SCHED_BATCH = 64

#: Flush categories that are injectable crash sites, and their class.
#: ``fase_end``/``eager``/``final`` flushes are not individually
#: injectable — the synchronous drain that follows them is the ordering
#: point, and it gets its own :data:`~repro.nvram.failure.SITE_DRAIN`.
_FLUSH_SITE = {
    "eviction": SITE_EVICT_FLUSH,
    "resize_eviction": SITE_EVICT_FLUSH,
    "clean": SITE_EVICT_FLUSH,
    "victim": SITE_EVICT_FLUSH,
    "log": SITE_LOG_APPEND,
    "commit": SITE_COMMIT,
}

#: ``evict_flush`` trace-event cause codes (the event's ``cause`` arg).
#: 0/1 are the schema-2 ``resize_evict`` flag values, so traces of the
#: base techniques are byte-identical across the rename; 2..4 only
#: appear when the corresponding policy stage is composed in.
_EVICT_TRACE_CAUSE = {
    "eviction": 0,
    "resize_eviction": 1,
    "clean": 2,
    "bypass": 3,
    "victim": 4,
}


@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of the simulated machine."""

    timing: TimingModel = DEFAULT_TIMING
    l1_capacity_lines: int = 512      # 32 KiB of 64-byte lines
    l1_ways: int = 8
    track_values: bool = False        # needed for crash/recovery tests

    def __post_init__(self) -> None:
        if self.l1_capacity_lines < self.l1_ways:
            raise ConfigurationError("cache must hold at least one set")


class FlushPort:
    """The interface a persistence technique uses to act on the machine.

    One port per thread.  All flush accounting (counts by category, stall
    cycles, value write-backs) funnels through here.
    """

    __slots__ = ("_machine", "_ctx")

    def __init__(self, machine: "Machine", ctx: "_ThreadContext") -> None:
        self._machine = machine
        self._ctx = ctx

    # -- flushing ------------------------------------------------------

    def flush_async(
        self, line: int, category: str = "eviction", invalidate: bool = True
    ) -> None:
        """Issue one flush; the write-back overlaps with execution.

        ``invalidate=True`` models ``clflush`` (what Atlas uses);
        ``invalidate=False`` models ``clwb``, which writes back but keeps
        the line valid — cheaper on the next access, at the coherence
        caveat §II-A notes.
        """
        self._machine._do_flush(self._ctx, line, category, invalidate)

    def flush_sync(
        self,
        lines: Iterable[int],
        category: str = "fase_end",
        invalidate: bool = True,
    ) -> None:
        """Flush ``lines`` and stall until all write-backs are durable."""
        machine = self._machine
        ctx = self._ctx
        for line in lines:
            machine._do_flush(ctx, line, category, invalidate)
        machine._do_drain(ctx, category)

    # -- bookkeeping -----------------------------------------------------

    def add_overhead(self, cycles: int, instructions: int = 0) -> None:
        """Charge technique bookkeeping (e.g. MRC analysis) to the thread."""
        stats = self._ctx.stats
        stats.cycles += cycles
        stats.instructions += instructions
        stats.technique_overhead_cycles += cycles

    def add_adaptation_cost(self, cycles: int) -> None:
        """Charge online adaptation (sampling analysis, size selection)."""
        stats = self._ctx.stats
        stats.cycles += cycles
        stats.adaptation_cycles += cycles

    def record_selected_size(self, size: int) -> None:
        """Log an adaptive cache-size decision."""
        ctx = self._ctx
        ctx.stats.selected_sizes.append(size)
        machine = self._machine
        if machine.metrics is not None:
            # The post-adaptation gauge series starts at the thread's
            # *first* selection (see Machine._sample_metrics).
            tid = ctx.thread_id
            machine._selected_size[tid] = size
            machine._first_selection.setdefault(tid, ctx.stats.cycles)
        rec = machine.recorder
        if rec.enabled:
            rec.record(EV_SIZE_SELECTED, ctx.thread_id, ctx.stats.cycles, size)

    def record_event(self, kind: str, a: int = 0, b: int = 0, c: int = 0) -> None:
        """Emit one structured trace event at the thread's current time.

        A no-op when tracing is off — techniques and controllers call
        this unconditionally; the ``enabled`` gate keeps the cost to one
        attribute load.
        """
        rec = self._machine.recorder
        if rec.enabled:
            ctx = self._ctx
            rec.record(kind, ctx.thread_id, ctx.stats.cycles, a, b, c)

    # -- context ---------------------------------------------------------

    @property
    def current_fase_id(self) -> int:
        """Unique id of the current outermost FASE, or -1 outside any."""
        return self._ctx.fase_uid if self._ctx.fase_depth > 0 else -1

    @property
    def thread_id(self) -> int:
        """Id of the thread this port belongs to."""
        return self._ctx.thread_id

    @property
    def outstanding(self) -> int:
        """Write-backs still in flight in this thread's flush queue.

        Zero means the flush engine is idle — the signal the background
        cleaning stage uses to spend write-back bandwidth the program
        is not using.
        """
        return self._ctx.flushq.outstanding


class _ThreadContext:
    """Mutable per-thread execution state (internal)."""

    __slots__ = (
        "thread_id",
        "stream",
        "technique",
        "flushq",
        "stats",
        "port",
        "fase_depth",
        "fase_uid",
        "commit_fase_uid",
        "next_fase_uid",
        "trace_lines",
        "trace_fids",
        "alive",
        "batch_iter",
        "batch",
        "batch_pos",
        "batch_cols",
    )

    def __init__(
        self,
        thread_id: int,
        stream: Iterator[Event],
        technique: object,
        record_trace: bool,
    ) -> None:
        self.thread_id = thread_id
        self.stream = stream
        self.technique = technique
        # Batched execution state (None when driven by a per-object stream).
        self.batch_iter: Optional[Iterator[EventBatch]] = None
        self.batch: Optional[EventBatch] = None
        self.batch_pos = 0
        self.batch_cols: Optional[Tuple[list, list, list]] = None
        self.flushq: Optional[FlushQueue] = None
        self.stats = ThreadStats(thread_id=thread_id)
        self.port: Optional[FlushPort] = None
        self.fase_depth = 0
        self.fase_uid = -1
        # Uid of the FASE currently committing: set just before the
        # technique's on_fase_end() runs (the drain it triggers happens
        # at depth 0, after fase_uid stops being "current"), cleared
        # implicitly by the next FASE.  -1 outside any commit.
        self.commit_fase_uid = -1
        # FASE uids unique across threads: thread_id in the high bits.
        self.next_fase_uid = thread_id << 40
        self.trace_lines: Optional[List[int]] = [] if record_trace else None
        self.trace_fids: Optional[List[int]] = [] if record_trace else None
        self.alive = True


class Machine:
    """Executes workloads under a persistence technique.

    Parameters
    ----------
    config:
        Machine configuration (timing model, cache geometry).
    recorder:
        Structured trace recorder (keyword-only); defaults to the
        disabled ``NULL_RECORDER``.
    metrics:
        Metrics registry (keyword-only); default ``None`` disables
        sampling entirely.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *args: object,
        recorder: Optional[object] = None,
        metrics: Optional[object] = None,
    ) -> None:
        if args:
            # Deprecation shim: Machine(config, recorder, metrics) used to
            # accept these positionally.  Remove after one release.
            warnings.warn(
                "passing recorder/metrics to Machine() positionally is "
                "deprecated; use the recorder=/metrics= keywords",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2:
                raise TypeError(
                    f"Machine() takes at most 3 positional arguments "
                    f"({3 + len(args)} given)"
                )
            if recorder is None:
                recorder = args[0]
            if len(args) == 2 and metrics is None:
                metrics = args[1]
        self.config = config or MachineConfig()
        self.memory = MainMemory()
        self.hwcache = HardwareCache(
            self.config.l1_capacity_lines,
            self.config.l1_ways,
            track_values=self.config.track_values,
        )
        # Observability is strictly opt-in: the default NULL_RECORDER has
        # ``enabled = False``, which every recording site checks first,
        # so an untraced run does no extra work (DESIGN.md §9).
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics
        self._metrics_prev: dict = {}
        # Post-adaptation gauge state: thread id -> cycle of its first
        # size selection / its current selected size (metrics only).
        self._first_selection: dict = {}
        self._selected_size: dict = {}
        self._stores_seen = 0
        self._crash_plan: Optional[CrashPlan] = None
        self.crashed_state: Optional[CrashedState] = None
        # Crash-site machinery (repro.faults).  ``_sites_active`` gates
        # every site hook with one attribute load, so runs that neither
        # enumerate sites nor carry an at_site plan pay nothing.
        self._sites_active = False
        self._sites_seen = 0
        self._site_log: Optional[List[Tuple[int, str, int, int]]] = None
        # In-flight hardware eviction write-backs, recorded only when a
        # reordered_flush plan is armed: (ctx, line, {addr: old durable}).
        self._record_inflight = False
        self._fault_inflight: List[Tuple[object, int, Dict[int, object]]] = []

    def _new_flushq(self) -> FlushQueue:
        t = self.config.timing
        return FlushQueue(t.flush_queue_depth, t.writeback_service)

    # ------------------------------------------------------------------
    # Crash-site enumeration and scheduled failures (repro.faults)
    # ------------------------------------------------------------------

    def record_sites(self) -> List[Tuple[int, str, int, int]]:
        """Enable crash-site enumeration; returns the live site log.

        Each completed injectable site appends one
        ``(index, site_class, thread_id, cycles)`` tuple.  Indices are
        global and in execution order; a deterministic replay of the same
        configuration visits the same sites with the same indices, which
        is the contract ``CrashPlan(at_site=...)`` relies on.
        """
        self._site_log = []
        self._sites_active = True
        return self._site_log

    @property
    def sites_seen(self) -> int:
        """How many injectable sites have completed so far."""
        return self._sites_seen

    def arm_crash_plan(self, plan: Optional[CrashPlan]) -> None:
        """Schedule a crash for session-driven execution.

        ``Machine.run`` arms its ``crash_plan`` argument through here;
        imperative drivers (sessions / the Atlas runtime) call it
        directly before pushing operations.  A site-triggered crash
        raises :class:`~repro.nvram.failure.PowerFailure` out of the
        operation that completed the site, with ``crashed_state``
        already populated.
        """
        self._crash_plan = plan
        if plan is None:
            return
        if plan.at_site is not None:
            self._sites_active = True
        if plan.fault_model == FAULT_REORDERED_FLUSH:
            self._record_inflight = True

    def _note_site(self, ctx: "_ThreadContext", site_class: str) -> None:
        """One injectable site just completed; crash here if scheduled."""
        idx = self._sites_seen
        self._sites_seen = idx + 1
        log = self._site_log
        if log is not None:
            log.append((idx, site_class, ctx.thread_id, ctx.stats.cycles))
        plan = self._crash_plan
        if plan is not None and plan.at_site == idx:
            self._crash(site=idx, site_class=site_class)
            raise PowerFailure(
                f"scheduled power failure at site {idx} ({site_class})"
            )

    def _note_evict_inflight(
        self, ctx: "_ThreadContext", line: int, values: Dict[int, object]
    ) -> None:
        """Record a hardware eviction write-back as droppable in-flight.

        Captures the *previous* durable values (before ``write_back``),
        so a reordered_flush crash can revert a suffix.  Per-thread
        records are capped at the flush-queue depth: anything older has
        necessarily left the queue and completed.
        """
        read = self.memory.read
        olds = {addr: read(addr, _ABSENT) for addr in values}
        inflight = self._fault_inflight
        inflight.append((ctx, line, olds))
        depth = self.config.timing.flush_queue_depth
        count = 0
        for rec in inflight:
            if rec[0] is ctx:
                count += 1
        if count > depth:
            for i, rec in enumerate(inflight):
                if rec[0] is ctx:
                    del inflight[i]
                    break

    # ------------------------------------------------------------------
    # Internal flush plumbing
    # ------------------------------------------------------------------

    def _do_flush(
        self,
        ctx: _ThreadContext,
        line: int,
        category: str,
        invalidate: bool = True,
    ) -> None:
        t = self.config.timing
        stats = ctx.stats
        stats.cycles += t.flush_issue
        stats.instructions += 1
        stats.flushes += 1
        if category == "eviction" or category == "resize_eviction":
            # Resize-forced evictions stay in the eviction counter (the
            # RunResult schema is unchanged); the trace's cause code
            # below is what distinguishes them.
            stats.eviction_flushes += 1
        elif category == "fase_end":
            stats.fase_end_flushes += 1
        elif category == "eager":
            stats.eager_flushes += 1
        elif category == "log" or category == "commit":
            stats.log_flushes += 1
        elif category == "clean":
            stats.clean_flushes += 1
        elif category == "bypass":
            stats.bypass_flushes += 1
        elif category == "victim":
            stats.victim_flushes += 1
        else:
            stats.final_flushes += 1
        if invalidate:
            dirty = self.hwcache.clflush(line)
        else:
            dirty = self.hwcache.clwb(line)
        if self.config.track_values:
            values = self.hwcache.take_values(line)
            if values:
                self.memory.write_back(values.items())
        stall = 0
        if dirty:
            now, stall = ctx.flushq.issue(stats.cycles)
            stats.cycles = now
            stats.stall_cycles += stall
        rec = self.recorder
        if rec.enabled:
            cause = _EVICT_TRACE_CAUSE.get(category)
            if cause is not None:
                rec.record(
                    EV_EVICT_FLUSH,
                    ctx.thread_id,
                    stats.cycles,
                    line,
                    int(dirty),
                    cause,
                )
            if stall:
                rec.record(EV_STALL, ctx.thread_id, stats.cycles, stall, 0)
        # An explicit flush of ``line`` forces any earlier write-back of
        # the same line to have completed (same-line ordering), so it is
        # no longer droppable by a reordered_flush crash.
        if self._record_inflight and self._fault_inflight:
            self._fault_inflight = [
                r for r in self._fault_inflight if r[1] != line
            ]
        if self._sites_active:
            site = _FLUSH_SITE.get(category)
            if site is not None:
                self._note_site(ctx, site)

    def _do_drain(self, ctx: _ThreadContext, category: str = "final") -> None:
        stats = ctx.stats
        rec = self.recorder
        outstanding = ctx.flushq.outstanding if rec.enabled else 0
        now, stall = ctx.flushq.drain(stats.cycles)
        stats.cycles = now
        stats.stall_cycles += stall
        if rec.enabled:
            # A FASE-boundary drain is attributed to the committing FASE
            # (commit_fase_uid: fase_depth is already 0 here); uid 0 is a
            # valid FASE, so "no FASE" is explicitly -1.
            fase_id = ctx.commit_fase_uid if category == "fase_end" else -1
            rec.record(
                EV_DRAIN, ctx.thread_id, stats.cycles, stall, outstanding, fase_id
            )
        # The queue is empty: every write-back this thread had in flight
        # is durable, so none of its records remain droppable.
        if self._record_inflight and self._fault_inflight:
            self._fault_inflight = [
                r for r in self._fault_inflight if r[0] is not ctx
            ]
        if self._sites_active:
            self._note_site(ctx, SITE_DRAIN)

    def _evict_writeback(self, ctx: _ThreadContext, line: int) -> None:
        # A dirty line displaced by a fill: the hardware writes it back in
        # the background (no CPU issue cost, but channel occupancy).
        if self.config.track_values:
            values = self.hwcache.take_values(line)
            if values:
                if self._record_inflight:
                    self._note_evict_inflight(ctx, line, values)
                self.memory.write_back(values.items())
        stats = ctx.stats
        now, stall = ctx.flushq.issue(stats.cycles)
        stats.cycles = now
        stats.stall_cycles += stall
        if stall:
            rec = self.recorder
            if rec.enabled:
                rec.record(EV_STALL, ctx.thread_id, stats.cycles, stall, 1)

    # ------------------------------------------------------------------
    # Event execution
    # ------------------------------------------------------------------

    def _run_batch(self, ctx: _ThreadContext, budget: int) -> bool:
        """Run up to ``budget`` events of ``ctx``; return False at stream end."""
        stream = ctx.stream
        process = self._process_event
        for _ in range(budget):
            ev = next(stream, None)
            if ev is None:
                return False
            process(ctx, ev)
            if self.crashed_state is not None:
                return False
        return True

    def _run_batches(self, ctx: _ThreadContext, budget: int) -> bool:
        """Batched twin of :meth:`_run_batch`; returns False at stream end.

        Consumes up to ``budget`` events from ``ctx``'s batch stream with
        the event semantics of :meth:`_process_event` inlined, but with
        no per-event object allocation, no generator resumption, the
        per-quantum invariants (timing constants, cache, technique
        callbacks, crash plan) hoisted into locals, the batch columns
        decoded to plain lists once per batch, and the single-line store
        — the overwhelmingly common case — fully short-circuited.

        The hot ``ThreadStats`` counters are accumulated in locals.
        ``stats.cycles`` is written back before every point that can
        observe it (technique callbacks and dirty-eviction write-backs,
        which funnel into the flush queue via ``stats.cycles``; quantum
        exit, which the scheduler reads) and re-read after.
        ``instructions`` is kept as a local delta merged in at quantum
        exit: callbacks only ever increment ``stats.instructions``,
        never read it, so no per-call hand-off is needed.
        ``technique.cost_per_store`` is read once per quantum —
        techniques must keep it constant during a run, which every
        built-in technique does.

        Quantum boundaries fall on the same event counts as the
        per-event path, so the smallest-clock thread interleaving — and
        with it every statistic, including the shared hardware cache's —
        is bit-identical.  Enforced by tests/test_batch_equivalence.py.
        """
        config = self.config
        t = config.timing
        stats = ctx.stats
        hw = self.hwcache
        access = hw.access
        technique = ctx.technique
        on_store = technique.on_store
        # A technique that declares its on_store a no-op (BEST) saves
        # the call and the stats hand-off around it on every store.
        skip_on_store = getattr(technique, "on_store_noop", False)
        cost_per_store = technique.cost_per_store
        track_values = config.track_values
        trace_lines = ctx.trace_lines
        trace_fids = ctx.trace_fids
        evict_writeback = self._evict_writeback
        plan = self._crash_plan
        # Only store-count plans reach the batched path; ``Machine.run``
        # routes site-triggered plans to the per-event loop.
        plan_after = plan.after_stores if plan is not None else None
        # Structured tracing: ``recording`` gates the (rare) FASE-boundary
        # sites below; with the null recorder the fast path adds only
        # this one hoisted attribute load per quantum.
        recorder = self.recorder
        recording = recorder.enabled
        thread_id = ctx.thread_id
        hit_cost = t.l1_hit
        miss_cost = t.l1_hit + t.l1_miss
        cpi = t.cpi
        nvram_base = NVRAM_BASE
        kind_store = EventKind.STORE
        kind_load = EventKind.LOAD
        kind_work = EventKind.WORK
        kind_fase_begin = EventKind.FASE_BEGIN
        # Hoisted counters; flushed back to stats in the finally block,
        # with cycles re-synced around every technique/flush-engine call
        # (the flush queue timestamps from stats.cycles).  instructions
        # is a local *delta* added back at the end: every callback only
        # ever increments stats.instructions, none reads it, so the two
        # accumulators merge exactly and no per-call sync is needed.
        cycles = stats.cycles
        instructions = 0
        persistent_stores = stats.persistent_stores
        persistent_loads = stats.persistent_loads
        fase_count = stats.fase_count
        stores_seen = self._stores_seen
        crashed = False
        try:
            while budget > 0:
                batch = ctx.batch
                pos = ctx.batch_pos
                if batch is None or pos >= len(batch.kinds):
                    batch = next(ctx.batch_iter, None)
                    if batch is None:
                        ctx.batch = None
                        return False
                    ctx.batch = batch
                    # Decode the compact columns to lists once per batch:
                    # list indexing beats array indexing in the hot loop,
                    # and the cost amortises over many scheduler quanta.
                    ctx.batch_cols = (
                        batch.kinds.tolist(),
                        batch.args.tolist(),
                        batch.sizes.tolist(),
                    )
                    pos = 0
                kinds, args, sizes = ctx.batch_cols
                end = len(kinds)
                if end - pos > budget:
                    end = pos + budget
                budget -= end - pos
                i = pos
                while i < end:
                    kind = kinds[i]
                    if kind == kind_store:
                        addr = args[i]
                        persistent = addr >= nvram_base
                        size = sizes[i]
                        first = addr >> 6
                        if first == (addr + size - 1) >> 6:
                            # Single-line store: no span tuple, no loop.
                            hit, evicted = access(first, True)
                            cycles += hit_cost if hit else miss_cost
                            if evicted is not None and evicted[1]:
                                stats.cycles = cycles
                                evict_writeback(ctx, evicted[0])
                                cycles = stats.cycles
                            if persistent:
                                if track_values:
                                    hw.store_value(first, addr, None)
                                if not skip_on_store:
                                    stats.cycles = cycles
                                    on_store(first)
                                    cycles = stats.cycles
                                if trace_lines is not None:
                                    trace_lines.append(first)
                                    trace_fids.append(
                                        ctx.fase_uid
                                        if ctx.fase_depth > 0
                                        else -1
                                    )
                        else:
                            for line in lines_spanned(addr, size):
                                hit, evicted = access(line, True)
                                cycles += hit_cost if hit else miss_cost
                                if evicted is not None and evicted[1]:
                                    stats.cycles = cycles
                                    evict_writeback(ctx, evicted[0])
                                    cycles = stats.cycles
                                if persistent:
                                    if track_values:
                                        hw.store_value(line, addr, None)
                                    if not skip_on_store:
                                        stats.cycles = cycles
                                        on_store(line)
                                        cycles = stats.cycles
                                    if trace_lines is not None:
                                        trace_lines.append(line)
                                        trace_fids.append(
                                            ctx.fase_uid
                                            if ctx.fase_depth > 0
                                            else -1
                                        )
                        instructions += 1
                        if persistent:
                            persistent_stores += 1
                            cycles += cost_per_store
                            instructions += cost_per_store
                            stores_seen += 1
                            if (
                                plan_after is not None
                                and stores_seen >= plan_after
                            ):
                                ctx.batch_pos = i + 1
                                self._stores_seen = stores_seen
                                crashed = True
                                self._crash()
                                return False
                    elif kind == kind_work:
                        amount = args[i]
                        cycles += int(amount * cpi)
                        instructions += amount
                    elif kind == kind_load:
                        addr = args[i]
                        size = sizes[i]
                        first = addr >> 6
                        if first == (addr + size - 1) >> 6:
                            lines = (first,)
                        else:
                            lines = lines_spanned(addr, size)
                        for line in lines:
                            hit, evicted = access(line, False)
                            cycles += hit_cost if hit else miss_cost
                            if evicted is not None and evicted[1]:
                                stats.cycles = cycles
                                evict_writeback(ctx, evicted[0])
                                cycles = stats.cycles
                        instructions += 1
                        if addr >= nvram_base:
                            persistent_loads += 1
                    elif kind == kind_fase_begin:
                        ctx.fase_depth += 1
                        if ctx.fase_depth == 1:
                            ctx.fase_uid = ctx.next_fase_uid
                            ctx.next_fase_uid += 1
                            if recording:
                                recorder.record(
                                    EV_FASE_BEGIN, thread_id, cycles, ctx.fase_uid
                                )
                            stats.cycles = cycles
                            technique.on_fase_begin()
                            cycles = stats.cycles
                    else:  # FASE_END
                        if ctx.fase_depth == 0:
                            raise SimulationError(
                                f"thread {ctx.thread_id}: "
                                "FaseEnd without FaseBegin"
                            )
                        ctx.fase_depth -= 1
                        if ctx.fase_depth == 0:
                            ctx.commit_fase_uid = ctx.fase_uid
                            stats.cycles = cycles
                            technique.on_fase_end()
                            cycles = stats.cycles
                            fase_count += 1
                            if recording:
                                # After the drain, so the B/E span covers
                                # the commit stall (same in both paths).
                                recorder.record(
                                    EV_FASE_END, thread_id, cycles, ctx.fase_uid
                                )
                    i += 1
                ctx.batch_pos = end
            return True
        finally:
            stats.cycles = cycles
            stats.instructions += instructions
            stats.persistent_stores = persistent_stores
            stats.persistent_loads = persistent_loads
            stats.fase_count = fase_count
            if not crashed:
                self._stores_seen = stores_seen

    def _process_event(self, ctx: _ThreadContext, ev: Event) -> None:
        """Execute one event on behalf of ``ctx`` (the simulator core)."""
        t = self.config.timing
        stats = ctx.stats
        hw = self.hwcache
        technique = ctx.technique
        track_values = self.config.track_values
        kind = ev.kind
        if kind == EventKind.STORE:
            addr = ev.addr
            persistent = addr >= NVRAM_BASE
            # Fast path: the overwhelmingly common single-line access.
            first = addr >> 6
            last = (addr + ev.size - 1) >> 6
            lines = (first,) if first == last else lines_spanned(addr, ev.size)
            for line in lines:
                hit, evicted = hw.access(line, True)
                stats.cycles += t.l1_hit if hit else t.l1_hit + t.l1_miss
                if evicted is not None and evicted[1]:
                    self._evict_writeback(ctx, evicted[0])
                if persistent:
                    if track_values:
                        hw.store_value(line, addr, ev.value)
                    technique.on_store(line)
                    if ctx.trace_lines is not None:
                        ctx.trace_lines.append(line)
                        ctx.trace_fids.append(
                            ctx.fase_uid if ctx.fase_depth > 0 else -1
                        )
            stats.instructions += 1
            if persistent:
                cost_per_store = technique.cost_per_store
                stats.persistent_stores += 1
                stats.cycles += cost_per_store
                stats.instructions += cost_per_store
                self._stores_seen += 1
                if self._sites_active:
                    self._note_site(ctx, SITE_STORE)
                plan = self._crash_plan
                if (
                    plan is not None
                    and plan.after_stores is not None
                    and self._stores_seen >= plan.after_stores
                ):
                    self._crash()
                    return
        elif kind == EventKind.WORK:
            amount = ev.amount
            stats.cycles += int(amount * t.cpi)
            stats.instructions += amount
        elif kind == EventKind.LOAD:
            addr = ev.addr
            first = addr >> 6
            last = (addr + ev.size - 1) >> 6
            lines = (first,) if first == last else lines_spanned(addr, ev.size)
            for line in lines:
                hit, evicted = hw.access(line, False)
                stats.cycles += t.l1_hit if hit else t.l1_hit + t.l1_miss
                if evicted is not None and evicted[1]:
                    self._evict_writeback(ctx, evicted[0])
            stats.instructions += 1
            if addr >= NVRAM_BASE:
                stats.persistent_loads += 1
        elif kind == EventKind.FASE_BEGIN:
            ctx.fase_depth += 1
            if ctx.fase_depth == 1:
                ctx.fase_uid = ctx.next_fase_uid
                ctx.next_fase_uid += 1
                rec = self.recorder
                if rec.enabled:
                    rec.record(
                        EV_FASE_BEGIN, ctx.thread_id, stats.cycles, ctx.fase_uid
                    )
                technique.on_fase_begin()
        elif kind == EventKind.FASE_END:
            if ctx.fase_depth == 0:
                raise SimulationError(
                    f"thread {ctx.thread_id}: FaseEnd without FaseBegin"
                )
            ctx.fase_depth -= 1
            if ctx.fase_depth == 0:
                ctx.commit_fase_uid = ctx.fase_uid
                technique.on_fase_end()
                stats.fase_count += 1
                rec = self.recorder
                if rec.enabled:
                    rec.record(
                        EV_FASE_END, ctx.thread_id, stats.cycles, ctx.fase_uid
                    )
        else:  # pragma: no cover - the event kinds above are exhaustive
            raise SimulationError(f"unknown event kind {kind}")

    def _sample_metrics(self, ctx: _ThreadContext) -> None:
        """Record one thread's gauge levels if its interval elapsed.

        Called at quantum boundaries (every ``SCHED_BATCH`` events), so
        sampling cost never touches the event hot loop.  All levels are
        functions of deterministic model state, so repeated runs of one
        configuration produce byte-identical registries.
        """
        m = self.metrics
        stats = ctx.stats
        now = stats.cycles
        tid = ctx.thread_id
        if not m.due(tid, now):
            return
        key = f"t{tid}"
        m.sample(f"flush_queue_depth/{key}", now, ctx.flushq.outstanding)
        # Software-cache (or Atlas-table) occupancy, for techniques that
        # have one; duck-typed like the rest of the technique protocol.
        buf = getattr(ctx.technique, "cache", None)
        if buf is None:
            buf = getattr(ctx.technique, "table", None)
        if buf is not None:
            m.sample(f"cache_occupancy/{key}", now, len(buf))
        prev_flushes, prev_stores = self._metrics_prev.get(tid, (0, 0))
        d_flushes = stats.flushes - prev_flushes
        d_stores = stats.persistent_stores - prev_stores
        self._metrics_prev[tid] = (stats.flushes, stats.persistent_stores)
        m.sample(
            f"flush_ratio/{key}", now, d_flushes / d_stores if d_stores else 0.0
        )
        # Post-adaptation gauge: exists only once the thread has selected
        # a size.  Its own due-schedule starts at the selection cycle, so
        # the series never backfills a phantom sample at cycle 0.
        first = self._first_selection.get(tid)
        if first is not None and m.due(("selected_size", tid), now, start=first):
            m.sample(f"selected_size/{key}", now, self._selected_size[tid])

    def _final_metrics(self, ctx: _ThreadContext) -> None:
        """Dump one thread's run totals into the registry as counters.

        Final totals land as counters so one registry dump is
        self-describing without the matching RunResult in hand.  Called
        by ``run`` for every thread, and by
        :meth:`MachineSession.record_final_metrics` for session-driven
        execution (e.g. crash-campaign replays).
        """
        m = self.metrics
        s = ctx.stats
        key = f"t{ctx.thread_id}"
        m.inc(f"flushes/{key}", s.flushes)
        m.inc(f"persistent_stores/{key}", s.persistent_stores)
        m.inc(f"stall_cycles/{key}", s.stall_cycles)
        m.inc(f"fase_count/{key}", s.fase_count)
        m.set_gauge(f"cycles/{key}", s.cycles)

    def _crash(
        self, site: Optional[int] = None, site_class: Optional[str] = None
    ) -> None:
        image = self.memory.nvram_snapshot()
        dirty = self.hwcache.dirty_lines()
        plan = self._crash_plan
        model = plan.fault_model if plan is not None else FAULT_CLEAN
        torn: List[int] = []
        dropped = 0
        if model == FAULT_TORN_LINE:
            torn = apply_torn_lines(
                image, dirty, self.hwcache.values, plan.fault_seed
            )
        elif model == FAULT_REORDERED_FLUSH:
            dropped = apply_reordered_flushes(
                image, self._fault_inflight, plan.fault_seed
            )
        self.crashed_state = CrashedState(
            nvram=image,
            lost_lines=dirty,
            at_store=self._stores_seen,
            at_site=site,
            site_class=site_class,
            fault_model=model,
            torn_lines=torn,
            dropped_writebacks=dropped,
        )

    # ------------------------------------------------------------------
    # Imperative per-thread driver (used by the Atlas runtime)
    # ------------------------------------------------------------------

    def session(
        self,
        technique: object,
        thread_id: int = 0,
        record_trace: bool = False,
    ) -> "MachineSession":
        """Open an imperative execution session for one simulated thread.

        Unlike :meth:`run`, which pulls events from workload streams, a
        session lets library code *push* operations (store, load, FASE
        boundaries) as they happen — this is how the Atlas runtime and
        the MDB store drive the machine.
        """
        ctx = _ThreadContext(thread_id, iter(()), technique, record_trace)
        ctx.flushq = self._new_flushq()
        ctx.port = FlushPort(self, ctx)
        technique.bind(ctx.port)
        return MachineSession(self, ctx)

    def read_current(self, addr: int, default: object = None) -> object:
        """The value a load of ``addr`` would observe right now.

        Reads through the hardware cache's pending (dirty, un-written-
        back) values, falling back to the durable memory image.  Only
        meaningful with ``track_values`` enabled.
        """
        line = addr >> 6
        pending = self.hwcache.values.get(line)
        if pending is not None and addr in pending:
            return pending[addr]
        return self.memory.read(addr, default)

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------

    def run(
        self,
        workload: object,
        technique_factory: Callable[[int], object],
        *args: object,
        num_threads: int = 1,
        seed: int = 0,
        record_traces: bool = False,
        crash_plan: Optional[CrashPlan] = None,
        use_batches: Optional[bool] = None,
    ) -> RunResult:
        """Execute ``workload`` and return the collected statistics.

        Parameters
        ----------
        workload:
            Object with ``streams(num_threads, seed) -> list of event
            iterators`` and a ``name`` attribute.  Workloads may also
            offer ``batch_streams(num_threads, seed)`` yielding
            :class:`~repro.common.events.EventBatch` runs; the machine
            then uses the allocation-free batch loop.
        technique_factory:
            Called once per thread id; returns a fresh technique instance
            (software caches are per-thread).
        num_threads, seed, record_traces, crash_plan, use_batches:
            Keyword-only.  ``record_traces`` collects the per-thread
            persistent-write traces (needed for offline MRC analysis and
            the figure pipelines).  ``crash_plan`` schedules a power
            failure; afterwards ``self.crashed_state`` holds the durable
            NVRAM image.  Site-triggered plans (``at_site``) force the
            per-event path — site hooks live in the flush plumbing the
            batched loop bypasses.  ``use_batches`` forces (``True``) or
            forbids (``False``) the batched fast path; default ``None``
            selects it automatically whenever the workload provides batch
            streams and value tracking is off (batches carry no store
            payloads).  Both paths produce bit-identical results.
        """
        if args:
            # Deprecation shim for the old positional signature
            # run(workload, factory, num_threads, seed, record_traces,
            # crash_plan, use_batches).  Remove after one release.
            warnings.warn(
                "passing Machine.run() options positionally is deprecated; "
                "use keywords (num_threads=, seed=, record_traces=, "
                "crash_plan=, use_batches=)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 5:
                raise TypeError(
                    f"Machine.run() takes at most 7 positional arguments "
                    f"({3 + len(args)} given)"
                )
            legacy = (num_threads, seed, record_traces, crash_plan, use_batches)
            patched = args + legacy[len(args):]
            num_threads, seed, record_traces, crash_plan, use_batches = patched
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        self.arm_crash_plan(crash_plan)
        if crash_plan is not None and crash_plan.at_site is not None:
            use_batches = False
        batch_streams = None
        if use_batches is None:
            use_batches = not self.config.track_values
        if use_batches:
            getter = getattr(workload, "batch_streams", None)
            if getter is not None:
                batch_streams = getter(num_threads, seed)
        if batch_streams is not None:
            if len(batch_streams) != num_threads:
                raise SimulationError(
                    f"workload produced {len(batch_streams)} batch streams "
                    f"for {num_threads} threads"
                )
            runner = self._run_batches
        else:
            streams = workload.streams(num_threads, seed)
            if len(streams) != num_threads:
                raise SimulationError(
                    f"workload produced {len(streams)} streams for "
                    f"{num_threads} threads"
                )
            runner = self._run_batch
        contexts = []
        for tid in range(num_threads):
            technique = technique_factory(tid)
            if batch_streams is not None:
                ctx = _ThreadContext(tid, iter(()), technique, record_traces)
                ctx.batch_iter = iter(batch_streams[tid])
            else:
                ctx = _ThreadContext(
                    tid, iter(streams[tid]), technique, record_traces
                )
            ctx.flushq = self._new_flushq()
            ctx.port = FlushPort(self, ctx)
            technique.bind(ctx.port)
            contexts.append(ctx)

        # Smallest-clock-first interleaving; ties broken by thread id.
        heap: List[Tuple[int, int]] = [(0, ctx.thread_id) for ctx in contexts]
        heapq.heapify(heap)
        metrics = self.metrics
        # Quantum-boundary technique hooks (background cleaning stages);
        # resolved once so techniques without the hook cost one list
        # index per quantum.
        quantum_hooks = [
            getattr(ctx.technique, "on_quantum", None) for ctx in contexts
        ]
        while heap:
            _, tid = heapq.heappop(heap)
            ctx = contexts[tid]
            try:
                alive = runner(ctx, SCHED_BATCH)
            except PowerFailure:
                # A site-triggered crash; crashed_state is populated.
                break
            hook = quantum_hooks[tid]
            if hook is not None and alive and self.crashed_state is None:
                # Fires before the thread's clock is re-queued so the
                # scheduler sees the cleaning cycles, and inside its own
                # crash guard: clean flushes are injectable sites.
                try:
                    hook()
                except PowerFailure:
                    break
            if metrics is not None:
                self._sample_metrics(ctx)
            rec = self.recorder
            if rec.enabled:
                # Window-boundary hook: streaming recorders advance their
                # cycle-window watermark here, once per quantum, on both
                # the per-event and batched paths (``runner`` is whichever
                # of the two this run uses).
                rec.on_quantum(tid, ctx.stats.cycles)
            if self.crashed_state is not None:
                break
            if alive:
                heapq.heappush(heap, (ctx.stats.cycles, tid))
            else:
                if ctx.fase_depth != 0:
                    raise SimulationError(
                        f"thread {tid} stream ended inside a FASE "
                        f"(depth={ctx.fase_depth})"
                    )
                try:
                    ctx.technique.finish()
                except PowerFailure:
                    break
                ctx.alive = False

        if metrics is not None:
            for ctx in contexts:
                self._final_metrics(ctx)

        traces = None
        if record_traces:
            traces = [
                WriteTrace(ctx.trace_lines, ctx.trace_fids) for ctx in contexts
            ]
        return RunResult(
            workload=getattr(workload, "name", type(workload).__name__),
            technique=getattr(
                contexts[0].technique, "name", type(contexts[0].technique).__name__
            ),
            num_threads=num_threads,
            threads=[ctx.stats for ctx in contexts],
            l1_accesses=self.hwcache.accesses,
            l1_misses=self.hwcache.misses,
            traces=traces,
            crashed=self.crashed_state is not None,
        )


class MachineSession:
    """Imperative single-thread execution handle (see ``Machine.session``).

    Methods mirror the event vocabulary; each call executes immediately
    against the machine's cache, flush queue and the session's technique.
    The session must be closed with :meth:`finish` so the technique can
    drain its remaining buffered lines.
    """

    __slots__ = ("machine", "_ctx", "_finished")

    def __init__(self, machine: Machine, ctx: _ThreadContext) -> None:
        self.machine = machine
        self._ctx = ctx
        self._finished = False

    # -- operations ------------------------------------------------------

    def store(self, addr: int, size: int = 8, value: object = None) -> None:
        """Execute a store (persistent iff ``addr`` is in NVRAM)."""
        from repro.common.events import Store

        self.machine._process_event(self._ctx, Store(addr, size, value))

    def store_unmanaged(self, addr: int, size: int = 8, value: object = None) -> None:
        """A persistent store *not* routed to the persistence technique.

        Used for runtime metadata (undo-log records) that has its own
        flush discipline: the technique must not buffer these lines, or
        it would re-flush already-durable log entries at every drain.
        Still pays full hardware-cache timing and value tracking.
        """
        machine = self.machine
        ctx = self._ctx
        t = machine.config.timing
        stats = ctx.stats
        hw = machine.hwcache
        for line in lines_spanned(addr, size):
            hit, evicted = hw.access(line, True)
            stats.cycles += t.l1_hit if hit else t.l1_hit + t.l1_miss
            if evicted is not None and evicted[1]:
                machine._evict_writeback(ctx, evicted[0])
            if machine.config.track_values and addr >= NVRAM_BASE:
                hw.store_value(line, addr, value)
        stats.instructions += 1

    def load(self, addr: int, size: int = 8) -> object:
        """Execute a load; return the currently visible value."""
        from repro.common.events import Load

        self.machine._process_event(self._ctx, Load(addr, size))
        return self.machine.read_current(addr)

    def work(self, amount: int) -> None:
        """Execute ``amount`` instructions of computation."""
        from repro.common.events import Work

        self.machine._process_event(self._ctx, Work(amount))

    def fase_begin(self) -> None:
        """Enter a failure-atomic section (may nest)."""
        from repro.common.events import FaseBegin

        self.machine._process_event(self._ctx, FaseBegin())

    def fase_end(self) -> None:
        """Leave a failure-atomic section."""
        from repro.common.events import FaseEnd

        self.machine._process_event(self._ctx, FaseEnd())

    # -- lifecycle ---------------------------------------------------------

    @property
    def fase_depth(self) -> int:
        """Current FASE nesting depth."""
        return self._ctx.fase_depth

    @property
    def current_fase_id(self) -> int:
        """Unique id of the current outermost FASE, or -1 outside any."""
        return self._ctx.fase_uid if self._ctx.fase_depth > 0 else -1

    @property
    def stats(self) -> ThreadStats:
        """Live counters of this session's thread."""
        return self._ctx.stats

    def trace(self) -> Optional[WriteTrace]:
        """The persistent-write trace, if recording was requested."""
        if self._ctx.trace_lines is None:
            return None
        return WriteTrace(self._ctx.trace_lines, self._ctx.trace_fids)

    # -- metrics -----------------------------------------------------------

    def on_quantum(self) -> None:
        """Fire the technique's quantum-boundary hook, if it has one.

        Session-driven code has no scheduler, so drivers that want
        background-cleaning stages to run (e.g. the crash-campaign
        replay loop) call this at their own quantum boundaries.  A
        :class:`~repro.nvram.failure.PowerFailure` from an armed clean
        flush propagates to the caller, exactly as from ``store``.
        """
        hook = getattr(self._ctx.technique, "on_quantum", None)
        if hook is not None:
            hook()

    def sample_metrics(self) -> None:
        """Sample this thread's gauge series if its interval elapsed.

        Session-driven code has no scheduler quantum, so drivers call
        this at their own natural boundaries (e.g. between replayed
        operations).  A no-op without a metrics registry.
        """
        if self.machine.metrics is not None:
            self.machine._sample_metrics(self._ctx)
        rec = self.machine.recorder
        if rec.enabled:
            rec.on_quantum(self._ctx.thread_id, self._ctx.stats.cycles)

    def record_final_metrics(self) -> None:
        """Dump this thread's run totals into the metrics registry.

        The session twin of the end-of-run counter dump ``Machine.run``
        performs; call once when the session's work is done.  A no-op
        without a metrics registry.
        """
        if self.machine.metrics is not None:
            self.machine._final_metrics(self._ctx)

    def finish(self) -> None:
        """Close the session: drain the technique's remaining lines."""
        if self._finished:
            return
        if self._ctx.fase_depth != 0:
            raise SimulationError(
                f"session closed inside a FASE (depth={self._ctx.fase_depth})"
            )
        self._ctx.technique.finish()
        self._finished = True
