"""Run statistics: per-thread counters and aggregate results.

The counters mirror what the paper measures: persistent stores, cache
line flushes (software accounting), instructions (Table IV), hardware L1
miss ratios (perf counters in the paper, direct model counters here) and
cycle times with the stall breakdown.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.locality.trace import WriteTrace


@dataclass
class ThreadStats:
    """Counters for one simulated thread."""

    thread_id: int = 0
    cycles: int = 0
    instructions: int = 0
    persistent_stores: int = 0
    persistent_loads: int = 0
    flushes: int = 0                 # persistence flushes issued (clflush)
    eviction_flushes: int = 0        # issued on software-cache eviction
    fase_end_flushes: int = 0        # issued at FASE-end drains
    eager_flushes: int = 0           # issued immediately per store (ER)
    log_flushes: int = 0             # undo-log entries made durable
    final_flushes: int = 0           # issued at end of program
    clean_flushes: int = 0           # background cleaning (clean stage)
    bypass_flushes: int = 0          # filter bypass (nhit/cutoff stages)
    victim_flushes: int = 0          # victim-cache overflow (victim stage)
    stall_cycles: int = 0            # cycles blocked on the flush engine
    fase_count: int = 0              # outermost FASEs completed
    technique_overhead_cycles: int = 0
    adaptation_cycles: int = 0       # MRC analysis + size selection cost
    selected_sizes: List[int] = field(default_factory=list)

    @property
    def flush_ratio(self) -> float:
        """Flushes per persistent store — the paper's data flush ratio."""
        if self.persistent_stores == 0:
            return 0.0
        return self.flushes / self.persistent_stores


@dataclass
class RunResult:
    """The outcome of one ``Machine.run`` invocation."""

    workload: str
    technique: str
    num_threads: int
    threads: List[ThreadStats]
    l1_accesses: int
    l1_misses: int
    traces: Optional[List[WriteTrace]] = None
    crashed: bool = False

    # ---- aggregates ---------------------------------------------------

    @property
    def persistent_stores(self) -> int:
        """Total persistent stores across threads."""
        return sum(t.persistent_stores for t in self.threads)

    @property
    def flushes(self) -> int:
        """Total persistence flushes across threads."""
        return sum(t.flushes for t in self.threads)

    @property
    def flush_ratio(self) -> float:
        """Aggregate flushes per persistent store (Table III's metric)."""
        stores = self.persistent_stores
        return self.flushes / stores if stores else 0.0

    @property
    def instructions(self) -> int:
        """Total instructions across threads (Table IV's metric)."""
        return sum(t.instructions for t in self.threads)

    @property
    def time(self) -> int:
        """Wall-clock model time: the slowest thread's cycle count."""
        return max((t.cycles for t in self.threads), default=0)

    @property
    def stall_cycles(self) -> int:
        """Total cycles spent blocked on the flush engine."""
        return sum(t.stall_cycles for t in self.threads)

    @property
    def l1_miss_ratio(self) -> float:
        """Hardware cache miss ratio over all accesses (Table IV)."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def fase_count(self) -> int:
        """Total outermost FASEs completed."""
        return sum(t.fase_count for t in self.threads)

    @property
    def selected_sizes(self) -> Dict[int, List[int]]:
        """Per-thread history of adaptively selected cache sizes."""
        return {t.thread_id: list(t.selected_sizes) for t in self.threads}

    def speedup_over(self, other: "RunResult") -> float:
        """``other.time / self.time`` — how much faster this run is."""
        return other.time / self.time if self.time else float("inf")

    # ---- serialization ------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-serializable form of every counter.

        Recorded traces are *not* serialized (they are large numpy
        arrays, and the disk cache only stores plain runs); a
        ``has_traces`` flag records whether any were dropped so loaders
        can refuse to serve a trace-needing request from a traceless
        cache entry.
        """
        return {
            "workload": self.workload,
            "technique": self.technique,
            "num_threads": self.num_threads,
            "threads": [asdict(t) for t in self.threads],
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "crashed": self.crashed,
            "has_traces": self.traces is not None,
        }

    #: Exact key sets :meth:`from_dict` accepts.  An on-disk cache entry
    #: written by an older (or newer) schema fails loudly here instead of
    #: surfacing as a ``TypeError`` from ``ThreadStats(**t)``.
    _REQUIRED_KEYS = frozenset(
        {
            "workload",
            "technique",
            "num_threads",
            "threads",
            "l1_accesses",
            "l1_misses",
            "crashed",
        }
    )
    _OPTIONAL_KEYS = frozenset({"has_traces"})

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a (traceless) result serialized by :meth:`to_dict`.

        Raises
        ------
        ConfigurationError
            If the payload's keys do not match this schema exactly —
            the symptom of loading a stale cache entry written by a
            different version of the counters.
        """
        keys = set(data)
        missing = sorted(cls._REQUIRED_KEYS - keys)
        unknown = sorted(keys - cls._REQUIRED_KEYS - cls._OPTIONAL_KEYS)
        if missing or unknown:
            raise ConfigurationError(
                f"RunResult payload does not match the current schema "
                f"(missing keys: {missing}, unknown keys: {unknown}); "
                f"a stale cache entry from another version?"
            )
        thread_fields = {f.name for f in fields(ThreadStats)}
        threads = []
        for i, t in enumerate(data["threads"]):
            tkeys = set(t)
            tmissing = sorted(thread_fields - tkeys)
            tunknown = sorted(tkeys - thread_fields)
            if tmissing or tunknown:
                raise ConfigurationError(
                    f"ThreadStats payload #{i} does not match the current "
                    f"schema (missing keys: {tmissing}, unknown keys: "
                    f"{tunknown}); a stale cache entry from another version?"
                )
            threads.append(ThreadStats(**t))
        return cls(
            workload=data["workload"],
            technique=data["technique"],
            num_threads=data["num_threads"],
            threads=threads,
            l1_accesses=data["l1_accesses"],
            l1_misses=data["l1_misses"],
            traces=None,
            crashed=data["crashed"],
        )

    def __repr__(self) -> str:
        return (
            f"RunResult({self.workload}/{self.technique}, threads={self.num_threads}, "
            f"stores={self.persistent_stores}, flush_ratio={self.flush_ratio:.5f}, "
            f"time={self.time})"
        )
