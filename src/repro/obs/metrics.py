"""The metrics registry: counters, gauges, model-time series.

Where the trace recorder captures discrete events, the registry captures
*levels*: cache occupancy, flush-queue depth, the rolling flush ratio —
sampled at a configurable model-cycle interval, per thread, by the
machine's scheduler loop (off the hot event loop, so the cost is one
``is not None`` check per 64-event quantum when metrics are off).

Time series are parallel ``(times, values)`` arrays keyed by name; the
machine uses ``<metric>/t<thread>`` names so one registry holds every
thread's series.  All timestamps are model cycles, so a registry dump is
byte-identical across repeated runs of the same configuration.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Default sampling interval in model cycles.
DEFAULT_INTERVAL = 10_000


def nearest_rank(sorted_values, q: float):
    """Nearest-rank percentile of an ascending list (0 when empty).

    The one percentile implementation shared by the trace analyzer's
    FASE latency summary and the fleet aggregator's straggler fold, so
    single-run and fleet summaries agree on what "p95" means.  ``q`` is
    a fraction in ``[0, 1]``; the result is always an element of the
    input (never interpolated), which keeps integer series integral.
    """
    n = len(sorted_values)
    if n == 0:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"percentile fraction must be in [0, 1], got {q}")
    rank = int(q * n + 0.999999) if q * n != int(q * n) else int(q * n)
    idx = max(0, min(n - 1, rank - 1))
    return sorted_values[idx]


class MetricsRegistry:
    """Counters, gauges and interval-sampled time series.

    ``max_points`` (optional) bounds every series' memory for always-on
    sampling: when a series would exceed it, the series is decimated by
    deterministically dropping every other point (keeping the even
    indices, i.e. the oldest point and every second one after it) — the
    series keeps its full time extent at half the resolution, and
    repeated runs of one configuration still dump byte-identical JSON.
    The default (``None``) keeps every point, unchanged from before.
    """

    __slots__ = ("interval", "max_points", "counters", "gauges", "_series", "_next_due")

    def __init__(
        self, interval: int = DEFAULT_INTERVAL, max_points: Optional[int] = None
    ) -> None:
        if interval < 1:
            raise ConfigurationError("metrics interval must be >= 1 cycle")
        if max_points is not None and max_points < 2:
            raise ConfigurationError("metrics max_points must be >= 2")
        self.interval = interval
        self.max_points = max_points
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._series: Dict[str, Tuple[List[int], List[float]]] = {}
        self._next_due: Dict[object, int] = {}

    # -- counters / gauges ----------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        self.gauges[name] = value

    # -- time series -----------------------------------------------------

    def due(self, key: object, now: int, start: int = 0) -> bool:
        """True when ``key``'s next sample interval has been reached.

        Advances the key's schedule as a side effect, so each sampling
        site pays one dict lookup per quantum and records at most one
        point per ``interval`` cycles.

        ``start`` anchors an *unseen* key's schedule: a series that
        begins mid-run (e.g. a post-adaptation gauge) passes the cycle
        it came into existence, so its first sample falls at or after
        that cycle instead of backfilling a phantom point scheduled
        from cycle 0.  Ignored once the key has a schedule.
        """
        nxt = self._next_due.get(key)
        if nxt is None:
            nxt = start
        if now < nxt:
            return False
        self._next_due[key] = now + self.interval
        return True

    def sample(self, name: str, now: int, value: float) -> None:
        """Append one ``(now, value)`` point to the series ``name``."""
        series = self._series.get(name)
        if series is None:
            series = ([], [])
            self._series[name] = series
        series[0].append(now)
        series[1].append(value)
        cap = self.max_points
        if cap is not None and len(series[0]) > cap:
            series[0][:] = series[0][0::2]
            series[1][:] = series[1][0::2]

    def series(self, name: str) -> Tuple[List[int], List[float]]:
        """The ``(times, values)`` arrays of one series."""
        if name not in self._series:
            raise ConfigurationError(f"no series named {name!r}")
        return self._series[name]

    def ensure_series(self, name: str) -> Tuple[List[int], List[float]]:
        """The series ``name``, created empty if it does not exist yet.

        Registration hook for callers that want a series to show up in
        :meth:`to_dict` (and be queryable by name) before the first
        sample lands — e.g. a dashboard pre-declaring every panel.
        """
        series = self._series.get(name)
        if series is None:
            series = ([], [])
            self._series[name] = series
        return series

    def series_names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self._series)

    def series_percentile(self, name: str, q: float) -> float:
        """Nearest-rank percentile of one series' values.

        Same :func:`nearest_rank` semantics as the trace analyzer's FASE
        latency percentiles.  Raises :class:`ConfigurationError` on an
        unknown series *and* on an empty one — a percentile of nothing
        is a caller bug, not a 0 (0 is a legal sample value, so it can't
        double as a sentinel).  A single-sample series returns that
        sample for every ``q``.
        """
        values = self.series(name)[1]
        if not values:
            raise ConfigurationError(
                f"series {name!r} is empty: percentile undefined"
            )
        return nearest_rank(sorted(values), q)

    def series_histogram(
        self, name: str, bins: int = 10
    ) -> List[Tuple[float, float, int]]:
        """Equal-width value histogram of one series.

        Returns ``[(lo, hi, count), ...]`` with ``bins`` contiguous
        buckets spanning ``[min, max]``; a constant (including
        single-sample) series collapses to one ``(v, v, n)`` bucket.
        An empty series raises :class:`ConfigurationError` — same
        contract as :meth:`series_percentile`, so "no data yet" is
        never mistaken for a real all-zero bucket.  Pure arithmetic on
        the recorded values, so the result is as deterministic as the
        series.
        """
        if bins < 1:
            raise ConfigurationError(f"histogram bins must be >= 1, got {bins}")
        values = self.series(name)[1]
        if not values:
            raise ConfigurationError(
                f"series {name!r} is empty: histogram undefined"
            )
        lo, hi = min(values), max(values)
        if lo == hi or bins == 1:
            return [(float(lo), float(hi), len(values))]
        width = (hi - lo) / bins
        counts = [0] * bins
        for v in values:
            counts[min(bins - 1, int((v - lo) / width))] += 1
        return [
            (float(lo + i * width), float(lo + (i + 1) * width), counts[i])
            for i in range(bins)
        ]

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict:
        """A JSON-serializable snapshot of everything recorded."""
        return {
            "interval": self.interval,
            "max_points": self.max_points,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "series": {
                name: {"t": list(ts), "v": list(vs)}
                for name, (ts, vs) in sorted(self._series.items())
            },
        }

    def write_json(self, path: str) -> None:
        """Write the snapshot as deterministic JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n")

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(interval={self.interval}, "
            f"counters={len(self.counters)}, series={len(self._series)})"
        )
