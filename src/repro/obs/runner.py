"""Execute one harness cell with live observability attached.

``traced_run`` mirrors :func:`repro.experiments.harness.execute_cell`
but builds the machine with a :class:`~repro.obs.trace.TraceRecorder`
(and optionally a :class:`~repro.obs.metrics.MetricsRegistry`), reusing
the harness's profile summaries so the cell is configured exactly like
an untraced run — tracing never perturbs simulation results, only
records them (asserted by ``tests/test_obs_machine.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.spec import TechniqueSpec, technique_factory
from repro.experiments.harness import Harness, sc_factory_kwargs
from repro.nvram.machine import Machine
from repro.nvram.stats import RunResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder


def traced_run(
    harness: Harness,
    name: str,
    technique: str,
    threads: int = 1,
    metrics_interval: Optional[int] = None,
) -> Tuple[RunResult, TraceRecorder, Optional[MetricsRegistry]]:
    """Run one ``(workload, technique, threads)`` cell with tracing on.

    Returns ``(result, recorder, metrics)``; ``metrics`` is ``None``
    unless ``metrics_interval`` (model cycles between samples) is given.
    The run itself is bit-identical to ``harness.run(...)`` for the same
    cell — the recorder only observes.
    """
    config = harness.config
    workload = harness.workload(name)
    spec = TechniqueSpec.parse(technique)
    summary = (
        harness.profile_summary(name)
        if spec.base in ("SC", "SC-offline")
        else None
    )
    factory_kwargs = sc_factory_kwargs(config, workload, technique, threads, summary)
    recorder = TraceRecorder()
    metrics = (
        MetricsRegistry(metrics_interval) if metrics_interval is not None else None
    )
    machine = Machine(config.machine_config(), recorder=recorder, metrics=metrics)
    result = machine.run(
        workload,
        technique_factory(spec, **factory_kwargs),
        num_threads=threads,
        seed=config.seed,
    )
    return result, recorder, metrics
