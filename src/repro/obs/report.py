"""Render trace profiles as markdown, JSON and self-contained HTML.

The HTML report embeds its charts as inline SVG (reusing the figure
pipeline's dependency-free renderer in
:mod:`repro.experiments.plots`) and carries zero external assets — one
file, openable anywhere, byte-deterministic for a given profile.  CI
uploads it as a workflow artifact next to the raw trace.

Import direction: this module pulls from ``repro.experiments``, so
``repro.obs.__init__`` re-exports it lazily — importing the obs package
(as the machine does) must not drag the experiment harness in.
"""

from __future__ import annotations

import html
import time
from typing import Dict, List, Optional

from repro.experiments.plots import svg_bar_chart, svg_line_chart
from repro.obs.analyze import Diagnosis, TraceProfile, max_severity

#: Badge colors per severity (also the report's legend).
_SEVERITY_COLOR = {"info": "#1f77b4", "warning": "#ff7f0e", "error": "#d62728"}


# ---------------------------------------------------------------------------
# Shared table shapes
# ---------------------------------------------------------------------------


def _provenance_rows(profile: TraceProfile) -> List[List[object]]:
    p = profile.provenance
    return [
        ["capacity eviction flushes", p.capacity_evictions],
        ["resize eviction flushes", p.resize_evictions],
        ["dirty eviction flushes", p.dirty_evict_flushes],
        ["distinct flushed lines", p.distinct_lines],
        ["write amplification", f"{p.write_amplification:.3f}"],
        ["FASE-boundary drains", p.fase_drains],
        ["FASE drain stall cycles", p.fase_drain_stall_cycles],
        ["end-of-program drains", p.final_drains],
        ["final drain stall cycles", p.final_drain_stall_cycles],
        ["flush-issue stall cycles", p.issue_stall_cycles],
        ["hw write-back stall cycles", p.writeback_stall_cycles],
    ]


def _fase_rows(profile: TraceProfile) -> List[List[object]]:
    f = profile.fase
    return [
        ["FASEs completed", f.count],
        ["p50 cycles", f.p50],
        ["p95 cycles", f.p95],
        ["p99 cycles", f.p99],
        ["max cycles", f.max],
        ["commit-drain stall share", f"{f.stall_share:.4f}"],
    ]


def _adaptation_rows(profile: TraceProfile) -> List[List[object]]:
    a = profile.adaptation
    return [
        ["sampling bursts", a.bursts],
        ["MRC analyses", a.analyses],
        ["knee candidates", a.knee_candidates],
        ["size selections", a.selections],
        ["group-size adoptions", a.adoptions],
        ["no-knee fallbacks", a.fallbacks],
        ["analysis cost cycles", a.analysis_cost_cycles],
    ]


def _charts(profile: TraceProfile) -> Dict[str, str]:
    """The report's inline SVG charts (only those with data)."""
    charts: Dict[str, str] = {}
    p = profile.provenance
    causes = {
        "capacity eviction": p.capacity_evictions,
        "resize eviction": p.resize_evictions,
        "FASE drain": p.fase_drains,
        "final drain": p.final_drains,
    }
    if any(causes.values()):
        charts["flush_causes"] = svg_bar_chart(
            list(causes),
            {"count": list(causes.values())},
            "Flush provenance by cause",
            ylabel="events",
        )
    if p.top_lines:
        charts["top_lines"] = svg_bar_chart(
            [f"line {line}" for line, _ in p.top_lines],
            {"flushes": [n for _, n in p.top_lines]},
            f"Top {len(p.top_lines)} hottest flushed lines",
            ylabel="eviction flushes",
        )
    traj = profile.adaptation.trajectories
    if traj:
        series = {
            f"t{tid}": (
                [cycle for cycle, _ in pts],
                [size for _, size in pts],
            )
            for tid, pts in sorted(traj.items())
        }
        charts["selected_sizes"] = svg_line_chart(
            series,
            "Selected software-cache size over time",
            xlabel="model cycles",
            ylabel="lines",
        )
    return charts


def _metrics_charts(metrics_doc: Dict) -> Dict[str, str]:
    """Optional charts from a metrics-registry JSON dump."""
    charts: Dict[str, str] = {}
    series = metrics_doc.get("series", {})
    for prefix, title, ylabel in (
        ("flush_queue_depth/", "Flush-queue depth", "entries"),
        ("flush_ratio/", "Rolling flush ratio", "flushes / store"),
        ("selected_size/", "Selected size (sampled)", "lines"),
    ):
        picked = {
            name[len(prefix):]: (doc["t"], doc["v"])
            for name, doc in sorted(series.items())
            if name.startswith(prefix) and doc["t"]
        }
        if picked:
            charts[prefix.rstrip("/")] = svg_line_chart(
                picked, title, xlabel="model cycles", ylabel=ylabel
            )
    return charts


# ---------------------------------------------------------------------------
# Markdown
# ---------------------------------------------------------------------------


def _md_table(headers: List[str], rows: List[List[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _diagnosis_lines(diagnoses: List[Diagnosis]) -> List[str]:
    if not diagnoses:
        return ["No diagnoses — the controller narrative and FASE nesting are clean."]
    return [f"- **{d.severity}** `{d.code}`: {d.message}" for d in diagnoses]


def render_markdown(profile: TraceProfile, title: str = "Trace profile") -> str:
    """The profile as a markdown document."""
    parts = [
        f"# {title}",
        "",
        f"Trace schema {profile.schema}, {profile.events} events, "
        f"threads {profile.threads}.",
        "",
        "## Flush provenance",
        "",
        _md_table(["metric", "value"], _provenance_rows(profile)),
        "",
        "## FASE latency",
        "",
        _md_table(["metric", "value"], _fase_rows(profile)),
        "",
        "## Adaptive controller",
        "",
        _md_table(["metric", "value"], _adaptation_rows(profile)),
        "",
        "## Diagnoses",
        "",
    ]
    parts.extend(_diagnosis_lines(profile.diagnoses))
    if profile.provenance.top_lines:
        parts.extend(
            [
                "",
                "## Hottest flushed lines",
                "",
                _md_table(
                    ["line", "eviction flushes"],
                    [[line, n] for line, n in profile.provenance.top_lines],
                ),
            ]
        )
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# HTML
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: sans-serif; margin: 2em auto; max-width: 64em;
       color: #222; }
h1 { border-bottom: 2px solid #222; padding-bottom: .2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: .3em .8em; text-align: left; }
th { background: #eee; }
.badge { color: white; border-radius: .6em; padding: .1em .6em;
         font-size: .85em; }
figure { margin: 1.5em 0; }
"""


def _html_table(headers: List[str], rows: List[List[object]]) -> str:
    out = ["<table>", "<tr>"]
    out.extend(f"<th>{html.escape(str(h))}</th>" for h in headers)
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        out.extend(f"<td>{html.escape(str(c))}</td>" for c in row)
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def render_html(
    profile: TraceProfile,
    title: str = "Trace profile",
    metrics_doc: Optional[Dict] = None,
) -> str:
    """The profile as one self-contained HTML document.

    Charts are inline SVG; no script, no external asset, no timestamp —
    the bytes are a pure function of the profile (plus the optional
    metrics dump), which is what lets CI diff two reports directly.
    """
    sev = max_severity(profile.diagnoses)
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>Trace schema {profile.schema} &middot; {profile.events} events "
        f"&middot; threads {profile.threads} &middot; verdict: "
        + (
            f'<span class="badge" style="background:{_SEVERITY_COLOR[sev]}">'
            f"{sev}</span>"
            if sev
            else '<span class="badge" style="background:#2ca02c">clean</span>'
        )
        + "</p>",
        "<h2>Diagnoses</h2>",
    ]
    if profile.diagnoses:
        parts.append(
            _html_table(
                ["severity", "code", "thread", "message"],
                [
                    [d.severity, d.code, d.thread_id, d.message]
                    for d in profile.diagnoses
                ],
            )
        )
    else:
        parts.append(
            "<p>None — the controller narrative and FASE nesting are clean.</p>"
        )
    parts.append("<h2>Flush provenance</h2>")
    parts.append(_html_table(["metric", "value"], _provenance_rows(profile)))
    parts.append("<h2>FASE latency</h2>")
    parts.append(_html_table(["metric", "value"], _fase_rows(profile)))
    parts.append("<h2>Adaptive controller</h2>")
    parts.append(_html_table(["metric", "value"], _adaptation_rows(profile)))
    for svg in _charts(profile).values():
        parts.append(f"<figure>{svg}</figure>")
    if metrics_doc is not None:
        charts = _metrics_charts(metrics_doc)
        if charts:
            parts.append("<h2>Metrics series</h2>")
            for svg in charts.values():
                parts.append(f"<figure>{svg}</figure>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Cross-run diff rendering
# ---------------------------------------------------------------------------


def render_diff_text(diff: Dict, label_a: str = "A", label_b: str = "B") -> str:
    """A plain-text cross-run diff report (the ``tracediff`` output)."""
    from repro.experiments.metrics import format_table

    lines = [f"trace diff: {label_a} vs {label_b} — verdict: {diff['verdict']}"]
    if diff["entries"]:
        rows = []
        for e in diff["entries"]:
            ratio = "-" if e["ratio"] is None else f"{e['ratio']:.4f}"
            rows.append(
                [
                    e["metric"],
                    e["a"],
                    e["b"],
                    e["delta"],
                    ratio,
                    "ok" if e["ok"] else "DIFFERENT",
                ]
            )
        lines.append(
            format_table(
                ["metric", label_a, label_b, "delta", "ratio", "status"], rows
            )
        )
    for note in diff["notes"]:
        lines.append(f"note: {note}")
    return "\n".join(lines) + "\n"


def render_diff_html(diff: Dict, label_a: str = "A", label_b: str = "B") -> str:
    """The cross-run diff as a self-contained HTML document."""
    ok = diff["verdict"] == "ok"
    color = "#2ca02c" if ok else "#d62728"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Trace diff: {html.escape(label_a)} vs {html.escape(label_b)}"
        f"</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Trace diff: {html.escape(label_a)} vs {html.escape(label_b)}</h1>",
        f'<p>verdict: <span class="badge" style="background:{color}">'
        f"{diff['verdict']}</span></p>",
    ]
    if diff["entries"]:
        parts.append(
            _html_table(
                ["metric", label_a, label_b, "delta", "ratio", "status"],
                [
                    [
                        e["metric"],
                        e["a"],
                        e["b"],
                        e["delta"],
                        "-" if e["ratio"] is None else f"{e['ratio']:.4f}",
                        "ok" if e["ok"] else "DIFFERENT",
                    ]
                    for e in diff["entries"]
                ],
            )
        )
    for note in diff["notes"]:
        parts.append(f"<p>note: {html.escape(note)}</p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_fleet_lines(aggregator) -> List[str]:
    """The per-worker fleet table (text lines, monitor-dashboard body).

    One row per worker: status, current task (with its age), completed
    task count, busy wall seconds, live/peak RSS and CPU%.  Renders from
    a :class:`repro.obs.fleet.FleetAggregator` regardless of whether it
    was fed from the live bus or a spill file.
    """
    snap = aggregator.snapshot()
    total = snap["tasks_total"] or "?"
    lines = [
        f"fleet: {snap['workers_alive']}/{snap['workers']} workers alive"
        + (f", {snap['dead_workers']} dead" if snap["dead_workers"] else "")
        + f" — {snap['tasks_done']}/{total} tasks, "
        f"{snap['throughput_per_s']:.2f} tasks/s, "
        f"{snap['elapsed_s']:.1f}s elapsed",
    ]
    if snap["violations"]:
        lines.append(f"violations: {snap['violations']}")
    lines.append("")
    lines.append(
        f"{'w':>3} {'status':>9} {'done':>5} {'busy-s':>8} "
        f"{'rss-MB':>7} {'peak':>7} {'cpu%':>6}  current task"
    )
    now = time.time()
    for index in sorted(aggregator.workers):
        w = aggregator.workers[index]
        if w.current is not None:
            current = f"{w.current['label']} ({now - w.current['since']:.1f}s)"
        else:
            current = "-"
        lines.append(
            f"{w.worker:>3} {w.status():>9} {w.done:>5} {w.busy_wall_s:>8.2f} "
            f"{w.rss_kb / 1024:>7.1f} {w.rss_peak_kb / 1024:>7.1f} "
            f"{w.cpu_pct:>6.1f}  {current}"
        )
    if aggregator.site_classes:
        lines.append("")
        lines.append(f"{'site class':>16} {'done':>6} {'violated':>9}")
        for cls in sorted(aggregator.site_classes):
            cell = aggregator.site_classes[cls]
            lines.append(
                f"{cls:>16} {cell['done']:>6} {cell['violated']:>9}"
            )
    for worker, tb in aggregator.tracebacks[-2:]:
        last = tb.strip().rsplit("\n", 1)[-1]
        lines.append(f"  worker {worker} error: {last}")
    return lines


# ---------------------------------------------------------------------------
# Run-history rendering (the ``history`` CLI artifact)
# ---------------------------------------------------------------------------


def _history_trend_rows(doc: Dict) -> List[List[object]]:
    rows = []
    for line in doc.get("lines", []):
        values = line["values"]
        cp = line.get("changepoint")
        rows.append(
            [
                line["label"],
                line["spec_sha"][:12],
                len(values),
                f"{values[0]:g}",
                f"{values[-1]:g}",
                f"{line['ewma'][-1]:g}",
                (
                    f"@{cp['index']} ({cp['shift_pct']:+.1f}%)"
                    if cp
                    else "-"
                ),
            ]
        )
    return rows


def _history_regress_rows(doc: Dict) -> List[List[object]]:
    return [
        [
            f["label"],
            f["spec_sha"][:12],
            f["points"],
            f"{f['fitted']:g}",
            f"{f['latest']:g}",
            f"{f['deviation_pct']:+.1f}%",
            f["direction"],
        ]
        for f in doc.get("findings", [])
    ]


_HISTORY_TREND_HEADERS = [
    "timeline", "spec", "n", "first", "last", "ewma", "changepoint",
]
_HISTORY_REGRESS_HEADERS = [
    "timeline", "spec", "n", "fitted", "latest", "deviation", "direction",
]


def render_history_markdown(doc: Dict, title: str = "Run history") -> str:
    """One history query result as a markdown document.

    ``doc`` is the JSON-shaped result of a :mod:`repro.obs.history`
    query, tagged with ``doc["query"]`` by the CLI.  Unknown queries
    degrade to their JSON — the renderer never blocks a new query kind.
    """
    import json as _json

    query = doc.get("query", "trend")
    parts = [f"# {title}", ""]
    if query == "trend":
        parts += [
            f"Metric `{doc.get('metric')}` — {len(doc.get('lines', []))} "
            f"timeline(s).",
            "",
            _md_table(_HISTORY_TREND_HEADERS, _history_trend_rows(doc)),
        ]
    elif query == "regress":
        findings = doc.get("findings", [])
        parts += [
            f"Metric `{doc.get('metric')}` ({doc.get('direction')} is worse), "
            f"threshold {doc.get('threshold_pct')}% vs the EWMA-fitted trend "
            f"— {doc.get('timelines_checked', 0)} timeline(s) checked, "
            f"{len(findings)} flagged.",
            "",
        ]
        if findings:
            parts.append(
                _md_table(_HISTORY_REGRESS_HEADERS, _history_regress_rows(doc))
            )
            for f in findings:
                for link in f.get("linked", []):
                    parts.append(
                        f"- `{f['label']}` links to {link['kind']} "
                        f"artifacts: {link['artifacts']}"
                    )
        else:
            parts.append("No timeline broke from its fitted trend.")
    elif query == "compare":
        rows = doc.get("rows", [])
        parts.append(f"{len(rows)} timeline(s) with >= 2 records.")
        for row in rows:
            parts += ["", f"## {row['label']} (`{row['spec_sha'][:12]}`)", ""]
            if row["identical"]:
                parts.append("Last two records are identical.")
            else:
                parts.append(
                    _md_table(
                        ["counter", "prev", "last", "ratio"],
                        [
                            [k, d["prev"], d["last"], d.get("ratio", "-")]
                            for k, d in sorted(row["deltas"].items())
                        ],
                    )
                )
    elif query == "flaky":
        rows = doc.get("rows", [])
        if not rows:
            parts.append(
                f"No flaky `{doc.get('kind')}` timelines — every spec's "
                f"records agree."
            )
        for row in rows:
            parts += [
                f"## {row['label']} (`{row['spec_sha'][:12]}`): "
                f"{len(row['outcomes'])} distinct outcomes over "
                f"{row['records']} records",
                "",
            ]
            for outcome in row["outcomes"]:
                parts.append(
                    f"- ×{outcome['count']}: "
                    f"`{_json.dumps(outcome['counters'], sort_keys=True)}`"
                )
    else:
        parts.append("```json")
        parts.append(_json.dumps(doc, sort_keys=True, indent=1))
        parts.append("```")
    return "\n".join(parts) + "\n"


def render_history_html(doc: Dict, title: str = "Run history") -> str:
    """One history query result as a self-contained HTML document.

    Trend queries get one inline-SVG line chart per metric (all
    timelines overlaid, x = record index) in the figure idiom of the
    profile report; everything else renders as tables.  Deterministic
    for a given query result.
    """
    query = doc.get("query", "trend")
    ok = doc.get("ok", True)
    color = "#2ca02c" if ok else "#d62728"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p>query: {html.escape(query)} &middot; verdict: '
        f'<span class="badge" style="background:{color}">'
        f"{'ok' if ok else 'flagged'}</span></p>",
    ]
    if query == "trend":
        parts.append(
            _html_table(_HISTORY_TREND_HEADERS, _history_trend_rows(doc))
        )
        series = {
            line["label"]: (
                list(range(len(line["values"]))),
                line["values"],
            )
            for line in doc.get("lines", [])
            if line["values"]
        }
        if series:
            parts.append(
                "<figure>"
                + svg_line_chart(
                    series,
                    f"{doc.get('metric')} per record",
                    xlabel="record #",
                    ylabel=str(doc.get("metric")),
                )
                + "</figure>"
            )
    elif query == "regress":
        parts.append(
            _html_table(_HISTORY_REGRESS_HEADERS, _history_regress_rows(doc))
        )
    elif query == "compare":
        for row in doc.get("rows", []):
            parts.append(f"<h2>{html.escape(row['label'])}</h2>")
            if row["identical"]:
                parts.append("<p>Last two records are identical.</p>")
            else:
                parts.append(
                    _html_table(
                        ["counter", "prev", "last", "ratio"],
                        [
                            [k, d["prev"], d["last"], d.get("ratio", "-")]
                            for k, d in sorted(row["deltas"].items())
                        ],
                    )
                )
    elif query == "flaky":
        for row in doc.get("rows", []):
            parts.append(f"<h2>{html.escape(row['label'])}</h2>")
            parts.append(
                _html_table(
                    ["count", "counters"],
                    [
                        [o["count"], o["counters"]]
                        for o in row["outcomes"]
                    ],
                )
            )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_history_text(doc: Dict) -> str:
    """The history query as an aligned plain-text report (CLI stdout)."""
    from repro.experiments.metrics import format_table

    query = doc.get("query", "trend")
    lines: List[str] = []
    if query == "trend":
        rows = _history_trend_rows(doc)
        lines.append(
            f"history trend — metric {doc.get('metric')}, "
            f"{len(rows)} timeline(s)"
        )
        if rows:
            lines.append(format_table(_HISTORY_TREND_HEADERS, rows))
    elif query == "regress":
        findings = doc.get("findings", [])
        lines.append(
            f"history regress — metric {doc.get('metric')} "
            f"({doc.get('direction')} is worse), threshold "
            f"{doc.get('threshold_pct')}%: {doc.get('timelines_checked', 0)} "
            f"checked, {len(findings)} flagged"
        )
        if findings:
            lines.append(
                format_table(_HISTORY_REGRESS_HEADERS, _history_regress_rows(doc))
            )
            for f in findings:
                for link in f.get("linked", []):
                    lines.append(
                        f"  {f['label']} -> {link['kind']} {link['artifacts']}"
                    )
        for skip in doc.get("skipped", []):
            lines.append(
                f"note: {skip['label']}: skipped ({skip['reason']})"
            )
    elif query == "compare":
        for row in doc.get("rows", []):
            lines.append(
                f"{row['label']} ({row['spec_sha'][:12]}): "
                + (
                    "identical"
                    if row["identical"]
                    else f"{len(row['deltas'])} counter(s) changed"
                )
            )
            if not row["identical"]:
                lines.append(
                    format_table(
                        ["counter", "prev", "last", "ratio"],
                        [
                            [k, d["prev"], d["last"], d.get("ratio", "-")]
                            for k, d in sorted(row["deltas"].items())
                        ],
                    )
                )
    elif query == "flaky":
        rows = doc.get("rows", [])
        lines.append(
            f"history flaky — kind {doc.get('kind')}: {len(rows)} unstable "
            f"timeline(s)"
        )
        for row in rows:
            lines.append(
                f"  {row['label']}: {len(row['outcomes'])} distinct outcomes "
                f"over {row['records']} records"
            )
    lines.append("OK" if doc.get("ok", True) else "FLAGGED")
    return "\n".join(lines) + "\n"


def write_text(path: str, text: str) -> None:
    """Write a rendered document with deterministic encoding."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
