"""Longitudinal queries over the run ledger: trend, compare, regress, flaky.

Where :mod:`repro.experiments.bench_compare` diffs exactly two BENCH
files and ``tracediff`` exactly two traces, this module reads the whole
:class:`~repro.obs.ledger.RunLedger` and answers trajectory questions:

``trend``
    Per-spec timelines of one metric — every record of a spec in append
    order, with its EWMA fit and any detected changepoint.

``regress``
    The gate: for each spec timeline, fit an EWMA over all but the
    latest point and flag the latest when it falls on the wrong side of
    the fitted trend by more than a threshold.  Direction-aware
    (throughput regresses *down*, time/overhead regress *up*), and each
    finding carries the records linked to the flagged run through
    shared artifact paths (its trace profile, its crash matrix).

``compare``
    The last two records of each spec timeline, counter by counter —
    the ledger-native replacement for hand-picking two files.

``flaky``
    Campaign stability: campaigns are deterministic functions of their
    spec, so two records of one fingerprint whose stable outcomes
    (violations, verdict cells) differ expose nondeterminism — the
    longitudinal version of the crash oracle's verdict.

All analysis is pure arithmetic on the records (EWMA + a mean-shift
changepoint scan), deterministic given the ledger contents.  Pure
standard library, importable without the experiment stack; the
``history`` CLI artifact (``python -m repro.experiments history``)
wraps these queries with table/markdown/JSON/HTML rendering.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.ledger import RunLedger, RunRecord, related_artifacts

#: Default EWMA smoothing weight for the fitted trend (weight of the
#: newest point; 0.3 tracks drift within ~3 records while damping one
#: noisy outlier).
DEFAULT_ALPHA = 0.3

#: Default regression threshold, percent deviation from the fitted trend.
DEFAULT_THRESHOLD_PCT = 10.0

#: Minimum timeline length for the changepoint scan (means on both
#: sides of a split need at least two points each).
MIN_CHANGEPOINT_POINTS = 4

#: Metric-name fragments implying "higher is worse".  Everything else
#: (throughput, speedups, events/sec) regresses downward.
_HIGHER_IS_WORSE = (
    "time",
    "_s",
    "overhead",
    "stall",
    "wall",
    "cycles",
    "violations",
    "violated",
    "ratio",
    "miss",
)


def metric_direction(metric: str) -> str:
    """``"up"`` when a rising metric is a regression, else ``"down"``.

    Inference is by name fragment (``time``, ``overhead``, ``stall``,
    ``…_s`` … are costs; everything else is treated as goodness).  The
    CLI's ``--direction`` overrides it when a name lies.
    """
    leaf = metric.rsplit(".", 1)[-1].lower()
    for fragment in _HIGHER_IS_WORSE:
        if fragment == "_s" and leaf.endswith("_s"):
            return "up"
        if fragment != "_s" and fragment in leaf:
            return "up"
    return "down"


def metric_value(record: RunRecord, metric: str) -> Optional[float]:
    """Resolve a dotted metric path against one record.

    ``"counters.time"`` reads ``record.counters["time"]``; a bare name
    is tried under ``counters`` first, then as a record attribute
    (``wall_s``).  Returns ``None`` when the path does not resolve to a
    number — records missing a metric simply drop out of that timeline.
    """
    data = record.to_dict()
    path = metric.split(".")
    if len(path) == 1:
        if metric in record.counters:
            path = ["counters", metric]
        elif metric not in data:
            return None
    node = data
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


# ---------------------------------------------------------------------------
# Fits
# ---------------------------------------------------------------------------


def ewma(values: Sequence[float], alpha: float = DEFAULT_ALPHA) -> List[float]:
    """The exponentially-weighted moving average of a series.

    ``out[i]`` is the fit after observing ``values[: i + 1]``; the
    first point seeds the fit.  Pure arithmetic, deterministic.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"ewma alpha must be in (0, 1], got {alpha}")
    out: List[float] = []
    fit: Optional[float] = None
    for v in values:
        fit = v if fit is None else fit + alpha * (v - fit)
        out.append(fit)
    return out


def detect_changepoint(
    values: Sequence[float], min_shift_pct: float = DEFAULT_THRESHOLD_PCT
) -> Optional[Dict]:
    """The strongest mean-shift split of a series, if any clears the bar.

    Scans every split index with at least two points on each side,
    scores it by the relative shift between the before/after means, and
    returns the strongest split when its shift exceeds
    ``min_shift_pct`` percent.  A step change (the typical landed-PR
    signature) scores far above noise; a gradual drift scores low and
    is the EWMA's job instead.  Returns ``None`` when nothing clears
    the bar or the series is too short.
    """
    n = len(values)
    if n < MIN_CHANGEPOINT_POINTS:
        return None
    best: Optional[Dict] = None
    for split in range(2, n - 1):
        before = sum(values[:split]) / split
        after = sum(values[split:]) / (n - split)
        if before == 0:
            continue
        shift_pct = (after / before - 1.0) * 100.0
        if best is None or abs(shift_pct) > abs(best["shift_pct"]):
            best = {
                "index": split,
                "before_mean": before,
                "after_mean": after,
                "shift_pct": shift_pct,
            }
    if best is None or abs(best["shift_pct"]) < min_shift_pct:
        return None
    best["before_mean"] = round(best["before_mean"], 6)
    best["after_mean"] = round(best["after_mean"], 6)
    best["shift_pct"] = round(best["shift_pct"], 3)
    return best


# ---------------------------------------------------------------------------
# Spec labelling + filtering
# ---------------------------------------------------------------------------


def spec_label(record: RunRecord) -> str:
    """A short human label for one spec group.

    Prefers the conventional run-spec fields; falls back to the
    fingerprint prefix so every group is addressable.
    """
    spec = record.spec
    parts = [record.kind]
    for key in ("workload", "technique", "threads", "quick"):
        if key not in spec:
            continue
        value = spec[key]
        if isinstance(value, bool):
            if value:
                parts.append(key)
        elif key == "threads":
            parts.append(f"t{value}")
        elif str(value) != record.kind:
            parts.append(str(value))
    if len(parts) == 1:
        parts.append(record.spec_sha[:12])
    return "/".join(parts)


def _matches(record: RunRecord, spec_filter: Optional[str]) -> bool:
    if not spec_filter:
        return True
    if record.spec_sha.startswith(spec_filter):
        return True
    return spec_filter in spec_label(record) or spec_filter in json.dumps(
        record.spec, sort_keys=True
    )


def select_timelines(
    ledger: RunLedger,
    kind: Optional[str] = None,
    spec_filter: Optional[str] = None,
    limit: Optional[int] = None,
) -> Dict[str, List[RunRecord]]:
    """Spec-grouped timelines, filtered; each group capped to ``limit``."""
    groups: Dict[str, List[RunRecord]] = {}
    for sha, records in ledger.timelines(kind=kind).items():
        records = [r for r in records if _matches(r, spec_filter)]
        if not records:
            continue
        if limit is not None and limit > 0:
            records = records[-limit:]
        groups[sha] = records
    return groups


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass
class TrendLine:
    """One spec's timeline of one metric, with its fits."""

    spec_sha: str
    label: str
    metric: str
    values: List[float]
    ewma: List[float]
    timestamps: List[float]
    changepoint: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {
            "spec_sha": self.spec_sha,
            "label": self.label,
            "metric": self.metric,
            "values": self.values,
            "ewma": [round(v, 6) for v in self.ewma],
            "timestamps": self.timestamps,
            "changepoint": self.changepoint,
        }


def trend(
    ledger: RunLedger,
    metric: str,
    kind: Optional[str] = None,
    spec_filter: Optional[str] = None,
    alpha: float = DEFAULT_ALPHA,
    limit: Optional[int] = None,
    min_shift_pct: float = DEFAULT_THRESHOLD_PCT,
) -> List[TrendLine]:
    """Per-spec timelines of ``metric`` with EWMA and changepoint."""
    lines: List[TrendLine] = []
    for sha, records in sorted(
        select_timelines(ledger, kind, spec_filter, limit).items()
    ):
        points = [
            (r, v)
            for r in records
            if (v := metric_value(r, metric)) is not None
        ]
        if not points:
            continue
        values = [v for _, v in points]
        lines.append(
            TrendLine(
                spec_sha=sha,
                label=spec_label(points[0][0]),
                metric=metric,
                values=values,
                ewma=ewma(values, alpha),
                timestamps=[r.ts for r, _ in points],
                changepoint=detect_changepoint(values, min_shift_pct),
            )
        )
    return lines


@dataclass
class RegressionFinding:
    """One flagged timeline: the latest point broke from its trend."""

    spec_sha: str
    label: str
    metric: str
    direction: str
    latest: float
    fitted: float
    deviation_pct: float
    threshold_pct: float
    points: int
    run_id: str
    artifacts: Dict[str, str] = field(default_factory=dict)
    linked: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "spec_sha": self.spec_sha,
            "label": self.label,
            "metric": self.metric,
            "direction": self.direction,
            "latest": self.latest,
            "fitted": round(self.fitted, 6),
            "deviation_pct": round(self.deviation_pct, 3),
            "threshold_pct": self.threshold_pct,
            "points": self.points,
            "run_id": self.run_id,
            "artifacts": dict(self.artifacts),
            "linked": list(self.linked),
        }


def regress(
    ledger: RunLedger,
    metric: str,
    kind: Optional[str] = None,
    spec_filter: Optional[str] = None,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    alpha: float = DEFAULT_ALPHA,
    direction: str = "auto",
    limit: Optional[int] = None,
) -> Dict:
    """Gate the latest record of each timeline against its fitted trend.

    The trend is the EWMA of every point *before* the latest, so one
    regressed point cannot drag its own baseline toward itself (the
    multi-baseline answer to gating against a single prior file).
    Timelines with fewer than two points are skipped (nothing to gate
    against) and reported as such.  The result's ``ok`` is ``False``
    when any timeline is flagged; each finding links the flagged run's
    artifacts and any profile/crashmatrix records sharing them.
    """
    if direction == "auto":
        direction = metric_direction(metric)
    if direction not in ("up", "down"):
        raise ValueError(f"direction must be auto/up/down, got {direction!r}")
    all_records = ledger.scan()
    findings: List[RegressionFinding] = []
    skipped: List[Dict] = []
    checked = 0
    for sha, records in sorted(
        select_timelines(ledger, kind, spec_filter, limit).items()
    ):
        points = [
            (r, v)
            for r in records
            if (v := metric_value(r, metric)) is not None
        ]
        if len(points) < 2:
            skipped.append(
                {
                    "spec_sha": sha,
                    "label": spec_label(records[0]),
                    "points": len(points),
                    "reason": "need >= 2 points with the metric",
                }
            )
            continue
        checked += 1
        values = [v for _, v in points]
        fitted = ewma(values[:-1], alpha)[-1]
        latest_record, latest = points[-1]
        if fitted == 0:
            continue
        deviation_pct = (latest / fitted - 1.0) * 100.0
        regressed = (
            deviation_pct > threshold_pct
            if direction == "up"
            else deviation_pct < -threshold_pct
        )
        if regressed:
            findings.append(
                RegressionFinding(
                    spec_sha=sha,
                    label=spec_label(latest_record),
                    metric=metric,
                    direction=direction,
                    latest=latest,
                    fitted=fitted,
                    deviation_pct=deviation_pct,
                    threshold_pct=threshold_pct,
                    points=len(values),
                    run_id=latest_record.run_id,
                    artifacts=dict(latest_record.artifacts),
                    linked=related_artifacts(all_records, latest_record),
                )
            )
    return {
        "metric": metric,
        "direction": direction,
        "threshold_pct": threshold_pct,
        "alpha": alpha,
        "timelines_checked": checked,
        "skipped": skipped,
        "findings": [f.to_dict() for f in findings],
        "ok": not findings,
    }


def compare(
    ledger: RunLedger,
    kind: Optional[str] = None,
    spec_filter: Optional[str] = None,
) -> Dict:
    """Counter-by-counter deltas of the last two records per timeline."""
    rows: List[Dict] = []
    for sha, records in sorted(select_timelines(ledger, kind, spec_filter).items()):
        if len(records) < 2:
            continue
        prev, last = records[-2], records[-1]
        deltas = {}
        for key in sorted(set(prev.counters) | set(last.counters)):
            a, b = prev.counters.get(key), last.counters.get(key)
            if isinstance(a, bool) or isinstance(b, bool):
                if a != b:
                    deltas[key] = {"prev": a, "last": b}
                continue
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                if a != b:
                    entry = {"prev": a, "last": b}
                    if a:
                        entry["ratio"] = round(b / a, 6)
                    deltas[key] = entry
        rows.append(
            {
                "spec_sha": sha,
                "label": spec_label(last),
                "records": len(records),
                "prev_run_id": prev.run_id,
                "last_run_id": last.run_id,
                "identical": not deltas,
                "deltas": deltas,
            }
        )
    return {"rows": rows, "ok": all(r["identical"] for r in rows)}


def flaky(
    ledger: RunLedger,
    kind: str = "campaign",
    spec_filter: Optional[str] = None,
) -> Dict:
    """Timelines whose deterministic outcomes disagree across records.

    Campaigns (and runs) are pure functions of their spec, so two
    records of one fingerprint with different stable outcomes mean the
    code changed under the same spec *or* the run is nondeterministic —
    either way, the timeline is not trustworthy and is listed here with
    the distinct outcomes observed.
    """
    rows: List[Dict] = []
    for sha, records in sorted(select_timelines(ledger, kind, spec_filter).items()):
        if len(records) < 2:
            continue
        outcomes: Dict[str, Dict] = {}
        for record in records:
            key = json.dumps(record.counters, sort_keys=True)
            entry = outcomes.setdefault(
                key, {"counters": record.counters, "count": 0, "run_ids": []}
            )
            entry["count"] += 1
            entry["run_ids"].append(record.run_id)
        if len(outcomes) > 1:
            rows.append(
                {
                    "spec_sha": sha,
                    "label": spec_label(records[-1]),
                    "records": len(records),
                    "outcomes": list(outcomes.values()),
                }
            )
    return {"kind": kind, "rows": rows, "ok": not rows}


# ---------------------------------------------------------------------------
# BENCH document distillation (the bench timeline's counters)
# ---------------------------------------------------------------------------


def bench_counters(doc: Dict) -> Dict[str, float]:
    """Distill a BENCH document into flat, gateable ledger counters.

    Geometric means over the pinned per-case rows (the same folds
    ``bench_compare`` gates on) plus the single-number sections, so a
    bench timeline supports ``history regress`` on dotted names like
    ``counters.batched_eps_geomean`` without re-parsing documents.
    """

    def _geomean(values: List[float]) -> Optional[float]:
        vals = [v for v in values if v and v > 0]
        if not vals:
            return None
        return math.exp(sum(math.log(v) for v in vals) / len(vals))

    counters: Dict[str, float] = {}
    sim = doc.get("simulator") or []
    for name, key in (
        ("batched_eps_geomean", "batched_eps"),
        ("per_event_eps_geomean", "per_event_eps"),
    ):
        fit = _geomean([row.get(key, 0) for row in sim])
        if fit is not None:
            counters[name] = round(fit, 3)
    if "simulator_speedup_geomean" in doc:
        counters["simulator_speedup_geomean"] = float(
            doc["simulator_speedup_geomean"]
        )
    reuse = doc.get("reuse_counts") or {}
    if "intervals_per_sec" in reuse:
        counters["reuse_intervals_per_sec"] = float(reuse["intervals_per_sec"])
    analyzer = doc.get("analyzer") or {}
    if "events_per_sec" in analyzer:
        counters["analyzer_eps"] = float(analyzer["events_per_sec"])
    streaming = doc.get("streaming_recorder") or {}
    if "streaming_eps" in streaming:
        counters["streaming_eps"] = float(streaming["streaming_eps"])
    if "streaming_overhead" in streaming:
        counters["streaming_overhead"] = float(streaming["streaming_overhead"])
    zoo = doc.get("policy_zoo") or []
    fit = _geomean([row.get("eps", 0) for row in zoo])
    if fit is not None:
        counters["policy_zoo_eps_geomean"] = round(fit, 3)
    fleet = doc.get("fleet_overhead") or {}
    if "fleet_overhead" in fleet:
        counters["fleet_overhead"] = float(fleet["fleet_overhead"])
    led = doc.get("ledger") or {}
    if "ledger_overhead" in led:
        counters["ledger_overhead"] = float(led["ledger_overhead"])
    return counters


def bench_spec(doc: Dict) -> Dict:
    """The spec dict one BENCH document records under (its timeline key).

    Quick and full suites are different pinned configurations, so they
    form separate timelines; reps/jobs ride along because they change
    what the numbers mean on a loaded host.
    """
    return {
        "suite": "bench",
        "suite_version": doc.get("suite_version"),
        "bench_schema": doc.get("schema_version", 1),
        "quick": bool(doc.get("quick")),
        "reps": doc.get("reps"),
        "jobs": (doc.get("harness") or {}).get("jobs"),
    }


def import_bench_doc(
    ledger: RunLedger, path: str, doc: Optional[Dict] = None
) -> RunRecord:
    """Wrap one existing BENCH file as a ledger record and append it.

    The committed ``BENCH_<date>.json`` trajectory predates the ledger;
    importing it seeds the bench timeline so ``bench_compare --ledger``
    and ``history regress`` have history from day one.  The full
    document rides in ``extra["bench"]``; the record's ``ts`` is taken
    from the document's ``date`` so imported history sorts before
    freshly recorded runs.
    """
    import calendar
    import time as _time

    if doc is None:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    record = RunRecord(
        kind="bench",
        spec=bench_spec(doc),
        counters=bench_counters(doc),
        extra={"bench": doc},
        artifacts={"bench": path},
    )
    date = doc.get("date")
    if date:
        try:
            record.ts = float(
                calendar.timegm(_time.strptime(str(date), "%Y-%m-%d"))
            )
        except ValueError:
            pass
    return ledger.append(record)
