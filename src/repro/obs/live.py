"""Live telemetry: bounded streaming traces, incremental profiles, alerts.

Everything in :mod:`repro.obs.trace` / :mod:`repro.obs.analyze` is
post-mortem — the recorder retains every event in unbounded arrays and
the analyzer folds a complete trace after the run.  This module is the
*online* counterpart (DESIGN.md §12), three pieces that compose into a
streaming pipeline:

- :class:`StreamingRecorder` shares :class:`TraceRecorder`'s recording
  interface but holds only a bounded ring of recent events, incrementally
  spills schema-2 JSONL to disk and fans every event into subscribers.
  The spill is append-only in recording order through the same
  :func:`~repro.obs.trace.encode_event_line` encoder the offline export
  uses, so the finished file is **byte-identical** to a post-hoc
  ``TraceRecorder.write_jsonl`` of the same run — when a flush happens
  never changes what the bytes are.
- :class:`StreamingProfile` folds events online, one fixed cycle-window
  at a time, into the very same :class:`~repro.obs.analyze.ProfileFold`
  the offline :func:`~repro.obs.analyze.analyze` runs — one fold
  implementation, so ``finalize()`` over any stream equals the offline
  profile *by construction* (and by the hypothesis property in
  ``tests/test_obs_live.py``).  Each closed window emits a
  :class:`WindowSnapshot` carrying the window's deltas and the
  cumulative derived metrics (write amplification, stall share).
- :class:`AlertEngine` evaluates declarative :class:`AlertRule`\\ s —
  threshold, rate-of-change, sustained-window — over those snapshots
  (and over analyzer diagnoses), emitting typed, severity-ranked
  :class:`Alert` records to a deterministic JSONL log.

**Window semantics.**  Per-thread cycle clocks interleave, so raw
timestamps are not globally monotonic in recording order.  Windows are
therefore driven by a *watermark* — the maximum timestamp observed so
far (events and scheduler-quantum ticks both advance it).  Window ``w``
spans model cycles ``[w*W, (w+1)*W)`` and closes the first time the
watermark reaches ``(w+1)*W``; every event is attributed to the window
open at the moment it is recorded.  That makes windowing a pure function
of the event/tick sequence — deterministic across runs — while the
*final* profile provably never depends on where the window boundaries
fell.

The import direction rule of :mod:`repro.obs` holds: nothing here
imports :mod:`repro.experiments` (the ``monitor`` CLI lives on the
experiments side and imports us).
"""

from __future__ import annotations

import json
import queue
import re
import threading
from collections import Counter, deque
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Deque, Dict, IO, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.analyze import (
    SEVERITIES,
    _SEVERITY_RANK,
    AnalyzerConfig,
    Diagnosis,
    ProfileFold,
    TraceProfile,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    encode_event_chunk,
    encode_meta_line,
)

#: Default streaming window length in model cycles.  Small enough that a
#: seed run closes many windows, large enough that per-window deltas are
#: statistically meaningful.
DEFAULT_WINDOW_CYCLES = 100_000

#: Default bounded-ring capacity of :class:`StreamingRecorder`.
DEFAULT_RING_CAPACITY = 4096

#: Default bound of the spill writer's handoff queue, in pending chunks.
#: A full queue blocks the recording thread (backpressure) rather than
#: dropping events — the spill guarantee is completeness, not liveness.
DEFAULT_SPILL_QUEUE_CHUNKS = 8

#: Sentinel telling the spill writer thread to exit.
_SPILL_STOP = object()


# ---------------------------------------------------------------------------
# streaming recorder
# ---------------------------------------------------------------------------


class StreamingRecorder:
    """Bounded-memory recorder: ring buffer + incremental JSONL spill.

    Drop-in for :class:`~repro.obs.trace.TraceRecorder` at every machine
    recording site (``enabled``/``record``/``on_quantum``), but instead
    of unbounded parallel arrays it keeps:

    - a ring of the most recent ``ring_capacity`` events (``tail()``),
    - per-kind counts (``counts()``) and a total (``len()``),
    - optionally, a JSONL spill file: the ``trace_meta`` header is
      written on open and buffered event lines are flushed whenever a
      cycle window closes (and on ``close()``), preserving recording
      order — so the finished file is byte-identical to what a
      ``TraceRecorder.write_jsonl`` of the same run would have written.

    With ``spill_thread=True`` (the default) the spill runs on a
    dedicated writer thread: window closings hand the pending buffer to
    a bounded queue and return immediately, and encoding + file I/O
    happen off the simulation thread.  A full queue *blocks* the
    recording thread until the writer catches up — backpressure, never
    drops — so completeness is unconditional.  ``flush()`` still means
    "the file now holds every event recorded so far" (it drains the
    queue before returning), a writer error re-raises at the next
    ``flush()``/``close()``, and the single-consumer FIFO preserves
    recording order, so the byte-identity guarantee is untouched.

    Subscribers receive every event as it is recorded: either a callable
    ``fn(kind, thread_id, time, a, b, c)`` or an object with a matching
    ``record`` method (a :class:`StreamingProfile`, or even another
    recorder).  Subscribers with an ``on_quantum`` method also receive
    the scheduler's window ticks, which is how a subscribed profile
    closes windows during event-free stretches.
    """

    __slots__ = (
        "schema",
        "window_cycles",
        "ring",
        "total",
        "_counts",
        "_pending",
        "_fh",
        "_owns_fh",
        "_watermark",
        "_boundary",
        "windows_flushed",
        "_subs",
        "_tick_subs",
        "closed",
        "_spill_queue",
        "_spill_thread",
        "_spill_error",
    )

    enabled = True

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        fileobj: Optional[IO[str]] = None,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        subscribers: Iterable[object] = (),
        spill_thread: bool = True,
        spill_queue_chunks: int = DEFAULT_SPILL_QUEUE_CHUNKS,
    ) -> None:
        if window_cycles < 1:
            raise ConfigurationError(f"window_cycles must be >= 1, got {window_cycles}")
        if ring_capacity < 1:
            raise ConfigurationError(f"ring_capacity must be >= 1, got {ring_capacity}")
        if path is not None and fileobj is not None:
            raise ConfigurationError("pass either path or fileobj, not both")
        self.schema = TRACE_SCHEMA_VERSION
        self.window_cycles = window_cycles
        self.ring: Deque[Tuple[str, int, int, int, int, int]] = deque(
            maxlen=ring_capacity
        )
        self.total = 0
        self._counts: Dict[str, int] = {}
        self._pending: List[Tuple[str, int, int, int, int, int]] = []
        self._owns_fh = path is not None
        self._fh = open(path, "w", encoding="utf-8") if path is not None else fileobj
        self._watermark = -1
        self._boundary = window_cycles
        self.windows_flushed = 0
        self._subs: List[Callable[[str, int, int, int, int, int], None]] = []
        self._tick_subs: List[object] = []
        self.closed = False
        self._spill_queue: Optional[queue.Queue] = None
        self._spill_thread: Optional[threading.Thread] = None
        self._spill_error: Optional[BaseException] = None
        if self._fh is not None:
            if spill_queue_chunks < 1:
                raise ConfigurationError(
                    f"spill_queue_chunks must be >= 1, got {spill_queue_chunks}"
                )
            # Header before the writer starts: from here on the writer
            # thread is the file's only writer.
            self._fh.write(encode_meta_line() + "\n")
            if spill_thread:
                self._spill_queue = queue.Queue(maxsize=spill_queue_chunks)
                self._spill_thread = threading.Thread(
                    target=self._spill_writer,
                    name="streaming-spill",
                    daemon=True,
                )
                self._spill_thread.start()
        for sub in subscribers:
            self.subscribe(sub)

    # -- subscribers -----------------------------------------------------

    def subscribe(self, subscriber: object) -> None:
        """Fan events (and quantum ticks) into ``subscriber``."""
        record = getattr(subscriber, "record", None)
        self._subs.append(record if callable(record) else subscriber)  # type: ignore[arg-type]
        if callable(getattr(subscriber, "on_quantum", None)):
            self._tick_subs.append(subscriber)

    # -- recording (the TraceRecorder interface) -------------------------

    def record(
        self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0, c: int = 0
    ) -> None:
        """Append one event: ring + counts + spill buffer + fan-out.

        The ring stores the plain tuple (shared with the spill buffer —
        one allocation per event); ``tail()`` decodes to
        :class:`TraceEvent` lazily, ``dropped`` derives from ``total``
        and the ring occupancy, and with a spill file the per-kind
        counts fold in bulk when a chunk is consumed (``counts()``
        merges the not-yet-spilled tail).
        """
        self.total += 1
        event = (kind, thread_id, time, a, b, c)
        self.ring.append(event)
        if self._fh is not None:
            self._pending.append(event)
        else:
            self._counts[kind] = self._counts.get(kind, 0) + 1
        if self._subs:
            for sub in self._subs:
                sub(kind, thread_id, time, a, b, c)
        if time > self._watermark:
            self._watermark = time
            if time >= self._boundary:
                self._cross_boundary()

    def on_quantum(self, thread_id: int, now: int) -> None:
        """Scheduler window tick: advance the watermark, spill if due."""
        if now > self._watermark:
            self._watermark = now
            if now >= self._boundary:
                self._cross_boundary()
        for sub in self._tick_subs:
            sub.on_quantum(thread_id, now)

    def _cross_boundary(self) -> None:
        w = self.window_cycles
        while self._watermark >= self._boundary:
            self._boundary += w
            self.windows_flushed += 1
        if self._spill_queue is not None:
            # Hand the pending chunk to the writer and keep simulating;
            # a full queue blocks here (backpressure, never drops).
            self._handoff()
            self._check_spill_error()
        else:
            self.flush()

    # -- spill -----------------------------------------------------------

    def _fold_counts(self, chunk: List[Tuple[str, int, int, int, int, int]]) -> None:
        """Fold a consumed chunk's kinds into the running counts (one
        C-level Counter pass per chunk, nothing per event)."""
        counts = self._counts
        for kind, n in Counter(map(itemgetter(0), chunk)).items():
            counts[kind] = counts.get(kind, 0) + n

    def _handoff(self) -> None:
        if self._pending:
            self._fold_counts(self._pending)
            self._spill_queue.put(self._pending)
            self._pending = []

    def _check_spill_error(self) -> None:
        if self._spill_error is not None:
            raise RuntimeError(
                "streaming spill writer failed"
            ) from self._spill_error

    def _spill_writer(self) -> None:
        """Writer-thread loop: encode and write chunks, FIFO, one at a
        time.  After an error, chunks are drained and discarded (with
        ``task_done``) so the recording thread can never deadlock on a
        full queue; the error re-raises at the next flush/close."""
        spill_queue = self._spill_queue
        fh = self._fh
        while True:
            chunk = spill_queue.get()
            try:
                if chunk is _SPILL_STOP:
                    return
                if self._spill_error is None:
                    try:
                        fh.write(encode_event_chunk(chunk))
                        # Flush only at idle: the recording thread is the
                        # sole producer, so when it blocks in flush()'s
                        # Queue.join the final chunk sees an empty queue
                        # and lands a flush before task_done — the drain
                        # guarantee holds without a syscall per chunk.
                        if spill_queue.empty():
                            fh.flush()
                    except BaseException as exc:
                        self._spill_error = exc
            finally:
                spill_queue.task_done()

    def flush(self) -> None:
        """Write buffered event lines to the spill file, in order.

        On return the file holds every event recorded so far — with a
        writer thread this drains the handoff queue (``Queue.join``)
        before returning, so the synchronous meaning is preserved.
        """
        if self._fh is None:
            return
        if self._spill_queue is not None:
            self._handoff()
            self._spill_queue.join()
            self._check_spill_error()
            return
        if not self._pending:
            return
        fh = self._fh
        self._fold_counts(self._pending)
        fh.write(encode_event_chunk(self._pending))
        self._pending.clear()
        fh.flush()

    def close(self) -> None:
        """Flush the remaining buffer and close an owned spill file."""
        if self.closed:
            return
        error: Optional[BaseException] = None
        try:
            self.flush()
        except BaseException as exc:
            error = exc
        if self._spill_thread is not None:
            self._spill_queue.put(_SPILL_STOP)
            self._spill_thread.join()
            self._spill_thread = None
        if self._fh is not None and self._owns_fh:
            self._fh.close()
        self.closed = True
        if error is not None:
            raise error

    def __enter__(self) -> "StreamingRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        """Total events observed (not the ring occupancy)."""
        return self.total

    @property
    def dropped(self) -> int:
        """Events no longer in the ring (derived, not tracked per event)."""
        return max(0, self.total - (self.ring.maxlen or 0))

    def tail(self, n: Optional[int] = None) -> List[TraceEvent]:
        """The most recent events still in the ring (oldest first)."""
        events = [TraceEvent(*event) for event in self.ring]
        return events if n is None else events[-n:]

    def counts(self) -> Dict[str, int]:
        """Event count per kind over the whole stream (sorted by kind).

        With a spill file, events buffered since the last chunk handoff
        are merged in on the fly (they fold into ``_counts`` when their
        chunk is consumed).
        """
        if not self._pending:
            return dict(sorted(self._counts.items()))
        merged = dict(self._counts)
        for kind, n in Counter(map(itemgetter(0), self._pending)).items():
            merged[kind] = merged.get(kind, 0) + n
        return dict(sorted(merged.items()))

    def __repr__(self) -> str:
        return (
            f"StreamingRecorder(total={self.total}, ring={len(self.ring)}, "
            f"windows={self.windows_flushed})"
        )


# ---------------------------------------------------------------------------
# streaming profile
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed cycle-window: its deltas plus cumulative health metrics."""

    index: int
    start_cycle: int
    end_cycle: int
    #: Deltas — what happened inside this window.
    events: int
    evict_flushes: int
    resize_evictions: int
    fase_drains: int
    stall_cycles: int
    selections: int
    fases: int
    #: Cumulative derived metrics as of the window's close.
    total_events: int
    write_amplification: float
    stall_share: float
    distinct_lines: int

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "events": self.events,
            "evict_flushes": self.evict_flushes,
            "resize_evictions": self.resize_evictions,
            "fase_drains": self.fase_drains,
            "stall_cycles": self.stall_cycles,
            "selections": self.selections,
            "fases": self.fases,
            "total_events": self.total_events,
            "write_amplification": round(self.write_amplification, 6),
            "stall_share": round(self.stall_share, 6),
            "distinct_lines": self.distinct_lines,
        }


def _fold_stalls(fold: ProfileFold) -> int:
    p = fold.prov
    return (
        p.fase_drain_stall_cycles
        + p.final_drain_stall_cycles
        + p.issue_stall_cycles
        + p.writeback_stall_cycles
    )


class StreamingProfile:
    """Fold a live event stream into the offline profile, window by window.

    Buffers the open window's events as parallel columns and, when the
    watermark closes the window, feeds them through the *same*
    :class:`~repro.obs.analyze.ProfileFold` that powers the offline
    :func:`~repro.obs.analyze.analyze` — a single fold implementation is
    what makes ``finalize()`` provably equal to the post-hoc analysis of
    the full trace, for any window size.

    Usable standalone (call ``record`` / ``on_quantum`` yourself) or as
    a :class:`StreamingRecorder` subscriber.  Each closed window appends
    a :class:`WindowSnapshot` to ``snapshots`` (a bounded ring) and
    invokes the optional ``on_window`` callback — the feed the
    :class:`AlertEngine` and the monitor dashboard consume.
    """

    def __init__(
        self,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        *,
        config: Optional[AnalyzerConfig] = None,
        on_window: Optional[Callable[[WindowSnapshot], None]] = None,
        keep_snapshots: int = 256,
    ) -> None:
        if window_cycles < 1:
            raise ConfigurationError(f"window_cycles must be >= 1, got {window_cycles}")
        self.window_cycles = window_cycles
        self.on_window = on_window
        self._fold = ProfileFold(config)
        self._watermark = -1
        self._boundary = window_cycles
        self.window_index = 0
        self.snapshots: Deque[WindowSnapshot] = deque(maxlen=keep_snapshots)
        self.windows_closed = 0
        self._kinds: List[str] = []
        self._tids: List[int] = []
        self._times: List[int] = []
        self._a: List[int] = []
        self._b: List[int] = []
        self._c: List[int] = []

    # -- live-readable cumulative state ----------------------------------

    @property
    def fold(self) -> ProfileFold:
        """The underlying cumulative fold (read its counters mid-stream)."""
        return self._fold

    # -- recording -------------------------------------------------------

    def record(
        self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0, c: int = 0
    ) -> None:
        """Attribute one event to the open window; close windows if due."""
        self._kinds.append(kind)
        self._tids.append(thread_id)
        self._times.append(time)
        self._a.append(a)
        self._b.append(b)
        self._c.append(c)
        if time > self._watermark:
            self._watermark = time
            while self._watermark >= self._boundary:
                self._close_window()

    def on_quantum(self, thread_id: int, now: int) -> None:
        """Advance the watermark from a scheduler tick (no event)."""
        if now > self._watermark:
            self._watermark = now
            while self._watermark >= self._boundary:
                self._close_window()

    def _close_window(self) -> None:
        fold = self._fold
        before_events = fold.events
        before_evict = fold.prov.evict_flushes
        before_resize = fold.prov.resize_evictions
        before_drains = fold.prov.fase_drains
        before_stalls = _fold_stalls(fold)
        before_sel = fold.adapt.selections
        before_fases = fold.fase.count

        fold.feed_columns(self._kinds, self._tids, self._times, self._a, self._b, self._c)
        self._kinds = []
        self._tids = []
        self._times = []
        self._a = []
        self._b = []
        self._c = []

        snap = WindowSnapshot(
            index=self.window_index,
            start_cycle=self.window_index * self.window_cycles,
            end_cycle=self._boundary,
            events=fold.events - before_events,
            evict_flushes=fold.prov.evict_flushes - before_evict,
            resize_evictions=fold.prov.resize_evictions - before_resize,
            fase_drains=fold.prov.fase_drains - before_drains,
            stall_cycles=_fold_stalls(fold) - before_stalls,
            selections=fold.adapt.selections - before_sel,
            fases=fold.fase.count - before_fases,
            total_events=fold.events,
            write_amplification=fold.prov.write_amplification,
            stall_share=fold.fase.stall_share,
            distinct_lines=fold.prov.distinct_lines,
        )
        self.window_index += 1
        self._boundary += self.window_cycles
        self.windows_closed += 1
        self.snapshots.append(snap)
        if self.on_window is not None:
            self.on_window(snap)

    # -- finalization ----------------------------------------------------

    def finalize(self, schema: int = TRACE_SCHEMA_VERSION) -> TraceProfile:
        """Fold the open remainder and return the full offline profile.

        Equal — field for field — to ``analyze()`` of the complete
        trace, because both paths run the identical fold over the
        identical event sequence; only the chunking differs.
        """
        if self._kinds:
            self._fold.feed_columns(
                self._kinds, self._tids, self._times, self._a, self._b, self._c
            )
            self._kinds = []
            self._tids = []
            self._times = []
            self._a = []
            self._b = []
            self._c = []
        return self._fold.finalize(schema=schema)

    def __repr__(self) -> str:
        return (
            f"StreamingProfile(windows={self.windows_closed}, "
            f"events={self._fold.events + len(self._kinds)})"
        )


# ---------------------------------------------------------------------------
# alert rules and engine
# ---------------------------------------------------------------------------

#: Rule kinds: instantaneous threshold, window-over-window rate of
#: change, and a threshold sustained for N consecutive windows.
RULE_KINDS = ("threshold", "rate", "sustained")

_OPS = {
    ">": lambda x, y: x > y,
    "<": lambda x, y: x < y,
    ">=": lambda x, y: x >= y,
    "<=": lambda x, y: x <= y,
}

#: Grammar (one rule per string)::
#:
#:     name: metric OP value [@severity]
#:     name: rate(metric) OP value [@severity]
#:     name: sustained(metric, N) OP value [@severity]
#:
#: ``OP`` is one of ``>`` ``<`` ``>=`` ``<=``; severity defaults to
#: ``warning``.  ``metric`` is a key of the observed snapshot dict
#: (:meth:`WindowSnapshot.to_dict` keys, or whatever dict the monitor
#: feeds); rules over metrics absent from a snapshot simply do not fire.
_RULE_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][\w-]*)\s*:\s*"
    r"(?:(?P<fn>rate|sustained)\s*\(\s*(?P<fmetric>[\w.]+)\s*"
    r"(?:,\s*(?P<window>\d+)\s*)?\)|(?P<metric>[\w.]+))\s*"
    r"(?P<op>>=|<=|>|<)\s*(?P<value>-?\d+(?:\.\d+)?)\s*"
    r"(?:@(?P<severity>\w+))?\s*$"
)


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule over window-snapshot metrics."""

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    #: ``sustained``: consecutive breaching windows required to fire.
    window: int = 1
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {RULE_KINDS})"
            )
        if self.op not in _OPS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown operator {self.op!r}"
            )
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(expected one of {SEVERITIES})"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"rule {self.name!r}: window must be >= 1, got {self.window}"
            )

    def condition(self) -> str:
        """The rule's condition clause, e.g. ``rate(evict_flushes) > 3``."""
        if self.kind == "rate":
            lhs = f"rate({self.metric})"
        elif self.kind == "sustained":
            lhs = f"sustained({self.metric}, {self.window})"
        else:
            lhs = self.metric
        return f"{lhs} {self.op} {self.value:g}"

    def describe(self) -> str:
        return f"{self.name}: {self.condition()} @{self.severity}"


def parse_rule(text: str) -> AlertRule:
    """Parse one rule from the string grammar (see :data:`_RULE_RE`)."""
    m = _RULE_RE.match(text)
    if m is None:
        raise ConfigurationError(
            f"unparseable alert rule {text!r}; expected "
            f"'name: metric > value [@severity]', "
            f"'name: rate(metric) > value [@severity]' or "
            f"'name: sustained(metric, N) > value [@severity]'"
        )
    fn = m.group("fn")
    return AlertRule(
        name=m.group("name"),
        metric=m.group("fmetric") if fn else m.group("metric"),
        kind=fn or "threshold",
        op=m.group("op"),
        value=float(m.group("value")),
        window=int(m.group("window") or 1),
        severity=m.group("severity") or "warning",
    )


@dataclass(frozen=True)
class Alert:
    """One fired alert (typed; serialized to the JSONL alert log)."""

    rule: str
    metric: str
    severity: str
    window_index: int
    value: float
    threshold: float
    message: str
    source: str = ""

    def to_dict(self) -> Dict:
        return {
            "kind": "alert",
            "rule": self.rule,
            "metric": self.metric,
            "severity": self.severity,
            "window_index": self.window_index,
            "value": round(self.value, 6),
            "threshold": self.threshold,
            "message": self.message,
            "source": self.source,
        }


def default_rules() -> List[AlertRule]:
    """The stock rule set: the four failure shapes the paper cares about.

    Calibrated (like :class:`~repro.obs.analyze.AnalyzerConfig`) so the
    seed workloads run clean — each seed thread adapts at most once, and
    seed stall shares sit far below the SLO — which is what lets CI
    assert "zero error alerts" on the smoke grid.
    """
    return [
        # Flush-rate spike: this window evicted 3x the previous one.
        AlertRule(
            name="flush_rate_spike",
            metric="evict_flushes",
            kind="rate",
            op=">",
            value=3.0,
            severity="warning",
        ),
        # Resize storm: many controller resizes inside one window.
        AlertRule(
            name="resize_storm",
            metric="selections",
            kind="threshold",
            op=">",
            value=8,
            severity="warning",
        ),
        # Stall-share SLO: commit drains eat >75% of FASE cycles for
        # three consecutive windows.  Seed maxima sit well below (the
        # worst windowed share is queue/SC at ~0.65, the worst grid
        # cell an ER run at ~0.49).
        AlertRule(
            name="stall_share_slo",
            metric="stall_share",
            kind="sustained",
            op=">",
            value=0.75,
            window=3,
            severity="error",
        ),
        # Write-amplification runaway: every line re-flushed 8x on average.
        AlertRule(
            name="write_amplification",
            metric="write_amplification",
            kind="threshold",
            op=">",
            value=8.0,
            severity="warning",
        ),
    ]


#: Diagnosis codes forwarded to the alert log by ``observe_diagnoses``
#: (the analyzer's live-relevant findings; severities carry over).
DIAGNOSIS_ALERT_CODES = (
    "knee_oscillation",
    "resize_storm",
    "unmatched_selection",
    "unbalanced_fase",
)


class AlertEngine:
    """Evaluate alert rules over a stream of window snapshots.

    Rules are **edge-triggered**: a rule fires when its condition turns
    true and re-arms only after observing a window where it is false, so
    a sustained breach produces one alert, not one per window.  The
    ``sustained`` kind additionally requires ``window`` consecutive
    breaching windows before the edge counts.

    Alerts accumulate in emission order (deterministic for a
    deterministic stream).  With ``log_path`` each alert is also
    appended to a JSONL log as it fires — sorted keys, one object per
    line, same byte-determinism contract as the trace export.
    """

    def __init__(
        self,
        rules: Optional[Iterable[AlertRule]] = None,
        *,
        log_path: Optional[str] = None,
        source: str = "",
    ) -> None:
        self.rules: List[AlertRule] = list(default_rules() if rules is None else rules)
        names = [r.name for r in self.rules]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigurationError(f"duplicate alert rule names: {dupes}")
        self.alerts: List[Alert] = []
        self.source = source
        self._log_path = log_path
        self._log_fh: Optional[IO[str]] = (
            open(log_path, "w", encoding="utf-8") if log_path else None
        )
        self._streak: Dict[str, int] = {r.name: 0 for r in self.rules}
        self._active: Dict[str, bool] = {r.name: False for r in self.rules}
        self._last_value: Dict[str, Optional[float]] = {r.name: None for r in self.rules}
        self.windows_observed = 0

    # -- observation -----------------------------------------------------

    def observe_window(self, snapshot: object, source: str = "") -> List[Alert]:
        """Evaluate every rule against one snapshot; return new alerts.

        ``snapshot`` is a :class:`WindowSnapshot` or any dict with an
        optional ``index`` key; rules over metrics the snapshot lacks
        are skipped (their streak and edge state freeze).
        """
        doc = snapshot.to_dict() if hasattr(snapshot, "to_dict") else dict(snapshot)
        index = int(doc.get("index", self.windows_observed))
        self.windows_observed += 1
        fired: List[Alert] = []
        for rule in self.rules:
            if rule.metric not in doc:
                continue
            value = float(doc[rule.metric])
            if rule.kind == "rate":
                prev = self._last_value[rule.name]
                self._last_value[rule.name] = value
                if prev is None or prev == 0:
                    continue
                observed = value / prev
            else:
                observed = value
            breach = _OPS[rule.op](observed, rule.value)
            if rule.kind == "sustained":
                self._streak[rule.name] = self._streak[rule.name] + 1 if breach else 0
                breach = self._streak[rule.name] >= rule.window
            if breach and not self._active[rule.name]:
                fired.append(self._emit(rule, index, observed, source))
            self._active[rule.name] = breach
        return fired

    def observe_diagnoses(
        self, diagnoses: Iterable[Diagnosis], window_index: int = -1, source: str = ""
    ) -> List[Alert]:
        """Forward analyzer diagnoses (finalize-time findings) as alerts."""
        fired: List[Alert] = []
        for d in diagnoses:
            if d.code not in DIAGNOSIS_ALERT_CODES:
                continue
            alert = Alert(
                rule=f"diagnosis:{d.code}",
                metric="diagnosis",
                severity=d.severity,
                window_index=window_index,
                value=float(d.thread_id),
                threshold=0.0,
                message=d.message,
                source=source or self.source,
            )
            self._append(alert)
            fired.append(alert)
        return fired

    def _emit(self, rule: AlertRule, index: int, observed: float, source: str) -> Alert:
        alert = Alert(
            rule=rule.name,
            metric=rule.metric,
            severity=rule.severity,
            window_index=index,
            value=observed,
            threshold=rule.value,
            message=(
                f"{rule.condition()} — observed "
                f"{observed:g} at window {index}"
            ),
            source=source or self.source,
        )
        self._append(alert)
        return alert

    def _append(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self._log_fh is not None:
            self._log_fh.write(
                json.dumps(alert.to_dict(), sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._log_fh.flush()

    # -- results ---------------------------------------------------------

    def max_severity(self) -> Optional[str]:
        """Most severe alert level emitted so far (``None`` when clean)."""
        if not self.alerts:
            return None
        return max((a.severity for a in self.alerts), key=_SEVERITY_RANK.__getitem__)

    def by_severity(self) -> List[Alert]:
        """Alerts ranked most-severe first (stable within a severity)."""
        return sorted(
            self.alerts, key=lambda a: -_SEVERITY_RANK[a.severity]
        )

    def to_jsonl(self) -> str:
        """The whole alert log as deterministic JSONL (emission order)."""
        return "".join(
            json.dumps(a.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for a in self.alerts
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def close(self) -> None:
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None

    def __enter__(self) -> "AlertEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AlertEngine(rules={len(self.rules)}, alerts={len(self.alerts)}, "
            f"max={self.max_severity()!r})"
        )


# ---------------------------------------------------------------------------
# rich progress plumbing (shared by harness, parallel grids and campaigns)
# ---------------------------------------------------------------------------


def progress_arity(progress: Callable) -> int:
    """How many positional arguments a progress callback accepts.

    The grid runners historically call ``progress(done, total, cell)``
    and the fault campaigns ``progress(done, total)``; the live monitor
    wants a richer payload.  Callers use this to stay compatible with
    both: callbacks keep their old arity, richer callbacks opt in by
    declaring one more parameter.  Unintrospectable callables (C
    builtins) are treated as legacy-arity (-1 = unknown).
    """
    import inspect

    try:
        sig = inspect.signature(progress)
    except (TypeError, ValueError):
        return -1
    n = 0
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD):
            n += 1
        elif p.kind == p.VAR_POSITIONAL:
            return 99
    return n


def snapshot_from_result(cell: object, result: object) -> Dict:
    """Distill one finished grid cell into a flat metric snapshot dict.

    The per-cell payload the richer progress hook carries out of worker
    processes: everything the dashboard and the alert rules need,
    computed parent-side from the (already shipped) ``RunResult`` — no
    extra IPC.  Keys deliberately overlap :class:`WindowSnapshot`'s
    where the semantics match, so one rule grammar covers both feeds.

    ``cell`` is the harness's ``(workload, technique, threads)`` tuple
    (anything else is stringified into the ``cell`` key).
    """
    if isinstance(cell, tuple) and len(cell) == 3:
        workload, technique, _ = cell
        cell_name = f"{cell[0]}/{cell[1]}/t{cell[2]}"
    else:
        workload, technique = "", ""
        cell_name = str(cell)
    threads = getattr(result, "threads", ())
    total_cycles = max((t.cycles for t in threads), default=0)
    # Share is stall cycles over *aggregate* thread cycles, so it stays
    # a fraction for multi-thread cells too.
    cycle_sum = sum(t.cycles for t in threads)
    stall = sum(t.stall_cycles for t in threads)
    selections = sum(len(t.selected_sizes) for t in threads)
    return {
        "cell": cell_name,
        "workload": workload,
        "technique": technique,
        "threads": len(threads),
        "cycles": total_cycles,
        "time": getattr(result, "time", total_cycles),
        "stall_cycles": stall,
        "stall_share": (stall / cycle_sum) if cycle_sum else 0.0,
        "flush_ratio": getattr(result, "flush_ratio", 0.0),
        "l1_miss_ratio": getattr(result, "l1_miss_ratio", 0.0),
        "fases": getattr(result, "fase_count", 0),
        "selections": selections,
        "selected_sizes": [list(t.selected_sizes) for t in threads],
    }


def resolve_grid_progress(progress: Optional[Callable]) -> Optional[Callable]:
    """Normalize a grid progress callback to ``fn(done, total, cell, result)``.

    Legacy three-argument callbacks keep their ``(done, total, cell)``
    contract; callbacks declaring a fourth parameter additionally
    receive the finished cell's :func:`snapshot_from_result` — how the
    live monitor gets per-cell metrics out of a grid without changing
    any existing caller.
    """
    if progress is None:
        return None
    arity = progress_arity(progress)
    if arity >= 4 or arity == 99:
        return lambda done, total, cell, result: progress(
            done, total, cell, snapshot_from_result(cell, result)
        )
    return lambda done, total, cell, result: progress(done, total, cell)
