"""Structured tracing of simulator runs (the `repro.obs` trace layer).

The simulator's end-of-run aggregates (:class:`~repro.nvram.stats.RunResult`)
say *how much* happened; the trace recorder says *when*.  Every event
carries a **model-time timestamp** (the issuing thread's cycle clock), a
thread id and up to two integer arguments, appended to parallel arrays —
no per-event object allocation, no dictionaries on the hot path.

Event taxonomy (see DESIGN.md §9, §11):

==============  ========================================================
``fase_begin``  an outermost FASE opened (``a`` = fase uid)
``fase_end``    it committed — recorded *after* the technique's
                end-of-FASE drain, so B/E spans include the drain stall
``evict_flush`` the software cache flushed a line off its own accord
                (``a`` = line, ``b`` = 1 if the hardware line was
                dirty, ``c`` = cause: 0 capacity eviction, 1 resize
                eviction, 2 background clean, 3 filter bypass, 4
                victim-cache overflow — causes 2..4 are schema 3,
                written only by composed policy stages)
``drain``       a synchronous flush-queue drain (``a`` = stall cycles,
                ``b`` = entries outstanding before the drain, ``c`` =
                the committing FASE's uid for a FASE-boundary drain,
                -1 for an end-of-program drain)
``burst_start`` an adaptive sampling burst opened (``a`` = burst length)
``mrc_computed``a burst closed and its MRC was analyzed (``a`` =
                analysis cost in cycles, ``b`` = number of knee
                candidates)
``knee_candidate``
                one candidate knee of that MRC (``a`` = size, ``b`` =
                miss ratio in parts-per-million)
``size_selected``
                the controller resized the software cache (``a`` = new
                size) — matches ``RunResult.selected_sizes`` exactly
``stall``       the CPU blocked on the flush engine outside a drain
                (``a`` = stall cycles, ``b`` = 0 for a flush issue,
                1 for a hardware eviction write-back)
==============  ========================================================

The ``c`` column (``cause`` on ``evict_flush``, ``fase_id`` on
``drain``) arrived in trace schema 2 under the name ``resize_evict``
(a 0/1 flag); schema 3 renames it to ``cause`` and widens it to the
cause codes above — values 0/1 mean exactly what the schema-2 flag
meant, so base-technique traces are byte-identical apart from the key.
:func:`parse_jsonl` reads schema-2 documents through
:data:`LEGACY_ARG_NAMES` and schema-1 documents (PR 2) with the
documented defaults (``cause=0``, ``fase_id=-1``), so provenance
degrades to "unattributed", never to a parse error.

Exports: JSON-lines (a ``trace_meta`` header line carrying the schema
version, then one event per line, sorted keys — byte-identical across
repeated runs of the same configuration) and the Chrome ``trace_event``
format, loadable in Perfetto / ``chrome://tracing`` with one track per
simulated thread (model cycles are mapped to microseconds).

When tracing is off the machine holds the module-level
:data:`NULL_RECORDER`, whose ``enabled`` flag gates every recording site
— the batched fast path stays allocation-free (enforced by
``benchmarks/test_obs_overhead.py`` and ``tools/bench_compare.py``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

#: Version of the event taxonomy written by this recorder.  Schema 2
#: added the third event argument (``resize_evict`` on ``evict_flush``,
#: ``fase_id`` on ``drain``); schema 3 renamed ``resize_evict`` to
#: ``cause`` and widened it to the policy-stage cause codes (clean /
#: bypass / victim).  Older documents read back through
#: :data:`LEGACY_ARG_NAMES` and :data:`V1_ARG_DEFAULTS`.
TRACE_SCHEMA_VERSION = 3

#: The ``kind`` of the JSONL header line (not a simulator event).
TRACE_META_KIND = "trace_meta"

#: Event kinds (string constants; used as ``name`` in Chrome traces).
EV_FASE_BEGIN = "fase_begin"
EV_FASE_END = "fase_end"
EV_EVICT_FLUSH = "evict_flush"
EV_DRAIN = "drain"
EV_BURST_START = "burst_start"
EV_MRC_COMPUTED = "mrc_computed"
EV_KNEE_CANDIDATE = "knee_candidate"
EV_SIZE_SELECTED = "size_selected"
EV_STALL = "stall"

EVENT_KINDS = (
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_EVICT_FLUSH,
    EV_DRAIN,
    EV_BURST_START,
    EV_MRC_COMPUTED,
    EV_KNEE_CANDIDATE,
    EV_SIZE_SELECTED,
    EV_STALL,
)

#: Decoded names of the ``a``/``b``/``c`` payload per kind
#: (``None`` = unused).
ARG_NAMES: Dict[str, Tuple[Optional[str], Optional[str], Optional[str]]] = {
    EV_FASE_BEGIN: ("fase_id", None, None),
    EV_FASE_END: ("fase_id", None, None),
    EV_EVICT_FLUSH: ("line", "dirty", "cause"),
    EV_DRAIN: ("stall_cycles", "outstanding", "fase_id"),
    EV_BURST_START: ("burst_length", None, None),
    EV_MRC_COMPUTED: ("analysis_cost", "num_candidates", None),
    EV_KNEE_CANDIDATE: ("size", "miss_ratio_ppm", None),
    EV_SIZE_SELECTED: ("size", None, None),
    EV_STALL: ("stall_cycles", "source", None),
}

#: Value assumed for a newer-schema field absent from an older document,
#: keyed by ``(kind, arg_name)``.  Anything else missing decodes as 0.
V1_ARG_DEFAULTS: Dict[Tuple[str, str], int] = {
    (EV_EVICT_FLUSH, "cause"): 0,
    (EV_DRAIN, "fase_id"): -1,
}

#: Superseded JSONL key per ``(kind, current_arg_name)``: schema-2
#: documents wrote the ``evict_flush`` cause under ``resize_evict``
#: (same 0/1 values as cause codes 0/1), and :func:`parse_jsonl` falls
#: back to it before assuming a default.
LEGACY_ARG_NAMES: Dict[Tuple[str, str], str] = {
    (EV_EVICT_FLUSH, "cause"): "resize_evict",
}


def encode_meta_line() -> str:
    """The ``trace_meta`` header line (no trailing newline)."""
    return json.dumps(
        {"kind": TRACE_META_KIND, "schema": TRACE_SCHEMA_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )


def encode_event_line_json(
    kind: str, tid: int, ts: int, a: int, b: int, c: int
) -> str:
    """The reference encoding: build the doc dict, ``json.dumps`` it.

    :func:`encode_event_line` must stay byte-identical to this for every
    known kind (checked by ``tests/test_obs_trace.py``); it remains the
    path for kinds without a precompiled template.
    """
    doc = {"kind": kind, "tid": tid, "ts": ts}
    names = ARG_NAMES.get(kind, ("a", "b", "c"))
    if names[0] is not None:
        doc[names[0]] = a
    if names[1] is not None:
        doc[names[1]] = b
    if names[2] is not None:
        doc[names[2]] = c
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _build_fast_encoders(suffix: str = "") -> Dict[str, object]:
    """Precompile one ``%``-template encoder per known event kind.

    ``json.dumps`` per event dominates the streaming spill's cost; for a
    known kind the line's shape is fully determined (fixed keys in
    sorted order, integer values), so it collapses to one format-string
    substitution.  ``%d`` renders Python ints exactly as ``json.dumps``
    does (including negatives), which keeps the fast path byte-identical
    to the reference encoder — recording sites pass ints only.
    """
    encoders: Dict[str, object] = {}
    for kind, names in ARG_NAMES.items():
        sources = {"tid": "tid", "ts": "ts"}
        for name, source in zip(names, ("a", "b", "c")):
            if name is not None:
                sources[name] = source
        parts: List[str] = []
        order: List[str] = []
        for key in sorted(sources.keys() | {"kind"}):
            if key == "kind":
                parts.append('"kind":"%s"' % kind)
            else:
                parts.append('"%s":%%d' % key)
                order.append(sources[key])
        template = "{" + ",".join(parts) + "}" + suffix
        encoders[kind] = eval(  # one closure per kind, built once
            "lambda tid, ts, a, b, c: %r %% (%s,)" % (template, ",".join(order))
        )
    return encoders


_FAST_ENCODERS = _build_fast_encoders()
_FAST_ENCODERS_NL = _build_fast_encoders("\n")


def encode_event_line(kind: str, tid: int, ts: int, a: int, b: int, c: int) -> str:
    """Encode one event as its canonical JSONL line (no trailing newline).

    Single source of the byte format: :meth:`TraceRecorder.to_jsonl`,
    the streaming :meth:`TraceRecorder.write_jsonl` and the live
    :class:`repro.obs.live.StreamingRecorder` spill all route through
    here, which is what makes the incremental spill byte-identical to a
    post-hoc export.  Known kinds use a precompiled template (see
    :func:`_build_fast_encoders`); anything else falls back to the
    reference ``json.dumps`` encoding.
    """
    encoder = _FAST_ENCODERS.get(kind)
    if encoder is not None:
        return encoder(tid, ts, a, b, c)
    return encode_event_line_json(kind, tid, ts, a, b, c)


def encode_event_chunk(
    events: Iterable[Tuple[str, int, int, int, int, int]]
) -> str:
    """Encode a chunk of event tuples as newline-terminated JSONL.

    The streaming spill's hot path: one template substitution and list
    slot per event, the per-line ``"\\n"`` concatenation folded into a
    single join.  Byte-identical to ``encode_event_line(...) + "\\n"``
    per event.
    """
    get = _FAST_ENCODERS_NL.get
    lines = []
    append = lines.append
    for kind, tid, ts, a, b, c in events:
        encoder = get(kind)
        if encoder is not None:
            append(encoder(tid, ts, a, b, c))
        else:
            append(encode_event_line_json(kind, tid, ts, a, b, c) + "\n")
    return "".join(lines)


class TraceEvent(NamedTuple):
    """One decoded trace event (the recorder stores parallel arrays)."""

    kind: str
    thread_id: int
    time: int
    a: int
    b: int
    c: int = 0


class TraceRecorder:
    """Buffers typed events in parallel arrays; exports JSONL / Chrome.

    ``record`` is the only hot call: six list appends.  All decoding,
    aggregation and serialization happens at export time.
    """

    __slots__ = ("_kinds", "_tids", "_times", "_a", "_b", "_c", "schema")

    #: Class-level so the machine's ``recorder.enabled`` gate costs one
    #: attribute load whether the recorder is real or the null one.
    enabled = True

    def __init__(self) -> None:
        self._kinds: List[str] = []
        self._tids: List[int] = []
        self._times: List[int] = []
        self._a: List[int] = []
        self._b: List[int] = []
        self._c: List[int] = []
        #: Schema of the taxonomy these events use.  A fresh recorder
        #: writes the current schema; :func:`parse_jsonl` sets the
        #: loaded document's declared (or sniffed) version instead.
        self.schema = TRACE_SCHEMA_VERSION

    # -- recording -------------------------------------------------------

    def record(
        self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0, c: int = 0
    ) -> None:
        """Append one event (model-time ``time`` on thread ``thread_id``)."""
        self._kinds.append(kind)
        self._tids.append(thread_id)
        self._times.append(time)
        self._a.append(a)
        self._b.append(b)
        self._c.append(c)

    def on_quantum(self, thread_id: int, now: int) -> None:
        """Scheduler window-boundary hook; the plain recorder ignores it.

        The machine calls this once per scheduler quantum (both the
        per-event and batched paths).  Streaming recorders use it to
        close cycle windows and spill; the buffering recorder has
        nothing to do.
        """

    def clear(self) -> None:
        """Drop every buffered event."""
        self._kinds.clear()
        self._tids.clear()
        self._times.clear()
        self._a.clear()
        self._b.clear()
        self._c.clear()

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._kinds)

    def columns(self) -> Tuple[List[str], List[int], List[int], List[int], List[int], List[int]]:
        """The parallel ``(kinds, tids, times, a, b, c)`` arrays.

        The analyzer's one-pass folds index these directly instead of
        materializing a :class:`TraceEvent` per event; callers must not
        mutate them.
        """
        return (self._kinds, self._tids, self._times, self._a, self._b, self._c)

    def events(self) -> Iterator[TraceEvent]:
        """Iterate events in recording order."""
        for i in range(len(self._kinds)):
            yield TraceEvent(
                self._kinds[i],
                self._tids[i],
                self._times[i],
                self._a[i],
                self._b[i],
                self._c[i],
            )

    def events_of(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in recording order."""
        return [e for e in self.events() if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (only kinds that occurred)."""
        out: Dict[str, int] = {}
        for k in self._kinds:
            out[k] = out.get(k, 0) + 1
        return dict(sorted(out.items()))

    # -- export ----------------------------------------------------------

    def _event_args(self, e: TraceEvent) -> Dict[str, int]:
        names = ARG_NAMES.get(e.kind, ("a", "b", "c"))
        args: Dict[str, int] = {}
        if names[0] is not None:
            args[names[0]] = e.a
        if names[1] is not None:
            args[names[1]] = e.b
        if names[2] is not None:
            args[names[2]] = e.c
        return args

    def iter_jsonl(self) -> Iterator[str]:
        """Yield the JSONL export line by line (each with its newline).

        The first line is always a ``trace_meta`` header declaring the
        schema version, even for an empty trace.
        """
        yield encode_meta_line() + "\n"
        kinds, tids, times, aa, bb, cc = self.columns()
        for i in range(len(kinds)):
            yield encode_event_line(kinds[i], tids[i], times[i], aa[i], bb[i], cc[i]) + "\n"

    def to_jsonl(self) -> str:
        """One JSON object per line, sorted keys — deterministic bytes."""
        return "".join(self.iter_jsonl())

    def to_chrome(self) -> Dict:
        """The Chrome ``trace_event`` document (open in Perfetto).

        Model cycles map to trace microseconds; outermost FASEs become
        duration (B/E) spans named ``FASE``, everything else an instant
        event on the issuing thread's track.
        """
        events: List[Dict] = []
        for tid in sorted(set(self._tids)):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"sim thread {tid}"},
                }
            )
        for e in self.events():
            if e.kind == EV_FASE_BEGIN or e.kind == EV_FASE_END:
                events.append(
                    {
                        "ph": "B" if e.kind == EV_FASE_BEGIN else "E",
                        "name": "FASE",
                        "cat": "fase",
                        "pid": 0,
                        "tid": e.thread_id,
                        "ts": e.time,
                        "args": {"fase_id": e.a},
                    }
                )
            else:
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": e.kind,
                        "cat": "obs",
                        "pid": 0,
                        "tid": e.thread_id,
                        "ts": e.time,
                        "args": self._event_args(e),
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "time_unit": "model cycles rendered as microseconds",
                "trace_schema": TRACE_SCHEMA_VERSION,
            },
        }

    def write_jsonl(self, path: str) -> None:
        """Write the JSONL export to ``path``, streaming line by line.

        Never materializes the whole document, so peak memory at export
        time stays at one line regardless of trace size; the bytes are
        identical to ``to_jsonl()``.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl():
                fh.write(line)

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace_event export to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_chrome(), sort_keys=True, indent=1) + "\n")

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self)}, kinds={list(self.counts())})"


#: Inverse of :data:`ARG_NAMES`: ``kind -> {arg_name: column_index}``.
_ARG_COLUMNS: Dict[str, Dict[str, int]] = {
    kind: {name: i for i, name in enumerate(names) if name is not None}
    for kind, names in ARG_NAMES.items()
}


def parse_jsonl(text: str) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from its JSONL export.

    Accepts schema-3 and schema-2 documents (``trace_meta`` header line)
    and the headerless schema-1 documents written by PR 2.  Renamed
    fields read back through :data:`LEGACY_ARG_NAMES` (schema 2's
    ``resize_evict`` becomes ``cause`` — the values coincide) and absent
    fields decode to :data:`V1_ARG_DEFAULTS`, so old traces analyze with
    provenance "unattributed" rather than failing.
    """
    from repro.common.errors import ConfigurationError

    rec = TraceRecorder()
    rec.schema = 1  # headerless documents are schema 1 by definition
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ConfigurationError(f"trace line {lineno}: not JSON ({exc})") from None
        kind = doc.get("kind")
        if kind == TRACE_META_KIND:
            schema = doc.get("schema")
            if not isinstance(schema, int) or schema < 1 or schema > TRACE_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"trace line {lineno}: unsupported trace schema {schema!r} "
                    f"(this build reads 1..{TRACE_SCHEMA_VERSION})"
                )
            rec.schema = schema
            continue
        if kind not in _ARG_COLUMNS:
            raise ConfigurationError(f"trace line {lineno}: unknown event kind {kind!r}")
        cols = [0, 0, 0]
        for name, idx in _ARG_COLUMNS[kind].items():
            if name in doc:
                cols[idx] = doc[name]
            else:
                legacy = LEGACY_ARG_NAMES.get((kind, name))
                if legacy is not None and legacy in doc:
                    cols[idx] = doc[legacy]
                else:
                    cols[idx] = V1_ARG_DEFAULTS.get((kind, name), 0)
        rec.record(kind, doc["tid"], doc["ts"], cols[0], cols[1], cols[2])
    return rec


def read_jsonl(path: str) -> TraceRecorder:
    """Load a JSONL trace file written by :meth:`TraceRecorder.write_jsonl`."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_jsonl(fh.read())


class NullRecorder:
    """The disabled path: ``enabled`` is False and ``record`` is a no-op.

    The machine checks ``recorder.enabled`` (a class attribute load)
    before touching any recording site, so a run with the null recorder
    does the same work as one with no observability layer at all.
    """

    __slots__ = ()

    enabled = False

    def record(
        self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0, c: int = 0
    ) -> None:
        """Deliberately empty."""

    def on_quantum(self, thread_id: int, now: int) -> None:
        """Deliberately empty."""

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRecorder()"


#: The module-level shared null recorder every untraced machine holds.
NULL_RECORDER = NullRecorder()
