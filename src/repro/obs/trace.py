"""Structured tracing of simulator runs (the `repro.obs` trace layer).

The simulator's end-of-run aggregates (:class:`~repro.nvram.stats.RunResult`)
say *how much* happened; the trace recorder says *when*.  Every event
carries a **model-time timestamp** (the issuing thread's cycle clock), a
thread id and up to two integer arguments, appended to parallel arrays —
no per-event object allocation, no dictionaries on the hot path.

Event taxonomy (see DESIGN.md §9):

==============  ========================================================
``fase_begin``  an outermost FASE opened (``a`` = fase uid)
``fase_end``    it committed — recorded *after* the technique's
                end-of-FASE drain, so B/E spans include the drain stall
``evict_flush`` the software cache evicted a line (``a`` = line,
                ``b`` = 1 if the hardware line was dirty)
``drain``       a synchronous flush-queue drain (``a`` = stall cycles,
                ``b`` = entries outstanding before the drain)
``burst_start`` an adaptive sampling burst opened (``a`` = burst length)
``mrc_computed``a burst closed and its MRC was analyzed (``a`` =
                analysis cost in cycles, ``b`` = number of knee
                candidates)
``knee_candidate``
                one candidate knee of that MRC (``a`` = size, ``b`` =
                miss ratio in parts-per-million)
``size_selected``
                the controller resized the software cache (``a`` = new
                size) — matches ``RunResult.selected_sizes`` exactly
``stall``       the CPU blocked on the flush engine outside a drain
                (``a`` = stall cycles, ``b`` = 0 for a flush issue,
                1 for a hardware eviction write-back)
==============  ========================================================

Exports: JSON-lines (one event per line, sorted keys — byte-identical
across repeated runs of the same configuration) and the Chrome
``trace_event`` format, loadable in Perfetto / ``chrome://tracing`` with
one track per simulated thread (model cycles are mapped to microseconds).

When tracing is off the machine holds the module-level
:data:`NULL_RECORDER`, whose ``enabled`` flag gates every recording site
— the batched fast path stays allocation-free (enforced by
``benchmarks/test_obs_overhead.py`` and ``tools/bench_compare.py``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

#: Event kinds (string constants; used as ``name`` in Chrome traces).
EV_FASE_BEGIN = "fase_begin"
EV_FASE_END = "fase_end"
EV_EVICT_FLUSH = "evict_flush"
EV_DRAIN = "drain"
EV_BURST_START = "burst_start"
EV_MRC_COMPUTED = "mrc_computed"
EV_KNEE_CANDIDATE = "knee_candidate"
EV_SIZE_SELECTED = "size_selected"
EV_STALL = "stall"

EVENT_KINDS = (
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_EVICT_FLUSH,
    EV_DRAIN,
    EV_BURST_START,
    EV_MRC_COMPUTED,
    EV_KNEE_CANDIDATE,
    EV_SIZE_SELECTED,
    EV_STALL,
)

#: Decoded names of the ``a``/``b`` payload per kind (``None`` = unused).
ARG_NAMES: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    EV_FASE_BEGIN: ("fase_id", None),
    EV_FASE_END: ("fase_id", None),
    EV_EVICT_FLUSH: ("line", "dirty"),
    EV_DRAIN: ("stall_cycles", "outstanding"),
    EV_BURST_START: ("burst_length", None),
    EV_MRC_COMPUTED: ("analysis_cost", "num_candidates"),
    EV_KNEE_CANDIDATE: ("size", "miss_ratio_ppm"),
    EV_SIZE_SELECTED: ("size", None),
    EV_STALL: ("stall_cycles", "source"),
}


class TraceEvent(NamedTuple):
    """One decoded trace event (the recorder stores parallel arrays)."""

    kind: str
    thread_id: int
    time: int
    a: int
    b: int


class TraceRecorder:
    """Buffers typed events in parallel arrays; exports JSONL / Chrome.

    ``record`` is the only hot call: five list appends.  All decoding,
    aggregation and serialization happens at export time.
    """

    __slots__ = ("_kinds", "_tids", "_times", "_a", "_b")

    #: Class-level so the machine's ``recorder.enabled`` gate costs one
    #: attribute load whether the recorder is real or the null one.
    enabled = True

    def __init__(self) -> None:
        self._kinds: List[str] = []
        self._tids: List[int] = []
        self._times: List[int] = []
        self._a: List[int] = []
        self._b: List[int] = []

    # -- recording -------------------------------------------------------

    def record(self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0) -> None:
        """Append one event (model-time ``time`` on thread ``thread_id``)."""
        self._kinds.append(kind)
        self._tids.append(thread_id)
        self._times.append(time)
        self._a.append(a)
        self._b.append(b)

    def clear(self) -> None:
        """Drop every buffered event."""
        self._kinds.clear()
        self._tids.clear()
        self._times.clear()
        self._a.clear()
        self._b.clear()

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._kinds)

    def events(self) -> Iterator[TraceEvent]:
        """Iterate events in recording order."""
        for i in range(len(self._kinds)):
            yield TraceEvent(
                self._kinds[i], self._tids[i], self._times[i], self._a[i], self._b[i]
            )

    def events_of(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in recording order."""
        return [e for e in self.events() if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (only kinds that occurred)."""
        out: Dict[str, int] = {}
        for k in self._kinds:
            out[k] = out.get(k, 0) + 1
        return dict(sorted(out.items()))

    # -- export ----------------------------------------------------------

    def _event_args(self, e: TraceEvent) -> Dict[str, int]:
        names = ARG_NAMES.get(e.kind, ("a", "b"))
        args: Dict[str, int] = {}
        if names[0] is not None:
            args[names[0]] = e.a
        if names[1] is not None:
            args[names[1]] = e.b
        return args

    def to_jsonl(self) -> str:
        """One JSON object per line, sorted keys — deterministic bytes."""
        lines = []
        for e in self.events():
            doc = {"kind": e.kind, "tid": e.thread_id, "ts": e.time}
            doc.update(self._event_args(e))
            lines.append(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> Dict:
        """The Chrome ``trace_event`` document (open in Perfetto).

        Model cycles map to trace microseconds; outermost FASEs become
        duration (B/E) spans named ``FASE``, everything else an instant
        event on the issuing thread's track.
        """
        events: List[Dict] = []
        for tid in sorted(set(self._tids)):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"sim thread {tid}"},
                }
            )
        for e in self.events():
            if e.kind == EV_FASE_BEGIN or e.kind == EV_FASE_END:
                events.append(
                    {
                        "ph": "B" if e.kind == EV_FASE_BEGIN else "E",
                        "name": "FASE",
                        "cat": "fase",
                        "pid": 0,
                        "tid": e.thread_id,
                        "ts": e.time,
                        "args": {"fase_id": e.a},
                    }
                )
            else:
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": e.kind,
                        "cat": "obs",
                        "pid": 0,
                        "tid": e.thread_id,
                        "ts": e.time,
                        "args": self._event_args(e),
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "model cycles rendered as microseconds"},
        }

    def write_jsonl(self, path: str) -> None:
        """Write the JSONL export to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace_event export to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_chrome(), sort_keys=True, indent=1) + "\n")

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self)}, kinds={list(self.counts())})"


class NullRecorder:
    """The disabled path: ``enabled`` is False and ``record`` is a no-op.

    The machine checks ``recorder.enabled`` (a class attribute load)
    before touching any recording site, so a run with the null recorder
    does the same work as one with no observability layer at all.
    """

    __slots__ = ()

    enabled = False

    def record(self, kind: str, thread_id: int, time: int, a: int = 0, b: int = 0) -> None:
        """Deliberately empty."""

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRecorder()"


#: The module-level shared null recorder every untraced machine holds.
NULL_RECORDER = NullRecorder()
