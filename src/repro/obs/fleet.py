"""The fleet telemetry bus: per-worker events from pool to parent.

Single runs stream *simulator* events (:mod:`repro.obs.trace`); a
``--jobs N`` grid or crash campaign is a fleet of worker processes the
existing pipeline cannot see.  This module adds that layer:

- **Events.**  Every :class:`~repro.experiments.transport.WorkerPool`
  worker holds a :class:`FleetEmitter` and streams small typed dicts —
  task claimed/finished (with the cell or chunk identity and per-task
  wall/CPU time), error tracebacks, periodic RSS/CPU resource samples
  from an opt-in :class:`ResourceSampler` thread, per-crash campaign
  progress — over one dedicated ``SimpleQueue`` to the parent.
- **Fold.**  The parent-side :class:`FleetAggregator` folds the stream
  into live per-worker state (:class:`WorkerState`) and fleet-level
  metrics (throughput, straggler ratio, peak RSS), samples resource
  series into a :class:`~repro.obs.metrics.MetricsRegistry`, and
  optionally spills every event to JSONL — the file ``monitor --fleet
  --follow`` tails from another process.
- **Plumbing.**  :class:`FleetTelemetry` is the handle callers pass to
  the pool: it owns the queue, the aggregator, the spill and span-export
  paths, and the ``on_pump`` hook the live dashboard hangs off.

Import direction: this module may import :mod:`repro.obs.live` and
:mod:`repro.obs.metrics` but never :mod:`repro.experiments` — the pool
imports *us* (workers construct emitters after fork), not vice versa.

Liveness rides on the same bus: any event refreshes a worker's
``last_seen``; the pool synthesizes a ``worker_dead`` event when a
process exits without its stop handshake, and the aggregator's claim
tracking (claimed but not finished) is what lets the pool resubmit a
dead worker's in-flight tasks so the grid still completes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, IO, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.live import AlertRule
from repro.obs.metrics import MetricsRegistry, nearest_rank

#: Spill-file header line kind and schema (bump on event-shape changes).
FLEET_META_KIND = "fleet_meta"
FLEET_SCHEMA_VERSION = 1

#: Event kinds on the bus (the ``ev`` field of every event dict).
FE_WORKER_START = "worker_start"
FE_TASK_CLAIMED = "task_claimed"
FE_TASK_FINISHED = "task_finished"
FE_TASK_ERROR = "task_error"
FE_TASK_PROGRESS = "task_progress"
FE_RESOURCE_SAMPLE = "resource_sample"
FE_WORKER_STOP = "worker_stop"
FE_WORKER_DEAD = "worker_dead"

FLEET_EVENT_KINDS = (
    FE_WORKER_START,
    FE_TASK_CLAIMED,
    FE_TASK_FINISHED,
    FE_TASK_ERROR,
    FE_TASK_PROGRESS,
    FE_RESOURCE_SAMPLE,
    FE_WORKER_STOP,
    FE_WORKER_DEAD,
)

#: Tracebacks shipped over the bus are truncated to this many chars
#: (the full text still reaches the parent via the result queue).
_TRACEBACK_LIMIT = 2000

#: Default sampler cadence when a caller enables sampling without
#: choosing one.
DEFAULT_SAMPLE_INTERVAL = 0.2

#: A running task younger than this many seconds is never counted as a
#: straggler, whatever its ratio to the median — sub-second grids would
#: otherwise alert on noise.
STRAGGLER_MIN_AGE_S = 0.5


def read_rss_kb() -> int:
    """This process's resident set size in KiB.

    Reads ``/proc/self/statm`` where available (current RSS); falls
    back to ``ru_maxrss`` (peak RSS, already KiB on Linux) elsewhere.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0


# ---------------------------------------------------------------------------
# Worker side: emitter + sampler thread
# ---------------------------------------------------------------------------


class FleetEmitter:
    """One worker's handle on the bus (constructed after fork).

    Emission is fire-and-forget: a parent that went away must never
    take a worker down with it, so queue failures are swallowed.
    """

    def __init__(self, queue, worker: int) -> None:
        self._queue = queue
        self.worker = worker
        self.current_task: Optional[int] = None

    def emit(self, ev: str, **fields: object) -> None:
        doc = {"ev": ev, "w": self.worker, "t": round(time.time(), 6)}
        doc.update(fields)
        try:
            self._queue.put(doc)
        except Exception:
            pass

    # -- lifecycle -------------------------------------------------------

    def worker_started(self) -> None:
        self.emit(FE_WORKER_START, pid=os.getpid())

    def worker_stopped(self, done: int) -> None:
        self.emit(FE_WORKER_STOP, done=done)

    # -- tasks -----------------------------------------------------------

    def task_claimed(self, task_id: int, kind: str, label: str) -> None:
        self.current_task = task_id
        self.emit(FE_TASK_CLAIMED, task=task_id, kind=kind, label=label)

    def task_finished(
        self, task_id: int, kind: str, ok: bool, wall_s: float, cpu_s: float
    ) -> None:
        self.current_task = None
        self.emit(
            FE_TASK_FINISHED,
            task=task_id,
            kind=kind,
            ok=ok,
            wall_s=round(wall_s, 6),
            cpu_s=round(cpu_s, 6),
        )

    def task_error(self, task_id: int, traceback_text: str) -> None:
        self.emit(
            FE_TASK_ERROR, task=task_id, traceback=traceback_text[-_TRACEBACK_LIMIT:]
        )

    def task_progress(self, info: Dict) -> None:
        """Sub-task progress (e.g. one injected crash of a chunk)."""
        self.emit(FE_TASK_PROGRESS, task=self.current_task, info=info)

    def sample(self, rss_kb: int, cpu_pct: float) -> None:
        self.emit(FE_RESOURCE_SAMPLE, rss_kb=rss_kb, cpu_pct=round(cpu_pct, 2))


class ResourceSampler(threading.Thread):
    """Opt-in per-worker sampler: RSS + CPU%% every ``interval`` seconds.

    A daemon thread beside the worker's task loop; each tick emits one
    ``resource_sample`` event (which doubles as the worker's heartbeat
    between long tasks).  CPU%% is the process-CPU-time delta over the
    wall-clock delta since the previous tick, so a worker saturating one
    core reads ~100 regardless of the sampling cadence.
    """

    def __init__(self, emitter: FleetEmitter, interval: float) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sample interval must be > 0 seconds, got {interval}"
            )
        super().__init__(daemon=True, name=f"fleet-sampler-w{emitter.worker}")
        self.emitter = emitter
        self.interval = float(interval)
        # Not named ``_stop``: Thread.join() calls a private method of
        # that name, which an Event attribute would shadow.
        self._halt = threading.Event()

    def run(self) -> None:
        last_wall = time.perf_counter()
        last_cpu = time.process_time()
        while not self._halt.wait(self.interval):
            wall = time.perf_counter()
            cpu = time.process_time()
            pct = 100.0 * (cpu - last_cpu) / max(wall - last_wall, 1e-9)
            last_wall, last_cpu = wall, cpu
            self.emitter.sample(read_rss_kb(), pct)

    def stop(self) -> None:
        self._halt.set()


# ---------------------------------------------------------------------------
# Parent side: per-worker state + aggregator
# ---------------------------------------------------------------------------


class WorkerState:
    """Live state of one worker, folded from its event stream."""

    __slots__ = (
        "worker",
        "pid",
        "alive",
        "stopped",
        "dead",
        "exitcode",
        "started",
        "last_seen",
        "current",
        "claims",
        "done",
        "errors",
        "busy_wall_s",
        "busy_cpu_s",
        "rss_kb",
        "rss_peak_kb",
        "cpu_pct",
        "violations",
    )

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.pid = 0
        self.alive = False
        self.stopped = False  # clean sentinel exit
        self.dead = False  # died without the stop handshake
        self.exitcode: Optional[int] = None
        self.started = 0.0
        self.last_seen = 0.0
        #: ``{"task", "kind", "label", "since"}`` while a task runs.
        self.current: Optional[Dict] = None
        #: Claimed-but-unfinished task ids (what a dead worker loses).
        self.claims: set = set()
        self.done = 0
        self.errors = 0
        self.busy_wall_s = 0.0
        self.busy_cpu_s = 0.0
        self.rss_kb = 0
        self.rss_peak_kb = 0
        self.cpu_pct = 0.0
        self.violations = 0

    def status(self) -> str:
        if self.dead:
            return f"dead({self.exitcode})"
        if self.stopped:
            return "done"
        return "alive" if self.alive else "init"

    def to_dict(self) -> Dict:
        return {
            "worker": self.worker,
            "pid": self.pid,
            "status": self.status(),
            "current": dict(self.current) if self.current else None,
            "done": self.done,
            "errors": self.errors,
            "busy_wall_s": round(self.busy_wall_s, 6),
            "busy_cpu_s": round(self.busy_cpu_s, 6),
            "rss_kb": self.rss_kb,
            "rss_peak_kb": self.rss_peak_kb,
            "cpu_pct": self.cpu_pct,
            "violations": self.violations,
        }


class FleetAggregator:
    """Fold the fleet event stream into live per-worker/per-grid state.

    ``observe`` accepts event dicts from the bus *or* parsed back from
    a spill file — the same fold either way, which is what makes the
    ``--follow`` dashboard agree with the attached one.  With
    ``spill_path`` every observed event is appended as sorted-key JSONL
    behind a ``fleet_meta`` header.
    """

    def __init__(
        self,
        *,
        spill_path: Optional[str] = None,
        tasks_total: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.workers: Dict[int, WorkerState] = {}
        #: Resource series (``rss_kb/wN``, ``cpu_pct/wN``, ``queue_depth``)
        #: keyed by milliseconds since the aggregator started.
        self.metrics = metrics if metrics is not None else MetricsRegistry(interval=1)
        self.tasks_total = tasks_total
        self.events = 0
        self.started = time.time()
        #: Finished-task wall durations, for the straggler median.
        self.durations: List[float] = []
        #: Campaign fold: site class -> {"done": n, "violated": n}.
        self.site_classes: Dict[str, Dict[str, int]] = {}
        #: Last few (worker, traceback) error payloads.
        self.tracebacks: List[Tuple[int, str]] = []
        self._snapshots = 0
        self._spill_path = spill_path
        self._spill: Optional[IO[str]] = None
        if spill_path is not None:
            self._spill = open(spill_path, "w", encoding="utf-8")
            self._spill.write(
                json.dumps(
                    {"ev": FLEET_META_KIND, "schema": FLEET_SCHEMA_VERSION},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
            self._spill.flush()

    # -- fold ------------------------------------------------------------

    def _worker(self, index: int) -> WorkerState:
        state = self.workers.get(index)
        if state is None:
            state = WorkerState(index)
            self.workers[index] = state
        return state

    def _now_ms(self, t: float) -> int:
        return max(0, int((t - self.started) * 1000))

    def observe(self, doc: Dict) -> None:
        """Fold one event dict (from the bus or a spill line)."""
        ev = doc.get("ev")
        if ev == FLEET_META_KIND:
            schema = int(doc.get("schema", FLEET_SCHEMA_VERSION))
            if schema > FLEET_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"fleet spill schema {schema} is newer than this "
                    f"reader ({FLEET_SCHEMA_VERSION})"
                )
            return
        if ev not in FLEET_EVENT_KINDS:
            raise ConfigurationError(f"unknown fleet event kind {ev!r}")
        self.events += 1
        state = self._worker(int(doc.get("w", 0)))
        t = float(doc.get("t", 0.0))
        state.last_seen = max(state.last_seen, t)
        if ev == FE_WORKER_START:
            state.pid = int(doc.get("pid", 0))
            state.alive = True
            state.started = t
        elif ev == FE_TASK_CLAIMED:
            state.alive = True
            state.current = {
                "task": doc.get("task"),
                "kind": doc.get("kind"),
                "label": doc.get("label"),
                "since": t,
            }
            state.claims.add(doc.get("task"))
        elif ev == FE_TASK_FINISHED:
            state.done += 1
            if not doc.get("ok", True):
                state.errors += 1
            state.busy_wall_s += float(doc.get("wall_s", 0.0))
            state.busy_cpu_s += float(doc.get("cpu_s", 0.0))
            self.durations.append(float(doc.get("wall_s", 0.0)))
            state.claims.discard(doc.get("task"))
            state.current = None
        elif ev == FE_TASK_ERROR:
            self.tracebacks.append((state.worker, str(doc.get("traceback", ""))))
            del self.tracebacks[:-5]
        elif ev == FE_TASK_PROGRESS:
            info = doc.get("info") or {}
            cls = info.get("site_class")
            if cls is not None:
                cell = self.site_classes.setdefault(
                    str(cls), {"done": 0, "violated": 0}
                )
                cell["done"] += 1
                if info.get("violated"):
                    cell["violated"] += 1
                    state.violations += 1
        elif ev == FE_RESOURCE_SAMPLE:
            state.rss_kb = int(doc.get("rss_kb", 0))
            state.rss_peak_kb = max(state.rss_peak_kb, state.rss_kb)
            state.cpu_pct = float(doc.get("cpu_pct", 0.0))
            ms = self._now_ms(t)
            self.metrics.sample(f"rss_kb/w{state.worker}", ms, state.rss_kb)
            self.metrics.sample(f"cpu_pct/w{state.worker}", ms, state.cpu_pct)
        elif ev == FE_WORKER_STOP:
            state.alive = False
            state.stopped = True
        elif ev == FE_WORKER_DEAD:
            state.alive = False
            state.dead = True
            state.exitcode = doc.get("exitcode")
            state.current = None
        if self._spill is not None:
            self._spill.write(
                json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._spill.flush()

    def sample_queue_depth(self, outstanding: int, now: Optional[float] = None) -> None:
        """Parent-side series: tasks submitted but not yet collected."""
        t = time.time() if now is None else now
        self.metrics.sample("queue_depth", self._now_ms(t), outstanding)

    # -- queries ---------------------------------------------------------

    def in_flight(self, worker: int) -> List[int]:
        """Tasks a worker claimed and never finished (sorted)."""
        state = self.workers.get(worker)
        if state is None:
            return []
        return sorted(t for t in state.claims if t is not None)

    def tasks_done(self) -> int:
        return sum(s.done for s in self.workers.values())

    def snapshot(self, now: Optional[float] = None) -> Dict:
        """One flat fleet metric dict (the alert engine's window feed)."""
        t = time.time() if now is None else now
        states = list(self.workers.values())
        done = sum(s.done for s in states)
        elapsed = max(t - self.started, 1e-9)
        in_flight = sum(len(s.claims) for s in states)
        # Straggler ratio: the oldest running task's age over the median
        # finished-task duration (0 until both exist).
        straggler = 0.0
        if self.durations:
            ages = [
                t - s.current["since"]
                for s in states
                if s.current is not None
                and t - s.current["since"] >= STRAGGLER_MIN_AGE_S
            ]
            if ages:
                median = nearest_rank(sorted(self.durations), 0.5)
                if median > 0:
                    straggler = max(ages) / median
        snap = {
            "index": self._snapshots,
            "workers": len(states),
            "workers_alive": sum(1 for s in states if s.alive),
            "dead_workers": sum(1 for s in states if s.dead),
            "tasks_done": done,
            "tasks_total": self.tasks_total if self.tasks_total is not None else 0,
            "in_flight": in_flight,
            "throughput_per_s": done / elapsed,
            "straggler_ratio": straggler,
            "max_worker_rss_mb": max(
                (s.rss_peak_kb for s in states), default=0
            )
            / 1024.0,
            "max_worker_cpu_pct": max((s.cpu_pct for s in states), default=0.0),
            "errors": sum(s.errors for s in states),
            "violations": sum(s.violations for s in states),
            "elapsed_s": elapsed,
        }
        self._snapshots += 1
        return snap

    def close(self) -> None:
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    def __repr__(self) -> str:
        return (
            f"FleetAggregator(workers={len(self.workers)}, "
            f"events={self.events}, done={self.tasks_done()})"
        )


# ---------------------------------------------------------------------------
# The handle callers pass to the pool
# ---------------------------------------------------------------------------


class FleetTelemetry:
    """Everything one pool's telemetry needs, in one handle.

    Construct it, hand it to :class:`~repro.experiments.transport.WorkerPool`
    (directly or through ``run_grid(..., telemetry=)`` /
    ``run_campaign(..., telemetry=)``) and read
    :attr:`aggregator` afterwards.  One instance watches one pool.

    - ``spill_path`` — append every event as JSONL (for ``--follow``).
    - ``sample_interval`` — enable the per-worker resource sampler
      (seconds; ``None`` disables, the opt-in default).
    - ``span_path`` — where the pool's deterministic scheduler span
      export lands (written by the grid/campaign runner via
      :meth:`export_spans`).
    - ``on_pump`` — called with the aggregator after every pump that
      folded at least one event (the live dashboard hook).
    """

    def __init__(
        self,
        *,
        spill_path: Optional[str] = None,
        sample_interval: Optional[float] = None,
        span_path: Optional[str] = None,
        tasks_total: Optional[int] = None,
        on_pump: Optional[Callable[["FleetAggregator"], None]] = None,
    ) -> None:
        self.aggregator = FleetAggregator(
            spill_path=spill_path, tasks_total=tasks_total
        )
        self.sample_interval = sample_interval
        self.span_path = span_path
        self.on_pump = on_pump
        self._queue = None

    # -- pool-facing -----------------------------------------------------

    def attach(self, ctx, jobs: int):
        """Create the bus queue on the pool's mp context; returns it."""
        self._queue = ctx.SimpleQueue()
        return self._queue

    def worker_args(self, index: int) -> Tuple:
        """The ``fleet`` tuple one worker's main loop receives."""
        if self._queue is None:
            raise ConfigurationError("attach() must run before worker_args()")
        return (self._queue, index, {"sample_interval": self.sample_interval})

    def pump(self) -> int:
        """Drain the bus into the aggregator; returns events folded.

        Non-blocking: ``empty()`` can transiently miss an in-flight
        event, which the next pump picks up.  Safe to call at any
        point, including after the pool closed.
        """
        q = self._queue
        if q is None:
            return 0
        folded = 0
        while True:
            try:
                if q.empty():
                    break
                doc = q.get()
            except (OSError, ValueError, EOFError):
                break
            self.aggregator.observe(doc)
            folded += 1
        if folded and self.on_pump is not None:
            self.on_pump(self.aggregator)
        return folded

    def worker_died(self, index: int, exitcode: Optional[int]) -> None:
        """Parent-synthesized death event (no worker left to send one)."""
        self.aggregator.observe(
            {
                "ev": FE_WORKER_DEAD,
                "w": index,
                "t": round(time.time(), 6),
                "exitcode": exitcode,
            }
        )

    # -- caller-facing ---------------------------------------------------

    def export_spans(self, plan, jobs: int, run_id: str = "") -> None:
        """Write the scheduler span export, if a path was configured."""
        if self.span_path is None:
            return
        from repro.obs.spans import write_schedule_spans

        write_schedule_spans(plan, jobs, self.span_path, run_id=run_id)

    def close(self) -> None:
        self.pump()
        self.aggregator.close()

    def __enter__(self) -> "FleetTelemetry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Fleet alert rules
# ---------------------------------------------------------------------------


def fleet_rules() -> List[AlertRule]:
    """Stock rules over :meth:`FleetAggregator.snapshot` metrics.

    The failure shapes a fleet adds over a single run: a worker died
    (always an error — the pool recovers, but the run burned work), a
    straggler dominating the tail (the scheduler's longest-group-first
    heuristic should keep this near 1), and a worker's RSS growing past
    what a laptop-class host tolerates.
    """
    return [
        AlertRule(
            name="dead_worker",
            metric="dead_workers",
            op=">",
            value=0,
            severity="error",
        ),
        AlertRule(
            name="straggler_ratio",
            metric="straggler_ratio",
            kind="sustained",
            op=">",
            value=4.0,
            window=3,
            severity="warning",
        ),
        AlertRule(
            name="worker_rss_ceiling",
            metric="max_worker_rss_mb",
            op=">",
            value=2048,
            severity="warning",
        ),
    ]
