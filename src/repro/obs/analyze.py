"""Offline trace analytics: turn recorded events into typed profiles.

PR 2's recorder captures *what happened*; this module answers *why it
cost what it cost* (DESIGN.md §11).  :func:`analyze` folds a trace's
parallel event arrays once — no per-event objects — into a
:class:`TraceProfile` holding:

- **flush provenance** — every ``evict_flush``/``drain`` attributed to
  its cause (capacity eviction, resize eviction, FASE-boundary drain,
  end-of-program drain, stall-forced hardware write-back), aggregated
  per line, per FASE and per thread, with a write-amplification figure
  (evict flushes ÷ distinct flushed lines) and a top-K hottest-lines
  ranking;
- **FASE latency** — spans reconstructed from ``fase_begin``/``fase_end``
  pairs, with nearest-rank p50/p95/p99/max durations and the share of
  span cycles spent in the commit drain;
- **adaptive-controller diagnostics** — the
  ``burst_start``/``mrc_computed``/``knee_candidate``/``size_selected``
  narrative replayed per thread, emitting typed :class:`Diagnosis`
  records (knee oscillation, resize storms, selections matching no knee
  candidate, knee fallbacks, unbalanced FASEs).

:func:`reconcile` cross-checks a profile against the matching
:class:`~repro.nvram.stats.RunResult` — the provenance totals are exact
counters, not estimates, so any mismatch is a bug.  :func:`diff_profiles`
aligns two profiles and reports deltas under configurable tolerances,
with the same verdict/notes shape as ``tools/bench_compare.py``.

Everything here is a pure function of the trace, so profiles — and the
reports rendered from them — are byte-deterministic across repeated
runs of one configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import (
    EV_BURST_START,
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_KNEE_CANDIDATE,
    EV_MRC_COMPUTED,
    EV_SIZE_SELECTED,
    EV_STALL,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
)

#: Diagnosis severities, least to most severe.
SEVERITIES = ("info", "warning", "error")

_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class AnalyzerConfig:
    """Thresholds for the controller diagnostics.

    The defaults are deliberate round numbers tuned to the seed
    workloads: each seed thread adapts at most once (its sampler
    hibernates), so none of them can trip an oscillation or storm —
    the acceptance baseline the thresholds are calibrated against.
    """

    #: Hottest-lines ranking length.
    top_k: int = 10
    #: A flip-flop is ``sizes[i] == sizes[i-2] != sizes[i-1]``; this many
    #: flips on one thread is a warning, :attr:`oscillation_error_flips`
    #: an error.
    oscillation_warning_flips: int = 2
    oscillation_error_flips: int = 4
    #: This many selections inside :attr:`storm_window_cycles` model
    #: cycles on one thread is a resize storm (warning).
    storm_count: int = 8
    storm_window_cycles: int = 1_000_000


@dataclass(frozen=True)
class Diagnosis:
    """One typed finding from the controller/FASE narrative replay."""

    code: str
    severity: str
    thread_id: int
    message: str
    data: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "thread_id": self.thread_id,
            "message": self.message,
            "data": dict(sorted(self.data.items())),
        }


def max_severity(diagnoses: List[Diagnosis]) -> Optional[str]:
    """The most severe level present, or ``None`` for a clean bill."""
    if not diagnoses:
        return None
    return max((d.severity for d in diagnoses), key=_SEVERITY_RANK.__getitem__)


@dataclass
class FlushProvenance:
    """Where the flushes came from (exact counters, not estimates)."""

    capacity_evictions: int = 0
    resize_evictions: int = 0
    #: Policy-stage flushes (schema-3 cause codes; zero on base runs).
    clean_flushes: int = 0
    bypass_flushes: int = 0
    victim_flushes: int = 0
    dirty_evict_flushes: int = 0
    fase_drains: int = 0
    fase_drain_stall_cycles: int = 0
    fase_drain_outstanding: int = 0
    final_drains: int = 0
    final_drain_stall_cycles: int = 0
    final_drain_outstanding: int = 0
    issue_stall_cycles: int = 0
    writeback_stall_cycles: int = 0
    #: Per-line evict-flush counts and the top-K ranking derived from it.
    line_flushes: Dict[int, int] = field(default_factory=dict)
    top_lines: List[Tuple[int, int]] = field(default_factory=list)
    #: thread id -> {capacity, resize, fase_drains, drain_stall}.
    per_thread: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: FASE uid -> commit-drain stall cycles (schema-2 traces only).
    fase_drain_stall_by_fase: Dict[int, int] = field(default_factory=dict)

    @property
    def evict_flushes(self) -> int:
        """All software-cache eviction flushes, whatever forced them."""
        return self.capacity_evictions + self.resize_evictions

    @property
    def attributed_flushes(self) -> int:
        """Every cause-attributed software-cache flush: evictions plus
        the policy-stage categories (clean / bypass / victim).  Equal to
        :attr:`evict_flushes` on base-technique traces."""
        return (
            self.evict_flushes
            + self.clean_flushes
            + self.bypass_flushes
            + self.victim_flushes
        )

    @property
    def distinct_lines(self) -> int:
        """How many distinct lines those attributed flushes touched."""
        return len(self.line_flushes)

    @property
    def write_amplification(self) -> float:
        """Attributed flushes per distinct flushed line (1.0 = no
        re-flush).  Identical to the historical eviction-only ratio on
        traces without policy stages."""
        n = self.distinct_lines
        return self.attributed_flushes / n if n else 0.0

    def to_dict(self) -> Dict:
        return {
            "capacity_evictions": self.capacity_evictions,
            "resize_evictions": self.resize_evictions,
            "evict_flushes": self.evict_flushes,
            "clean_flushes": self.clean_flushes,
            "bypass_flushes": self.bypass_flushes,
            "victim_flushes": self.victim_flushes,
            "dirty_evict_flushes": self.dirty_evict_flushes,
            "distinct_lines": self.distinct_lines,
            "write_amplification": round(self.write_amplification, 6),
            "fase_drains": self.fase_drains,
            "fase_drain_stall_cycles": self.fase_drain_stall_cycles,
            "fase_drain_outstanding": self.fase_drain_outstanding,
            "final_drains": self.final_drains,
            "final_drain_stall_cycles": self.final_drain_stall_cycles,
            "final_drain_outstanding": self.final_drain_outstanding,
            "issue_stall_cycles": self.issue_stall_cycles,
            "writeback_stall_cycles": self.writeback_stall_cycles,
            "top_lines": [list(t) for t in self.top_lines],
            "per_thread": {
                str(tid): dict(sorted(d.items()))
                for tid, d in sorted(self.per_thread.items())
            },
        }


@dataclass
class FaseLatencyProfile:
    """Reconstructed outermost-FASE spans and their latency shape."""

    count: int = 0
    p50: int = 0
    p95: int = 0
    p99: int = 0
    max: int = 0
    total_cycles: int = 0
    #: Commit-drain stall cycles attributed to a FASE via the drain's
    #: ``fase_id`` (schema 2; zero on schema-1 traces).
    drain_stall_cycles: int = 0
    per_thread_count: Dict[int, int] = field(default_factory=dict)

    @property
    def stall_share(self) -> float:
        """Fraction of total span cycles spent in the commit drain."""
        return (
            self.drain_stall_cycles / self.total_cycles if self.total_cycles else 0.0
        )

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
            "total_cycles": self.total_cycles,
            "drain_stall_cycles": self.drain_stall_cycles,
            "stall_share": round(self.stall_share, 6),
            "per_thread_count": {
                str(tid): n for tid, n in sorted(self.per_thread_count.items())
            },
        }


@dataclass
class AdaptationProfile:
    """The adaptive controller's replayed decision narrative."""

    bursts: int = 0
    analyses: int = 0
    knee_candidates: int = 0
    selections: int = 0
    #: Selections made without a preceding MRC on the thread — a thread
    #: adopting a group-published size (the shared-size extension).
    adoptions: int = 0
    fallbacks: int = 0
    analysis_cost_cycles: int = 0
    #: thread id -> [(cycle, size), ...] in selection order.
    trajectories: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "bursts": self.bursts,
            "analyses": self.analyses,
            "knee_candidates": self.knee_candidates,
            "selections": self.selections,
            "adoptions": self.adoptions,
            "fallbacks": self.fallbacks,
            "analysis_cost_cycles": self.analysis_cost_cycles,
            "trajectories": {
                str(tid): [list(p) for p in pts]
                for tid, pts in sorted(self.trajectories.items())
            },
        }


@dataclass
class TraceProfile:
    """Everything :func:`analyze` extracts from one trace."""

    schema: int
    events: int
    event_counts: Dict[str, int]
    threads: List[int]
    provenance: FlushProvenance
    fase: FaseLatencyProfile
    adaptation: AdaptationProfile
    diagnoses: List[Diagnosis]

    def to_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "events": self.events,
            "event_counts": dict(sorted(self.event_counts.items())),
            "threads": list(self.threads),
            "provenance": self.provenance.to_dict(),
            "fase": self.fase.to_dict(),
            "adaptation": self.adaptation.to_dict(),
            "diagnoses": [d.to_dict() for d in self.diagnoses],
            "max_severity": max_severity(self.diagnoses),
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"


# Nearest-rank percentile, shared with the fleet aggregator and the
# registry's series helpers (one implementation, one definition of p95).
from repro.obs.metrics import nearest_rank as _percentile  # noqa: E402


class _ThreadFold:
    """Per-thread accumulator state for the one-pass fold (internal)."""

    __slots__ = (
        "open_uid",
        "open_time",
        "cand",
        "expected_cands",
        "awaiting_selection",
        "sizes",
        "sel_times",
        "unmatched",
        "fallbacks",
        "adoptions",
        "unbalanced_ends",
    )

    def __init__(self) -> None:
        self.open_uid = -1
        self.open_time = -1
        self.cand: List[int] = []
        self.expected_cands = 0
        self.awaiting_selection = False
        self.sizes: List[int] = []
        self.sel_times: List[int] = []
        self.unmatched: List[Tuple[int, int]] = []
        self.fallbacks = 0
        self.adoptions = 0
        self.unbalanced_ends = 0


class ProfileFold:
    """Incremental accumulator behind :func:`analyze`.

    Feed the trace's parallel columns in any number of chunks (whole
    trace at once for the offline path, one cycle-window at a time for
    :class:`repro.obs.live.StreamingProfile`), then :meth:`finalize`.
    Because chunked feeding walks the exact same per-event fold as the
    one-shot path, a stream split at arbitrary boundaries finalizes to
    the identical profile — the equivalence the live layer's tests pin.

    The cumulative counters (``prov``, ``fase``, ``adapt``, ``counts``,
    ``events``) are readable mid-stream; :meth:`finalize` only adds the
    order-independent post-processing (percentiles, top-K ranking,
    diagnosis generation) and is idempotent.
    """

    __slots__ = (
        "cfg",
        "prov",
        "fase",
        "adapt",
        "counts",
        "events",
        "_durations",
        "_folds",
    )

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.cfg = config or AnalyzerConfig()
        self.prov = FlushProvenance()
        self.fase = FaseLatencyProfile()
        self.adapt = AdaptationProfile()
        self.counts: Dict[str, int] = {}
        self.events = 0
        self._durations: List[int] = []
        self._folds: Dict[int, _ThreadFold] = {}

    def feed_columns(
        self,
        kinds: List[str],
        tids: List[int],
        times: List[int],
        a_col: List[int],
        b_col: List[int],
        c_col: List[int],
    ) -> None:
        """Fold one chunk of parallel event columns into the profile."""
        n = len(kinds)
        self.events += n
        prov = self.prov
        fase = self.fase
        adapt = self.adapt
        counts = self.counts
        durations = self._durations
        folds = self._folds
        line_flushes = prov.line_flushes
        per_thread = prov.per_thread

        def thread_fold(tid: int) -> _ThreadFold:
            f = folds.get(tid)
            if f is None:
                f = folds[tid] = _ThreadFold()
                per_thread[tid] = {
                    "capacity": 0,
                    "resize": 0,
                    "clean": 0,
                    "bypass": 0,
                    "victim": 0,
                    "fase_drains": 0,
                    "drain_stall": 0,
                }
            return f

        for i in range(n):
            kind = kinds[i]
            counts[kind] = counts.get(kind, 0) + 1
            tid = tids[i]
            f = thread_fold(tid)
            if kind == EV_EVICT_FLUSH:
                line = a_col[i]
                line_flushes[line] = line_flushes.get(line, 0) + 1
                if b_col[i]:
                    prov.dirty_evict_flushes += 1
                cause = c_col[i]
                if cause == 0:
                    prov.capacity_evictions += 1
                    per_thread[tid]["capacity"] += 1
                elif cause == 1:
                    prov.resize_evictions += 1
                    per_thread[tid]["resize"] += 1
                elif cause == 2:
                    prov.clean_flushes += 1
                    per_thread[tid]["clean"] += 1
                elif cause == 3:
                    prov.bypass_flushes += 1
                    per_thread[tid]["bypass"] += 1
                else:
                    prov.victim_flushes += 1
                    per_thread[tid]["victim"] += 1
            elif kind == EV_STALL:
                if b_col[i]:
                    prov.writeback_stall_cycles += a_col[i]
                else:
                    prov.issue_stall_cycles += a_col[i]
            elif kind == EV_DRAIN:
                stall = a_col[i]
                fase_id = c_col[i]
                if fase_id >= 0:
                    prov.fase_drains += 1
                    prov.fase_drain_stall_cycles += stall
                    prov.fase_drain_outstanding += b_col[i]
                    per_thread[tid]["fase_drains"] += 1
                    per_thread[tid]["drain_stall"] += stall
                    prov.fase_drain_stall_by_fase[fase_id] = (
                        prov.fase_drain_stall_by_fase.get(fase_id, 0) + stall
                    )
                    fase.drain_stall_cycles += stall
                else:
                    prov.final_drains += 1
                    prov.final_drain_stall_cycles += stall
                    prov.final_drain_outstanding += b_col[i]
            elif kind == EV_FASE_BEGIN:
                f.open_uid = a_col[i]
                f.open_time = times[i]
            elif kind == EV_FASE_END:
                if f.open_time < 0 or f.open_uid != a_col[i]:
                    f.unbalanced_ends += 1
                else:
                    durations.append(times[i] - f.open_time)
                    fase.count += 1
                    fase.total_cycles += times[i] - f.open_time
                    fase.per_thread_count[tid] = fase.per_thread_count.get(tid, 0) + 1
                f.open_uid = -1
                f.open_time = -1
            elif kind == EV_BURST_START:
                adapt.bursts += 1
            elif kind == EV_MRC_COMPUTED:
                adapt.analyses += 1
                adapt.analysis_cost_cycles += a_col[i]
                f.cand = []
                f.expected_cands = b_col[i]
                f.awaiting_selection = True
            elif kind == EV_KNEE_CANDIDATE:
                adapt.knee_candidates += 1
                f.cand.append(a_col[i])
            elif kind == EV_SIZE_SELECTED:
                size = a_col[i]
                adapt.selections += 1
                f.sizes.append(size)
                f.sel_times.append(times[i])
                if f.awaiting_selection:
                    if f.expected_cands == 0:
                        f.fallbacks += 1
                        adapt.fallbacks += 1
                    elif size not in f.cand:
                        f.unmatched.append((times[i], size))
                    f.awaiting_selection = False
                else:
                    f.adoptions += 1
                    adapt.adoptions += 1

    def finalize(self, schema: int = TRACE_SCHEMA_VERSION) -> TraceProfile:
        """Post-process the accumulated state into a :class:`TraceProfile`.

        Safe to call more than once (and to keep feeding afterwards):
        every derived field is recomputed from scratch here.
        """
        cfg = self.cfg
        prov = self.prov
        fase = self.fase
        adapt = self.adapt
        durations = self._durations
        folds = self._folds

        durations.sort()
        fase.p50 = _percentile(durations, 0.50)
        fase.p95 = _percentile(durations, 0.95)
        fase.p99 = _percentile(durations, 0.99)
        fase.max = durations[-1] if durations else 0

        # Top-K hottest flushed lines: count desc, line asc for ties.
        prov.top_lines = sorted(
            prov.line_flushes.items(), key=lambda kv: (-kv[1], kv[0])
        )[: cfg.top_k]

        diagnoses: List[Diagnosis] = []
        for tid in sorted(folds):
            f = folds[tid]
            if f.sizes:
                adapt.trajectories[tid] = list(zip(f.sel_times, f.sizes))
            if f.open_time >= 0:
                diagnoses.append(
                    Diagnosis(
                        code="unbalanced_fase",
                        severity="error",
                        thread_id=tid,
                        message=(
                            f"thread {tid}: fase_begin (uid {f.open_uid}) never "
                            f"closed — truncated trace or a crashed run"
                        ),
                        data={"open_uid": f.open_uid},
                    )
                )
            if f.unbalanced_ends:
                diagnoses.append(
                    Diagnosis(
                        code="unbalanced_fase",
                        severity="error",
                        thread_id=tid,
                        message=(
                            f"thread {tid}: {f.unbalanced_ends} fase_end event(s) "
                            f"with no matching fase_begin"
                        ),
                        data={"count": f.unbalanced_ends},
                    )
                )
            if f.unmatched:
                cycle, size = f.unmatched[0]
                diagnoses.append(
                    Diagnosis(
                        code="unmatched_selection",
                        severity="error",
                        thread_id=tid,
                        message=(
                            f"thread {tid}: {len(f.unmatched)} selection(s) match "
                            f"no knee candidate of the preceding MRC (first: size "
                            f"{size} at cycle {cycle})"
                        ),
                        data={
                            "count": len(f.unmatched),
                            "first_cycle": cycle,
                            "size": size,
                        },
                    )
                )
            if f.fallbacks:
                diagnoses.append(
                    Diagnosis(
                        code="knee_fallback",
                        severity="info",
                        thread_id=tid,
                        message=(
                            f"thread {tid}: {f.fallbacks} MRC(s) yielded no knee; "
                            f"the controller fell back to the maximum size"
                        ),
                        data={"count": f.fallbacks},
                    )
                )
            # Knee oscillation: A -> B -> A flip-flops in the size sequence.
            flips = 0
            sizes = f.sizes
            for i in range(2, len(sizes)):
                if sizes[i] == sizes[i - 2] != sizes[i - 1]:
                    flips += 1
            if flips >= cfg.oscillation_warning_flips:
                sev = "error" if flips >= cfg.oscillation_error_flips else "warning"
                diagnoses.append(
                    Diagnosis(
                        code="knee_oscillation",
                        severity=sev,
                        thread_id=tid,
                        message=(
                            f"thread {tid}: selected size flip-flopped {flips} "
                            f"time(s) over {len(sizes)} selections"
                        ),
                        data={"flips": flips, "selections": len(sizes)},
                    )
                )
            # Resize storm: storm_count selections inside one cycle window.
            st = f.sel_times
            k = cfg.storm_count
            for i in range(len(st) - k + 1):
                if st[i + k - 1] - st[i] <= cfg.storm_window_cycles:
                    diagnoses.append(
                        Diagnosis(
                            code="resize_storm",
                            severity="warning",
                            thread_id=tid,
                            message=(
                                f"thread {tid}: {k} resizes within "
                                f"{st[i + k - 1] - st[i]} cycles (window "
                                f"{cfg.storm_window_cycles})"
                            ),
                            data={
                                "count": k,
                                "span_cycles": st[i + k - 1] - st[i],
                                "start_cycle": st[i],
                            },
                        )
                    )
                    break

        diagnoses.sort(
            key=lambda d: (-_SEVERITY_RANK[d.severity], d.code, d.thread_id)
        )
        return TraceProfile(
            schema=schema,
            events=self.events,
            event_counts=self.counts,
            threads=sorted(folds),
            provenance=prov,
            fase=fase,
            adaptation=adapt,
            diagnoses=diagnoses,
        )


def analyze(
    trace: TraceRecorder, config: Optional[AnalyzerConfig] = None
) -> TraceProfile:
    """Fold a trace into a :class:`TraceProfile` in one pass.

    Walks the recorder's parallel arrays directly (no per-event tuple
    per event); cost is linear in the trace and independent of the
    model's size.  Works on schema-1 traces too — the reader already
    filled the missing ``c`` columns with their defaults, so resize
    provenance and per-FASE drain attribution simply come out empty.
    """
    fold = ProfileFold(config)
    fold.feed_columns(*trace.columns())
    return fold.finalize(schema=trace.schema)


def reconcile(profile: TraceProfile, result: object) -> List[str]:
    """Cross-check a profile against its run's ``RunResult`` counters.

    Returns a list of mismatch descriptions (empty = exact agreement).
    The identities checked are definitional — the trace records the same
    increments the counters accumulate — so any entry is a bug in the
    recorder, the analyzer or the machine, never measurement noise.
    """
    problems: List[str] = []
    threads = result.threads

    def check(name: str, from_trace: int, from_result: int) -> None:
        if from_trace != from_result:
            problems.append(
                f"{name}: trace says {from_trace}, RunResult says {from_result}"
            )

    check(
        "eviction flushes",
        profile.provenance.evict_flushes,
        sum(t.eviction_flushes for t in threads),
    )
    check(
        "clean flushes",
        profile.provenance.clean_flushes,
        sum(t.clean_flushes for t in threads),
    )
    check(
        "bypass flushes",
        profile.provenance.bypass_flushes,
        sum(t.bypass_flushes for t in threads),
    )
    check(
        "victim flushes",
        profile.provenance.victim_flushes,
        sum(t.victim_flushes for t in threads),
    )
    check("FASE count", profile.fase.count, sum(t.fase_count for t in threads))
    prov = profile.provenance
    check(
        "stall cycles",
        prov.fase_drain_stall_cycles
        + prov.final_drain_stall_cycles
        + prov.issue_stall_cycles
        + prov.writeback_stall_cycles,
        sum(t.stall_cycles for t in threads),
    )
    check(
        "size selections",
        profile.adaptation.selections,
        sum(len(t.selected_sizes) for t in threads),
    )
    for t in threads:
        traj = [s for _, s in profile.adaptation.trajectories.get(t.thread_id, [])]
        if traj != list(t.selected_sizes):
            problems.append(
                f"thread {t.thread_id} selected-size trajectory: trace says "
                f"{traj}, RunResult says {list(t.selected_sizes)}"
            )
    return problems


@dataclass(frozen=True)
class DiffTolerances:
    """How much two profiles may differ and still be "the same run".

    ``ratio_pct`` bounds relative drift of counts and latencies (0.5 =
    half a percent); ``share_abs`` bounds absolute drift of the stall
    share (a fraction in [0, 1]).  Exact-match metrics (event counts,
    selected-size trajectories) ignore both.
    """

    ratio_pct: float = 0.5
    share_abs: float = 0.01


def _diff_entry(metric: str, va: float, vb: float, tol_pct: float) -> Dict:
    if va == vb:
        ratio = 1.0
    elif va == 0:
        ratio = float("inf")
    else:
        ratio = vb / va
    ok = va == vb or (ratio != float("inf") and abs(ratio - 1.0) * 100.0 <= tol_pct)
    return {
        "metric": metric,
        "a": va,
        "b": vb,
        "delta": vb - va,
        "ratio": round(ratio, 6) if ratio != float("inf") else None,
        "ok": ok,
    }


def diff_profiles(
    a: TraceProfile,
    b: TraceProfile,
    tolerances: Optional[DiffTolerances] = None,
) -> Dict:
    """Align two profiles and report their deltas.

    Returns ``{"verdict", "entries", "notes"}`` in the
    ``bench_compare`` idiom: verdict ``"ok"`` when every compared metric
    is within tolerance, ``"different"`` otherwise, ``"incomparable"``
    when the runs cannot be meaningfully aligned (different thread
    sets).  Notes call out structural differences (schema versions,
    diverging trajectories) that tolerances do not cover.
    """
    tol = tolerances or DiffTolerances()
    notes: List[str] = []
    if a.threads != b.threads:
        return {
            "verdict": "incomparable",
            "entries": [],
            "notes": [
                f"thread sets differ: {a.threads} vs {b.threads} — "
                f"not the same experiment"
            ],
        }
    if a.schema != b.schema:
        notes.append(
            f"trace schemas differ ({a.schema} vs {b.schema}); "
            f"schema-2-only provenance is empty on the older side"
        )

    entries: List[Dict] = []
    pa, pb = a.provenance, b.provenance
    fa, fb = a.fase, b.fase
    for metric, va, vb in (
        ("events", a.events, b.events),
        ("evict_flushes", pa.evict_flushes, pb.evict_flushes),
        ("capacity_evictions", pa.capacity_evictions, pb.capacity_evictions),
        ("resize_evictions", pa.resize_evictions, pb.resize_evictions),
        ("clean_flushes", pa.clean_flushes, pb.clean_flushes),
        ("bypass_flushes", pa.bypass_flushes, pb.bypass_flushes),
        ("victim_flushes", pa.victim_flushes, pb.victim_flushes),
        ("distinct_lines", pa.distinct_lines, pb.distinct_lines),
        ("write_amplification", pa.write_amplification, pb.write_amplification),
        ("fase_drains", pa.fase_drains, pb.fase_drains),
        ("fase_count", fa.count, fb.count),
        ("fase_p50", fa.p50, fb.p50),
        ("fase_p95", fa.p95, fb.p95),
        ("fase_p99", fa.p99, fb.p99),
        ("fase_max", fa.max, fb.max),
        ("selections", a.adaptation.selections, b.adaptation.selections),
    ):
        entries.append(_diff_entry(metric, va, vb, tol.ratio_pct))
    share_entry = {
        "metric": "stall_share",
        "a": round(fa.stall_share, 6),
        "b": round(fb.stall_share, 6),
        "delta": round(fb.stall_share - fa.stall_share, 6),
        "ratio": None,
        "ok": abs(fb.stall_share - fa.stall_share) <= tol.share_abs,
    }
    entries.append(share_entry)

    ta, tb = a.adaptation.trajectories, b.adaptation.trajectories
    traj_a = {tid: [s for _, s in pts] for tid, pts in ta.items()}
    traj_b = {tid: [s for _, s in pts] for tid, pts in tb.items()}
    if traj_a != traj_b:
        notes.append(
            "selected-size trajectories differ: "
            + "; ".join(
                f"t{tid}: {traj_a.get(tid, [])} vs {traj_b.get(tid, [])}"
                for tid in sorted(set(traj_a) | set(traj_b))
                if traj_a.get(tid, []) != traj_b.get(tid, [])
            )
        )

    ok = all(e["ok"] for e in entries) and not any(
        n.startswith("selected-size") for n in notes
    )
    return {
        "verdict": "ok" if ok else "different",
        "entries": entries,
        "notes": notes,
    }
