"""Scheduler spans: a deterministic Perfetto timeline of the worker pool.

The parallel layer's scheduler makes decisions the single-run trace
never sees: which ``(workload, threads)`` groups interleave with the
profiling summaries they wait on, when a blocked group is *released*,
which worker steals which chunk, and how long the straggler tail runs
after the queue drains.  This module turns those decisions into a
Chrome/Perfetto ``trace_event`` export of the pool itself — one track
per worker, one ``X`` span per task, instants on a dedicated scheduler
track for every group release, and a queue-depth counter series.

**Determinism.**  Real pool timing is racy: which worker pulls which
task depends on host scheduling, so wall-clock spans differ between two
identical runs.  The export here is instead a *replay*: the caller
records the scheduler's inputs in a :class:`SchedulePlan` — every task
in deterministic submission order, its release edge (the summary that
unblocks it) and a deterministic cost (model cycles for cell groups,
persistent stores for summaries, chunk length for crash chunks) — and
:func:`replay_schedule` simulates the pool's own policy (shared FIFO
queue, first free worker wins, lowest index breaks ties) in virtual
time.  The result is a pure function of ``(plan, jobs)``, so two
identical runs export byte-identical files (``sort_keys`` + ``indent=1``
JSON, the same contract as :meth:`repro.obs.trace.TraceRecorder.to_chrome`),
while still showing the shapes that matter: summary-before-cells
interleaving, release points, work-stealing backfill and the straggler
tail.  Virtual time is in cost units (exported as microseconds for the
viewer); it is a model of the schedule, not a wall-clock measurement —
the wall-clock view lives in the fleet aggregator's live state.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Bump when the exported document shape changes.
SPAN_SCHEMA_VERSION = 1


@dataclass
class PlannedTask:
    """One pool task as the scheduler saw it (uid is any hashable)."""

    uid: object
    kind: str
    label: str
    order: int
    release_after: Optional[object] = None
    cost: int = 1


class SchedulePlan:
    """The scheduler's inputs, recorded in deterministic order.

    ``add`` every task in submission order (blocked groups included, at
    the position the scheduler *considered* them — not the racy moment
    their release landed), then ``set_cost`` once deterministic costs
    are known.  ``release_after`` names the task whose completion
    releases this one; it must already be in the plan.
    """

    def __init__(self) -> None:
        self.tasks: Dict[object, PlannedTask] = {}

    def add(
        self,
        uid: object,
        kind: str,
        label: str,
        *,
        release_after: Optional[object] = None,
    ) -> None:
        if uid in self.tasks:
            raise ConfigurationError(f"duplicate planned task {uid!r}")
        if release_after is not None and release_after not in self.tasks:
            raise ConfigurationError(
                f"task {uid!r} released by unknown task {release_after!r} "
                f"(releasers must be planned first)"
            )
        self.tasks[uid] = PlannedTask(
            uid=uid,
            kind=kind,
            label=label,
            order=len(self.tasks),
            release_after=release_after,
        )

    def set_cost(self, uid: object, cost: int) -> None:
        """Attach a task's deterministic duration (clamped to >= 1)."""
        task = self.tasks.get(uid)
        if task is None:
            raise ConfigurationError(f"no planned task {uid!r}")
        task.cost = max(1, int(cost))

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class ScheduledSpan:
    """One task placed on one virtual worker's timeline."""

    worker: int
    start: int
    end: int
    task: PlannedTask


def replay_schedule(
    plan: SchedulePlan, jobs: int
) -> Tuple[List[ScheduledSpan], List[Tuple[int, PlannedTask]]]:
    """Simulate the pool's scheduling policy in virtual time.

    Returns ``(spans, releases)``: every task placed on a worker track,
    and every ``(virtual_time, task)`` release edge.  The simulation
    mirrors the real pool — one shared FIFO queue in submission order, a
    blocked task becomes eligible when its releaser finishes, and the
    first free worker (lowest index on ties) takes the earliest eligible
    task — so the replay is a pure, deterministic function of the plan.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    remaining = sorted(plan.tasks.values(), key=lambda t: t.order)
    finish: Dict[object, int] = {}
    spans: List[ScheduledSpan] = []
    free: List[Tuple[int, int]] = [(0, j) for j in range(jobs)]
    heapq.heapify(free)
    while remaining:
        t_free, worker = heapq.heappop(free)
        chosen = None
        for i, task in enumerate(remaining):
            if task.release_after is None:
                ready = 0
            else:
                ready = finish.get(task.release_after)
                if ready is None:
                    # Releaser still queued ahead (it has a smaller
                    # order and no blocker, so it would have been
                    # chosen first); this task is not eligible yet.
                    continue
            if ready <= t_free:
                chosen = i
                break
        if chosen is None:
            # Everything left waits on a release in the future: idle
            # this worker until the earliest one.
            ready_times = [
                finish[t.release_after]
                for t in remaining
                if t.release_after in finish
            ]
            if not ready_times:
                raise ConfigurationError(
                    "schedule plan has tasks that can never be released"
                )
            heapq.heappush(free, (min(ready_times), worker))
            continue
        task = remaining.pop(chosen)
        start = t_free
        end = start + task.cost
        finish[task.uid] = end
        spans.append(ScheduledSpan(worker=worker, start=start, end=end, task=task))
        heapq.heappush(free, (end, worker))
    releases = sorted(
        (
            (finish[t.release_after], t)
            for t in plan.tasks.values()
            if t.release_after is not None
        ),
        key=lambda r: (r[0], r[1].order),
    )
    return spans, releases


def schedule_to_chrome(plan: SchedulePlan, jobs: int, run_id: str = "") -> Dict:
    """The replayed schedule as a Chrome ``trace_event`` document.

    ``pid`` 0 throughout; ``tid`` 0..jobs-1 are worker tracks, ``tid``
    ``jobs`` is the scheduler track carrying release instants and the
    queued-tasks counter.  Virtual cost units map to microseconds.
    ``run_id`` is carried verbatim in ``otherData`` — it is the one
    field two otherwise-identical runs may disagree on.
    """
    spans, releases = replay_schedule(plan, jobs)
    events: List[Dict] = []
    for worker in range(jobs):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": worker,
                "args": {"name": f"worker {worker}"},
            }
        )
    events.append(
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": jobs,
            "args": {"name": "scheduler"},
        }
    )
    for span in spans:
        args = {
            "cost": span.task.cost,
            "submit_order": span.task.order,
            "task": str(span.task.uid),
        }
        if span.task.release_after is not None:
            args["released_by"] = str(span.task.release_after)
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": span.worker,
                "ts": span.start,
                "dur": span.end - span.start,
                "name": span.task.label,
                "cat": span.task.kind,
                "args": args,
            }
        )
    for ts, task in releases:
        events.append(
            {
                "ph": "i",
                "s": "p",
                "pid": 0,
                "tid": jobs,
                "ts": ts,
                "name": f"release:{task.label}",
                "cat": "release",
                "args": {"task": str(task.uid)},
            }
        )
    # Queued-tasks counter: how many tasks had not yet started, sampled
    # at every span start (the moments the queue depth changes).
    starts = sorted((s.start for s in spans))
    depth_at: Dict[int, int] = {}
    for i, ts in enumerate(starts):
        depth_at[ts] = len(starts) - (i + 1)
    for ts in sorted(depth_at):
        events.append(
            {
                "ph": "C",
                "pid": 0,
                "tid": jobs,
                "ts": ts,
                "name": "queued_tasks",
                "args": {"tasks": depth_at[ts]},
            }
        )
    events.sort(key=lambda e: (e.get("ts", -1), e["tid"], e["ph"], e["name"]))
    makespan = max((s.end for s in spans), default=0)
    worker_busy = [0] * jobs
    worker_end = [0] * jobs
    for span in spans:
        worker_busy[span.worker] += span.end - span.start
        worker_end[span.worker] = max(worker_end[span.worker], span.end)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SPAN_SCHEMA_VERSION,
            "source": "repro.obs.spans (virtual scheduler replay)",
            "jobs": jobs,
            "tasks": len(plan),
            "makespan": makespan,
            # The straggler tail: how long the last worker runs on
            # alone after the first one drains.
            "straggler_tail": makespan - min(worker_end, default=0)
            if spans
            else 0,
            "worker_busy": worker_busy,
            "run_id": run_id,
        },
    }


def write_schedule_spans(
    plan: SchedulePlan, jobs: int, path: str, run_id: str = ""
) -> None:
    """Write the byte-deterministic Perfetto export of one plan."""
    doc = schedule_to_chrome(plan, jobs, run_id=run_id)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
