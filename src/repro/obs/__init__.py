"""Observability for the simulator: traces, metrics and analytics.

- :mod:`repro.obs.trace` — typed event recording with model-time
  timestamps, exportable as JSONL and Chrome ``trace_event`` (Perfetto).
- :mod:`repro.obs.metrics` — counters, gauges and interval-sampled time
  series (cache occupancy, flush-queue depth, rolling flush ratio).
- :mod:`repro.obs.analyze` — offline trace analytics: flush provenance,
  FASE latency profiles, adaptive-controller diagnostics, cross-run
  diffs (DESIGN.md §11).
- :mod:`repro.obs.report` — markdown / self-contained-HTML rendering of
  those profiles (re-exported lazily: it imports the experiment
  harness's SVG renderer, which the simulator must not depend on).
- :mod:`repro.obs.runner` — ``traced_run``: one harness cell executed
  with a live recorder/registry (the ``repro.experiments run`` CLI).
- :mod:`repro.obs.live` — the streaming pipeline: bounded
  :class:`~repro.obs.live.StreamingRecorder` with incremental JSONL
  spill, window-folding :class:`~repro.obs.live.StreamingProfile`, and
  the rule-driven :class:`~repro.obs.live.AlertEngine` behind the
  ``monitor`` CLI artifact (DESIGN.md §12).
- :mod:`repro.obs.fleet` — the cross-process telemetry bus for parallel
  pools: per-worker event emitters, opt-in RSS/CPU samplers, and the
  parent-side :class:`~repro.obs.fleet.FleetAggregator` behind
  ``monitor --fleet`` (DESIGN.md §15).
- :mod:`repro.obs.spans` — deterministic Perfetto timelines of the
  pool scheduler (virtual replay of the recorded
  :class:`~repro.obs.spans.SchedulePlan`).
- :mod:`repro.obs.ledger` — the append-only run registry: every entry
  point records a crash-safe JSONL provenance line (spec sha, env,
  counters, artifacts) into ``.ledger/`` (DESIGN.md §16).
- :mod:`repro.obs.history` — longitudinal queries over the ledger:
  per-spec timelines, EWMA trend fitting, changepoint detection and
  regression gating behind the ``history`` CLI artifact.

Tracing is strictly opt-in: machines default to the shared
:data:`~repro.obs.trace.NULL_RECORDER`, which keeps the batched
simulator loop on its allocation-free fast path (DESIGN.md §9).
"""

from repro.obs.analyze import (
    AnalyzerConfig,
    Diagnosis,
    DiffTolerances,
    TraceProfile,
    analyze,
    diff_profiles,
    max_severity,
    reconcile,
)
from repro.obs.live import (
    DEFAULT_WINDOW_CYCLES,
    Alert,
    AlertEngine,
    AlertRule,
    StreamingProfile,
    StreamingRecorder,
    WindowSnapshot,
    default_rules,
    parse_rule,
    snapshot_from_result,
)
from repro.obs.fleet import (
    FleetAggregator,
    FleetEmitter,
    FleetTelemetry,
    ResourceSampler,
    WorkerState,
    fleet_rules,
)
from repro.obs.history import (
    RegressionFinding,
    TrendLine,
    detect_changepoint,
    ewma,
    import_bench_doc,
)
from repro.obs.ledger import (
    LEDGER_ENV,
    RunLedger,
    RunRecord,
    default_ledger_path,
    record_run,
    resolve_ledger,
    spec_fingerprint,
)
from repro.obs.metrics import DEFAULT_INTERVAL, MetricsRegistry, nearest_rank
from repro.obs.spans import (
    SchedulePlan,
    ScheduledSpan,
    replay_schedule,
    schedule_to_chrome,
    write_schedule_spans,
)
from repro.obs.trace import (
    ARG_NAMES,
    EV_BURST_START,
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_KNEE_CANDIDATE,
    EV_MRC_COMPUTED,
    EV_SIZE_SELECTED,
    EV_STALL,
    EVENT_KINDS,
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    parse_jsonl,
    read_jsonl,
)

#: Names served lazily from repro.obs.report (see module docstring).
_REPORT_EXPORTS = frozenset(
    {
        "render_markdown",
        "render_html",
        "render_diff_text",
        "render_diff_html",
        "render_history_markdown",
        "render_history_html",
        "render_history_text",
        "write_text",
    }
)

__all__ = [
    "ARG_NAMES",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "AnalyzerConfig",
    "DEFAULT_INTERVAL",
    "DEFAULT_WINDOW_CYCLES",
    "Diagnosis",
    "DiffTolerances",
    "EVENT_KINDS",
    "EV_BURST_START",
    "EV_DRAIN",
    "EV_EVICT_FLUSH",
    "EV_FASE_BEGIN",
    "EV_FASE_END",
    "EV_KNEE_CANDIDATE",
    "EV_MRC_COMPUTED",
    "EV_SIZE_SELECTED",
    "EV_STALL",
    "FleetAggregator",
    "FleetEmitter",
    "FleetTelemetry",
    "LEDGER_ENV",
    "MetricsRegistry",
    "RegressionFinding",
    "RunLedger",
    "RunRecord",
    "TrendLine",
    "ResourceSampler",
    "SchedulePlan",
    "ScheduledSpan",
    "WorkerState",
    "NULL_RECORDER",
    "NullRecorder",
    "StreamingProfile",
    "StreamingRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceProfile",
    "TraceRecorder",
    "WindowSnapshot",
    "analyze",
    "default_ledger_path",
    "default_rules",
    "detect_changepoint",
    "diff_profiles",
    "ewma",
    "fleet_rules",
    "import_bench_doc",
    "max_severity",
    "nearest_rank",
    "record_run",
    "resolve_ledger",
    "spec_fingerprint",
    "parse_jsonl",
    "parse_rule",
    "read_jsonl",
    "reconcile",
    "replay_schedule",
    "schedule_to_chrome",
    "snapshot_from_result",
    "write_schedule_spans",
    "render_diff_html",
    "render_diff_text",
    "render_history_html",
    "render_history_markdown",
    "render_history_text",
    "render_html",
    "render_markdown",
    "write_text",
]


def __getattr__(name: str):
    if name in _REPORT_EXPORTS:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
