"""Observability for the simulator: structured traces and metrics.

- :mod:`repro.obs.trace` — typed event recording with model-time
  timestamps, exportable as JSONL and Chrome ``trace_event`` (Perfetto).
- :mod:`repro.obs.metrics` — counters, gauges and interval-sampled time
  series (cache occupancy, flush-queue depth, rolling flush ratio).
- :mod:`repro.obs.runner` — ``traced_run``: one harness cell executed
  with a live recorder/registry (the ``repro.experiments run`` CLI).

Tracing is strictly opt-in: machines default to the shared
:data:`~repro.obs.trace.NULL_RECORDER`, which keeps the batched
simulator loop on its allocation-free fast path (DESIGN.md §9).
"""

from repro.obs.metrics import DEFAULT_INTERVAL, MetricsRegistry
from repro.obs.trace import (
    ARG_NAMES,
    EV_BURST_START,
    EV_DRAIN,
    EV_EVICT_FLUSH,
    EV_FASE_BEGIN,
    EV_FASE_END,
    EV_KNEE_CANDIDATE,
    EV_MRC_COMPUTED,
    EV_SIZE_SELECTED,
    EV_STALL,
    EVENT_KINDS,
    NULL_RECORDER,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "ARG_NAMES",
    "DEFAULT_INTERVAL",
    "EVENT_KINDS",
    "EV_BURST_START",
    "EV_DRAIN",
    "EV_EVICT_FLUSH",
    "EV_FASE_BEGIN",
    "EV_FASE_END",
    "EV_KNEE_CANDIDATE",
    "EV_MRC_COMPUTED",
    "EV_SIZE_SELECTED",
    "EV_STALL",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceEvent",
    "TraceRecorder",
]
