"""The run ledger: an append-only, crash-safe provenance store.

Every entry point that executes simulation — ``repro.api.run`` /
``traced_run``, ``Harness.run_grid``, ``run_grid_parallel``,
``repro.faults.run_campaign``, the ``profile``/``crashmatrix`` CLI
artifacts and ``tools/bench.py`` — appends one :class:`RunRecord` here,
so the repository keeps a durable, queryable history of *everything that
was ever run*: the canonical spec (and its SHA-256), the result
counters, the host environment, wall time and the artifact paths the
run produced.  ``bench_compare`` can then gate against a fitted trend
over many baselines instead of one prior file, and the ``history`` CLI
(:mod:`repro.obs.history`) answers longitudinal questions the pairwise
tools (``bench_compare``, ``tracediff``) cannot.

Durability model (NVCache's append-only log, scaled to a JSONL file):

- One record is one JSON line, written with a **single** ``os.write``
  on an ``O_APPEND`` descriptor — concurrent appenders from different
  processes never interleave bytes within each other's lines.
- A crash mid-append can leave a torn final line; the reader treats any
  unparseable line as absent (a torn tail is skipped, counted, never
  fatal), and the next append **heals** the tail by prefixing a newline
  when the file does not end in one, so the log keeps growing past the
  scar.
- A sidecar ``index.json`` (atomic temp-file + rename, the
  :class:`~repro.experiments.cache.ResultCache` protocol) accelerates
  summaries; it is advisory — when its recorded byte count disagrees
  with the log, readers rescan and rewrite it.

Determinism contract: two appends of the same configuration produce
records identical *modulo the environment fields* (timestamp, host,
git sha, wall time, run id, artifact paths) — asserted by
``tests/test_ledger.py`` and what makes per-spec timelines comparable.

The ledger is on by default, rooted at ``.ledger/`` under the working
directory.  The ``REPRO_LEDGER`` environment variable moves it
(``REPRO_LEDGER=/path/to/dir``) or disables it entirely
(``REPRO_LEDGER=off``); recording is always best-effort — an unwritable
ledger never fails the run it would have described.

Import direction: like the rest of :mod:`repro.obs`, this module must
not import the experiment stack; it depends only on the standard
library and duck-types the result objects it distills.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Record shape version (bump on breaking field changes; readers skip
#: records from other schemas rather than misread them).
LEDGER_SCHEMA = 1

#: Environment variable controlling the default ledger location.
LEDGER_ENV = "REPRO_LEDGER"
#: Values of :data:`LEDGER_ENV` that disable recording entirely.
LEDGER_OFF_VALUES = frozenset({"off", "none", "0", "disabled"})
#: Default ledger root when the env var is unset.
DEFAULT_LEDGER_DIR = ".ledger"

#: The log and sidecar-index file names under the ledger root.
LOG_NAME = "runs.jsonl"
INDEX_NAME = "index.json"

#: Fields that describe the *environment* of a run rather than the run
#: itself: excluded from :meth:`RunRecord.stable_dict`, so re-running an
#: identical spec yields an identical stable form.
ENV_FIELDS = ("ts", "host", "git_sha", "wall_s", "run_id", "artifacts")


# ---------------------------------------------------------------------------
# Environment capture
# ---------------------------------------------------------------------------


def host_info() -> Dict[str, object]:
    """The recording host, compactly (cached per process)."""
    global _HOST_INFO
    if _HOST_INFO is None:
        _HOST_INFO = {
            "hostname": socket.gethostname(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        }
    return dict(_HOST_INFO)


_HOST_INFO: Optional[Dict[str, object]] = None


def git_sha(start: Optional[str] = None) -> Optional[str]:
    """The checked-out commit, read straight from ``.git`` (no subprocess).

    Walks up from ``start`` (default: the working directory) to the
    nearest ``.git/HEAD``; resolves a symbolic ref through the loose ref
    file or ``packed-refs``.  Returns ``None`` outside a repository or
    on any read error — provenance capture must never fail a run.
    """
    try:
        here = os.path.abspath(start or os.getcwd())
        while True:
            head = os.path.join(here, ".git", "HEAD")
            if os.path.isfile(head):
                break
            parent = os.path.dirname(here)
            if parent == here:
                return None
            here = parent
        with open(head, "r", encoding="utf-8") as fh:
            line = fh.read().strip()
        if not line.startswith("ref:"):
            return line or None
        ref = line.split(None, 1)[1]
        loose = os.path.join(here, ".git", *ref.split("/"))
        if os.path.isfile(loose):
            with open(loose, "r", encoding="utf-8") as fh:
                return fh.read().strip() or None
        packed = os.path.join(here, ".git", "packed-refs")
        if os.path.isfile(packed):
            with open(packed, "r", encoding="utf-8") as fh:
                for entry in fh:
                    entry = entry.strip()
                    if entry.endswith(" " + ref):
                        return entry.split(" ", 1)[0]
        return None
    except OSError:
        return None


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def canonical_json(obj) -> str:
    """Deterministic single-line JSON (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(spec: Dict) -> str:
    """SHA-256 of the canonical-JSON spec dict — the timeline key.

    The same derivation idiom as the on-disk result cache: every knob
    that can change the outcome belongs in ``spec``, so equal
    fingerprints mean comparable records.
    """
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


def counters_from_result(result) -> Dict[str, object]:
    """Distill a :class:`~repro.nvram.stats.RunResult` into ledger counters.

    Duck-typed (obs must not import the simulator): any object exposing
    the aggregate properties works, including worker-shipped results.
    All values are deterministic functions of the configuration.
    """
    return {
        "persistent_stores": int(result.persistent_stores),
        "flushes": int(result.flushes),
        "flush_ratio": round(float(result.flush_ratio), 6),
        "instructions": int(result.instructions),
        "time": int(result.time),
        "stall_cycles": int(result.stall_cycles),
        "fase_count": int(result.fase_count),
        "l1_miss_ratio": round(float(result.l1_miss_ratio), 6),
        "crashed": bool(result.crashed),
    }


@dataclass
class RunRecord:
    """One ledger line: what ran, what it produced, where, and when.

    ``spec`` is the canonical configuration dict (technique spec dict,
    workload knobs, machine geometry — whatever the entry point's
    outcome depends on) and ``spec_sha`` its SHA-256: records sharing a
    fingerprint form one timeline.  ``counters`` hold the deterministic
    result numbers; ``profile`` an optional trace-profile digest;
    ``alerts`` an optional alert/violation summary; ``extra`` any other
    deterministic payload (e.g. the full BENCH document).  The
    :data:`ENV_FIELDS` describe the recording environment and are the
    only fields allowed to differ between re-runs of one spec.
    """

    kind: str
    spec: Dict = field(default_factory=dict)
    spec_sha: str = ""
    counters: Dict = field(default_factory=dict)
    profile: Dict = field(default_factory=dict)
    alerts: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA
    # -- environment (excluded from the stable form) --------------------
    ts: float = 0.0
    host: Dict = field(default_factory=dict)
    git_sha: Optional[str] = None
    wall_s: float = 0.0
    run_id: str = ""
    artifacts: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.spec_sha:
            self.spec_sha = spec_fingerprint(self.spec)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def stable_dict(self) -> Dict:
        """The record minus its environment fields.

        Two runs of one configuration must produce equal stable dicts —
        the determinism contract per-spec timelines rest on.
        """
        data = self.to_dict()
        for key in ENV_FIELDS:
            data.pop(key, None)
        return data


def _fresh_run_id(ts: float) -> str:
    """A unique-enough id: microsecond timestamp, pid, random tail."""
    return (
        f"{int(ts * 1e6):x}-{os.getpid():x}-{os.urandom(4).hex()}"
    )


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------


class RunLedger:
    """An append-only JSONL run registry rooted at one directory.

    See the module docstring for the durability model.  Instances are
    cheap (no open handles are retained between operations), so entry
    points resolve one per recording rather than holding global state.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.path = os.path.join(root, LOG_NAME)
        self.index_path = os.path.join(root, INDEX_NAME)
        #: Lines the last scan skipped as torn/corrupt (observability
        #: for the reader's tolerance, asserted by tests).
        self.skipped_lines = 0

    def __len__(self) -> int:
        return len(self.records())

    # -- writing --------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Durably append one record; fills unset environment fields.

        One ``os.write`` on an ``O_APPEND`` descriptor per record: the
        kernel serializes concurrent appenders, so lines from different
        processes never interleave.  If a previous writer crashed
        mid-line (file not ending in a newline), the append heals the
        tail by prefixing its own newline — the torn line stays torn
        (and is skipped on read) but the log remains parseable.
        """
        if not record.ts:
            record.ts = time.time()
        if not record.host:
            record.host = host_info()
        if record.git_sha is None:
            record.git_sha = git_sha(self.root)
        if not record.run_id:
            record.run_id = _fresh_run_id(record.ts)
        os.makedirs(self.root, exist_ok=True)
        line = canonical_json(record.to_dict()).encode("utf-8")
        payload = line + b"\n"
        if self._tail_is_torn():
            payload = b"\n" + payload
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, payload)
            size_after = os.fstat(fd).st_size
        finally:
            os.close(fd)
        self._update_index(record, len(payload), size_after)
        return record

    def _tail_is_torn(self) -> bool:
        """True when the log exists, is non-empty and lacks a final newline."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size == 0:
                    return False
                fh.seek(size - 1)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    # -- reading --------------------------------------------------------

    def scan(self) -> List[RunRecord]:
        """Every parseable record, in append order; torn lines skipped.

        A line that fails to parse — the torn tail of a crashed writer,
        or bytes from a foreign schema — is counted in
        :attr:`skipped_lines` and otherwise ignored: the reader's job is
        to surface history, not to die on one scar.
        """
        records: List[RunRecord] = []
        skipped = 0
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except OSError:
            self.skipped_lines = 0
            return records
        for chunk in raw.split(b"\n"):
            if not chunk.strip():
                continue
            try:
                data = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                skipped += 1
                continue
            if not isinstance(data, dict) or data.get("schema") != LEDGER_SCHEMA:
                skipped += 1
                continue
            try:
                records.append(RunRecord.from_dict(data))
            except TypeError:
                skipped += 1
        self.skipped_lines = skipped
        return records

    def records(
        self,
        kind: Optional[str] = None,
        spec_sha: Optional[str] = None,
    ) -> List[RunRecord]:
        """Records filtered by kind and/or spec fingerprint, in order."""
        out = self.scan()
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if spec_sha is not None:
            out = [r for r in out if r.spec_sha == spec_sha]
        return out

    def timelines(
        self, kind: Optional[str] = None
    ) -> Dict[str, List[RunRecord]]:
        """Records grouped by spec fingerprint, each group in append order."""
        groups: Dict[str, List[RunRecord]] = {}
        for record in self.records(kind=kind):
            groups.setdefault(record.spec_sha, []).append(record)
        return groups

    # -- sidecar index --------------------------------------------------

    def _update_index(
        self, record: RunRecord, payload_len: int, size_after: int
    ) -> None:
        """Best-effort sidecar maintenance after one append.

        The index is an accelerator, not a source of truth: it is
        rewritten atomically (temp file + rename) and stamped with the
        log's byte size, so a reader can tell a stale index (concurrent
        appenders racing on the rewrite) from a fresh one and rescan.

        The incremental ``+1`` is sound only when the base index was
        fresh *as of the byte just before this append* (its stamped
        size equals ``size_after - payload_len``); a base from any
        other instant may have missed a concurrent writer's record, and
        blindly incrementing it could stamp the final log size onto a
        wrong count — a stale index the size check cannot catch.  When
        the chain breaks, fall back to a full rescan rebuild instead.
        Any failure here is swallowed — the log already holds the data.
        """
        try:
            index = self._read_index()
            if index is None:
                index = {"schema": LEDGER_SCHEMA, "records": 0, "bytes": 0,
                         "specs": {}}
            if (
                index.get("schema") != LEDGER_SCHEMA
                or index.get("bytes") != size_after - payload_len
            ):
                self.index()
                return
            entry = index["specs"].setdefault(
                record.spec_sha, {"kind": record.kind, "count": 0, "last_ts": 0.0}
            )
            entry["count"] += 1
            entry["kind"] = record.kind
            entry["last_ts"] = record.ts
            index["records"] += 1
            index["bytes"] = size_after
            self._write_index(index)
        except (OSError, TypeError, KeyError):
            pass

    def _read_index(self) -> Optional[Dict]:
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _write_index(self, index: Dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(index, fh, sort_keys=True)
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def index(self) -> Dict:
        """The sidecar index, rebuilt (and rewritten) when stale.

        Freshness test: the index's recorded ``bytes`` must equal the
        log's current size; concurrent appends that lost the index race
        make it stale, and a rescan repairs it.
        """
        index = self._read_index()
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        if index is not None and index.get("bytes") == size:
            return index
        records = self.scan()
        index = {
            "schema": LEDGER_SCHEMA,
            "records": len(records),
            "bytes": size,
            "specs": {},
        }
        for record in records:
            entry = index["specs"].setdefault(
                record.spec_sha, {"kind": record.kind, "count": 0, "last_ts": 0.0}
            )
            entry["count"] += 1
            entry["kind"] = record.kind
            entry["last_ts"] = record.ts
        try:
            self._write_index(index)
        except OSError:
            pass
        return index


# ---------------------------------------------------------------------------
# Resolution + the one recording entry point
# ---------------------------------------------------------------------------


def default_ledger_path() -> Optional[str]:
    """The ledger root the environment selects; ``None`` when disabled."""
    raw = os.environ.get(LEDGER_ENV)
    if raw is None:
        return DEFAULT_LEDGER_DIR
    if raw.strip().lower() in LEDGER_OFF_VALUES or not raw.strip():
        return None
    return raw


def resolve_ledger(
    ledger: Union[None, str, RunLedger] = None
) -> Optional[RunLedger]:
    """The ledger to record into: explicit object/path, or the default.

    ``None`` defers to :func:`default_ledger_path` (the ``REPRO_LEDGER``
    environment variable, else ``.ledger/``), which may disable
    recording entirely.
    """
    if isinstance(ledger, RunLedger):
        return ledger
    if isinstance(ledger, str):
        return RunLedger(ledger)
    path = default_ledger_path()
    return RunLedger(path) if path is not None else None


def record_run(
    kind: str,
    spec: Dict,
    counters: Dict,
    *,
    wall_s: float = 0.0,
    profile: Optional[Dict] = None,
    alerts: Optional[Dict] = None,
    artifacts: Optional[Dict[str, str]] = None,
    extra: Optional[Dict] = None,
    ledger: Union[None, str, RunLedger] = None,
) -> Optional[RunRecord]:
    """Append one provenance record; best-effort, never raises.

    The single recording entry point every layer calls: resolves the
    ledger (env default unless overridden), builds the record, appends.
    Returns the appended record (environment fields filled) or ``None``
    when recording is disabled or the ledger is unwritable — a run must
    never fail because its provenance could not be written.
    """
    led = resolve_ledger(ledger)
    if led is None:
        return None
    record = RunRecord(
        kind=kind,
        spec=spec,
        counters=counters,
        profile=profile or {},
        alerts=alerts or {},
        extra=extra or {},
        wall_s=round(wall_s, 6),
        artifacts=dict(artifacts or {}),
    )
    try:
        return led.append(record)
    except OSError:
        return None


def grid_cells_payload(results: Dict) -> Tuple[List, Dict]:
    """Distill a grid's ``{cell: RunResult}`` map for one grid record.

    Returns ``(per-cell rows, aggregate counters)``: the rows (one
    compact dict per cell, in deterministic cell order) go under
    ``extra["cells"]``; the aggregates are the record's ``counters``.
    """
    rows = []
    totals = {
        "cells": len(results),
        "persistent_stores": 0,
        "flushes": 0,
        "instructions": 0,
        "time": 0,
        "fase_count": 0,
    }
    for cell in sorted(results):
        name, technique, threads = cell
        result = results[cell]
        rows.append(
            {
                "workload": name,
                "technique": technique,
                "threads": threads,
                "time": int(result.time),
                "persistent_stores": int(result.persistent_stores),
                "flushes": int(result.flushes),
                "flush_ratio": round(float(result.flush_ratio), 6),
            }
        )
        totals["persistent_stores"] += int(result.persistent_stores)
        totals["flushes"] += int(result.flushes)
        totals["instructions"] += int(result.instructions)
        totals["time"] += int(result.time)
        totals["fase_count"] += int(result.fase_count)
    return rows, totals


def related_artifacts(
    records: Iterable[RunRecord], target: RunRecord
) -> List[Dict]:
    """Records linked to ``target`` through a shared artifact path.

    A ``profile`` record that analyzed the trace a ``traced_run`` wrote
    shares that path in its ``artifacts`` values — the join that lets
    ``history regress`` point from a flagged record to its trace
    profile or crash matrix.
    """
    mine = set(target.artifacts.values())
    if not mine:
        return []
    out = []
    for record in records:
        if record.run_id == target.run_id:
            continue
        shared = sorted(mine & set(record.artifacts.values()))
        if shared:
            out.append(
                {
                    "kind": record.kind,
                    "run_id": record.run_id,
                    "shared": shared,
                    "artifacts": dict(record.artifacts),
                }
            )
    return out
