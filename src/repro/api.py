"""The typed public facade: one frozen spec in, one result out.

Everything the repo can do to one ``(workload, technique, threads)``
configuration — plain runs, traced runs, fault-injection campaigns — is
reachable from a single :class:`RunSpec`, so downstream code stops
hand-wiring ``Machine`` + ``technique_factory`` + ``AdaptiveController``::

    from repro import api

    spec = api.RunSpec(workload="linked-list", technique="SC", threads=2)
    result = api.run(spec)                  # -> RunResult
    matrix = api.campaign(spec, api.FaultSpec(max_sites=256))

``run`` delegates to the experiments harness, so a spec-driven run is
bit-identical to the legacy hand-wired path (enforced by an equivalence
test) and participates in the same profiling, memoization and on-disk
result cache.  ``campaign`` drives :func:`repro.faults.run_campaign`
with the spec's machine knobs, so runs and their crash campaigns always
agree on configuration.

The facade is re-exported lazily from the top-level package
(``from repro import RunSpec, run``) without importing the experiment
stack at ``import repro`` time.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple, Union

from repro.cache.spec import TechniqueSpec, list_techniques
from repro.common.errors import ConfigurationError
from repro.experiments.harness import Harness, HarnessConfig
from repro.faults.campaign import CrashMatrix, FaultCampaignSpec, run_campaign
from repro.locality.knee import SelectionPolicy
from repro.nvram.machine import MachineConfig
from repro.nvram.stats import RunResult
from repro.nvram.timing import DEFAULT_TIMING, TimingModel
from repro.workloads.registry import WORKLOAD_NAMES

#: The campaign spec, under the name the facade's users see.
FaultSpec = FaultCampaignSpec

__all__ = [
    "FaultSpec",
    "RunSpec",
    "TechniqueSpec",
    "campaign",
    "harness_for",
    "list_techniques",
    "run",
    "traced_run",
]


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation: workload, technique, machine knobs.

    Frozen and hashable, so specs work as cache keys and ship cleanly to
    worker processes.  Every field has the repo-wide default; a bare
    ``RunSpec(workload="mdb")`` reproduces what the CLI would run.

    ``technique`` accepts a base name (``"SC"``), a composed spec string
    (``"SC+nhit:2+clean+victim:16"``) or a
    :class:`~repro.cache.spec.TechniqueSpec`; it is normalized to the
    canonical spec string through the one parser
    (:meth:`TechniqueSpec.parse`), which is also where a bad spec fails,
    naming the offending stage or parameter.  ``list_techniques()``
    enumerates the grammar.
    """

    workload: str
    technique: Union[str, TechniqueSpec] = "SC"
    threads: int = 1
    scale: float = 1.0
    seed: int = 0
    timing: TimingModel = DEFAULT_TIMING
    l1_capacity_lines: int = 512
    l1_ways: int = 8
    selection: SelectionPolicy = SelectionPolicy()

    def __post_init__(self) -> None:
        # One parser for every entry point: accept a spec string or a
        # TechniqueSpec and store the canonical spec string, so equal
        # configurations hash equal ("SC+clean" == "SC+clean:4").
        object.__setattr__(
            self, "technique", str(TechniqueSpec.parse(self.technique))
        )
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")

    def harness_config(self) -> HarnessConfig:
        """The harness configuration this spec induces."""
        return HarnessConfig(
            scale=self.scale,
            seed=self.seed,
            timing=self.timing,
            l1_capacity_lines=self.l1_capacity_lines,
            l1_ways=self.l1_ways,
            selection=self.selection,
        )

    def machine_config(self) -> MachineConfig:
        """The machine configuration this spec induces."""
        return self.harness_config().machine_config()

    def ledger_dict(self) -> Dict[str, object]:
        """The canonical JSON form recorded in the run ledger.

        Pure function of the spec (``technique`` is already the
        canonical spec string), so identical specs fingerprint
        identically across processes and sessions (DESIGN.md §16).
        """
        return asdict(self)


def harness_for(spec: RunSpec, cache_dir: Optional[str] = None) -> Harness:
    """A harness configured exactly as ``spec`` requires."""
    return Harness(spec.harness_config(), cache_dir=cache_dir)


def _resolve_harness(
    spec: RunSpec, harness: Optional[Harness], cache_dir: Optional[str]
) -> Harness:
    if harness is None:
        return harness_for(spec, cache_dir=cache_dir)
    if harness.config != spec.harness_config():
        raise ConfigurationError(
            "harness configuration does not match the RunSpec; build one "
            "with api.harness_for(spec) to share it across runs"
        )
    return harness


def run(
    spec: RunSpec,
    *,
    harness: Optional[Harness] = None,
    cache_dir: Optional[str] = None,
) -> RunResult:
    """Execute one spec; bit-identical to the hand-wired harness path.

    Pass ``harness`` (from :func:`harness_for`) to share profile
    summaries and memoized cells across many runs; ``cache_dir``
    persists results on disk exactly like the CLI flag.
    """
    if spec.workload not in WORKLOAD_NAMES:
        raise ConfigurationError(
            f"unknown workload {spec.workload!r}; "
            f"expected one of {WORKLOAD_NAMES}"
        )
    harness = _resolve_harness(spec, harness, cache_dir)
    started = time.monotonic()
    result = harness.run(spec.workload, spec.technique, spec.threads)
    from repro.obs.ledger import counters_from_result, record_run

    record_run(
        "run",
        spec.ledger_dict(),
        counters_from_result(result),
        wall_s=time.monotonic() - started,
    )
    return result


def traced_run(
    spec: RunSpec,
    *,
    metrics_interval: Optional[int] = None,
    harness: Optional[Harness] = None,
    cache_dir: Optional[str] = None,
    ledger_artifacts: Optional[Dict[str, str]] = None,
) -> Tuple[RunResult, object, object]:
    """Execute one spec with the observability layer attached.

    Returns ``(result, recorder, metrics)`` as
    :func:`repro.obs.runner.traced_run` does; the run is bit-identical
    to :func:`run` for the same spec.  ``ledger_artifacts`` maps
    artifact names to the paths the caller is about to write (trace,
    metrics, report), so the ledger record links to them.
    """
    from repro.obs.runner import traced_run as _traced

    harness = _resolve_harness(spec, harness, cache_dir)
    started = time.monotonic()
    result, recorder, metrics = _traced(
        harness,
        spec.workload,
        spec.technique,
        threads=spec.threads,
        metrics_interval=metrics_interval,
    )
    from repro.obs.ledger import counters_from_result, record_run

    record_run(
        "traced_run",
        spec.ledger_dict(),
        counters_from_result(result),
        wall_s=time.monotonic() - started,
        extra={"trace_events": len(recorder)},
        artifacts=ledger_artifacts,
    )
    return result, recorder, metrics


def campaign(
    spec: RunSpec,
    faults: Optional[FaultCampaignSpec] = None,
    *,
    commit_before_drain: bool = False,
    cache_dir: Optional[str] = None,
    recorder: Optional[object] = None,
    metrics: Optional[object] = None,
    progress=None,
) -> CrashMatrix:
    """Run a fault-injection campaign over ``spec``'s configuration.

    ``faults`` defaults to a clean-power-cut sweep
    (:class:`FaultSpec`); ``commit_before_drain`` is the deliberate
    ordering violation used as the oracle's negative control.
    ``recorder``/``metrics`` attach the observability layer to the
    in-process replays (see :func:`repro.faults.run_campaign`).
    Returns the :class:`~repro.faults.campaign.CrashMatrix` of verdicts.
    """
    return run_campaign(
        spec.workload,
        technique=spec.technique,
        threads=spec.threads,
        seed=spec.seed,
        scale=spec.scale,
        spec=faults,
        timing=spec.timing,
        l1_capacity_lines=spec.l1_capacity_lines,
        l1_ways=spec.l1_ways,
        commit_before_drain=commit_before_drain,
        cache_dir=cache_dir,
        recorder=recorder,
        metrics=metrics,
        progress=progress,
    )
