"""The *linked-list* micro-benchmark (§IV-B).

"The singly linked-list is a multi-threaded benchmark, whereby a total of
N elements are inserted in a perfect shuffle pattern for a given number
of elements added atomically at each step."

One insert per FASE.  Each node occupies one cache line (key, value,
next); an insert stores the three node fields (one line), the
predecessor's ``next`` pointer (a second line) and the list's element
count (a third line) — five stores over three lines, which is why every
technique lands on the same flush ratio of 0.6: there is no reuse beyond
the in-line combining even the lazy bound gets, so LA = AT = SC
(Table III's linked-list row).

The perfect shuffle is realised by inserting keys in bit-reversed order,
so successive inserts land far apart in the list.  With T threads the key
space is sharded: thread ``t`` maintains its own sublist of the keys
congruent to ``t`` — insert counts and flush ratios are unchanged, and
per-thread software caches never interact (as in the paper's model).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, List

from repro.common.events import Event, FaseBegin, FaseEnd, Load, Store, Work
from repro.workloads.base import BumpAllocator, Workload

DEFAULT_ELEMENTS = 10_000

_KEY_OFF = 0
_VALUE_OFF = 8
_NEXT_OFF = 16


def _bit_reverse(value: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def perfect_shuffle_order(n: int) -> List[int]:
    """Keys 0..n-1 in bit-reversed (perfect shuffle) insertion order."""
    if n <= 0:
        return []
    bits = max(1, (n - 1).bit_length())
    order = [k for v in range(1 << bits) if (k := _bit_reverse(v, bits)) < n]
    return order


class LinkedListWorkload(Workload):
    """Sorted singly linked list built by perfect-shuffle inserts."""

    name = "linked-list"

    def __init__(self, elements: int = DEFAULT_ELEMENTS) -> None:
        self.elements = elements

    @property
    def total_stores(self) -> int:
        """5 stores per insert, 4 for the first (no count update): 5N - 1."""
        return 5 * self.elements - 1 if self.elements else 0

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads >= 1

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        alloc = BumpAllocator()
        # One count line and one head-pointer line per thread, then nodes.
        return [
            self._stream(t, num_threads, alloc)
            for t in range(num_threads)
        ]

    def _stream(
        self, tid: int, nthreads: int, alloc: BumpAllocator
    ) -> Iterator[Event]:
        head_addr = alloc.alloc_lines(1)
        count_addr = alloc.alloc_lines(1)
        keys = [k for k in perfect_shuffle_order(self.elements) if k % nthreads == tid]
        sorted_keys: List[int] = []
        node_of = {}
        first = True
        for key in keys:
            node = alloc.alloc_lines(1)
            idx = bisect_left(sorted_keys, key)
            yield FaseBegin()
            # Search cost: one predecessor load plus traversal work.
            yield Work(180 + idx // 4)
            yield Store(node + _KEY_OFF, 8, value=key)
            yield Store(node + _VALUE_OFF, 8, value=key * 2)
            if idx == 0:
                # New head: next := old head, head := node.
                yield Store(node + _NEXT_OFF, 8, value=None)
                yield Store(head_addr, 8, value=node)
            else:
                pred = node_of[sorted_keys[idx - 1]]
                yield Load(pred + _NEXT_OFF, 8)
                yield Store(node + _NEXT_OFF, 8, value=None)
                yield Store(pred + _NEXT_OFF, 8, value=node)
            if first:
                first = False  # paper's store count is 5N - 1
            else:
                yield Store(count_addr, 8, value=len(sorted_keys) + 1)
            yield FaseEnd()
            insort(sorted_keys, key)
            node_of[key] = node
