"""The *hash* micro-benchmark: a chained hash table (§IV-B).

Modelled on the open-source C hash table the paper uses [13]: separate
chaining, entries allocated individually, the bucket array resized
(doubled and rehashed) when the load factor crosses a threshold.  The
workload is single-threaded (as in the paper) and mixes inserts, updates
and deletes, one operation per FASE.

Why the technique ordering of Table III's hash row (LA 0.50 < SC 0.595 <
AT 0.62) emerges here: operations write the entry line plus a
hash-scattered bucket-array line — scattered lines conflict in the
8-entry direct-mapped Atlas table (pushing AT above the lazy bound),
while rehash FASEs sweep many lines with little reuse beyond what any
cache captures (keeping SC between the two).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.events import Event, FaseBegin, FaseEnd, Load, Store, Work
from repro.common.rng import derive_seed, make_rng
from repro.workloads.base import BumpAllocator, Workload

DEFAULT_ELEMENTS = 4_000

_KEY_OFF = 0
_VALUE_OFF = 8
_NEXT_OFF = 16
_HASH_OFF = 24

_PTR_SIZE = 8
_INITIAL_BUCKETS = 64
_MAX_LOAD = 0.75


class HashTableWorkload(Workload):
    """Insert/update/delete mix on a chained hash table, one FASE per op."""

    name = "hash"

    def __init__(
        self,
        elements: int = DEFAULT_ELEMENTS,
        updates: Optional[int] = None,
        deletes: Optional[int] = None,
    ) -> None:
        self.elements = elements
        self.updates = updates if updates is not None else elements // 2
        self.deletes = deletes if deletes is not None else elements // 4

    @property
    def total_fases(self) -> int:
        """Operations (paper's hash row: ~7K FASEs for 4000 elements)."""
        return self.elements + self.updates + self.deletes

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        if num_threads != 1:
            raise ConfigurationError("the hash benchmark is single-threaded")
        return [self._stream(derive_seed(seed, self.name))]

    def _bucket_addr(self, key: int) -> int:
        # Multiplicative hash, as the C original uses; bucket pointers are
        # 8 bytes each, eight per cache line.
        idx = (key * 2654435761) % self._num_buckets
        return self._buckets_base + idx * _PTR_SIZE

    def _stream(self, seed: int) -> Iterator[Event]:
        rng = make_rng(seed)
        alloc = BumpAllocator()
        self._num_buckets = _INITIAL_BUCKETS
        self._buckets_base = alloc.alloc(self._num_buckets * _PTR_SIZE, True)
        count_addr = alloc.alloc_lines(1)
        chains: Dict[int, List[Tuple[int, int]]] = {}   # bucket addr -> [(key, entry)]
        entry_of: Dict[int, int] = {}
        live_keys: List[int] = []
        inserted = 0

        # Interleave operations: updates and deletes trail the inserts.
        ops: List[Tuple[str, int]] = []
        u = d = 0
        for i in range(self.elements):
            ops.append(("insert", i))
            while u < self.updates and u * self.elements < i * self.updates:
                ops.append(("update", u))
                u += 1
            while d < self.deletes and d * self.elements < i * self.deletes:
                ops.append(("delete", d))
                d += 1
        ops.extend(("update", j) for j in range(u, self.updates))
        ops.extend(("delete", j) for j in range(d, self.deletes))

        for op, _arg in ops:
            if op == "insert":
                key = int(rng.integers(0, 1 << 30))
                # Rehash outside the insert FASE when the load is high.
                if inserted + 1 > _MAX_LOAD * self._num_buckets:
                    yield from self._rehash(alloc, chains)
                entry = alloc.alloc_lines(1)
                bucket = self._bucket_addr(key)
                yield FaseBegin()
                yield Work(250)
                yield Load(bucket, _PTR_SIZE)
                yield Store(entry + _KEY_OFF, 8, value=key)
                yield Store(entry + _VALUE_OFF, 8, value=key ^ 0xFF)
                yield Store(entry + _NEXT_OFF, 8, value=None)
                yield Store(entry + _HASH_OFF, 8, value=key * 2654435761 % (1 << 32))
                yield Store(bucket, _PTR_SIZE, value=entry)
                yield Store(count_addr, 8, value=inserted + 1)
                yield FaseEnd()
                chains.setdefault(bucket, []).insert(0, (key, entry))
                entry_of[key] = entry
                live_keys.append(key)
                inserted += 1
            elif op == "update" and live_keys:
                key = live_keys[int(rng.integers(0, len(live_keys)))]
                entry = entry_of[key]
                yield FaseBegin()
                yield Work(70)
                yield Load(self._bucket_addr(key), _PTR_SIZE)
                yield Load(entry + _KEY_OFF, 8)
                yield Store(entry + _VALUE_OFF, 8, value=key ^ 0xAB)
                yield FaseEnd()
            elif op == "delete" and live_keys:
                pick = int(rng.integers(0, len(live_keys)))
                key = live_keys.pop(pick)
                entry = entry_of.pop(key)
                bucket = self._bucket_addr(key)
                chain = chains.get(bucket, [])
                pos = next(i for i, (k, _) in enumerate(chain) if k == key)
                yield FaseBegin()
                yield Work(250)
                yield Load(bucket, _PTR_SIZE)
                if pos == 0:
                    yield Store(bucket, _PTR_SIZE, value=None)
                else:
                    pred_entry = chain[pos - 1][1]
                    yield Store(pred_entry + _NEXT_OFF, 8, value=None)
                yield Store(count_addr, 8, value=inserted)
                yield FaseEnd()
                chain.pop(pos)
                inserted -= 1

    def _rehash(
        self, alloc: BumpAllocator, chains: Dict[int, List[Tuple[int, int]]]
    ) -> Iterator[Event]:
        """Double the bucket array and relink every entry (one big FASE)."""
        old_entries = [pair for chain in chains.values() for pair in chain]
        self._num_buckets *= 2
        self._buckets_base = alloc.alloc(self._num_buckets * _PTR_SIZE, True)
        chains.clear()
        yield FaseBegin()
        yield Work(4 * self._num_buckets)
        # Zero the new bucket array (sequential lines)...
        for i in range(0, self._num_buckets, 8):
            yield Store(self._buckets_base + i * _PTR_SIZE, _PTR_SIZE)
        # ...then relink entries in hash order (scattered bucket lines).
        for key, entry in old_entries:
            bucket = self._bucket_addr(key)
            yield Store(entry + _NEXT_OFF, 8)
            yield Store(bucket, _PTR_SIZE, value=entry)
            chains.setdefault(bucket, []).insert(0, (key, entry))
        yield FaseEnd()
