"""Workloads: micro-benchmarks, synthetic SPLASH2 generators, helpers.

The paper evaluates 12 applications (§IV-B): four micro-benchmarks from
the Atlas repository, seven SPLASH2 programs, and the MDB key-value
store.  Here:

- :mod:`repro.workloads.parray` — *persistent-array*, reproduced exactly
  from the paper's description (nested loop, 400-int inner array,
  2500 outer iterations, one FASE).
- :mod:`repro.workloads.linkedlist` — singly linked list with
  perfect-shuffle inserts, one insert per FASE.
- :mod:`repro.workloads.msqueue` — Michael & Scott's two-lock blocking
  queue, one operation per FASE.
- :mod:`repro.workloads.hashtable` — a chained hash table with
  occasional rehashing.
- :mod:`repro.workloads.generators` — the calibrated tile/burst/scatter
  trace generator used to stand in for SPLASH2 binaries.
- :mod:`repro.workloads.splash2` — per-benchmark profiles calibrated to
  the paper's published statistics (Table III, §IV-G).
- :mod:`repro.workloads.registry` — name → workload lookup used by the
  experiment harness.

The MDB workload lives in :mod:`repro.mdb`.
"""

from repro.workloads.base import Workload, BumpAllocator, TraceWorkload, ComposedWorkload
from repro.workloads.parray import PersistentArray
from repro.workloads.linkedlist import LinkedListWorkload
from repro.workloads.msqueue import QueueWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.generators import TilePatternConfig, TilePatternWorkload
from repro.workloads.splash2 import SPLASH2_PROFILES, SplashProfile, make_splash2
from repro.workloads.registry import get_workload, WORKLOAD_NAMES

__all__ = [
    "Workload",
    "BumpAllocator",
    "TraceWorkload",
    "ComposedWorkload",
    "PersistentArray",
    "LinkedListWorkload",
    "QueueWorkload",
    "HashTableWorkload",
    "TilePatternConfig",
    "TilePatternWorkload",
    "SPLASH2_PROFILES",
    "SplashProfile",
    "make_splash2",
    "get_workload",
    "WORKLOAD_NAMES",
]
