"""Name → workload lookup used by the harness and the CLI."""

from __future__ import annotations


from repro.common.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.linkedlist import LinkedListWorkload
from repro.workloads.msqueue import QueueWorkload
from repro.workloads.parray import PersistentArray
from repro.workloads.splash2 import SPLASH2_PROFILES, make_splash2

#: The paper's 12 applications, in Table III order.
WORKLOAD_NAMES = (
    "linked-list",
    "persistent-array",
    "queue",
    "hash",
    "barnes",
    "fmm",
    "ocean",
    "raytrace",
    "volrend",
    "water-nsquared",
    "water-spatial",
    "mdb",
)


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Build a workload by its Table III name.

    ``scale`` shrinks (or grows) the default problem size; tests use small
    scales, the benchmark harness uses 1.0.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    if name == "persistent-array":
        outer = max(4, round(2500 * scale))
        return PersistentArray(outer=outer)
    if name == "linked-list":
        return LinkedListWorkload(elements=max(16, round(10_000 * scale)))
    if name == "queue":
        return QueueWorkload(operations=max(16, round(100_000 * scale)))
    if name == "hash":
        return HashTableWorkload(elements=max(64, round(4_000 * scale)))
    if name in SPLASH2_PROFILES:
        budget = max(2_000, round(220_000 * scale))
        return make_splash2(name, store_budget=budget)
    if name == "mdb":
        from repro.mdb.mtest import MtestWorkload

        pairs = max(64, round(20_000 * scale))
        # Hold the B+-tree depth roughly constant across scales (larger
        # trees get larger pages, as LMDB's 4K pages imply at full
        # problem sizes) so the write-locality structure - and with it
        # the MRC knee - is scale-invariant.
        page_size = 1024 if pairs > 8_000 else 512
        return MtestWorkload(pairs=pairs, page_size=page_size)
    raise ConfigurationError(
        f"unknown workload {name!r}; known: {WORKLOAD_NAMES}"
    )
