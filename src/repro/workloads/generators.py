"""The calibrated tile/burst/wide-loop trace generator.

SPLASH2 binaries cannot run here, but the persistence techniques only see
the *persistent-write event stream*; a generator that reproduces a
program's write-locality structure induces the same technique behaviour.
The structure has four ingredients, each mapping to a measurable
published statistic (see :mod:`repro.workloads.splash2` for the per-
program calibration):

``burst``
    Consecutive writes to the same cache line (spatial locality within a
    line plus repeated updates).  Every technique combines these, so the
    Atlas table's flush ratio ≈ ``1/burst``.
``tile_lines`` (K)
    Lines in the inner working set that is swept repeatedly — the
    intended MRC knee.  A software cache of ≥ K lines combines the
    cross-pass reuses; the Atlas table cannot: tiles are laid out at the
    table-aliasing stride (the classic conflict-miss pattern of strided
    writes through a direct-mapped structure), so every cross-line
    alternation evicts the table entry first.
``passes``
    Sweeps over a tile before moving on; the lazy bound is ≈
    ``1/(burst × passes)`` of the stores.
``wide loops``
    Occasional repeated sweeps over a region larger than any permitted
    cache size (> the 50-line cap of §III-C).  The lazy technique still
    combines the repeats — the software cache cannot, whatever size it
    picks.  This reproduces the SC/LA gap of Table III.  Two delivery
    modes (see :class:`WideMode`): blocks inside ordinary FASEs, or
    dedicated wide FASEs (the heterogeneous-FASE structure of programs
    whose average FASE is far smaller than their biggest ones).

``burst`` and ``passes`` may be fractional; deterministic dithering
realises the averages.  A ``scatter_frac`` knob (random writes to a
pool, default off) is kept for ablation studies.

Multi-threading follows the strong-scaling model the paper describes
(§IV-F): the per-FASE work — the list of (tile, pass) units — is split
into contiguous blocks, one per thread, each bracketed by the thread's
own FASE, so total stores stay constant while total FASEs grow with the
thread count.  When a FASE has fewer units than threads, whole FASEs are
dealt round-robin instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.events import (
    Event,
    EventBatch,
    FaseBegin,
    FaseEnd,
    Store,
    Work,
)
from repro.common.geometry import CACHE_LINE_SIZE
from repro.common.rng import derive_seed, make_rng
from repro.nvram.memory import NVRAM_BASE
from repro.workloads.base import Workload

#: Stride (in lines) that aliases all tile lines onto one slot of the
#: 8-entry Atlas table.
ALIAS_STRIDE_LINES = 8


class WideMode:
    """How wide-loop work is delivered.

    ``NONE``
        No wide loops (programs whose SC ratio equals the lazy bound).
    ``UNITS``
        Wide sweeps appear as blocks inside ordinary FASEs.  Used when
        the SC−LA gap is small: the theory MRC places such a block's
        reuse at an *averaged* cache size (a mild violation of the
        reuse-window hypothesis, §III-B "Correctness"), but the
        resulting phantom drop is below the knee detector's
        significance threshold, so it is harmless.
    ``FASES``
        Dedicated wide FASEs interleaved among the narrow ones — the
        heterogeneous-FASE structure.  Used when the gap is large enough
        to be visible in the MRC; the region is then sized so that even
        the averaged placement of its reuse lands beyond the 50-line
        size cap and cannot perturb size selection.
    """

    NONE = "none"
    UNITS = "units"
    FASES = "fases"


@dataclass(frozen=True)
class TilePatternConfig:
    """Parameters of one synthetic write-locality pattern."""

    tile_lines: int             # K: lines per narrow tile = intended MRC knee
    burst: float                # consecutive writes per line visit (>= 1)
    passes: float               # sweeps per narrow tile (>= 1)
    tiles_per_fase: int         # narrow tiles swept in each FASE
    num_fases: int              # narrow FASEs
    wide_mode: str = WideMode.NONE
    wide_lines: int = 64        # lines per wide region (> the 50-line cap)
    wide_passes: float = 2.0    # sweeps of the wide region per wide unit/FASE
    wide_units_per_fase: float = 0.0   # UNITS mode: avg wide blocks per FASE
    wide_fase_every: float = 0.0       # FASES mode: wide FASEs per narrow FASE
    scatter_frac: float = 0.0   # ablation knob: random-pool writes
    scatter_pool_lines: int = 256
    alias_tiles: bool = True    # stride tile lines to alias the Atlas table
    work_per_store: int = 3     # computation instructions per store

    def __post_init__(self) -> None:
        if self.tile_lines < 1:
            raise ConfigurationError("tile_lines must be >= 1")
        if self.burst < 1 or self.passes < 1:
            raise ConfigurationError("burst and passes must be >= 1")
        if self.tiles_per_fase < 1 or self.num_fases < 1:
            raise ConfigurationError("tiles_per_fase and num_fases must be >= 1")
        if self.wide_mode not in (WideMode.NONE, WideMode.UNITS, WideMode.FASES):
            raise ConfigurationError(f"unknown wide_mode {self.wide_mode!r}")
        if self.wide_mode != WideMode.NONE and self.wide_passes < 1:
            raise ConfigurationError("wide_passes must be >= 1 when wide loops are on")
        if self.wide_lines < 1:
            raise ConfigurationError("wide_lines must be >= 1")
        if self.wide_units_per_fase < 0 or self.wide_fase_every < 0:
            raise ConfigurationError("wide-loop rates must be non-negative")
        if not 0 <= self.scatter_frac < 1:
            raise ConfigurationError("scatter_frac must be in [0, 1)")
        if self.scatter_pool_lines < 1:
            raise ConfigurationError("scatter_pool_lines must be >= 1")

    @property
    def working_set_lines(self) -> int:
        """Distinct narrow-tiled lines per FASE (W)."""
        return self.tile_lines * self.tiles_per_fase

    @property
    def wide_unit_stores(self) -> float:
        """Average stores in one wide sweep block."""
        return self.wide_lines * self.burst * self.wide_passes

    @property
    def approx_stores_per_fase(self) -> float:
        """Average persistent stores per narrow FASE (incl. wide share)."""
        narrow = self.working_set_lines * self.burst * self.passes
        wide = 0.0
        if self.wide_mode == WideMode.UNITS:
            wide = self.wide_units_per_fase * self.wide_unit_stores
        elif self.wide_mode == WideMode.FASES:
            wide = self.wide_fase_every * self.wide_unit_stores
        return (narrow + wide) * (1.0 + self.scatter_frac)

    @property
    def approx_total_stores(self) -> int:
        """Rough total persistent stores over the whole run."""
        return int(self.approx_stores_per_fase * self.num_fases)


class _Dither:
    """Turn a fractional rate into a deterministic integer sequence."""

    __slots__ = ("rate", "acc")

    def __init__(self, rate: float, start: float = 0.5) -> None:
        # Starting at the half-step unbiases runs with only a few draws.
        self.rate = rate
        self.acc = start

    def next_count(self) -> int:
        self.acc += self.rate
        n = int(self.acc)
        self.acc -= n
        return n


# Unit kinds in the per-FASE work list.
_NARROW = 0
_WIDE = 1


class TilePatternWorkload(Workload):
    """A workload emitting the tile/burst/wide-loop pattern."""

    def __init__(self, name: str, config: TilePatternConfig) -> None:
        self.name = name
        self.config = config
        # Region layout (in lines): narrow tiles, wide regions, scatter pool.
        stride = ALIAS_STRIDE_LINES if config.alias_tiles else 1
        self._stride = stride
        self._tile_span = config.tile_lines * stride
        self._base_line = NVRAM_BASE // CACHE_LINE_SIZE
        self._wide_base = self._base_line + config.tiles_per_fase * self._tile_span
        self._num_wide_instances = 8
        self._scatter_base = (
            self._wide_base + self._num_wide_instances * config.wide_lines
        )

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads >= 1

    def tile_line(self, tile: int, i: int) -> int:
        """Line id of element ``i`` of narrow tile ``tile`` (layout helper)."""
        return self._base_line + tile * self._tile_span + i * self._stride

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        return [
            self._stream(t, num_threads, derive_seed(seed, self.name, t))
            for t in range(num_threads)
        ]

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> List[Iterator[EventBatch]]:
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        return [
            self._batches(t, num_threads, derive_seed(seed, self.name, t))
            for t in range(num_threads)
        ]

    def _stream(self, tid: int, nthreads: int, seed: int) -> Iterator[Event]:
        cfg = self.config
        rng = make_rng(seed)
        pass_dither = _Dither(cfg.passes)
        burst_dither = _Dither(cfg.burst)
        wide_unit_dither = _Dither(cfg.wide_units_per_fase)
        wide_fase_dither = _Dither(cfg.wide_fase_every)
        wide_pass_dither = _Dither(max(cfg.wide_passes, 1.0))
        scatter_dither = _Dither(cfg.scatter_frac)
        wide_counter = [0]
        work = cfg.work_per_store
        line_size = CACHE_LINE_SIZE
        pool = cfg.scatter_pool_lines
        scatter_base = self._scatter_base

        def sweep(base_line: int, nlines: int, stride: int) -> Iterator[Event]:
            for i in range(nlines):
                b = max(1, burst_dither.next_count())
                yield Work(work * b)
                addr = (base_line + i * stride) * line_size
                for j in range(b):
                    yield Store(addr + (j % 8) * 8, 8)
                if cfg.scatter_frac:
                    for _ in range(scatter_dither.next_count() * b):
                        pool_line = scatter_base + int(rng.integers(0, pool))
                        yield Store(pool_line * line_size, 8)

        # Each thread works on a private partition of the domain (the
        # SPLASH2 strong-scaling decomposition): its tiles and wide
        # regions are replicas at a per-thread offset.  The extra +tid
        # lines rotate the hardware-cache set mapping so replicas spread
        # across sets — which is what makes L1 capacity contention grow
        # with the thread count (Table IV's rising miss ratios) without
        # changing any per-thread flush arithmetic.
        region_span = (
            cfg.tiles_per_fase * self._tile_span
            + self._num_wide_instances * cfg.wide_lines
        )
        thread_base = self._base_line + tid * (region_span + 1)
        wide_base = thread_base + cfg.tiles_per_fase * self._tile_span

        def wide_block() -> Iterator[Event]:
            instance = wide_counter[0] % self._num_wide_instances
            wide_counter[0] += 1
            base = wide_base + instance * cfg.wide_lines
            for _ in range(max(1, wide_pass_dither.next_count())):
                yield from sweep(base, cfg.wide_lines, 1)

        for fase in range(cfg.num_fases):
            # The per-FASE unit list; rebuilt by every thread with the
            # same dither sequence so the contiguous-block split is
            # consistent across threads.
            units: List[Tuple[int, int]] = []
            for tile in range(cfg.tiles_per_fase):
                units.extend(
                    [(_NARROW, tile)] * max(1, pass_dither.next_count())
                )
            if cfg.wide_mode == WideMode.UNITS:
                for _ in range(wide_unit_dither.next_count()):
                    units.append((_WIDE, 0))
            n_units = len(units)
            if n_units >= nthreads:
                lo = tid * n_units // nthreads
                hi = (tid + 1) * n_units // nthreads
                my_units = units[lo:hi]
            elif fase % nthreads == tid:
                my_units = units
            else:
                my_units = []
            if my_units:
                yield FaseBegin()
                for kind, tile in my_units:
                    if kind == _NARROW:
                        yield from sweep(
                            thread_base + tile * self._tile_span,
                            cfg.tile_lines,
                            self._stride,
                        )
                    else:
                        yield from wide_block()
                yield FaseEnd()
            # Dedicated wide FASEs, dealt round-robin across threads.
            if cfg.wide_mode == WideMode.FASES:
                for _ in range(wide_fase_dither.next_count()):
                    owner = wide_counter[0] % nthreads
                    if owner == tid:
                        yield FaseBegin()
                        yield from wide_block()
                        yield FaseEnd()
                    else:
                        wide_counter[0] += 1  # keep instance rotation in sync

    def _batches(
        self, tid: int, nthreads: int, seed: int, chunk: int = 4096
    ) -> Iterator[EventBatch]:
        """Batched mirror of :meth:`_stream` — same events, same order.

        Every dither and RNG draw happens in the identical sequence, so
        the emitted events match :meth:`_stream` one for one (asserted by
        the equivalence tests); only the encoding differs.  Appending
        integers to an :class:`EventBatch` here is what removes the
        generator-resumption and ``Event``-allocation cost from the
        simulator's hot loop.
        """
        cfg = self.config
        rng = make_rng(seed)
        pass_dither = _Dither(cfg.passes)
        burst_dither = _Dither(cfg.burst)
        wide_unit_dither = _Dither(cfg.wide_units_per_fase)
        wide_fase_dither = _Dither(cfg.wide_fase_every)
        wide_pass_dither = _Dither(max(cfg.wide_passes, 1.0))
        scatter_dither = _Dither(cfg.scatter_frac)
        wide_counter = [0]
        work = cfg.work_per_store
        line_size = CACHE_LINE_SIZE
        pool = cfg.scatter_pool_lines
        scatter_base = self._scatter_base

        def sweep(out: EventBatch, base_line: int, nlines: int, stride: int) -> None:
            append_work = out.append_work
            append_store = out.append_store
            for i in range(nlines):
                b = max(1, burst_dither.next_count())
                append_work(work * b)
                addr = (base_line + i * stride) * line_size
                for j in range(b):
                    append_store(addr + (j % 8) * 8, 8)
                if cfg.scatter_frac:
                    for _ in range(scatter_dither.next_count() * b):
                        pool_line = scatter_base + int(rng.integers(0, pool))
                        append_store(pool_line * line_size, 8)

        region_span = (
            cfg.tiles_per_fase * self._tile_span
            + self._num_wide_instances * cfg.wide_lines
        )
        thread_base = self._base_line + tid * (region_span + 1)
        wide_base = thread_base + cfg.tiles_per_fase * self._tile_span

        def wide_block(out: EventBatch) -> None:
            instance = wide_counter[0] % self._num_wide_instances
            wide_counter[0] += 1
            base = wide_base + instance * cfg.wide_lines
            for _ in range(max(1, wide_pass_dither.next_count())):
                sweep(out, base, cfg.wide_lines, 1)

        batch = EventBatch()
        for fase in range(cfg.num_fases):
            units: List[Tuple[int, int]] = []
            for tile in range(cfg.tiles_per_fase):
                units.extend(
                    [(_NARROW, tile)] * max(1, pass_dither.next_count())
                )
            if cfg.wide_mode == WideMode.UNITS:
                for _ in range(wide_unit_dither.next_count()):
                    units.append((_WIDE, 0))
            n_units = len(units)
            if n_units >= nthreads:
                lo = tid * n_units // nthreads
                hi = (tid + 1) * n_units // nthreads
                my_units = units[lo:hi]
            elif fase % nthreads == tid:
                my_units = units
            else:
                my_units = []
            if my_units:
                batch.append_fase_begin()
                for kind, tile in my_units:
                    if kind == _NARROW:
                        sweep(
                            batch,
                            thread_base + tile * self._tile_span,
                            cfg.tile_lines,
                            self._stride,
                        )
                    else:
                        wide_block(batch)
                batch.append_fase_end()
            if cfg.wide_mode == WideMode.FASES:
                for _ in range(wide_fase_dither.next_count()):
                    owner = wide_counter[0] % nthreads
                    if owner == tid:
                        batch.append_fase_begin()
                        wide_block(batch)
                        batch.append_fase_end()
                    else:
                        wide_counter[0] += 1  # keep instance rotation in sync
            # FASE state carries across batches: yield between FASEs once
            # the chunk threshold is passed (batches may overshoot it).
            if len(batch.kinds) >= chunk:
                yield batch
                batch = EventBatch()
        if len(batch.kinds):
            yield batch
