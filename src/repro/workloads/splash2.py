"""Calibrated SPLASH2 stand-ins.

Each profile carries the paper's published per-benchmark statistics
(Table III flush ratios, §IV-G selected cache sizes, Table I eager
slowdowns) and derives tile-pattern parameters from them:

- ``burst = 1 / AT`` — the Atlas table combines exactly the consecutive
  same-line writes, so its measured flush ratio pins the burst length;
- ``passes = AT / LA`` — the lazy bound combines everything within a
  FASE, so the AT/LA gap pins how many sweeps the tile receives;
- ``tile_lines = knee`` — §IV-G's selected cache size *is* the knee;
- wide loops carrying a store fraction tied to ``SC − LA`` — the paper's
  SC leaves exactly this much of the store stream uncombined (reuse
  beyond any permitted cache size).

The identity ``LA = 1/(burst × passes)`` holds for any tile count, so
scaling down the working set and FASE count (to laptop-size traces)
preserves all the flush *ratios*; only absolute counts shrink.
DESIGN.md §2 records this substitution; EXPERIMENTS.md records achieved
vs. published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError
from repro.workloads.generators import TilePatternConfig, TilePatternWorkload, WideMode

#: Default total persistent-store budget per benchmark (scaled runs).
DEFAULT_STORE_BUDGET = 220_000


@dataclass(frozen=True)
class SplashProfile:
    """Published statistics of one SPLASH2 benchmark (paper §IV)."""

    name: str
    problem_size: str
    paper_fases: int
    paper_stores: int
    paper_la: float       # Table III lazy flush ratio (the lower bound)
    paper_at: float       # Table III Atlas flush ratio
    paper_sc: float       # Table III software-cache flush ratio
    knee: int             # §IV-G selected cache size
    eager_slowdown: float  # Table I (x over no-persistence)

    @property
    def paper_stores_per_fase(self) -> float:
        """Average persistent stores per FASE in the published run."""
        return self.paper_stores / self.paper_fases

    @property
    def burst(self) -> float:
        """Consecutive same-line writes implied by the AT ratio."""
        return 1.0 / self.paper_at

    @property
    def passes(self) -> float:
        """Tile sweeps implied by the AT/LA gap."""
        return self.paper_at / self.paper_la

    @property
    def sc_la_gap(self) -> float:
        """Uncombinable-store fraction implied by the SC/LA gap."""
        return max(0.0, self.paper_sc - self.paper_la)

    @property
    def work_per_store(self) -> int:
        """Computation per store implied by the Table I eager slowdown.

        Under eager flushing the CPU is throttled to the write-back
        service time per store; without persistence it runs at roughly
        ``work_per_store + 2`` cycles per store.  The published slowdown
        therefore pins the program's compute intensity:
        ``slowdown ≈ service / (work_per_store + 2)``.
        """
        from repro.nvram.timing import DEFAULT_TIMING

        return max(2, round(DEFAULT_TIMING.writeback_service / self.eager_slowdown) - 2)

    def tile_config(self, store_budget: int = DEFAULT_STORE_BUDGET) -> TilePatternConfig:
        """Derive scaled generator parameters under a store budget.

        The calibration solves for the pattern that reproduces the three
        published flush ratios simultaneously:

        - ``burst = 1/AT`` pins the Atlas ratio;
        - wide loops (regions above the 50-line size cap, swept ``q``
          times) supply the SC−LA gap ``G``: a wide store misses in any
          permitted software cache (ratio ``1/burst`` there) but the
          lazy bound still combines its sweeps (``1/(burst·q)``), giving
          ``x·(1/b)(1 − 1/q) = G`` for wide-store fraction ``x``;
        - narrow passes ``p_n`` then absorb the remaining LA budget:
          ``(1−x)/(b·p_n) = LA − x/(b·q)``.

        Wide sweeps ship as one block per FASE (``WideMode.UNITS``); the
        region size depends on whether ``G`` would be visible to the knee
        detector (does it exceed the significance fraction of the MRC's
        range beyond size 1, ``≈ AT − SC``).  An invisible gap uses a
        small region just above the knee; a visible one must be sized so
        that the *averaged* placement of its reuse (stack length × miss
        density) lands beyond the 50-line cap, or it would hijack
        selection — see :class:`~repro.workloads.generators.WideMode` on
        the reuse-window-hypothesis subtlety behind this.
        """
        if store_budget < 1000:
            raise ConfigurationError("store_budget too small to be meaningful")
        from repro.locality.knee import DEFAULT_POLICY

        b = self.burst
        la = self.paper_la
        gap = self.sc_la_gap
        K = self.knee

        if gap <= 1e-6:
            # No wide component: the SC ratio already sits on the lazy
            # bound (volrend's row).
            p_n = max(1.05, self.passes)
            unit = K * b * p_n
            tiles_natural = max(
                1, round(la * self.paper_stores_per_fase / K)
            )
            tiles = max(1, min(tiles_natural, int(store_budget / (4 * unit))))
            num_fases = max(
                3, min(self.paper_fases, round(store_budget / (tiles * unit)))
            )
            return TilePatternConfig(
                tile_lines=K,
                burst=b,
                passes=p_n,
                tiles_per_fase=tiles,
                num_fases=num_fases,
                alias_tiles=True,
                work_per_store=self.work_per_store,
            )

        # Wide-region size: the reuse must evade the software cache.  If
        # the gap is below the knee detector's significance threshold
        # (relative to the MRC's range beyond size 1, ~ AT - SC), the
        # region only needs to exceed the selected size; otherwise its
        # averaged reuse placement (stack length x miss density) must
        # land beyond the 50-line cap, or it would hijack selection.
        visible = gap >= DEFAULT_POLICY.min_drop_fraction * (
            self.paper_at - self.paper_sc
        )
        M = max(40, K + 12)
        if visible:
            honest = min(
                1024, max(64, round(60.0 / (b * max(self.paper_sc, 1e-4))))
            )
            # The honest region must fit inside the per-FASE LA budget;
            # for tiny-LA programs it cannot, and their marginal gap is
            # harmless anyway (the averaged placement of the small-M
            # region's reuse lands at or below the real knee, never
            # above it, so selection is unaffected).
            if honest + K <= 0.7 * la * store_budget / 3:
                M = honest

        # Exact per-FASE solution with one wide unit per FASE:
        #   lines/FASE      L_f = la * S_f        = tiles*K + M
        #   gap             G   = M * (q - 1) / S_f
        #   stores/FASE     S_f = tiles*K*b*p_n + M*b*q
        num_fases = max(
            1,
            min(
                min(self.paper_fases, 64),
                int(store_budget * la / (M + 2 * K)),
            ),
        )
        s_f = store_budget / num_fases
        q = min(50.0, max(1.0, 1.0 + gap * s_f / M))
        tiles = max(1, round((la * s_f - M) / K))
        s_wide = M * b * q
        s_narrow = max(tiles * K * b, s_f - s_wide)
        p_n = max(1.05, s_narrow / (tiles * K * b))
        return TilePatternConfig(
            tile_lines=K,
            burst=b,
            passes=p_n,
            tiles_per_fase=tiles,
            num_fases=num_fases,
            wide_mode=WideMode.UNITS,
            wide_lines=M,
            wide_passes=q,
            wide_units_per_fase=1.0,
            alias_tiles=True,
            work_per_store=self.work_per_store,
        )

    def make_workload(
        self, store_budget: int = DEFAULT_STORE_BUDGET
    ) -> TilePatternWorkload:
        """Build the scaled stand-in workload for this benchmark."""
        return TilePatternWorkload(self.name, self.tile_config(store_budget))


#: Published statistics, straight from Table I, Table III and §IV-G.
SPLASH2_PROFILES: Dict[str, SplashProfile] = {
    p.name: p
    for p in (
        SplashProfile("barnes", "16384", 69_000, 270_762_562,
                      0.00295, 0.08206, 0.00391, 15, 22.0),
        SplashProfile("fmm", "16384", 43_000, 87_711_754,
                      0.00246, 0.01683, 0.00328, 10, 24.0),
        SplashProfile("ocean", "1026", 648, 25_242_763,
                      0.09203, 0.40290, 0.16467, 2, 17.0),
        SplashProfile("raytrace", "car", 346_000, 65_509_589,
                      0.07140, 0.13952, 0.07918, 8, 6.0),
        SplashProfile("volrend", "head", 45, 391_692_398,
                      0.00219, 0.03189, 0.00219, 3, 26.0),
        SplashProfile("water-nsquared", "512", 2_100, 45_338_822,
                      0.00107, 0.05334, 0.00411, 28, 24.0),
        SplashProfile("water-spatial", "512", 77, 40_981_496,
                      0.00103, 0.07122, 0.00157, 23, 33.0),
    )
}


def make_splash2(
    name: str, store_budget: int = DEFAULT_STORE_BUDGET
) -> TilePatternWorkload:
    """Build a scaled SPLASH2 stand-in by benchmark name."""
    try:
        profile = SPLASH2_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SPLASH2 benchmark {name!r}; "
            f"known: {sorted(SPLASH2_PROFILES)}"
        ) from None
    return profile.make_workload(store_budget)
